//! End-to-end pipeline tests spanning all workspace crates.

use ned::baselines::features::{l1_distance, RefexFeatures};
use ned::core::hausdorff::hausdorff_between;
use ned::datasets::Dataset;
use ned::graph::anonymize::{anonymize, Method};
use ned::index::{linear_knn, FnMetric, VpTree};
use ned::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// dataset -> signatures -> VP-tree: index results must equal full scan.
#[test]
fn vptree_over_ned_signatures_matches_scan() {
    let g = Dataset::Pgp.generate(0.025, 11);
    let nodes: Vec<NodeId> = (0..200u32).collect();
    let sigs = signatures(&g, &nodes, 3);
    let metric = FnMetric(|a: &NodeSignature, b: &NodeSignature| a.distance(b) as f64);
    let mut rng = SmallRng::seed_from_u64(12);
    let tree = VpTree::build(sigs.clone(), &metric, &mut rng);

    let queries = signatures(&g, &[201, 202, 203, 204, 205], 3);
    for q in &queries {
        for k in [1usize, 5, 10] {
            let via_tree = tree.knn(&metric, q, k);
            let via_scan = linear_knn(tree.items(), &metric, q, k);
            assert_eq!(via_tree.len(), via_scan.len());
            for (a, b) in via_tree.iter().zip(&via_scan) {
                assert_eq!(a.distance, b.distance, "knn disagreement at k={k}");
            }
        }
    }
}

/// De-anonymization sanity: naive (structure preserved) precision must
/// dominate heavy perturbation, and NED must beat random guessing.
#[test]
fn deanonymization_ordering() {
    let g = Dataset::Pgp.generate(0.02, 13);
    let mut rng = SmallRng::seed_from_u64(14);
    let all: Vec<NodeId> = g.nodes().collect();
    let known = signatures(&g, &all, 3);
    let sample: Vec<NodeId> = (0..60u32).map(|i| i * 3 % g.num_nodes() as u32).collect();

    let precision = |method: Method, rng: &mut SmallRng| -> f64 {
        let anon = anonymize(&g, method, rng);
        let mut hits = 0usize;
        for &orig in &sample {
            let q = NodeSignature::extract(&anon.graph, anon.mapping[orig as usize], 3);
            let mut ranked: Vec<(u64, NodeId)> =
                known.iter().map(|c| (q.distance(c), c.node)).collect();
            ranked.sort_unstable();
            if ranked.iter().take(5).any(|&(_, n)| n == orig) {
                hits += 1;
            }
        }
        hits as f64 / sample.len() as f64
    };

    let naive = precision(Method::Naive, &mut rng);
    let heavy = precision(Method::Perturb(0.40), &mut rng);
    let random_guess = 5.0 / g.num_nodes() as f64;
    assert!(
        naive > 0.5,
        "naive de-anonymization precision {naive} too low"
    );
    assert!(
        naive >= heavy,
        "heavier anonymization must not help: {naive} < {heavy}"
    );
    assert!(naive > random_guess * 10.0);
}

/// Hausdorff-NED separates graph families even on sampled node sets.
#[test]
fn hausdorff_separates_families() {
    let road1 = Dataset::CaRoad.generate(0.0002, 15);
    let road2 = Dataset::PaRoad.generate(0.0004, 15);
    let social = Dataset::Pgp.generate(0.025, 15);
    let nodes = |g: &Graph| -> Vec<NodeId> { (0..120.min(g.num_nodes()) as u32).collect() };
    let rr = hausdorff_between(&road1, &nodes(&road1), &road2, &nodes(&road2), 3);
    let rs = hausdorff_between(&road1, &nodes(&road1), &social, &nodes(&social), 3);
    assert!(
        rr < rs,
        "roads vs roads ({rr}) should beat roads vs social ({rs})"
    );
}

/// Relabeling invariance — a reproduction finding, tested precisely.
///
/// On an *acyclic* graph the BFS tree is unique, so the k-adjacent tree
/// is a true isomorphism invariant and NED between a node and its
/// relabeled alias is exactly 0. On cyclic graphs a BFS node can have
/// several same-level parent candidates and the paper's "deterministic"
/// extraction resolves the tie by storage order — which relabeling
/// changes. The distance to one's own alias is therefore *usually* but
/// not *always* 0 (this is also why naive-anonymization precision in
/// Figure 10 sits below 1.0).
#[test]
fn ned_invariance_under_relabeling() {
    let mut rng = SmallRng::seed_from_u64(17);

    // Exact invariance on a forest (BFS tree unique).
    let mut builder = GraphBuilder::undirected(64);
    for v in 1..64u32 {
        builder.add_edge(v, (v - 1) / 2); // perfect binary tree
    }
    let forest = builder.build();
    let anon = anonymize(&forest, Method::Naive, &mut rng);
    for orig in [0u32, 5, 13, 63] {
        let d = ned(&forest, orig, &anon.graph, anon.mapping[orig as usize], 5);
        assert_eq!(d, 0, "acyclic graphs admit exact re-identification");
    }

    // On a cyclic graph parent tie-breaking perturbs the extracted trees,
    // so alias distances are small-but-nonzero; what de-anonymization
    // relies on is that the alias stays far closer than unrelated nodes.
    let g = Dataset::Gnutella.generate(0.005, 16);
    let anon = anonymize(&g, Method::Naive, &mut rng);
    let n = g.num_nodes() as u32;
    let sample: Vec<u32> = (0..40u32).map(|i| i * 7 % n).collect();
    let mut alias_sum = 0u64;
    let mut other_sum = 0u64;
    let mut alias_wins = 0usize;
    for &orig in &sample {
        let alias = ned(&g, orig, &anon.graph, anon.mapping[orig as usize], 4);
        let decoy = ned(
            &g,
            orig,
            &anon.graph,
            anon.mapping[((orig + n / 2) % n) as usize],
            4,
        );
        alias_sum += alias;
        other_sum += decoy;
        if alias <= decoy {
            alias_wins += 1;
        }
    }
    assert!(
        alias_wins * 10 >= sample.len() * 8,
        "alias should be at least as close as a decoy in >=80% of cases, got {alias_wins}/{}",
        sample.len()
    );
    assert!(
        alias_sum * 2 < other_sum,
        "aliases ({alias_sum}) should average far closer than decoys ({other_sum})"
    );
}

/// Feature baseline wiring: precomputed ReFeX features power a full-scan
/// top-1 self-retrieval on an unmodified graph.
#[test]
fn feature_baseline_self_retrieval() {
    let g = Dataset::Pgp.generate(0.02, 18);
    let feats = RefexFeatures::compute(&g, 2);
    let mut correct = 0usize;
    let queries: Vec<NodeId> = (0..40u32).collect();
    for &q in &queries {
        let fq = feats.features(q);
        let best = g
            .nodes()
            .min_by(|&a, &b| {
                l1_distance(fq, feats.features(a))
                    .partial_cmp(&l1_distance(fq, feats.features(b)))
                    .unwrap()
                    .then(a.cmp(&b))
            })
            .unwrap();
        if best == q || l1_distance(fq, feats.features(best)) == 0.0 {
            correct += 1;
        }
    }
    assert_eq!(correct, queries.len());
}

/// Graph I/O round trip through a real dataset stand-in.
#[test]
fn io_round_trip_dataset() {
    let g = Dataset::Gnutella.generate(0.005, 19);
    let mut path = std::env::temp_dir();
    path.push(format!("ned_e2e_{}.edges", std::process::id()));
    ned::graph::io::write_edge_list(&g, &path).unwrap();
    let h = ned::graph::io::read_edge_list(&path, false).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(g.num_edges(), h.num_edges());
    // NED between corresponding nodes of the two copies must be zero.
    for v in [0u32, 10, 100] {
        assert_eq!(ned(&g, v, &h, v, 4), 0);
    }
}
