//! Integration tests pinning the paper's stated theorems and claims,
//! beyond the per-crate unit tests.

use ned::core::reference::exhaustive_ted_star;
use ned::core::weighted::{ted_upper_bound, weighted_ted_star, LevelWeights};
use ned::core::{ted_star, ted_star_report, TedStarConfig};
use ned::graph::exact_ged::{exact_ged_rooted, SmallGraph};
use ned::prelude::*;
use ned::tree::exact::exact_ted;
use ned::tree::generate::random_bounded_depth_tree;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn tree_as_graph(t: &Tree) -> SmallGraph {
    let edges: Vec<(u32, u32)> = t
        .nodes()
        .skip(1)
        .map(|v| (t.parent(v).unwrap(), v))
        .collect();
    SmallGraph::from_edges(t.len(), &edges)
}

/// Equation 18: `GED(t1, t2) <= 2 * TED*(t1, t2)` on trees.
#[test]
fn ged_bounded_by_twice_ted_star() {
    let mut rng = SmallRng::seed_from_u64(1);
    for _ in 0..60 {
        let a = random_bounded_depth_tree(9, 3, &mut rng);
        let b = random_bounded_depth_tree(9, 3, &mut rng);
        let ts = ted_star(&a, &b);
        let ged =
            exact_ged_rooted(&tree_as_graph(&a), &tree_as_graph(&b)).expect("trees within GED cap");
        assert!(
            ged <= 2 * ts,
            "Equation 18 violated: GED {ged} > 2 * TED* {ts}"
        );
    }
}

/// Lemma 7: the weighted scheme `w¹=1, w²=4i` upper-bounds classic TED.
#[test]
fn weighted_scheme_upper_bounds_ted() {
    let mut rng = SmallRng::seed_from_u64(2);
    for _ in 0..60 {
        let a = random_bounded_depth_tree(10, 4, &mut rng);
        let b = random_bounded_depth_tree(10, 3, &mut rng);
        let ted = exact_ted(&a, &b).expect("within cap") as f64;
        assert!(ted_upper_bound(&a, &b) + 1e-9 >= ted);
    }
}

/// Lemma 6: weighted TED* remains a metric for positive weights.
#[test]
fn weighted_ted_star_triangle() {
    let mut rng = SmallRng::seed_from_u64(3);
    let w = |i: usize| LevelWeights {
        pad: 1.0 + i as f64 * 0.25,
        mov: 2.0,
    };
    for _ in 0..40 {
        let a = random_bounded_depth_tree(12, 3, &mut rng);
        let b = random_bounded_depth_tree(12, 3, &mut rng);
        let c = random_bounded_depth_tree(12, 3, &mut rng);
        let ab = weighted_ted_star(&a, &b, w);
        let bc = weighted_ted_star(&b, &c, w);
        let ac = weighted_ted_star(&a, &c, w);
        assert!(ac <= ab + bc + 1e-9);
        assert!((weighted_ted_star(&a, &b, w) - weighted_ted_star(&b, &a, w)).abs() < 1e-9);
    }
}

/// Section 13.1 / Figure 6: TED* tracks exact TED closely on the paper's
/// distribution — k-adjacent trees of road networks. (On adversarial
/// random trees the two measures diverge more; the paper's ">50% exactly
/// equal, average relative error 0.04-0.14" claims are specifically about
/// road neighborhoods.)
#[test]
fn ted_star_close_to_exact_ted() {
    use ned::datasets::Dataset;
    use ned::graph::bfs::TreeExtractor;
    let g1 = Dataset::CaRoad.generate(0.0005, 4);
    let g2 = Dataset::PaRoad.generate(0.0005, 4);
    let mut ex1 = TreeExtractor::new(&g1);
    let mut ex2 = TreeExtractor::new(&g2);
    let mut equal = 0usize;
    let mut total = 0usize;
    let mut rel_errors = Vec::new();
    for i in 0..400u32 {
        let u = (i * 131) % g1.num_nodes() as u32;
        let v = (i * 197) % g2.num_nodes() as u32;
        let (a, b) = (ex1.extract(u, 3), ex2.extract(v, 3));
        if a.len() > 12 || b.len() > 12 {
            continue;
        }
        let ts = ted_star(&a, &b);
        let ted = exact_ted(&a, &b).expect("within cap");
        total += 1;
        if ts == ted {
            equal += 1;
        }
        if ted > 0 {
            rel_errors.push(ts.abs_diff(ted) as f64 / ted as f64);
        }
    }
    assert!(total >= 50, "need a meaningful sample, got {total}");
    assert!(
        equal * 2 >= total,
        "equivalency ratio {equal}/{total} below the paper's >50%"
    );
    let avg = rel_errors.iter().sum::<f64>() / rel_errors.len().max(1) as f64;
    assert!(
        avg <= 0.25,
        "average relative error {avg} far above the paper's 0.04-0.14"
    );
}

/// Definition 3 cross-check: Algorithm 1 never undercuts the true
/// minimum number of edit operations.
#[test]
fn algorithm1_never_below_definition() {
    let mut rng = SmallRng::seed_from_u64(5);
    for _ in 0..60 {
        let a = random_bounded_depth_tree(6, 3, &mut rng);
        let b = random_bounded_depth_tree(6, 3, &mut rng);
        let reference = exhaustive_ted_star(&a, &b, 7).expect("tiny search");
        assert!(ted_star(&a, &b) >= reference);
    }
}

/// Section 9: TED* is polynomial — it must comfortably handle the
/// 500-node trees of Figure 7a (where exact TED is hopeless).
#[test]
fn ted_star_handles_large_trees() {
    let mut rng = SmallRng::seed_from_u64(6);
    let a = random_bounded_depth_tree(500, 3, &mut rng);
    let b = random_bounded_depth_tree(500, 3, &mut rng);
    let start = std::time::Instant::now();
    let d = ted_star(&a, &b);
    let elapsed = start.elapsed();
    assert!(d > 0);
    assert!(
        elapsed < std::time::Duration::from_secs(5),
        "took {elapsed:?} — polynomial claim violated in spirit"
    );
}

/// The report decomposition always reconciles with the distance, and the
/// root level never pads (P1 = 0, as used in the metric proof).
#[test]
fn report_structure_invariants() {
    let mut rng = SmallRng::seed_from_u64(7);
    for _ in 0..40 {
        let a = random_bounded_depth_tree(30, 5, &mut rng);
        let b = random_bounded_depth_tree(22, 4, &mut rng);
        let r = ted_star_report(&a, &b, &TedStarConfig::standard());
        assert_eq!(r.distance, r.total_padding() + r.total_matching());
        assert_eq!(r.levels[0].padding, 0);
        // bottom level never has matching cost (M_k = 0, Equation 6)
        assert_eq!(r.levels.last().unwrap().matching, 0);
    }
}

/// Reproduction finding #1, pinned: the *directional* Algorithm 1 (as
/// printed in the paper) is tie-break sensitive — there exist tree pairs
/// where sweeping (a, b) and (b, a) yields different values, because the
/// re-canonization step propagates whichever optimal bipartite matching
/// the Hungarian algorithm happened to return. This is exactly why the
/// public `ted_star` canonicalizes and orders its inputs.
#[test]
fn directional_algorithm_is_tie_break_sensitive() {
    use ned::core::{ted_star_directional, TedStarConfig};
    let mut rng = SmallRng::seed_from_u64(55);
    let cfg = TedStarConfig::standard();
    let mut asymmetries = 0usize;
    for _ in 0..300 {
        let a = random_bounded_depth_tree(14, 4, &mut rng);
        let b = random_bounded_depth_tree(14, 4, &mut rng);
        let ab = ted_star_directional(&a, &b, &cfg).distance;
        let ba = ted_star_directional(&b, &a, &cfg).distance;
        if ab != ba {
            asymmetries += 1;
        }
        // The canonicalized public API must be exactly symmetric anyway.
        assert_eq!(ted_star(&a, &b), ted_star(&b, &a));
    }
    assert!(
        asymmetries > 0,
        "expected to observe directional asymmetries; if this starts \
         failing, the finding in DESIGN.md §7.1 needs re-examination"
    );
}

/// Directed NED (Equation 2) is a metric: sum of two metrics.
#[test]
fn directed_ned_triangle() {
    let mut rng = SmallRng::seed_from_u64(8);
    let mk = |rng: &mut SmallRng| {
        let und = ned::graph::generators::erdos_renyi_gnm(30, 60, rng);
        let edges: Vec<(u32, u32)> = und.edges().collect();
        Graph::directed_from_edges(30, &edges)
    };
    let g1 = mk(&mut rng);
    let g2 = mk(&mut rng);
    let g3 = mk(&mut rng);
    for k in 2..4 {
        let ab = ned::core::ned_directed(&g1, 0, &g2, 0, k);
        let bc = ned::core::ned_directed(&g2, 0, &g3, 0, k);
        let ac = ned::core::ned_directed(&g1, 0, &g3, 0, k);
        assert!(ac <= ab + bc);
        assert_eq!(ab, ned::core::ned_directed(&g2, 0, &g1, 0, k));
        assert_eq!(ned::core::ned_directed(&g1, 0, &g1, 0, k), 0);
    }
}
