//! Property tests for the substrate data structures (trees, graphs,
//! serialization, indexes) — everything below the metric itself.

use ned::graph::{bfs, Direction};
use ned::index::{linear_knn, FnMetric, VpTree};
use ned::prelude::*;
use ned::tree::{ahu, serialize};
use proptest::prelude::*;

fn tree_strategy(max_nodes: usize) -> impl Strategy<Value = Tree> {
    (1..max_nodes).prop_flat_map(|n| {
        proptest::collection::vec(any::<u32>(), n.saturating_sub(1)).prop_map(move |vals| {
            let mut parents = vec![0u32];
            for (i, v) in vals.iter().enumerate() {
                parents.push((*v as usize % (i + 1)) as u32);
            }
            Tree::from_parents(&parents).expect("valid parent array")
        })
    })
}

fn graph_strategy(max_nodes: usize, max_edges: usize) -> impl Strategy<Value = Graph> {
    (2..max_nodes).prop_flat_map(move |n| {
        proptest::collection::vec((any::<u32>(), any::<u32>()), 0..max_edges).prop_map(
            move |pairs| {
                let edges: Vec<(u32, u32)> = pairs
                    .into_iter()
                    .map(|(a, b)| (a % n as u32, b % n as u32))
                    .collect();
                Graph::undirected_from_edges(n, &edges)
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn tree_invariants_always_hold(t in tree_strategy(40)) {
        prop_assert!(t.check_invariants().is_ok());
        // every node's depth is its parent's depth + 1
        for v in t.nodes().skip(1) {
            let p = t.parent(v).unwrap();
            prop_assert_eq!(t.depth(v), t.depth(p) + 1);
        }
        // level sizes sum to n
        let total: usize = (0..t.num_levels()).map(|l| t.level_size(l)).sum();
        prop_assert_eq!(total, t.len());
    }

    #[test]
    fn serialization_round_trips(t in tree_strategy(30)) {
        let text = serialize::print(&t);
        let back = serialize::parse(&text).expect("printed trees parse");
        prop_assert!(ahu::isomorphic(&t, &back));
        // byte length is exactly 2n
        prop_assert_eq!(text.len(), 2 * t.len());
    }

    #[test]
    fn canonical_form_fixpoint_and_invariance(t in tree_strategy(30)) {
        let c = ahu::canonical_form(&t);
        prop_assert!(ahu::isomorphic(&t, &c));
        prop_assert_eq!(&ahu::canonical_form(&c), &c);
        prop_assert_eq!(ahu::canonical_code(&c), ahu::canonical_code(&t));
    }

    #[test]
    fn truncate_respects_monotone_structure(t in tree_strategy(40), k in 1usize..6) {
        let cut = t.truncate(k);
        prop_assert!(cut.num_levels() <= k);
        prop_assert!(cut.len() <= t.len());
        for l in 0..cut.num_levels() {
            prop_assert_eq!(cut.level_size(l), t.level_size(l));
        }
    }

    #[test]
    fn subtree_profiles_are_consistent(t in tree_strategy(30)) {
        let profiles = t.subtree_profiles();
        let sizes = t.subtree_sizes();
        for v in t.nodes() {
            let total: u32 = profiles[v as usize].iter().sum();
            prop_assert_eq!(total, sizes[v as usize]);
            prop_assert_eq!(profiles[v as usize][0], 1);
        }
    }

    #[test]
    fn bfs_levels_partition_reachable_nodes(g in graph_strategy(30, 60)) {
        let levels = bfs::bfs_levels(&g, 0, 32, Direction::Outgoing);
        let mut seen: Vec<u32> = levels.iter().flatten().copied().collect();
        seen.sort_unstable();
        let mut dedup = seen.clone();
        dedup.dedup();
        prop_assert_eq!(&seen, &dedup, "no node may appear twice");
        // levels agree with single-source distances
        let dist = bfs::distances(&g, 0, Direction::Outgoing);
        for (l, level) in levels.iter().enumerate() {
            for &v in level {
                prop_assert_eq!(dist[v as usize] as usize, l);
            }
        }
    }

    #[test]
    fn khop_subgraph_is_induced(g in graph_strategy(24, 50), hops in 0usize..3) {
        let (sub, root, mapping) = bfs::khop_subgraph(&g, 0, hops, Direction::Outgoing);
        prop_assert_eq!(root, 0);
        prop_assert_eq!(mapping[0], 0);
        // every subgraph edge exists in the original
        for (a, b) in sub.edges() {
            prop_assert!(g.has_edge(mapping[a as usize], mapping[b as usize]));
        }
        // and every original edge between retained nodes is in the subgraph
        let retained: std::collections::HashMap<u32, u32> = mapping
            .iter()
            .enumerate()
            .map(|(new, &old)| (old, new as u32))
            .collect();
        for (a, b) in g.edges() {
            if let (Some(&na), Some(&nb)) = (retained.get(&a), retained.get(&b)) {
                prop_assert!(sub.has_edge(na, nb));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn vptree_exact_over_ned_signatures(g in graph_strategy(40, 80), seed in any::<u64>()) {
        use rand::SeedableRng;
        let nodes: Vec<NodeId> = g.nodes().collect();
        let sigs = signatures(&g, &nodes, 3);
        let metric = FnMetric(|a: &NodeSignature, b: &NodeSignature| a.distance(b) as f64);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let tree = VpTree::build(sigs.clone(), &metric, &mut rng);
        let q = &sigs[0];
        for k in [1usize, 4] {
            let via_tree = tree.knn(&metric, q, k);
            let via_scan = linear_knn(tree.items(), &metric, q, k);
            for (a, b) in via_tree.iter().zip(&via_scan) {
                prop_assert_eq!(a.distance, b.distance);
            }
        }
    }
}
