//! Property-based verification of the paper's central claim: TED\* (and
//! therefore NED) satisfies all four metric axioms (Section 7).

use ned::core::{ted_star, PreparedTree};
use ned::prelude::*;
use ned::tree::ahu;
use proptest::prelude::*;

/// Random unordered rooted tree with up to `max_nodes` nodes.
fn tree_strategy(max_nodes: usize) -> impl Strategy<Value = Tree> {
    (1..max_nodes).prop_flat_map(|n| {
        proptest::collection::vec(any::<u32>(), n.saturating_sub(1)).prop_map(move |vals| {
            let mut parents = vec![0u32];
            for (i, v) in vals.iter().enumerate() {
                parents.push((*v as usize % (i + 1)) as u32);
            }
            Tree::from_parents(&parents).expect("valid parent array")
        })
    })
}

/// Random undirected graph as (node count, edge list).
fn graph_strategy(max_nodes: usize, max_edges: usize) -> impl Strategy<Value = Graph> {
    (2..max_nodes).prop_flat_map(move |n| {
        proptest::collection::vec((any::<u32>(), any::<u32>()), 1..max_edges).prop_map(
            move |pairs| {
                let edges: Vec<(u32, u32)> = pairs
                    .into_iter()
                    .map(|(a, b)| (a % n as u32, b % n as u32))
                    .collect();
                Graph::undirected_from_edges(n, &edges)
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ted_star_non_negative_and_symmetric(a in tree_strategy(24), b in tree_strategy(24)) {
        let ab = ted_star(&a, &b);
        let ba = ted_star(&b, &a);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn ted_star_identity_both_directions(a in tree_strategy(20), b in tree_strategy(20)) {
        let d = ted_star(&a, &b);
        prop_assert_eq!(d == 0, ahu::isomorphic(&a, &b),
            "distance 0 must coincide with isomorphism (d = {})", d);
    }

    #[test]
    fn ted_star_self_distance_zero(a in tree_strategy(32)) {
        prop_assert_eq!(ted_star(&a, &a), 0);
    }

    #[test]
    fn ted_star_triangle_inequality(
        a in tree_strategy(16),
        b in tree_strategy(16),
        c in tree_strategy(16),
    ) {
        let ab = ted_star(&a, &b);
        let bc = ted_star(&b, &c);
        let ac = ted_star(&a, &c);
        prop_assert!(ac <= ab + bc, "triangle violated: {} > {} + {}", ac, ab, bc);
    }

    #[test]
    fn ted_star_invariant_under_relayout(a in tree_strategy(20), b in tree_strategy(20)) {
        // Distances must be functions of the isomorphism classes: rebuilding
        // either tree in canonical layout cannot change the result.
        let a2 = ahu::canonical_form(&a);
        let b2 = ahu::canonical_form(&b);
        prop_assert_eq!(ted_star(&a, &b), ted_star(&a2, &b2));
        prop_assert_eq!(ted_star(&a, &b), ted_star(&a2, &b));
    }

    #[test]
    fn ted_star_bounds(a in tree_strategy(24), b in tree_strategy(24)) {
        let d = ted_star(&a, &b);
        let k = a.num_levels().max(b.num_levels());
        let lower: u64 = (0..k)
            .map(|l| a.level_size(l).abs_diff(b.level_size(l)) as u64)
            .sum();
        let upper = (a.len() + b.len() - 2) as u64;
        prop_assert!(d >= lower, "{} < level-size lower bound {}", d, lower);
        prop_assert!(d <= upper, "{} > delete-all/insert-all bound {}", d, upper);
    }

    #[test]
    fn prepared_tree_agrees(a in tree_strategy(20), b in tree_strategy(20)) {
        let (pa, pb) = (PreparedTree::new(&a), PreparedTree::new(&b));
        prop_assert_eq!(ned::core::ted_star_prepared(&pa, &pb), ted_star(&a, &b));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Fuzz TED* with its own edit operations: applying `j` random ops
    /// yields a tree at true distance <= j, so Algorithm 1's value should
    /// stay at or below j on the vast majority of cases (its rare
    /// overshoot is the tie-break phenomenon documented on
    /// `PreparedTree`). Here we assert the hard upper bound j plus the
    /// worst overshoot we have ever observed (one extra op pair).
    #[test]
    fn mutated_trees_stay_within_op_budget(
        a in tree_strategy(16),
        ops in 0usize..6,
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let (b, applied) = ned::tree::generate::mutate(&a, ops, &mut rng);
        let d = ted_star(&a, &b);
        prop_assert!(
            d <= applied.len() as u64 + 2,
            "distance {} far exceeds the {}-op mutation", d, applied.len()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ned_metric_axioms_on_random_graphs(
        g1 in graph_strategy(30, 60),
        g2 in graph_strategy(30, 60),
        g3 in graph_strategy(30, 60),
        k in 1usize..5,
    ) {
        let u = 0u32;
        let v = (g2.num_nodes() - 1) as u32;
        let w = (g3.num_nodes() / 2) as u32;
        let ab = ned(&g1, u, &g2, v, k);
        prop_assert_eq!(ab, ned(&g2, v, &g1, u, k), "symmetry");
        prop_assert_eq!(ned(&g1, u, &g1, u, k), 0, "identity");
        let bc = ned(&g2, v, &g3, w, k);
        let ac = ned(&g1, u, &g3, w, k);
        prop_assert!(ac <= ab + bc, "triangle: {} > {} + {}", ac, ab, bc);
    }

    #[test]
    fn ned_monotone_in_k(g1 in graph_strategy(30, 60), g2 in graph_strategy(30, 60)) {
        let profile = ned_profile(&g1, 0, &g2, 0, 6);
        for w in profile.windows(2) {
            prop_assert!(w[0] <= w[1], "Lemma 5 violated: {:?}", profile);
        }
    }
}
