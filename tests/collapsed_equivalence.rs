//! Property tests pinning the tentpole guarantee: the duplicate-collapsed,
//! interned TED\*/NED hot path computes **exactly** the same distances as
//! the original dense formulation, on arbitrary tree pairs and through the
//! full NED pipeline.

use ned::core::{ted_star_with, TedStarConfig};
use ned::matching::{collapsed_hungarian, hungarian, CostMatrix};
use ned::prelude::*;
use proptest::prelude::*;

fn tree_strategy(max_nodes: usize) -> impl Strategy<Value = Tree> {
    (1..max_nodes).prop_flat_map(|n| {
        proptest::collection::vec(any::<u32>(), n.saturating_sub(1)).prop_map(move |vals| {
            let mut parents = vec![0u32];
            for (i, v) in vals.iter().enumerate() {
                parents.push((*v as usize % (i + 1)) as u32);
            }
            Tree::from_parents(&parents).expect("valid parent array")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The headline property: collapsed+interned `ted_star` (the default)
    /// equals the dense Hungarian implementation bit-for-bit.
    #[test]
    fn interned_ted_star_equals_dense_implementation(
        a in tree_strategy(40),
        b in tree_strategy(40),
    ) {
        let fast = ted_star_with(&a, &b, &TedStarConfig::standard());
        let dense = ted_star_with(&a, &b, &TedStarConfig::dense());
        prop_assert_eq!(fast, dense);
    }

    /// The same equality through the public prepared-signature path used
    /// by stores and batch workloads.
    #[test]
    fn prepared_distance_equals_dense(a in tree_strategy(28), b in tree_strategy(28)) {
        use ned::core::PreparedTree;
        let (pa, pb) = (PreparedTree::new(&a), PreparedTree::new(&b));
        let via_prepared = ned::core::ted_star_prepared(&pa, &pb);
        prop_assert_eq!(via_prepared, ted_star_with(&a, &b, &TedStarConfig::dense()));
        // and the class lower bound never overshoots it
        prop_assert!(ned::core::ted_star_class_lower_bound(&pa, &pb) <= via_prepared);
    }

    /// Distances stay a function of the isomorphism classes under the new
    /// engine (relayout invariance, as for the seed implementation).
    #[test]
    fn interned_path_is_relayout_invariant(a in tree_strategy(24), b in tree_strategy(24)) {
        use ned::tree::ahu;
        let (a2, b2) = (ahu::canonical_form(&a), ahu::canonical_form(&b));
        prop_assert_eq!(ted_star(&a, &b), ted_star(&a2, &b2));
        prop_assert_eq!(ted_star(&a, &b), ted_star(&b, &a));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `collapsed_hungarian` == `hungarian` cost on random matrices with
    /// heavy injected row/column duplication (the workspace-level twin of
    /// the crate-local test, exercising the re-exported API).
    #[test]
    fn collapsed_cost_equals_hungarian(
        vals in proptest::collection::vec(0i64..80, 64),
        dup_rows in proptest::collection::vec((0usize..8, 0usize..8), 0..8),
        dup_cols in proptest::collection::vec((0usize..8, 0usize..8), 0..8),
    ) {
        let n = 8;
        let mut m = CostMatrix::zeros(n);
        for r in 0..n {
            for c in 0..n {
                m.set(r, c, vals[r * n + c]);
            }
        }
        for &(src, dst) in &dup_rows {
            for c in 0..n {
                let v = m.get(src, c);
                m.set(dst, c, v);
            }
        }
        for &(src, dst) in &dup_cols {
            for r in 0..n {
                let v = m.get(r, src);
                m.set(r, dst, v);
            }
        }
        prop_assert_eq!(collapsed_hungarian(&m).cost, hungarian(&m).cost);
    }
}
