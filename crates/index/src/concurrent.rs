//! **Concurrent serving layer**: lock-light concurrent reads over a
//! [`SignatureIndex`] that a single writer keeps updating.
//!
//! [`ConcurrentNedIndex`] splits the index into two handles:
//!
//! * [`IndexReader`] (cheaply cloneable, one per serving thread) answers
//!   knn/range queries against an immutable **snapshot** — an
//!   `Arc<SignatureIndex>` whose forest internals are themselves
//!   `Arc`-shared (see [`crate::forest`]'s *Cloning is snapshotting*).
//!   Grabbing the snapshot is a read-lock held for one `Arc` clone
//!   (nanoseconds, never across a distance computation), after which the
//!   query runs entirely on private immutable data: readers never block
//!   each other, never block the writer, and reuse the full PR 3 machinery
//!   — interned-class lower bounds, the budgeted early-abandoning TED\*
//!   kernel, and the shared pruning radius — unchanged.
//! * [`IndexWriter`] (exactly one; not `Clone`) applies
//!   insert/remove/replace **batches** to its private master copy and
//!   then *publishes* the new state atomically: one cheap
//!   [`SignatureIndex::clone`] (reference bumps plus copy-on-write
//!   bookkeeping) swapped in under a momentary write lock, bumping the
//!   epoch.
//!
//! # Why snapshot publication is write-side-only
//!
//! Readers never install, repair, or upgrade snapshots — publication is
//! the writer's exclusive job, and that asymmetry is what keeps the whole
//! scheme simple and correct:
//!
//! * **No read-side retry loops.** With a single publisher, "install the
//!   new state" is a plain store of an `Arc` — no CAS loop, no ABA
//!   hazard, no helping protocol. A reader's entire synchronization
//!   footprint is one brief read-lock.
//! * **Monotonic epochs for free.** Snapshots are published in the order
//!   the writer created them, so the epoch counter advances monotonically
//!   and every reader observes a *prefix-consistent* history: whatever
//!   snapshot it holds is exactly some state the writer published, never
//!   a torn mix of two (pinned by the linearizability-style test in
//!   `tests/concurrent.rs`).
//! * **Reclamation is just `Arc`.** The last reader holding an old
//!   snapshot frees it on drop; no epoch-based reclamation, hazard
//!   pointers, or quiescence tracking. The price — a brief spike while an
//!   old snapshot lingers — is bounded by the slowest in-flight query.
//! * **Compaction stays off the read path.** Merges and compactions run
//!   on the writer's private master copy; readers keep answering from
//!   their snapshots while a compaction is in flight and only ever see
//!   its *result*, published like any other batch. A compaction can delay
//!   the next write batch, never a read.
//!
//! # What a write batch actually costs
//!
//! Publication itself is `O(shards)` reference bumps, but sharing the
//! copy-on-write internals with the snapshot re-arms them: the *first*
//! mutation of the next batch pays one copy of the live-id bookkeeping
//! map (shallow, `O(live ids)`) and of the mutable buffer (deep, up to
//! `threshold` signatures) — never of the frozen shards, which hold the
//! bulk of the data. That cost is per **batch**, not per operation, so a
//! writer that applies each op as its own batch (the TCP server's
//! per-command writes) pays it per op, while a batched writer amortizes
//! it across the whole batch — batching writes is how throughput scales
//! on the write side, and exactly the shape the TCP batch protocol and
//! the load generator drive.

use crate::forest::ForestHit;
use crate::signatures::SignatureIndex;
use ned_core::wal::WalWriter;
use ned_core::NodeSignature;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

/// One operation of a write batch.
#[derive(Debug, Clone)]
pub enum WriteOp {
    /// Index a signature under the next automatically assigned id.
    Insert(NodeSignature),
    /// Put a signature at an explicit id, replacing any live occupant.
    Replace(u64, NodeSignature),
    /// Drop a signature by id.
    Remove(u64),
}

/// What each [`WriteOp`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOutcome {
    /// The id assigned to an [`WriteOp::Insert`].
    Inserted(u64),
    /// A [`WriteOp::Replace`] landed; `fresh` is `true` when the id was
    /// not previously live.
    Replaced {
        /// The explicit id written.
        id: u64,
        /// Whether the id was newly created rather than overwritten.
        fresh: bool,
    },
    /// A [`WriteOp::Remove`] ran; `existed` is `false` for unknown ids.
    Removed {
        /// The id removed.
        id: u64,
        /// Whether a live signature was actually dropped.
        existed: bool,
    },
}

/// The state shared between the writer and every reader handle.
struct Shared {
    /// The currently published snapshot **paired with its epoch**, so a
    /// reader can learn both in one lock acquisition — the pairing is
    /// what lets a query reply carry exactly the epoch of the snapshot
    /// that answered it (the shard-fleet consistency tag). The lock is
    /// held for one `Arc` clone (readers) or one pointer store (writer)
    /// — never across any distance computation.
    current: RwLock<(Arc<SignatureIndex>, u64)>,
    /// Mirror of the published epoch for lock-free reads; `0` is the
    /// initial state.
    epoch: AtomicU64,
}

impl Shared {
    /// Current snapshot. Lock poisoning is unrecoverable only for state
    /// that can be half-written; an `Arc` store cannot be, so a poisoned
    /// lock (a reader or writer panicked elsewhere) still yields the last
    /// fully published snapshot.
    fn snapshot(&self) -> Arc<SignatureIndex> {
        self.snapshot_with_epoch().0
    }

    fn snapshot_with_epoch(&self) -> (Arc<SignatureIndex>, u64) {
        let guard = self
            .current
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        (Arc::clone(&guard.0), guard.1)
    }

    fn publish(&self, snap: Arc<SignatureIndex>) {
        let mut guard = self
            .current
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let next = self.epoch.load(Ordering::Acquire) + 1;
        *guard = (snap, next);
        drop(guard);
        self.epoch.store(next, Ordering::Release);
    }
}

/// A read handle: clone one per serving thread. See the
/// [module docs](self).
#[derive(Clone)]
pub struct IndexReader {
    shared: Arc<Shared>,
}

impl IndexReader {
    /// The currently published snapshot — immutable, self-consistent, and
    /// valid for as long as the `Arc` is held. Grab one snapshot per
    /// request when answering multiple questions that must agree.
    pub fn snapshot(&self) -> Arc<SignatureIndex> {
        self.shared.snapshot()
    }

    /// The currently published snapshot **and the epoch it published
    /// as**, read atomically under one lock acquisition. Use this when a
    /// reply must be tagged with the version that answered it (the shard
    /// servers do): pairing `snapshot()` with a separate `epoch()` call
    /// can tear across a concurrent publication.
    pub fn snapshot_with_epoch(&self) -> (Arc<SignatureIndex>, u64) {
        self.shared.snapshot_with_epoch()
    }

    /// How many publications have happened (`0` = initial state).
    pub fn epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::Acquire)
    }

    /// Live signatures in the current snapshot.
    pub fn len(&self) -> usize {
        self.snapshot().len()
    }

    /// `true` when the current snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.snapshot().is_empty()
    }

    /// The extraction parameter of the indexed signatures.
    pub fn k(&self) -> usize {
        self.snapshot().k()
    }

    /// The `top` nearest indexed signatures in the current snapshot.
    ///
    /// `threads` is the *intra*-query fan-out (as in
    /// [`SignatureIndex::query`]); concurrent serving gets its
    /// parallelism from many reader threads, so servers should pass `1`
    /// here and let requests, not shards, occupy the cores.
    pub fn knn(&self, sig: &NodeSignature, top: usize, threads: usize) -> Vec<ForestHit> {
        self.snapshot().query(sig, top, threads)
    }

    /// Every indexed signature within `radius` in the current snapshot.
    pub fn range(&self, sig: &NodeSignature, radius: u64, threads: usize) -> Vec<ForestHit> {
        self.snapshot().range(sig, radius, threads)
    }
}

/// The write handle: exactly one exists per [`ConcurrentNedIndex`] (or
/// per [`ConcurrentNedIndex::split`] pair), which is what makes
/// publication a plain store. See the [module docs](self).
pub struct IndexWriter {
    master: SignatureIndex,
    shared: Arc<Shared>,
    /// When attached, every batch is journaled here (encoded by
    /// `crate::durable`) after it is applied to the master but **before**
    /// it is published — so no reader (and no client acknowledgement) can
    /// ever observe a state the log does not reproduce.
    wal: Option<WalWriter>,
}

impl IndexWriter {
    /// A reader handle over the same shared state.
    pub fn reader(&self) -> IndexReader {
        IndexReader {
            shared: Arc::clone(&self.shared),
        }
    }

    /// The epoch of the currently published state.
    pub fn epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::Acquire)
    }

    /// Attaches a write-ahead log; every subsequent batch is journaled
    /// before publication. Attach *after* any recovery replay (replaying
    /// through an attached log would re-journal the records being
    /// replayed).
    pub fn attach_wal(&mut self, wal: WalWriter) {
        self.wal = Some(wal);
    }

    /// The attached write-ahead log, if any.
    pub fn wal(&self) -> Option<&WalWriter> {
        self.wal.as_ref()
    }

    /// Mutable access to the attached log (checkpointing resets it).
    pub fn wal_mut(&mut self) -> Option<&mut WalWriter> {
        self.wal.as_mut()
    }

    /// Detaches and returns the log, leaving the writer ephemeral.
    pub fn detach_wal(&mut self) -> Option<WalWriter> {
        self.wal.take()
    }

    /// The writer's current (already published) state. Between batches
    /// the master and the published snapshot are identical; use this for
    /// persistence (`save`) and stats without racing readers.
    pub fn index(&self) -> &SignatureIndex {
        &self.master
    }

    /// Applies a whole batch to the master copy, then publishes the new
    /// state **once**, atomically. Readers see either the pre-batch or
    /// the post-batch state, never anything in between.
    ///
    /// With a WAL attached this panics if the journal append fails; use
    /// [`IndexWriter::try_apply`] where an I/O failure must be a
    /// recoverable error (the server's write path does).
    pub fn apply(&mut self, batch: impl IntoIterator<Item = WriteOp>) -> Vec<WriteOutcome> {
        self.try_apply(batch)
            .expect("write-ahead log append failed")
    }

    /// [`IndexWriter::apply`] with journal failures surfaced as errors.
    ///
    /// The batch is **all-or-nothing against the published state**, even
    /// under failure:
    ///
    /// * a panic inside an op (a poisoned signature, a forest bug) rolls
    ///   the master back to the published snapshot and re-raises — the
    ///   batch never happened, and the writer stays usable if the panic
    ///   is caught downstream (the server isolates it per connection);
    /// * a WAL append error rolls back the same way and returns `Err` —
    ///   an unjournaled batch is never published, so every state a reader
    ///   (or an acknowledged client) can see is reproducible from
    ///   snapshot + log.
    pub fn try_apply(
        &mut self,
        batch: impl IntoIterator<Item = WriteOp>,
    ) -> std::io::Result<Vec<WriteOutcome>> {
        let ops: Vec<WriteOp> = batch.into_iter().collect();
        // Encode before the ops are consumed; the record carries the
        // epoch this batch will publish as.
        let record = self
            .wal
            .as_ref()
            .map(|_| crate::durable::encode_batch(self.epoch() + 1, &ops));
        let master = &mut self.master;
        let applied = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            ops.into_iter()
                .map(|op| match op {
                    WriteOp::Insert(sig) => WriteOutcome::Inserted(master.insert(sig)),
                    WriteOp::Replace(id, sig) => WriteOutcome::Replaced {
                        id,
                        fresh: master.insert_at(id, sig),
                    },
                    WriteOp::Remove(id) => WriteOutcome::Removed {
                        id,
                        existed: master.remove(id),
                    },
                })
                .collect::<Vec<WriteOutcome>>()
        }));
        let outcomes = match applied {
            Ok(outcomes) => outcomes,
            Err(panic) => {
                // Roll the possibly half-applied master back to the
                // published (pre-batch) state, then let the panic travel.
                self.master = (*self.shared.snapshot()).clone();
                std::panic::resume_unwind(panic);
            }
        };
        if let (Some(wal), Some(record)) = (self.wal.as_mut(), record) {
            if let Err(e) = wal.append(&record) {
                self.master = (*self.shared.snapshot()).clone();
                return Err(e);
            }
        }
        self.publish();
        Ok(outcomes)
    }

    /// Switches the sketch routing mode of the served index and publishes
    /// the change. A serving knob, not data: it is not journaled, but the
    /// next checkpoint snapshot persists it like any other index state.
    pub fn set_sketch_mode(&mut self, mode: crate::sketch::SketchMode) {
        self.master.set_sketch_mode(mode);
        self.publish();
    }

    /// Single-op convenience: [`WriteOp::Insert`] as its own batch.
    pub fn insert(&mut self, sig: NodeSignature) -> u64 {
        match self.apply([WriteOp::Insert(sig)]).pop() {
            Some(WriteOutcome::Inserted(id)) => id,
            _ => unreachable!("insert batch returns Inserted"),
        }
    }

    /// Single-op convenience: [`WriteOp::Replace`] as its own batch.
    pub fn replace(&mut self, id: u64, sig: NodeSignature) -> bool {
        match self.apply([WriteOp::Replace(id, sig)]).pop() {
            Some(WriteOutcome::Replaced { fresh, .. }) => fresh,
            _ => unreachable!("replace batch returns Replaced"),
        }
    }

    /// Single-op convenience: [`WriteOp::Remove`] as its own batch.
    pub fn remove(&mut self, id: u64) -> bool {
        match self.apply([WriteOp::Remove(id)]).pop() {
            Some(WriteOutcome::Removed { existed, .. }) => existed,
            _ => unreachable!("remove batch returns Removed"),
        }
    }

    fn publish(&mut self) {
        // The clone is cheap by construction: shard Arcs bump, the
        // copy-on-write buffer/bookkeeping share until the next mutation.
        self.shared.publish(Arc::new(self.master.clone()));
    }
}

/// The facade bundling the single writer (behind a mutex, so any serving
/// thread can submit a batch) with freely cloneable readers. For
/// single-threaded ownership of the writer, use
/// [`ConcurrentNedIndex::split`] instead and let the type system enforce
/// the single-writer discipline with no lock at all.
pub struct ConcurrentNedIndex {
    writer: Mutex<IndexWriter>,
    reader: IndexReader,
}

impl ConcurrentNedIndex {
    /// Wraps `index` for concurrent serving, publishing it as epoch-0.
    pub fn new(index: SignatureIndex) -> Self {
        let (writer, reader) = Self::split(index);
        ConcurrentNedIndex {
            writer: Mutex::new(writer),
            reader,
        }
    }

    /// Splits `index` into the one writer and a first reader.
    pub fn split(index: SignatureIndex) -> (IndexWriter, IndexReader) {
        Self::split_at(index, 0)
    }

    /// [`ConcurrentNedIndex::split`] with the epoch counter starting at
    /// `epoch` — recovery uses this so a restored index resumes the epoch
    /// sequence it crashed at instead of restarting from 0.
    pub fn split_at(index: SignatureIndex, epoch: u64) -> (IndexWriter, IndexReader) {
        let shared = Arc::new(Shared {
            current: RwLock::new((Arc::new(index.clone()), epoch)),
            epoch: AtomicU64::new(epoch),
        });
        let writer = IndexWriter {
            master: index,
            shared: Arc::clone(&shared),
            wal: None,
        };
        let reader = IndexReader { shared };
        (writer, reader)
    }

    /// Wraps an existing writer (typically one that just replayed a WAL
    /// and had the log re-attached) into the serving facade.
    pub fn from_writer(writer: IndexWriter) -> Self {
        let reader = writer.reader();
        ConcurrentNedIndex {
            writer: Mutex::new(writer),
            reader,
        }
    }

    /// A fresh read handle (cheap; clone one per thread).
    pub fn reader(&self) -> IndexReader {
        self.reader.clone()
    }

    /// Exclusive access to the writer. Serializes write batches across
    /// serving threads; readers are unaffected while this is held.
    pub fn writer(&self) -> MutexGuard<'_, IndexWriter> {
        self.writer
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ned_graph::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn small_index() -> (SignatureIndex, Vec<NodeSignature>) {
        let mut rng = SmallRng::seed_from_u64(5);
        let g = generators::barabasi_albert(120, 2, &mut rng);
        let nodes: Vec<u32> = g.nodes().collect();
        let mut index = SignatureIndex::new(2, 16, 9);
        index.insert_graph(&g, &nodes);
        let probes = ned_core::signatures(&g, &[0, 17, 63], 2);
        (index, probes)
    }

    #[test]
    fn readers_see_published_batches_snapshots_stay_frozen() {
        let (index, probes) = small_index();
        let (mut writer, reader) = ConcurrentNedIndex::split(index);
        assert_eq!(reader.epoch(), 0);
        assert_eq!(reader.len(), 120);

        let frozen = reader.snapshot();
        let before = frozen.query(&probes[0], 5, 1);

        let outcomes = writer.apply([
            WriteOp::Insert(probes[1].clone()),
            WriteOp::Remove(3),
            WriteOp::Remove(99_999),
            WriteOp::Replace(7, probes[2].clone()),
        ]);
        assert_eq!(outcomes[0], WriteOutcome::Inserted(120));
        assert_eq!(
            outcomes[1],
            WriteOutcome::Removed {
                id: 3,
                existed: true
            }
        );
        assert_eq!(
            outcomes[2],
            WriteOutcome::Removed {
                id: 99_999,
                existed: false
            }
        );
        assert_eq!(
            outcomes[3],
            WriteOutcome::Replaced {
                id: 7,
                fresh: false
            }
        );

        // One batch = one publication.
        assert_eq!(reader.epoch(), 1);
        assert_eq!(reader.len(), 120); // +1 insert, -1 remove
                                       // The old snapshot is untouched by the batch.
        assert_eq!(frozen.len(), 120);
        assert_eq!(frozen.query(&probes[0], 5, 1), before);
        assert!(frozen.get(3).is_some());
        // The new snapshot reflects every op, exactly like a scan.
        let snap = reader.snapshot();
        assert!(snap.get(3).is_none());
        assert_eq!(
            reader.knn(&probes[0], 5, 1),
            snap.scan(&probes[0], 5),
            "published snapshot must stay forest-exact"
        );
    }

    #[test]
    fn facade_serializes_writers_and_hands_out_readers() {
        let (index, probes) = small_index();
        let service = ConcurrentNedIndex::new(index);
        let r1 = service.reader();
        let r2 = service.reader();
        let id = service.writer().insert(probes[0].clone());
        assert_eq!(id, 120);
        assert_eq!(r1.epoch(), 1);
        assert_eq!(r2.len(), 121);
        assert_eq!(r1.knn(&probes[0], 1, 1)[0].distance, 0.0);
        assert!(service.writer().remove(id));
        assert_eq!(r2.epoch(), 2);
    }

    #[test]
    fn writer_master_matches_published_state_between_batches() {
        let (index, probes) = small_index();
        let (mut writer, reader) = ConcurrentNedIndex::split(index);
        writer.insert(probes[0].clone());
        writer.remove(0);
        let snap = reader.snapshot();
        assert_eq!(writer.index().len(), snap.len());
        assert_eq!(writer.index().scan(&probes[1], 7), snap.scan(&probes[1], 7));
    }
}
