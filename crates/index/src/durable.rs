//! **Crash-safe durability**: WAL-journaled writes, periodic
//! checkpoints, and exact recovery for the concurrent index.
//!
//! [`DurableIndex`] wraps [`ConcurrentNedIndex`] with two files:
//!
//! * the **index file** (`NEDIDX01`, version 2) — the newest checkpoint,
//!   stamped with the publication epoch it captures;
//! * the **write-ahead log** (`NEDWAL1`, [`ned_core::wal`]) — one record
//!   per published batch, carrying the epoch the batch published as.
//!
//! Every batch is journaled before it is published (see
//! [`IndexWriter::try_apply`]), so the pair reproduces every state a
//! client was ever acknowledged at. [`DurableIndex::recover`] replays the
//! log on top of the checkpoint:
//!
//! * records whose epoch is `<=` the checkpoint epoch are **skipped** —
//!   this is what makes recovery idempotent (replaying twice, or
//!   replaying a log against a newer snapshot than the one it started
//!   from, changes nothing);
//! * remaining epochs must continue the sequence contiguously; a gap
//!   means the snapshot/log pair cannot reproduce the acknowledged
//!   history, and recovery refuses rather than resurrecting a stale
//!   state;
//! * a torn tail (crash mid-append) is truncated at the last valid
//!   checksum, exactly the [`ned_core::wal`] semantics.
//!
//! Checkpointing saves the snapshot durably (temp file + fsync + rename +
//! directory fsync) **before** resetting the log; a crash between the two
//! leaves the old log alongside the new snapshot, which the skip rule
//! absorbs at the next recovery.
//!
//! Replay is graph-free by construction: a [`GraphDelta`] batch is
//! journaled as the [`WriteOp`] batch the maintainer materialized it
//! into, so recovery never needs the tracked graph, only the log.
//!
//! [`GraphDelta`]: ned_graph::delta::GraphDelta

use crate::concurrent::{ConcurrentNedIndex, IndexReader, IndexWriter, WriteOp};
use crate::signatures::{LoadError, SignatureIndex};
use ned_core::store::CodecError;
use ned_core::wal::{self, FsyncPolicy, WalWriter, WAL_HEADER_LEN};
use ned_core::{NodeSignature, PreparedTree};
use ned_tree::Tree;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::MutexGuard;

/// Encodes one published batch as a WAL record payload:
/// `epoch u64 | op count u32 | op*`, where an op is a tag byte (1 =
/// insert, 2 = replace, 3 = remove) followed by its id and/or signature
/// (node id + BFS parent array). Integrity is the record layer's job —
/// the payload carries no checksum of its own.
pub fn encode_batch(epoch: u64, ops: &[WriteOp]) -> Vec<u8> {
    fn put_sig(buf: &mut Vec<u8>, sig: &NodeSignature) {
        buf.extend_from_slice(&sig.node.to_le_bytes());
        let tree = sig.tree();
        buf.extend_from_slice(&(tree.len() as u32).to_le_bytes());
        for v in 1..tree.len() as u32 {
            buf.extend_from_slice(&tree.parent(v).expect("non-root").to_le_bytes());
        }
    }
    let mut buf = Vec::new();
    buf.extend_from_slice(&epoch.to_le_bytes());
    buf.extend_from_slice(&(ops.len() as u32).to_le_bytes());
    for op in ops {
        match op {
            WriteOp::Insert(sig) => {
                buf.push(1);
                put_sig(&mut buf, sig);
            }
            WriteOp::Replace(id, sig) => {
                buf.push(2);
                buf.extend_from_slice(&id.to_le_bytes());
                put_sig(&mut buf, sig);
            }
            WriteOp::Remove(id) => {
                buf.push(3);
                buf.extend_from_slice(&id.to_le_bytes());
            }
        }
    }
    buf
}

/// Reads just the epoch tag off an [`encode_batch`] record without
/// decoding the ops — how the WAL-suffix server filters a log down to
/// the records a catching-up peer still needs.
pub fn record_epoch(bytes: &[u8]) -> Option<u64> {
    Some(u64::from_le_bytes(bytes.get(..8)?.try_into().ok()?))
}

/// Decodes [`encode_batch`] output back into `(epoch, ops)`. Signatures
/// are re-prepared from their parent arrays; preparation canonicalizes,
/// so replayed signatures are distance-identical to the originals (the
/// same argument the snapshot codec rests on).
pub fn decode_batch(bytes: &[u8]) -> Result<(u64, Vec<WriteOp>), CodecError> {
    struct Cur<'a> {
        buf: &'a [u8],
        pos: usize,
    }
    impl<'a> Cur<'a> {
        fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
            if self.pos + n > self.buf.len() {
                return Err(CodecError::Truncated {
                    needed: n,
                    available: self.buf.len() - self.pos,
                });
            }
            let out = &self.buf[self.pos..self.pos + n];
            self.pos += n;
            Ok(out)
        }
        fn u8(&mut self) -> Result<u8, CodecError> {
            Ok(self.take(1)?[0])
        }
        fn u32(&mut self) -> Result<u32, CodecError> {
            Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
        }
        fn u64(&mut self) -> Result<u64, CodecError> {
            Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
        }
        fn sig(&mut self) -> Result<NodeSignature, CodecError> {
            let node = self.u32()?;
            let n = self.u32()? as usize;
            if n == 0 {
                return Err(CodecError::Malformed("empty signature tree".into()));
            }
            let mut parents = Vec::with_capacity(n);
            parents.push(0u32);
            for _ in 1..n {
                parents.push(self.u32()?);
            }
            let tree = Tree::from_parents(&parents)
                .map_err(|e| CodecError::Malformed(format!("bad signature tree: {e}")))?;
            Ok(NodeSignature::from_prepared(node, PreparedTree::new(&tree)))
        }
    }

    let mut c = Cur { buf: bytes, pos: 0 };
    let epoch = c.u64()?;
    let count = c.u32()? as usize;
    // Every op is at least one tag byte; forged counts must not
    // preallocate past the bytes present.
    if count > bytes.len() {
        return Err(CodecError::Malformed(format!(
            "op count {count} exceeds record size {}",
            bytes.len()
        )));
    }
    let mut ops = Vec::with_capacity(count);
    for _ in 0..count {
        ops.push(match c.u8()? {
            1 => WriteOp::Insert(c.sig()?),
            2 => {
                let id = c.u64()?;
                WriteOp::Replace(id, c.sig()?)
            }
            3 => WriteOp::Remove(c.u64()?),
            tag => return Err(CodecError::Malformed(format!("unknown op tag {tag}"))),
        });
    }
    if c.pos != bytes.len() {
        return Err(CodecError::Malformed(format!(
            "{} trailing bytes after the last op",
            bytes.len() - c.pos
        )));
    }
    Ok((epoch, ops))
}

/// Knobs for [`DurableIndex::recover`].
#[derive(Debug, Clone, Copy)]
pub struct DurableOptions {
    /// WAL fsync policy (see [`FsyncPolicy`]).
    pub fsync: FsyncPolicy,
    /// Checkpoint after this many journaled batches; `0` disables
    /// automatic checkpointing (explicit [`DurableIndex::checkpoint`]
    /// calls still work).
    pub checkpoint_every: u64,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            fsync: FsyncPolicy::PerBatch,
            checkpoint_every: 64,
        }
    }
}

/// What [`DurableIndex::recover`] found and did.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Epoch the loaded snapshot was checkpointed at.
    pub snapshot_epoch: u64,
    /// WAL records applied on top of the snapshot.
    pub replayed: usize,
    /// WAL records skipped because the snapshot already contained them.
    pub skipped: usize,
    /// Whether a torn/corrupt log tail was truncated.
    pub torn_tail: bool,
    /// Whether the log file had to be (re)created from scratch.
    pub log_created: bool,
    /// The epoch the index resumed serving at.
    pub recovered_epoch: u64,
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "snapshot at epoch {}, replayed {} record(s) ({} skipped){}{} -> epoch {}",
            self.snapshot_epoch,
            self.replayed,
            self.skipped,
            if self.torn_tail {
                ", truncated torn tail"
            } else {
                ""
            },
            if self.log_created {
                ", created fresh log"
            } else {
                ""
            },
            self.recovered_epoch
        )
    }
}

/// Errors from [`DurableIndex::recover`].
#[derive(Debug)]
pub enum DurableError {
    /// A file could not be read or written.
    Io(io::Error),
    /// The snapshot or a log record could not be decoded.
    Codec(CodecError),
    /// The snapshot/log pair cannot reproduce the acknowledged history
    /// (e.g. an epoch gap between the snapshot and the first log record).
    Corrupt(String),
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Io(e) => write!(f, "{e}"),
            DurableError::Codec(e) => write!(f, "{e}"),
            DurableError::Corrupt(why) => write!(f, "unrecoverable state: {why}"),
        }
    }
}

impl std::error::Error for DurableError {}

impl From<io::Error> for DurableError {
    fn from(e: io::Error) -> Self {
        DurableError::Io(e)
    }
}

impl From<CodecError> for DurableError {
    fn from(e: CodecError) -> Self {
        DurableError::Codec(e)
    }
}

impl From<LoadError> for DurableError {
    fn from(e: LoadError) -> Self {
        match e {
            LoadError::Io(e) => DurableError::Io(e),
            LoadError::Codec(e) => DurableError::Codec(e),
        }
    }
}

impl From<DurableError> for ned_core::proto::ServerError {
    /// Maps storage failures onto the wire taxonomy: I/O trouble is
    /// retryable ([`ned_core::proto::ServerError::Io`]); undecodable or
    /// inconsistent persistent state is fatal
    /// ([`ned_core::proto::ServerError::Corrupt`]).
    fn from(e: DurableError) -> Self {
        match e {
            DurableError::Io(e) => ned_core::proto::ServerError::Io(e.to_string()),
            DurableError::Codec(e) => ned_core::proto::ServerError::Corrupt(e.to_string()),
            DurableError::Corrupt(why) => {
                ned_core::proto::ServerError::Corrupt(format!("unrecoverable state: {why}"))
            }
        }
    }
}

/// A [`ConcurrentNedIndex`] whose acknowledged state survives crashes.
/// See the [module docs](self) for the recovery contract.
pub struct DurableIndex {
    index: ConcurrentNedIndex,
    index_path: Option<PathBuf>,
    checkpoint_every: u64,
}

impl DurableIndex {
    /// Wraps `index` with **no** durability (no WAL, no checkpoints) —
    /// the in-memory serving mode. [`DurableIndex::checkpoint`] becomes a
    /// no-op returning `Ok(None)`.
    pub fn ephemeral(index: SignatureIndex) -> Self {
        DurableIndex {
            index: ConcurrentNedIndex::new(index),
            index_path: None,
            checkpoint_every: 0,
        }
    }

    /// Loads the newest checkpoint from `index_path`, replays `wal_path`
    /// on top of it, truncates any torn tail, and returns the recovered
    /// serving handle with the log attached for journaling. A missing log
    /// file is created fresh (the first boot of a durable index).
    ///
    /// When automatic checkpointing is enabled and records were replayed,
    /// recovery ends with a checkpoint, so repeated crash/restart cycles
    /// cannot grow the log without bound.
    pub fn recover(
        index_path: &Path,
        wal_path: &Path,
        opts: DurableOptions,
    ) -> Result<(Self, RecoveryReport), DurableError> {
        let (snapshot, snapshot_epoch) = SignatureIndex::load_with_epoch(index_path)?;
        let (mut writer, _reader) = ConcurrentNedIndex::split_at(snapshot, snapshot_epoch);

        let mut report = RecoveryReport {
            snapshot_epoch,
            replayed: 0,
            skipped: 0,
            torn_tail: false,
            log_created: false,
            recovered_epoch: snapshot_epoch,
        };

        let wal_writer = match wal::replay_file(wal_path)? {
            None => {
                report.log_created = true;
                WalWriter::create(wal_path, snapshot_epoch, opts.fsync)?
            }
            Some(Err(e)) => return Err(DurableError::Codec(e)),
            Some(Ok(replay)) if !replay.header_ok => {
                // Crash during log creation: nothing was ever journaled.
                report.torn_tail = replay.torn_tail;
                report.log_created = true;
                WalWriter::create(wal_path, snapshot_epoch, opts.fsync)?
            }
            Some(Ok(replay)) => {
                report.torn_tail = replay.torn_tail;
                for record in &replay.records {
                    let (epoch, ops) = decode_batch(record)?;
                    if epoch <= snapshot_epoch {
                        report.skipped += 1;
                        continue;
                    }
                    let expected = writer.epoch() + 1;
                    if epoch != expected {
                        return Err(DurableError::Corrupt(format!(
                            "log record at epoch {epoch} but the recovered state is at \
                             epoch {} (snapshot epoch {snapshot_epoch}); the pair cannot \
                             reproduce the acknowledged history",
                            writer.epoch()
                        )));
                    }
                    writer.apply(ops);
                    report.replayed += 1;
                }
                debug_assert!(replay.valid_bytes >= WAL_HEADER_LEN as u64);
                WalWriter::open_appending(wal_path, replay.base, replay.valid_bytes, opts.fsync)?
            }
        };
        writer.attach_wal(wal_writer);
        report.recovered_epoch = writer.epoch();

        let durable = DurableIndex {
            index: ConcurrentNedIndex::from_writer(writer),
            index_path: Some(index_path.to_path_buf()),
            checkpoint_every: opts.checkpoint_every,
        };
        if report.replayed > 0 && opts.checkpoint_every > 0 {
            durable.checkpoint()?;
        }
        Ok((durable, report))
    }

    /// A fresh read handle (cheap; clone one per thread).
    pub fn reader(&self) -> IndexReader {
        self.index.reader()
    }

    /// Exclusive access to the writer (see [`ConcurrentNedIndex::writer`]).
    pub fn writer(&self) -> MutexGuard<'_, IndexWriter> {
        self.index.writer()
    }

    /// The underlying concurrent facade.
    pub fn concurrent(&self) -> &ConcurrentNedIndex {
        &self.index
    }

    /// `true` when a WAL and checkpoint path are attached.
    pub fn is_durable(&self) -> bool {
        self.index_path.is_some()
    }

    /// The checkpoint file path, when durable.
    pub fn index_path(&self) -> Option<&Path> {
        self.index_path.as_deref()
    }

    /// The automatic checkpoint cadence in batches (`0` = manual only).
    pub fn checkpoint_every(&self) -> u64 {
        self.checkpoint_every
    }

    /// Saves the current state as a version-2 snapshot and resets the
    /// log. Returns the checkpointed epoch, or `Ok(None)` for an
    /// ephemeral index. The snapshot is durable on disk *before* the log
    /// is reset; a crash in between is absorbed by the skip rule.
    pub fn checkpoint(&self) -> io::Result<Option<u64>> {
        let Some(path) = self.index_path.as_deref() else {
            return Ok(None);
        };
        let mut writer = self.index.writer();
        checkpoint_locked(&mut writer, path).map(Some)
    }

    /// [`DurableIndex::checkpoint`] only when at least
    /// [`DurableIndex::checkpoint_every`] batches were journaled since
    /// the last one. The server's write path calls this after every
    /// acknowledged batch.
    pub fn checkpoint_if_due(&self) -> io::Result<Option<u64>> {
        let Some(path) = self.index_path.as_deref() else {
            return Ok(None);
        };
        if self.checkpoint_every == 0 {
            return Ok(None);
        }
        let mut writer = self.index.writer();
        let due = writer
            .wal()
            .is_some_and(|w| w.appended() >= self.checkpoint_every);
        if !due {
            return Ok(None);
        }
        checkpoint_locked(&mut writer, path).map(Some)
    }

    /// One human-readable line for the `stats` command.
    pub fn describe(&self) -> String {
        match &self.index_path {
            None => "durability: none (in-memory only)".into(),
            Some(path) => {
                let writer = self.index.writer();
                let (policy, pending, wal_path) = match writer.wal() {
                    Some(w) => (
                        w.policy().to_string(),
                        w.appended(),
                        w.path().display().to_string(),
                    ),
                    None => ("detached".into(), 0, "-".into()),
                };
                format!(
                    "durability: checkpoint {} (every {} batches), wal {} (fsync {}, {} batch(es) since checkpoint)",
                    path.display(),
                    self.checkpoint_every,
                    wal_path,
                    policy,
                    pending,
                )
            }
        }
    }
}

/// The checkpoint sequence with the writer lock already held: durable
/// snapshot first, log reset second.
fn checkpoint_locked(writer: &mut IndexWriter, index_path: &Path) -> io::Result<u64> {
    let epoch = writer.epoch();
    writer.index().save_at_epoch(epoch, index_path)?;
    if let Some(wal) = writer.wal_mut() {
        wal.reset(epoch)?;
    }
    Ok(epoch)
}
