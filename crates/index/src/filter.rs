//! Filter-and-refine k-NN: use a cheap lower bound to skip exact
//! distance computations during a linear scan.
//!
//! NED ships a natural filter — the level-size L1 distance
//! (`ned_core::ted_star_lower_bound`) lower-bounds TED\* and costs `O(k)`
//! instead of `O(k·n³)`. Scanning candidates in ascending lower-bound
//! order and stopping once the bound exceeds the current k-th best
//! distance gives exact results with far fewer refinements — the classic
//! filter-and-refine pipeline from metric similarity search.

use crate::{Hit, Metric};

/// A lower bound paired with the exact metric it bounds:
/// `lower(a, b) <= exact(a, b)` must hold for every pair, and the lower
/// bound should be much cheaper.
pub trait BoundedMetric<T: ?Sized>: Metric<T> {
    /// The cheap lower bound.
    fn lower_bound(&self, a: &T, b: &T) -> f64;

    /// Budgeted exact distance: `Some(d)` **iff** the exact distance `d`
    /// is `<= budget`, `None` otherwise.
    ///
    /// The default falls back to a full [`Metric::distance`] call and
    /// filters — correct for any metric, with no early-abandoning
    /// benefit. Metrics whose exact computation can abandon mid-flight
    /// (TED\* sweeps a budget through its level loop and its
    /// transportation solves) override this;
    /// [`VpTree::search`](crate::VpTree::search) and the sharded forest
    /// then pass their current pruning radius as the budget of **every**
    /// exact call, so
    /// candidates destined for rejection stop paying the moment they are
    /// provably out.
    ///
    /// Implementations must keep `Some`-results bit-identical to
    /// [`Metric::distance`]: a returned distance is the exact distance.
    fn distance_within(&self, a: &T, b: &T, budget: f64) -> Option<f64> {
        let d = self.distance(a, b);
        (d <= budget).then_some(d)
    }
}

/// Wraps a pair of closures `(exact, lower_bound)` as a [`BoundedMetric`].
pub struct FnBoundedMetric<F, G>(pub F, pub G);

impl<T, F: Fn(&T, &T) -> f64, G: Fn(&T, &T) -> f64> Metric<T> for FnBoundedMetric<F, G> {
    fn distance(&self, a: &T, b: &T) -> f64 {
        (self.0)(a, b)
    }
}

impl<T, F: Fn(&T, &T) -> f64, G: Fn(&T, &T) -> f64> BoundedMetric<T> for FnBoundedMetric<F, G> {
    fn lower_bound(&self, a: &T, b: &T) -> f64 {
        (self.1)(a, b)
    }
}

/// Outcome of a filtered scan, including the work accounting the
/// benchmarks report.
#[derive(Debug, Clone)]
pub struct FilteredKnn {
    /// The `k` nearest hits, closest first (exact — identical to a full
    /// scan up to ties).
    pub hits: Vec<Hit>,
    /// How many exact distance computations were performed.
    pub refined: usize,
    /// How many candidates were pruned by the lower bound alone.
    pub filtered_out: usize,
}

/// Exact k-NN over `items` using lower-bound ordering to skip
/// refinements.
pub fn filter_refine_knn<T, M: BoundedMetric<T>>(
    items: &[T],
    metric: &M,
    query: &T,
    k: usize,
) -> FilteredKnn {
    if k == 0 || items.is_empty() {
        return FilteredKnn {
            hits: Vec::new(),
            refined: 0,
            filtered_out: items.len(),
        };
    }
    // Phase 1: lower bounds for everyone, ascending order.
    let mut bounded: Vec<(f64, usize)> = items
        .iter()
        .enumerate()
        .map(|(i, item)| (metric.lower_bound(query, item), i))
        .collect();
    bounded.sort_by(|a, b| a.partial_cmp(b).expect("NaN lower bound"));

    // Phase 2: refine in bound order; stop when the bound itself proves
    // no better candidate can follow.
    let mut hits: Vec<Hit> = Vec::with_capacity(k + 1);
    let mut refined = 0usize;
    let mut cutoff = usize::MAX;
    for (pos, &(lb, i)) in bounded.iter().enumerate() {
        let tau = if hits.len() < k {
            f64::INFINITY
        } else {
            hits.last().expect("non-empty").distance
        };
        if lb > tau {
            cutoff = pos;
            break;
        }
        let d = metric.distance(query, &items[i]);
        refined += 1;
        debug_assert!(d + 1e-9 >= lb, "lower bound {lb} exceeds distance {d}");
        if hits.len() < k || d < hits.last().expect("non-empty").distance {
            hits.push(Hit {
                index: i,
                distance: d,
            });
            hits.sort_by(|a, b| a.distance.partial_cmp(&b.distance).expect("NaN"));
            hits.truncate(k);
        }
    }
    let filtered_out = if cutoff == usize::MAX {
        0
    } else {
        bounded.len() - cutoff
    };
    FilteredKnn {
        hits,
        refined,
        filtered_out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear_knn;

    /// Points on a line; exact = |a-b|, lower bound = |a-b| rounded down
    /// to a multiple of 10 (a legitimate, loose bound).
    fn metric() -> FnBoundedMetric<impl Fn(&f64, &f64) -> f64, impl Fn(&f64, &f64) -> f64> {
        FnBoundedMetric(
            |a: &f64, b: &f64| (a - b).abs(),
            |a: &f64, b: &f64| ((a - b).abs() / 10.0).floor() * 10.0,
        )
    }

    #[test]
    fn matches_full_scan() {
        let items: Vec<f64> = (0..500).map(|i| (i * 7 % 499) as f64).collect();
        let m = metric();
        for q in [0.0f64, 250.5, 777.0] {
            for k in [1usize, 5, 20] {
                let filtered = filter_refine_knn(&items, &m, &q, k);
                let full = linear_knn(&items, &m, &q, k);
                assert_eq!(filtered.hits.len(), full.len());
                for (a, b) in filtered.hits.iter().zip(&full) {
                    assert_eq!(a.distance, b.distance, "q={q} k={k}");
                }
            }
        }
    }

    #[test]
    fn prunes_most_of_the_database() {
        let items: Vec<f64> = (0..2000).map(|i| i as f64).collect();
        let m = metric();
        let result = filter_refine_knn(&items, &m, &1000.0, 3);
        assert!(result.refined < 100, "refined {} of 2000", result.refined);
        assert!(result.filtered_out > 1800);
        assert_eq!(result.hits[0].distance, 0.0);
    }

    #[test]
    fn degenerate_inputs() {
        let m = metric();
        let empty: Vec<f64> = Vec::new();
        assert!(filter_refine_knn(&empty, &m, &1.0, 5).hits.is_empty());
        let items = vec![1.0, 2.0];
        assert!(filter_refine_knn(&items, &m, &1.0, 0).hits.is_empty());
        let all = filter_refine_knn(&items, &m, &1.0, 10);
        assert_eq!(all.hits.len(), 2);
        assert_eq!(all.refined, 2);
    }
}
