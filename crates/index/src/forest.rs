//! A **dynamic, sharded metric index**: the serving-layer counterpart of
//! the build-once [`VpTree`].
//!
//! [`ShardedVpForest`] maintains one small mutable buffer plus a run of
//! geometrically-sized immutable VP-trees (the classic *logarithmic
//! method* for turning a static structure dynamic):
//!
//! * **insert** appends to the buffer; when the buffer reaches its
//!   threshold it is frozen into a VP-tree, first swallowing every
//!   trailing shard no larger than itself — so at most `O(log n)` shards
//!   exist and each item is rebuilt `O(log n)` times amortized.
//! * **remove** deletes buffered items in place; sharded items (and
//!   sharded copies superseded by a replacing insert) just lose their
//!   live record — generation-tagged entries make stale copies invisible
//!   immediately, and once stale entries outnumber half the sharded
//!   items the forest compacts (one rebuild dropping every dead entry).
//! * **knn / range** fan out across the shards in parallel on the
//!   [`ned_core::batch`] pool, each shard pruning with the cheap
//!   [`BoundedMetric::lower_bound`] *before any exact distance call* and
//!   with a **shared atomic bound** (the best k-th distance any shard has
//!   proven so far), then merge through one bounded heap ordered by
//!   `(distance, id)` — results are exact and deterministic regardless of
//!   thread timing. Every exact call that does happen is issued through
//!   [`BoundedMetric::distance_within`] with the sharpest bound known at
//!   that moment as its budget, so a budget-aware metric (TED\* over node
//!   signatures) abandons hopeless candidates mid-computation instead of
//!   finishing a distance the collector would discard anyway.
//!
//! Items carry caller-assigned `u64` ids; every query reports hits as
//! [`ForestHit`] `(id, distance)` pairs, so results stay meaningful across
//! rebuilds, restarts, and process boundaries (see
//! [`crate::signatures::SignatureIndex`] for the persistent NED wiring).
//!
//! # Cloning is snapshotting
//!
//! Every bulky piece of the forest lives behind an [`Arc`]: the immutable
//! VP shards are `Arc<VpTree>`, and the mutable buffer plus the live/
//! retired bookkeeping maps are copy-on-write (`Arc::make_mut`). `Clone`
//! therefore costs `O(shards + 1)` reference bumps — no tree, item, or
//! map is copied — and the clone is a fully independent, immutable-until-
//! mutated snapshot of the forest at that instant. This is what the
//! [`crate::concurrent`] serving layer publishes to readers after every
//! write batch: mutating the original (or the clone) copies only the
//! pieces actually touched, and a frozen shard is never copied at all
//! unless a merge must physically reclaim entries out of a tree some
//! snapshot still references.

use crate::filter::BoundedMetric;
use crate::{Metric, SearchCollector, VpTree};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::hash_map::Entry as MapEntry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A forest query hit: the item's caller-assigned id and its exact
/// distance to the query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForestHit {
    /// Caller-assigned item id.
    pub id: u64,
    /// Exact distance to the query.
    pub distance: f64,
}

/// Where a live item currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    Buffer,
    Shard,
}

/// The authoritative record for a live id: where its current copy lives
/// and that copy's generation. Stale copies of the same id (superseded by
/// a replacement, or removed) may linger inside immutable shards until a
/// compaction; they carry an older generation and are filtered out of
/// every query, so updates never pay for an eager rebuild.
#[derive(Debug, Clone, Copy)]
struct LiveSlot {
    slot: Slot,
    gen: u32,
    /// `true` when stale (older-generation) physical copies of this id
    /// may still sit inside shards. Only then does a remove need to leave
    /// a [`ShardedVpForest::retired`] watermark behind — which is what
    /// keeps that map bounded by the compaction cycle instead of growing
    /// with every removed id.
    dirty: bool,
}

/// An indexed entry: caller id, the generation this copy was written at,
/// and the item itself. Id + generation ride along so shard rebuilds and
/// query hits never lose track of identity, and so stale copies are
/// distinguishable from the current one.
#[derive(Debug, Clone)]
struct Entry<T> {
    id: u64,
    gen: u32,
    item: T,
}

/// Adapts a caller metric over `T` to the `Entry<T>` pairs the shards
/// store (ids are invisible to the metric).
struct EntryMetric<'m, M>(&'m M);

impl<T, M: Metric<T>> Metric<Entry<T>> for EntryMetric<'_, M> {
    fn distance(&self, a: &Entry<T>, b: &Entry<T>) -> f64 {
        self.0.distance(&a.item, &b.item)
    }
}

impl<T, M: BoundedMetric<T>> BoundedMetric<Entry<T>> for EntryMetric<'_, M> {
    fn lower_bound(&self, a: &Entry<T>, b: &Entry<T>) -> f64 {
        self.0.lower_bound(&a.item, &b.item)
    }

    fn distance_within(&self, a: &Entry<T>, b: &Entry<T>, budget: f64) -> Option<f64> {
        // Forwarded so a budget-aware caller metric early-abandons inside
        // the shards too, not just in the buffer scan.
        self.0.distance_within(&a.item, &b.item, budget)
    }
}

/// Snapshot of a forest's internal shape (exposed for observability and
/// the CLI `index`/`serve` commands).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForestStats {
    /// Live items (buffer + shards − tombstones).
    pub len: usize,
    /// Items currently in the mutable buffer.
    pub buffer: usize,
    /// Physical size of each immutable shard, largest first.
    pub shard_sizes: Vec<usize>,
    /// Tombstoned (logically deleted, physically present) items.
    pub tombstones: usize,
}

/// Dynamic sharded VP forest. See the [module docs](self) for the design.
///
/// The metric is passed per call (the forest stores no closure state), and
/// must behave identically across calls — mixing metrics between `insert`
/// and `knn` silently breaks pruning, exactly as with [`VpTree`].
#[derive(Debug, Clone)]
pub struct ShardedVpForest<T> {
    /// Mutable tail, copy-on-write: snapshots share it until the next
    /// buffered mutation, which copies at most `threshold` entries.
    buffer: Arc<Vec<Entry<T>>>,
    /// Immutable shards, physical sizes strictly decreasing. Shared with
    /// every snapshot — a shard is only deep-copied when a merge must
    /// consume its entries while a snapshot still holds the `Arc`.
    shards: Vec<Arc<VpTree<Entry<T>>>>,
    /// Every live id, its location, and its current generation; removed
    /// ids are absent. Copy-on-write alongside the buffer.
    live: Arc<HashMap<u64, LiveSlot>>,
    /// Stale entries (removed or superseded) still physically present
    /// inside shards; drives the compaction threshold.
    dead: usize,
    /// Generation watermark for removed ids: the generation a re-insert
    /// must start at so it can never collide with a stale physical copy.
    /// Cleared by compaction (which drops every stale copy).
    retired: Arc<HashMap<u64, u32>>,
    /// Buffer size that triggers a freeze into a shard.
    threshold: usize,
    /// Seed for deterministic shard builds (combined with `epoch`).
    seed: u64,
    /// Bumped per shard build so successive builds draw distinct
    /// deterministic vantage sequences.
    epoch: u64,
}

impl<T: Clone> ShardedVpForest<T> {
    /// An empty forest. `threshold` is the buffer size that triggers a
    /// shard build (clamped to ≥ 1); `seed` fixes every future shard's
    /// vantage choices, making the whole structure deterministic.
    pub fn new(threshold: usize, seed: u64) -> Self {
        ShardedVpForest {
            buffer: Arc::new(Vec::new()),
            shards: Vec::new(),
            live: Arc::new(HashMap::new()),
            dead: 0,
            retired: Arc::new(HashMap::new()),
            threshold: threshold.max(1),
            seed,
            epoch: 0,
        }
    }

    /// Bulk constructor: one shard over `entries` (buffer if below the
    /// threshold). Ids must be unique; later duplicates replace earlier
    /// ones. This is the load path — results are identical to inserting
    /// one by one, only cheaper.
    pub fn from_entries<M>(threshold: usize, seed: u64, entries: Vec<(u64, T)>, metric: &M) -> Self
    where
        T: Send + Sync,
        M: Metric<T> + Sync,
    {
        Self::from_entries_balanced(threshold, seed, entries, metric, 1)
    }

    /// [`ShardedVpForest::from_entries`] with the one-shot build packed
    /// into up to `max_shards` **balanced** shards (near-equal sizes,
    /// strictly decreasing to respect the logarithmic-method invariant).
    /// Query results are identical to any other construction order; the
    /// point is build- and query-side parallelism: the shard VP-trees are
    /// built concurrently on the [`ned_core::batch`] pool here, and every
    /// later fan-out query can occupy `max_shards` cores instead of one.
    /// The result is deterministic regardless of thread timing (each
    /// shard's vantage rng is derived from `seed` and its position).
    pub fn from_entries_balanced<M>(
        threshold: usize,
        seed: u64,
        entries: Vec<(u64, T)>,
        metric: &M,
        max_shards: usize,
    ) -> Self
    where
        T: Send + Sync,
        M: Metric<T> + Sync,
    {
        let mut forest = Self::new(threshold, seed);
        let mut dedup: HashMap<u64, T> = HashMap::new();
        let mut order: Vec<u64> = Vec::with_capacity(entries.len());
        for (id, item) in entries {
            if dedup.insert(id, item).is_none() {
                order.push(id);
            }
        }
        let mut items: Vec<Entry<T>> = order
            .into_iter()
            .map(|id| Entry {
                id,
                gen: 0,
                item: dedup.remove(&id).expect("id collected above"),
            })
            .collect();
        let slot = if items.len() < forest.threshold {
            Slot::Buffer
        } else {
            Slot::Shard
        };
        let live = Arc::make_mut(&mut forest.live);
        for e in &items {
            live.insert(
                e.id,
                LiveSlot {
                    slot,
                    gen: 0,
                    dirty: false,
                },
            );
        }
        if slot == Slot::Buffer {
            forest.buffer = Arc::new(items);
        } else {
            // Largest shard first so the physical sizes decrease, as the
            // incremental merge machinery expects. Each chunk builds its
            // VP-tree independently (and concurrently) with the same
            // deterministic per-epoch rng the sequential path would use.
            let mut chunks: Vec<std::sync::Mutex<Option<Vec<Entry<T>>>>> = Vec::new();
            for size in balanced_shard_sizes(items.len(), max_shards) {
                let tail = items.split_off(size);
                chunks.push(std::sync::Mutex::new(Some(items)));
                items = tail;
            }
            debug_assert!(items.is_empty());
            let first_epoch = forest.epoch;
            let trees: Vec<VpTree<Entry<T>>> = ned_core::batch::par_map(chunks.len(), 0, |i| {
                let chunk = chunks[i]
                    .lock()
                    .expect("chunk slot poisoned")
                    .take()
                    .expect("each chunk is taken once");
                let mut rng = Self::shard_rng(seed, first_epoch + i as u64);
                VpTree::build(chunk, &EntryMetric(metric), &mut rng)
            });
            for tree in trees {
                forest.epoch += 1;
                forest.shards.push(Arc::new(tree));
            }
            debug_assert!(forest.shards.windows(2).all(|w| w[0].len() > w[1].len()));
        }
        forest
    }

    /// Live item count.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// `true` when no live items exist.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Whether `id` is currently indexed.
    pub fn contains(&self, id: u64) -> bool {
        self.live.contains_key(&id)
    }

    /// Internal shape, for observability.
    pub fn stats(&self) -> ForestStats {
        ForestStats {
            len: self.live.len(),
            buffer: self.buffer.len(),
            shard_sizes: self.shards.iter().map(|s| s.len()).collect(),
            tombstones: self.dead,
        }
    }

    /// Live `(id, item)` entries, buffer first, then shards largest-first
    /// (an arbitrary but deterministic order; sort by id for a canonical
    /// one).
    pub fn entries(&self) -> impl Iterator<Item = (u64, &T)> {
        self.buffer
            .iter()
            .map(|e| (e.id, &e.item))
            .chain(self.shards.iter().flat_map(move |s| {
                s.items()
                    .iter()
                    .filter(|e| is_current(&self.live, e.id, e.gen))
                    .map(|e| (e.id, &e.item))
            }))
    }

    /// Inserts `item` under `id`, replacing any live item with the same
    /// id. Returns `true` when the id was new. May trigger a shard build
    /// (amortized `O(log n)` rebuilds per item over any insert sequence);
    /// replacing a sharded item just bumps the id's generation — the old
    /// copy becomes invisible immediately and is physically reclaimed at
    /// the next merge or compaction.
    pub fn insert<M: Metric<T>>(&mut self, metric: &M, id: u64, item: T) -> bool {
        let (fresh, gen) = match Arc::make_mut(&mut self.live).entry(id) {
            MapEntry::Occupied(mut occupied) => {
                let prev = *occupied.get();
                match prev.slot {
                    Slot::Buffer => {
                        let buffer = Arc::make_mut(&mut self.buffer);
                        let pos = buffer
                            .iter()
                            .position(|e| e.id == id)
                            .expect("live buffer id present");
                        buffer.swap_remove(pos);
                    }
                    Slot::Shard => {
                        self.dead += 1;
                    }
                }
                let gen = prev.gen.wrapping_add(1);
                *occupied.get_mut() = LiveSlot {
                    slot: Slot::Buffer,
                    gen,
                    // A sharded predecessor stays behind as a stale copy.
                    dirty: prev.dirty || prev.slot == Slot::Shard,
                };
                (false, gen)
            }
            MapEntry::Vacant(vacant) => {
                // A retirement watermark means stale copies of this id
                // may still exist; resume above them.
                let (gen, dirty) = match Arc::make_mut(&mut self.retired).remove(&id) {
                    Some(g) => (g, true),
                    None => (0, false),
                };
                vacant.insert(LiveSlot {
                    slot: Slot::Buffer,
                    gen,
                    dirty,
                });
                (true, gen)
            }
        };
        Arc::make_mut(&mut self.buffer).push(Entry { id, gen, item });
        if self.buffer.len() >= self.threshold {
            self.flush(metric);
        }
        self.maybe_compact(metric);
        fresh
    }

    /// Removes `id`. Buffered items disappear immediately; sharded items
    /// become invisible at once (their live record is gone) and are
    /// physically dropped at the next merge or compaction, which triggers
    /// itself once stale entries outnumber half the sharded items.
    /// Returns `false` when the id was not live.
    pub fn remove<M: Metric<T>>(&mut self, metric: &M, id: u64) -> bool {
        match Arc::make_mut(&mut self.live).remove(&id) {
            None => false,
            Some(ls) => {
                if ls.dirty || ls.slot == Slot::Shard {
                    Arc::make_mut(&mut self.retired).insert(id, ls.gen.wrapping_add(1));
                }
                match ls.slot {
                    Slot::Buffer => {
                        let buffer = Arc::make_mut(&mut self.buffer);
                        let pos = buffer
                            .iter()
                            .position(|e| e.id == id)
                            .expect("live buffer id present");
                        buffer.swap_remove(pos);
                    }
                    Slot::Shard => {
                        self.dead += 1;
                    }
                }
                self.maybe_compact(metric);
                true
            }
        }
    }

    /// Freezes the buffer into a shard, first merging every trailing shard
    /// no larger than the accumulated batch (the logarithmic method).
    fn flush<M: Metric<T>>(&mut self, metric: &M) {
        let mut items = std::mem::take(Arc::make_mut(&mut self.buffer));
        {
            let live = Arc::make_mut(&mut self.live);
            for e in &items {
                live.get_mut(&e.id).expect("buffer entries are live").slot = Slot::Shard;
            }
        }
        while let Some(last) = self.shards.last() {
            if last.len() > items.len() {
                break;
            }
            let merged = self.shards.pop().expect("non-empty checked");
            let live = &self.live;
            let mut reclaimed = 0usize;
            items.extend(unshare_tree(merged).into_iter().filter(|e| {
                let keep = is_current(live, e.id, e.gen);
                reclaimed += usize::from(!keep);
                keep
            }));
            self.dead -= reclaimed;
        }
        self.push_shard(items, metric);
    }

    /// Compacts once stale entries outnumber half the sharded items — or
    /// once retirement watermarks do, which bounds the `retired` map by
    /// the same cycle (compaction clears it) even when merges reclaim the
    /// stale copies themselves first.
    fn maybe_compact<M: Metric<T>>(&mut self, metric: &M) {
        let sharded: usize = self.shards.iter().map(|s| s.len()).sum();
        if self.dead * 2 > sharded || self.retired.len() > sharded {
            self.compact(metric);
        }
    }

    /// Rebuilds everything (buffer excluded) into one shard, dropping
    /// every stale entry.
    fn compact<M: Metric<T>>(&mut self, metric: &M) {
        let mut items: Vec<Entry<T>> = Vec::new();
        let live = &self.live;
        for shard in self.shards.drain(..) {
            items.extend(
                unshare_tree(shard)
                    .into_iter()
                    .filter(|e| is_current(live, e.id, e.gen)),
            );
        }
        self.dead = 0;
        // Every stale copy is gone: retirement watermarks are moot and no
        // live id has shadows left.
        Arc::make_mut(&mut self.retired).clear();
        for ls in Arc::make_mut(&mut self.live).values_mut() {
            ls.dirty = false;
        }
        if !items.is_empty() {
            self.push_shard(items, metric);
        }
    }

    /// The deterministic vantage rng of the shard built at `epoch` —
    /// shared by the incremental path and the parallel one-shot build so
    /// both produce identical trees for identical inputs.
    fn shard_rng(seed: u64, epoch: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    fn push_shard<M: Metric<T>>(&mut self, items: Vec<Entry<T>>, metric: &M) {
        if items.is_empty() {
            return;
        }
        let mut rng = Self::shard_rng(self.seed, self.epoch);
        self.epoch += 1;
        let tree = VpTree::build(items, &EntryMetric(metric), &mut rng);
        self.shards.push(Arc::new(tree));
        // Merging in flush keeps sizes decreasing; compact leaves one.
        debug_assert!(self.shards.windows(2).all(|w| w[0].len() > w[1].len()));
    }

    /// The `k` nearest live items, sorted by `(distance, id)` — exact and
    /// fully deterministic (bit-identical to [`Self::scan_knn`]). Shards
    /// are searched in parallel on up to `threads` threads (`0` = all
    /// cores); every exact metric call is guarded by the lower bound and
    /// by the sharpest bound any shard has published so far.
    pub fn knn<M>(&self, metric: &M, query: &T, k: usize, threads: usize) -> Vec<ForestHit>
    where
        T: Send + Sync,
        M: BoundedMetric<T> + Sync,
    {
        if k == 0 || self.live.is_empty() {
            return Vec::new();
        }
        let shared = SharedBound::unbounded();
        // Buffer first: it is small, and whatever bound it proves
        // transfers to every shard search below. Every exact call takes
        // the current k-th-best distance as its abandonment budget.
        let mut merged = BoundedHeap::new(k, &shared);
        for e in self.buffer.iter() {
            let tau = merged.tau();
            if metric.lower_bound(query, &e.item) <= tau {
                if let Some(d) = metric.distance_within(query, &e.item, tau) {
                    merged.offer_id(e.id, d);
                }
            }
        }
        let q = query_entry(query);
        let per_shard: Vec<Vec<ForestHit>> =
            ned_core::batch::par_map(self.shards.len(), threads, |si| {
                let mut collector = ShardCollector {
                    heap: BoundedHeap::new(k, &shared),
                    items: self.shards[si].items(),
                    live: &self.live,
                };
                self.shards[si].search(&EntryMetric(metric), &q, &mut collector);
                collector.heap.into_sorted()
            });
        for hits in per_shard {
            for h in hits {
                merged.offer_id(h.id, h.distance);
            }
        }
        merged.into_sorted()
    }

    /// Every live item within `radius` of `query` (inclusive), sorted by
    /// `(distance, id)`.
    pub fn range<M>(&self, metric: &M, query: &T, radius: f64, threads: usize) -> Vec<ForestHit>
    where
        T: Send + Sync,
        M: BoundedMetric<T> + Sync,
    {
        let mut out: Vec<ForestHit> = self
            .buffer
            .iter()
            .filter(|e| metric.lower_bound(query, &e.item) <= radius)
            .filter_map(|e| {
                let d = metric.distance_within(query, &e.item, radius)?;
                Some(ForestHit {
                    id: e.id,
                    distance: d,
                })
            })
            .collect();
        let q = query_entry(query);
        let per_shard: Vec<Vec<ForestHit>> =
            ned_core::batch::par_map(self.shards.len(), threads, |si| {
                let mut collector = RangeCollector {
                    radius,
                    out: Vec::new(),
                    items: self.shards[si].items(),
                    live: &self.live,
                };
                self.shards[si].search(&EntryMetric(metric), &q, &mut collector);
                collector.out
            });
        out.extend(per_shard.into_iter().flatten());
        sort_hits(&mut out);
        out
    }

    /// Full-scan baseline: exact distance to every live item, no bounds,
    /// no index structure. The forest's query results are defined to match
    /// this exactly.
    pub fn scan_knn<M: Metric<T>>(&self, metric: &M, query: &T, k: usize) -> Vec<ForestHit> {
        let mut hits: Vec<ForestHit> = self
            .entries()
            .map(|(id, item)| ForestHit {
                id,
                distance: metric.distance(query, item),
            })
            .collect();
        sort_hits(&mut hits);
        hits.truncate(k);
        hits
    }
}

/// Splits `n` items into at most `max_shards` near-equal, **strictly
/// decreasing**, positive sizes summing to `n` (largest first). Strict
/// decrease keeps the logarithmic method's size invariant; near-equality
/// is what balances build and query fan-out.
fn balanced_shard_sizes(n: usize, max_shards: usize) -> Vec<usize> {
    let mut s = max_shards.max(1);
    // Need base >= 1 after reserving 0..s-1 distinct increments.
    while s > 1 && n < s * (s - 1) / 2 + s {
        s -= 1;
    }
    let stagger = s * (s - 1) / 2;
    let base = (n - stagger) / s;
    let mut rem = n - stagger - base * s;
    let mut sizes = Vec::with_capacity(s);
    for i in 0..s {
        // Largest first: base + (s-1-i) + (remainder soaked by shard 0).
        let extra = if i == 0 { std::mem::take(&mut rem) } else { 0 };
        sizes.push(base + (s - 1 - i) + extra);
    }
    debug_assert_eq!(sizes.iter().sum::<usize>(), n);
    debug_assert!(sizes.windows(2).all(|w| w[0] > w[1]));
    sizes
}

/// Consumes a possibly-snapshot-shared shard, returning its entries.
/// A uniquely-owned tree is unwrapped for free; a tree some snapshot
/// still references is left untouched and its entries are cloned out —
/// the only point where snapshotting can cost a deep copy, and only for
/// the shards a merge or compaction physically consumes.
fn unshare_tree<T: Clone>(tree: Arc<VpTree<Entry<T>>>) -> Vec<Entry<T>> {
    match Arc::try_unwrap(tree) {
        Ok(owned) => owned.into_items(),
        Err(shared) => shared.items().to_vec(),
    }
}

/// The query wrapped as an entry (the id is never read by the metric).
fn query_entry<T: Clone>(query: &T) -> Entry<T> {
    Entry {
        id: u64::MAX,
        gen: 0,
        item: query.clone(),
    }
}

/// Is `(id, gen)` the current live copy?
fn is_current(live: &HashMap<u64, LiveSlot>, id: u64, gen: u32) -> bool {
    live.get(&id).is_some_and(|ls| ls.gen == gen)
}

pub(crate) fn sort_hits(hits: &mut [ForestHit]) {
    hits.sort_by(|a, b| {
        a.distance
            .partial_cmp(&b.distance)
            .expect("NaN distance")
            .then_with(|| a.id.cmp(&b.id))
    });
}

/// The k-th-best distance proven by *any* shard so far, shared across the
/// parallel fan-out as non-negative `f64` bits (bit order equals numeric
/// order there, so `fetch_min` tightens monotonically and lock-free).
///
/// Soundness: if some shard holds `k` candidates all at distance
/// `<= tau`, then the global k-th best is `<= tau`, so any candidate with
/// distance strictly above `tau` can never enter the merged top-k — ties
/// at `tau` are *not* pruned, which is what preserves the deterministic
/// `(distance, id)` ordering.
pub(crate) struct SharedBound(AtomicU64);

impl SharedBound {
    pub(crate) fn unbounded() -> Self {
        SharedBound(AtomicU64::new(f64::INFINITY.to_bits()))
    }

    fn tighten(&self, tau: f64) {
        debug_assert!(tau >= 0.0, "metric distances are non-negative");
        self.0.fetch_min(tau.to_bits(), Ordering::Relaxed);
    }

    fn current(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Max-heap entry ordered by `(distance, id)` — the worst current hit on
/// top, ids breaking distance ties so results are deterministic.
struct WorstFirst(ForestHit);

impl PartialEq for WorstFirst {
    fn eq(&self, other: &Self) -> bool {
        self.0.distance == other.0.distance && self.0.id == other.0.id
    }
}
impl Eq for WorstFirst {}
impl PartialOrd for WorstFirst {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for WorstFirst {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .distance
            .partial_cmp(&other.0.distance)
            .expect("NaN distance")
            .then_with(|| self.0.id.cmp(&other.0.id))
    }
}

/// A bounded `(distance, id)` max-heap that publishes its k-th best
/// distance to the shared bound whenever it is full.
pub(crate) struct BoundedHeap<'s> {
    heap: std::collections::BinaryHeap<WorstFirst>,
    k: usize,
    shared: &'s SharedBound,
}

impl<'s> BoundedHeap<'s> {
    pub(crate) fn new(k: usize, shared: &'s SharedBound) -> Self {
        BoundedHeap {
            heap: std::collections::BinaryHeap::with_capacity(k + 1),
            k,
            shared,
        }
    }

    /// Effective pruning bound: the sharpest of this heap's k-th best and
    /// the shared bound. Candidates strictly above it are hopeless;
    /// candidates *at* it may still win on id, so callers must compare
    /// with `>` only.
    pub(crate) fn tau(&self) -> f64 {
        let local = if self.heap.len() < self.k {
            f64::INFINITY
        } else {
            self.heap.peek().expect("non-empty").0.distance
        };
        local.min(self.shared.current())
    }

    pub(crate) fn offer_id(&mut self, id: u64, distance: f64) {
        let hit = WorstFirst(ForestHit { id, distance });
        if self.heap.len() < self.k {
            self.heap.push(hit);
        } else if hit < *self.heap.peek().expect("non-empty") {
            self.heap.pop();
            self.heap.push(hit);
        } else {
            return;
        }
        if self.heap.len() == self.k {
            self.shared
                .tighten(self.heap.peek().expect("non-empty").0.distance);
        }
    }

    pub(crate) fn into_sorted(self) -> Vec<ForestHit> {
        let mut hits: Vec<ForestHit> = self.heap.into_iter().map(|w| w.0).collect();
        sort_hits(&mut hits);
        hits
    }
}

/// Per-shard k-NN collector: maps item indices back to ids, drops stale
/// copies, feeds the bounded heap.
struct ShardCollector<'a, 's, T> {
    heap: BoundedHeap<'s>,
    items: &'a [Entry<T>],
    live: &'a HashMap<u64, LiveSlot>,
}

impl<T> SearchCollector for ShardCollector<'_, '_, T> {
    fn offer(&mut self, index: usize, distance: f64) {
        let e = &self.items[index];
        if is_current(self.live, e.id, e.gen) {
            self.heap.offer_id(e.id, distance);
        }
    }

    fn tau(&self) -> f64 {
        self.heap.tau()
    }
}

/// Per-shard range collector: fixed bound, unbounded output.
struct RangeCollector<'a, T> {
    radius: f64,
    out: Vec<ForestHit>,
    items: &'a [Entry<T>],
    live: &'a HashMap<u64, LiveSlot>,
}

impl<T> SearchCollector for RangeCollector<'_, T> {
    fn offer(&mut self, index: usize, distance: f64) {
        if distance > self.radius {
            return;
        }
        let e = &self.items[index];
        if is_current(self.live, e.id, e.gen) {
            self.out.push(ForestHit { id: e.id, distance });
        }
    }

    fn tau(&self) -> f64 {
        self.radius
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FnBoundedMetric;
    use rand::Rng;

    fn metric() -> FnBoundedMetric<impl Fn(&f64, &f64) -> f64, impl Fn(&f64, &f64) -> f64> {
        FnBoundedMetric(
            |a: &f64, b: &f64| (a - b).abs(),
            |a: &f64, b: &f64| ((a - b).abs() / 8.0).floor() * 8.0,
        )
    }

    fn assert_exact(forest: &ShardedVpForest<f64>, q: f64, k: usize) {
        let m = metric();
        let fast = forest.knn(&m, &q, k, 2);
        let slow = forest.scan_knn(&m, &q, k);
        assert_eq!(fast, slow, "q={q} k={k}");
    }

    #[test]
    fn empty_and_tiny() {
        let m = metric();
        let mut f: ShardedVpForest<f64> = ShardedVpForest::new(4, 1);
        assert!(f.is_empty());
        assert!(f.knn(&m, &1.0, 3, 0).is_empty());
        assert!(f.range(&m, &1.0, 10.0, 0).is_empty());
        f.insert(&m, 7, 3.5);
        assert_eq!(f.len(), 1);
        let hits = f.knn(&m, &0.0, 5, 0);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, 7);
        assert_eq!(hits[0].distance, 3.5);
    }

    #[test]
    fn inserts_roll_into_geometric_shards() {
        let m = metric();
        let mut f = ShardedVpForest::new(8, 2);
        for i in 0..100u64 {
            f.insert(&m, i, (i * 37 % 101) as f64);
        }
        let stats = f.stats();
        assert_eq!(stats.len, 100);
        assert!(stats.buffer < 8);
        assert!(stats.shard_sizes.len() <= 5, "{stats:?}");
        for w in stats.shard_sizes.windows(2) {
            assert!(w[0] > w[1], "sizes must decrease: {stats:?}");
        }
        for q in [0.0, 17.5, 50.0, 120.0] {
            for k in [1, 5, 23, 200] {
                assert_exact(&f, q, k);
            }
        }
    }

    #[test]
    fn removes_and_replacements_stay_exact() {
        let m = metric();
        let mut f = ShardedVpForest::new(6, 3);
        let mut rng = SmallRng::seed_from_u64(4);
        let mut live: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
        for step in 0..500u64 {
            let roll: f64 = rng.gen_range(0.0..1.0);
            if roll < 0.55 || live.is_empty() {
                let id = rng.gen_range(0..120u64);
                let v: f64 = rng.gen_range(0.0..500.0);
                let fresh = f.insert(&m, id, v);
                assert_eq!(fresh, !live.contains_key(&id), "step {step}");
                live.insert(id, v);
            } else {
                let id = rng.gen_range(0..120u64);
                let removed = f.remove(&m, id);
                assert_eq!(removed, live.remove(&id).is_some(), "step {step}");
            }
            assert_eq!(f.len(), live.len(), "step {step}");
            if step % 23 == 0 {
                let q: f64 = rng.gen_range(0.0..500.0);
                let k = rng.gen_range(1..8usize);
                let fast = f.knn(&m, &q, k, 2);
                let mut want: Vec<ForestHit> = live
                    .iter()
                    .map(|(&id, &v)| ForestHit {
                        id,
                        distance: (v - q).abs(),
                    })
                    .collect();
                sort_hits(&mut want);
                want.truncate(k);
                assert_eq!(fast, want, "step {step} q={q} k={k}");
            }
        }
    }

    #[test]
    fn range_matches_filtered_scan() {
        let m = metric();
        let mut f = ShardedVpForest::new(5, 5);
        for i in 0..80u64 {
            f.insert(&m, i, (i * 13 % 97) as f64);
        }
        for i in (0..80u64).step_by(3) {
            f.remove(&m, i);
        }
        let got = f.range(&m, &40.0, 15.0, 2);
        let mut want: Vec<ForestHit> = f
            .entries()
            .filter_map(|(id, &v)| {
                let d = (v - 40.0_f64).abs();
                (d <= 15.0).then_some(ForestHit { id, distance: d })
            })
            .collect();
        sort_hits(&mut want);
        assert_eq!(got, want);
    }

    #[test]
    fn duplicate_values_tie_break_by_id() {
        let m = metric();
        let mut f = ShardedVpForest::new(4, 6);
        for id in [9u64, 3, 7, 1, 5] {
            f.insert(&m, id, 100.0);
        }
        let hits = f.knn(&m, &100.0, 3, 0);
        assert_eq!(
            hits.iter().map(|h| h.id).collect::<Vec<_>>(),
            vec![1, 3, 5],
            "ties must resolve to the smallest ids"
        );
    }

    #[test]
    fn reinsert_after_remove_resurrects_nothing() {
        let m = metric();
        let mut f = ShardedVpForest::new(2, 7);
        f.insert(&m, 1, 10.0);
        f.insert(&m, 2, 20.0);
        f.insert(&m, 3, 30.0); // all in shards now
        assert!(f.remove(&m, 2));
        f.insert(&m, 2, 99.0);
        let hits = f.knn(&m, &20.0, 1, 0);
        assert_eq!(hits[0].id, 1, "the dead 20.0 copy must not reappear");
        let all = f.knn(&m, &0.0, 10, 0);
        assert_eq!(all.len(), 3);
        assert!(all.iter().any(|h| h.id == 2 && h.distance == 99.0));
    }

    #[test]
    fn bulk_load_equals_incremental() {
        let m = metric();
        let entries: Vec<(u64, f64)> = (0..60u64).map(|i| (i, (i * 29 % 83) as f64)).collect();
        let bulk = ShardedVpForest::from_entries(8, 9, entries.clone(), &m);
        let mut inc = ShardedVpForest::new(8, 9);
        for (id, v) in entries {
            inc.insert(&m, id, v);
        }
        for q in [0.0, 41.0, 80.0] {
            for k in [1, 7, 60] {
                assert_eq!(bulk.knn(&m, &q, k, 0), inc.knn(&m, &q, k, 0), "q={q} k={k}");
            }
        }
    }

    #[test]
    fn balanced_bulk_build_equals_single_shard() {
        let m = metric();
        let entries: Vec<(u64, f64)> = (0..137u64).map(|i| (i, (i * 31 % 151) as f64)).collect();
        let single = ShardedVpForest::from_entries(16, 9, entries.clone(), &m);
        let balanced = ShardedVpForest::from_entries_balanced(16, 9, entries.clone(), &m, 4);
        let stats = balanced.stats();
        assert_eq!(stats.shard_sizes.len(), 4, "{stats:?}");
        assert!(stats.shard_sizes.windows(2).all(|w| w[0] > w[1]));
        assert_eq!(stats.shard_sizes.iter().sum::<usize>(), 137);
        for q in [0.0, 40.0, 151.0] {
            for k in [1usize, 9, 137] {
                assert_eq!(
                    balanced.knn(&m, &q, k, 2),
                    single.knn(&m, &q, k, 0),
                    "q={q} k={k}"
                );
            }
            assert_eq!(
                balanced.range(&m, &q, 25.0, 2),
                single.range(&m, &q, 25.0, 0)
            );
        }
        // churn on top of a balanced build stays exact
        let mut f = balanced;
        for i in 0..60u64 {
            f.insert(&m, 1000 + i, (i * 7 % 91) as f64);
        }
        for i in (0..137u64).step_by(3) {
            f.remove(&m, i);
        }
        assert_exact(&f, 33.0, 11);
    }

    #[test]
    fn balanced_shard_sizes_edge_cases() {
        assert_eq!(balanced_shard_sizes(10, 1), vec![10]);
        assert_eq!(balanced_shard_sizes(10, 3), vec![5, 3, 2]);
        let sizes = balanced_shard_sizes(4000, 8);
        assert_eq!(sizes.iter().sum::<usize>(), 4000);
        assert_eq!(sizes.len(), 8);
        assert!(sizes.windows(2).all(|w| w[0] > w[1]));
        // tiny n: shard count shrinks rather than emitting empty shards
        let sizes = balanced_shard_sizes(3, 8);
        assert!(sizes.iter().all(|&s| s > 0));
        assert_eq!(sizes.iter().sum::<usize>(), 3);
        assert_eq!(balanced_shard_sizes(1, 4), vec![1]);
    }

    #[test]
    fn clone_is_an_independent_snapshot() {
        let m = metric();
        let mut f = ShardedVpForest::new(4, 8);
        for i in 0..40u64 {
            f.insert(&m, i, (i * 7 % 53) as f64);
        }
        let snap = f.clone();
        let before = snap.knn(&m, &10.0, 5, 0);
        // Churn the original hard enough to merge, compact, and reuse ids.
        for i in 0..40u64 {
            f.remove(&m, i);
        }
        for i in 0..60u64 {
            f.insert(&m, i + 100, (i * 11 % 97) as f64);
        }
        assert_eq!(snap.len(), 40, "snapshot must not see later writes");
        assert_eq!(snap.knn(&m, &10.0, 5, 0), before);
        assert_exact(&snap, 10.0, 5);
        assert_exact(&f, 10.0, 5);
        assert!(f.knn(&m, &10.0, 5, 0).iter().all(|h| h.id >= 100));
    }

    #[test]
    fn parallel_and_serial_agree() {
        let m = metric();
        let mut f = ShardedVpForest::new(16, 10);
        let mut rng = SmallRng::seed_from_u64(11);
        for i in 0..300u64 {
            f.insert(&m, i, rng.gen_range(0.0..1000.0));
        }
        for q in [0.0, 333.3, 999.0] {
            assert_eq!(f.knn(&m, &q, 9, 1), f.knn(&m, &q, 9, 0), "q={q}");
            assert_eq!(f.range(&m, &q, 50.0, 1), f.range(&m, &q, 50.0, 0), "q={q}");
        }
    }
}
