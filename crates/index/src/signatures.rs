//! NED wiring for the sharded forest: a **persistent node-signature
//! index**.
//!
//! [`SignatureIndex`] owns a [`ShardedVpForest`] of
//! [`NodeSignature`]s under the NED metric, assigns stable `u64` ids as
//! signatures arrive (possibly from many graphs), and serializes to the
//! `ned-core::store` snapshot codec wrapped in its own framed, versioned,
//! checksummed file — an index built once survives process restarts and
//! answers queries immediately after [`SignatureIndex::load`], with no
//! re-extraction and no re-preparation.
//!
//! Queries go through [`SignatureMetric`]: exact distances are TED\* on
//! prepared signatures, and the filter step is the interned-class lower
//! bound ([`NodeSignature::distance_lower_bound`]), evaluated before
//! every exact call both in the forest's buffer scan and inside each
//! VP shard. The bound is a branch-light merge over the sorted
//! class-histogram runs each [`ned_core::PreparedTree`] precomputes, so
//! filtering a candidate costs a fraction of a microsecond — cheap
//! enough to run unconditionally ahead of every exact distance.
//!
//! In front of both sits the **sketch tier** ([`crate::sketch`]): a flat
//! bank of quantized per-level feature vectors maintained alongside the
//! forest and consulted first by [`SignatureIndex::query`] /
//! [`SignatureIndex::range`] (routing controlled by [`SketchMode`]).
//! Version-3 index files persist the bank next to the signature
//! snapshot; older files load fine and rebuild it on the way in.

use crate::forest::{ForestHit, ForestStats, ShardedVpForest};
use crate::sketch::{self, SketchBank, SketchMode, SketchStats};
use crate::{BoundedMetric, Metric};
use ned_core::store::{self, CodecError, Reader, Writer};
use ned_core::NodeSignature;
use ned_graph::{Graph, NodeId};
use std::io::{Read as _, Write as _};
use std::path::Path;

/// NED over node signatures as a [`BoundedMetric`]: exact distances are
/// `TED*` (a true metric, hence VP-tree-safe), the lower bound is the
/// interned-class histogram bound, and budgeted calls run the
/// early-abandoning kernel (`ned_core::ted_star_prepared_within`) — so
/// the forest's pruning radius cuts computations short *inside* the
/// level sweep, not just between candidates. `u64` distances are exact
/// in `f64` far beyond any real tree size (`< 2^53`).
#[derive(Debug, Clone, Copy, Default)]
pub struct SignatureMetric;

impl Metric<NodeSignature> for SignatureMetric {
    fn distance(&self, a: &NodeSignature, b: &NodeSignature) -> f64 {
        a.distance(b) as f64
    }
}

impl BoundedMetric<NodeSignature> for SignatureMetric {
    fn lower_bound(&self, a: &NodeSignature, b: &NodeSignature) -> f64 {
        a.distance_lower_bound(b) as f64
    }

    fn distance_within(&self, a: &NodeSignature, b: &NodeSignature, budget: f64) -> Option<f64> {
        if budget < 0.0 {
            return None;
        }
        // TED* is integral, so flooring the budget changes nothing; the
        // float→int cast saturates, mapping +∞ to u64::MAX (unlimited).
        a.distance_within(b, budget as u64).map(|d| d as f64)
    }
}

/// [`SignatureMetric`] with the budget plumbing disabled: every exact
/// call computes the full distance and filters afterwards (the
/// [`BoundedMetric`] trait default). Same distances, same lower bound,
/// no early abandoning — the reference the bounded path is
/// property-tested and benchmarked against. Not a serving configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct UnboundedSignatureMetric;

impl Metric<NodeSignature> for UnboundedSignatureMetric {
    fn distance(&self, a: &NodeSignature, b: &NodeSignature) -> f64 {
        SignatureMetric.distance(a, b)
    }
}

impl BoundedMetric<NodeSignature> for UnboundedSignatureMetric {
    fn lower_bound(&self, a: &NodeSignature, b: &NodeSignature) -> f64 {
        SignatureMetric.lower_bound(a, b)
    }
    // distance_within: deliberately the compute-then-filter default.
}

/// Magic bytes opening a persisted signature index.
pub const INDEX_MAGIC: [u8; 8] = *b"NEDIDX01";
/// Index file format version without an epoch field (plain saves).
pub const INDEX_VERSION: u32 = 1;
/// Index file format version carrying the publication epoch the snapshot
/// was taken at — written by checkpoints so WAL replay knows which log
/// records the snapshot already contains. Decoding accepts both versions
/// (a version-1 file reads back as epoch 0).
pub const INDEX_VERSION_EPOCH: u32 = 2;
/// Index file format version carrying the sketch tier: an always-present
/// epoch field (0 for plain saves), the serving [`SketchMode`], and the
/// persisted sketch bank rows, so a load answers sketch-filtered queries
/// without re-sketching the corpus. Decoding still accepts versions 1
/// and 2 — their banks are rebuilt from the decoded signatures during
/// load.
pub const INDEX_VERSION_SKETCH: u32 = 3;

/// A dynamic, persistent k-NN index over node signatures. See the
/// [module docs](self).
#[derive(Debug, Clone)]
pub struct SignatureIndex {
    forest: ShardedVpForest<NodeSignature>,
    bank: SketchBank,
    sketch_mode: SketchMode,
    k: usize,
    threshold: usize,
    seed: u64,
    next_id: u64,
}

impl SignatureIndex {
    /// An empty index for signatures extracted at parameter `k`.
    /// `threshold` is the forest's buffer-freeze size; `seed` pins shard
    /// construction.
    pub fn new(k: usize, threshold: usize, seed: u64) -> Self {
        SignatureIndex {
            forest: ShardedVpForest::new(threshold, seed),
            bank: SketchBank::new(),
            sketch_mode: SketchMode::default(),
            k,
            threshold: threshold.max(1),
            seed,
            next_id: 0,
        }
    }

    /// Bulk constructor over pre-extracted signatures, assigned ids
    /// `0..n` in order — a balanced one-shot shard build (one shard per
    /// available core) instead of `n` incremental inserts. Query results
    /// are identical; the load-generation and benchmark harnesses use
    /// this to stand up large indexes cheaply.
    pub fn from_signatures(
        k: usize,
        threshold: usize,
        seed: u64,
        sigs: Vec<NodeSignature>,
    ) -> Self {
        let entries: Vec<(u64, NodeSignature)> = sigs
            .into_iter()
            .enumerate()
            .map(|(i, s)| (i as u64, s))
            .collect();
        Self::from_entries(k, threshold, seed, entries)
    }

    /// Bulk-builds the whole index for every node of `graph` through the
    /// shared-work extraction pipeline ([`ned_core::bulk_signatures`]) and
    /// a balanced one-shot shard build — the fast path behind
    /// `ned-cli index build`. `threads` bounds the extraction fan-out
    /// (`0` = all cores); the balanced shard VP-trees always build
    /// concurrently on the batch pool.
    pub fn from_graph(
        graph: &Graph,
        k: usize,
        threshold: usize,
        seed: u64,
        threads: usize,
    ) -> Self {
        let nodes: Vec<NodeId> = graph.nodes().collect();
        let sigs = ned_core::bulk_signatures(graph, &nodes, k, threads);
        Self::from_signatures(k, threshold, seed, sigs)
    }

    fn from_entries(
        k: usize,
        threshold: usize,
        seed: u64,
        entries: Vec<(u64, NodeSignature)>,
    ) -> Self {
        let next_id = entries
            .iter()
            .map(|&(id, _)| id.saturating_add(1))
            .max()
            .unwrap_or(0);
        let shards = std::thread::available_parallelism().map_or(1, |c| c.get());
        let bank = SketchBank::bulk(&entries, 0);
        let forest = ShardedVpForest::from_entries_balanced(
            threshold,
            seed,
            entries,
            &SignatureMetric,
            shards,
        );
        SignatureIndex {
            forest,
            bank,
            sketch_mode: SketchMode::default(),
            k,
            threshold: threshold.max(1),
            seed,
            next_id,
        }
    }

    /// The extraction parameter every indexed signature was built at.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Live signature count.
    pub fn len(&self) -> usize {
        self.forest.len()
    }

    /// `true` when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.forest.is_empty()
    }

    /// Forest shape (shard sizes, buffer fill, tombstones).
    pub fn stats(&self) -> ForestStats {
        self.forest.stats()
    }

    /// The underlying forest (read-only).
    pub fn forest(&self) -> &ShardedVpForest<NodeSignature> {
        &self.forest
    }

    /// The id watermark: the id the next [`SignatureIndex::insert`] will
    /// assign. A shard coordinator seeds its fleet-wide id counter from
    /// this so explicit-id puts never collide with historical ids.
    pub fn next_id(&self) -> u64 {
        self.next_id
    }

    /// The serving sketch routing mode.
    pub fn sketch_mode(&self) -> SketchMode {
        self.sketch_mode
    }

    /// Switches how [`SignatureIndex::query`] / [`SignatureIndex::range`]
    /// route through the sketch tier. The bank is always maintained, so
    /// switching is instant in either direction.
    pub fn set_sketch_mode(&mut self, mode: SketchMode) {
        self.sketch_mode = mode;
    }

    /// Sketch bank shape and work counters (the `sketch:` stats line).
    pub fn sketch_stats(&self) -> SketchStats {
        self.bank.stats()
    }

    /// The sketch bank (read-only).
    pub fn sketch_bank(&self) -> &SketchBank {
        &self.bank
    }

    /// A process-stable fingerprint of the live set: FNV-1a over the
    /// id-sorted `(id, stable tree fingerprint)` pairs, little-endian.
    /// Two replicas that applied the same acknowledged history agree on
    /// it regardless of insertion order, shard layout, or interner state
    /// — the anti-entropy probe compares these across a fleet to detect
    /// silent divergence ([`ned_core::Request::Fingerprint`]).
    pub fn live_set_fingerprint(&self) -> u64 {
        let mut pairs: Vec<(u64, u64)> = self
            .forest
            .entries()
            .map(|(id, sig)| (id, sketch::stable_tree_fingerprint(sig.tree())))
            .collect();
        pairs.sort_unstable();
        let mut bytes = Vec::with_capacity(pairs.len() * 16);
        for (id, fp) in pairs {
            bytes.extend_from_slice(&id.to_le_bytes());
            bytes.extend_from_slice(&fp.to_le_bytes());
        }
        store::fnv1a64(&bytes)
    }

    /// Splits this index into `shards` disjoint indexes by **id range**
    /// for a scatter-gather fleet: entries are ordered by id and cut into
    /// near-equal contiguous runs. Returns `(starts, indexes)` where
    /// `starts[i]` is the lowest id shard `i` may own (`starts[0] == 0`,
    /// strictly the boundary used for routing: id `x` belongs to the last
    /// shard with `start <= x`). Every shard keeps this index's `k`,
    /// threshold and seed, so per-shard query results are bit-identical
    /// to querying the same entries here.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn split_for_fleet(&self, shards: usize) -> (Vec<u64>, Vec<SignatureIndex>) {
        assert!(shards > 0, "a fleet needs at least one shard");
        let mut entries: Vec<(u64, NodeSignature)> = self
            .forest
            .entries()
            .map(|(id, sig)| (id, sig.clone()))
            .collect();
        entries.sort_by_key(|&(id, _)| id);
        let per = entries.len() / shards;
        let extra = entries.len() % shards;
        let mut starts = Vec::with_capacity(shards);
        let mut indexes = Vec::with_capacity(shards);
        let mut offset = 0usize;
        for s in 0..shards {
            let take = per + usize::from(s < extra);
            let group = entries[offset..offset + take].to_vec();
            // The boundary is the group's lowest id; an empty tail group
            // starts past every live id so it owns only future ids.
            let start = if s == 0 {
                0
            } else {
                group.first().map_or(self.next_id, |&(id, _)| id)
            };
            starts.push(start);
            indexes.push(SignatureIndex::from_entries(
                self.k,
                self.threshold,
                self.seed,
                group,
            ));
            offset += take;
        }
        (starts, indexes)
    }

    /// Indexes one signature, returning its assigned id.
    pub fn insert(&mut self, sig: NodeSignature) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.bank.upsert(id, &sig);
        self.forest.insert(&SignatureMetric, id, sig);
        id
    }

    /// Extracts and indexes the signatures of `nodes` in `graph`,
    /// returning the id range assigned (`first..first + nodes.len()`,
    /// in node order). Extraction runs through the shared-work bulk
    /// pipeline ([`ned_core::bulk_signatures`]); use
    /// [`SignatureIndex::insert_graph_per_node`] for the independent
    /// per-node fallback.
    pub fn insert_graph(&mut self, graph: &Graph, nodes: &[NodeId]) -> std::ops::Range<u64> {
        let first = self.next_id;
        for sig in ned_core::bulk_signatures(graph, nodes, self.k, 0) {
            self.insert(sig);
        }
        first..self.next_id
    }

    /// The non-bulk fallback of [`SignatureIndex::insert_graph`]: each
    /// node is extracted and canonicalized independently, but through
    /// **one** reused [`ned_core::SignatureExtractor`] (one BFS scratch
    /// arena for the whole batch) instead of a fresh per-node allocation
    /// of the visited set. Identical signatures and ids; this is also the
    /// ingest baseline the `ingest/...` benchmarks compare the bulk
    /// pipeline against.
    pub fn insert_graph_per_node(
        &mut self,
        graph: &Graph,
        nodes: &[NodeId],
    ) -> std::ops::Range<u64> {
        let first = self.next_id;
        let mut extractor = ned_core::SignatureExtractor::new(graph);
        for &v in nodes {
            self.insert(extractor.extract(v, self.k));
        }
        first..self.next_id
    }

    /// Inserts `sig` under the explicit `id` — replacing the live
    /// signature with that id if one exists — and advances the automatic
    /// id watermark past it. Returns `true` when the id was not
    /// previously live. This is the *replace* primitive of the concurrent
    /// write path; [`SignatureIndex::insert`] remains the normal
    /// auto-assigning entry point.
    pub fn insert_at(&mut self, id: u64, sig: NodeSignature) -> bool {
        self.next_id = self.next_id.max(id.saturating_add(1));
        self.bank.upsert(id, &sig);
        self.forest.insert(&SignatureMetric, id, sig)
    }

    /// Removes a signature by id. Returns `false` for unknown ids.
    pub fn remove(&mut self, id: u64) -> bool {
        self.bank.remove(id);
        self.forest.remove(&SignatureMetric, id)
    }

    /// The signature stored under `id`, if live (`O(n)` — a diagnostic
    /// accessor, not a query path).
    pub fn get(&self, id: u64) -> Option<&NodeSignature> {
        self.forest
            .entries()
            .find(|&(eid, _)| eid == id)
            .map(|(_, sig)| sig)
    }

    /// The `top` nearest indexed signatures, sorted by `(distance, id)`.
    /// `threads = 0` uses all cores.
    ///
    /// Routing follows the serving [`SketchMode`]: `Off` takes the
    /// sharded VP-forest path, `Exact` (the default) pre-filters through
    /// the sketch bank's provable lower bound — results stay
    /// bit-identical to the forest — and `Approx` filters by the sketch
    /// estimate (faster, measured rather than guaranteed recall).
    pub fn query(&self, sig: &NodeSignature, top: usize, threads: usize) -> Vec<ForestHit> {
        match self.sketch_mode {
            SketchMode::Off => self.forest.knn(&SignatureMetric, sig, top, threads),
            mode => self.bank.knn(sig, top, threads, mode),
        }
    }

    /// [`SignatureIndex::query`] for a node of a graph (extracts the
    /// query signature at this index's `k` first).
    pub fn query_node(
        &self,
        graph: &Graph,
        node: NodeId,
        top: usize,
        threads: usize,
    ) -> Vec<ForestHit> {
        let sig = NodeSignature::extract(graph, node, self.k);
        self.query(&sig, top, threads)
    }

    /// Every indexed signature within `radius` of `sig`, routed through
    /// the sketch tier exactly like [`SignatureIndex::query`].
    pub fn range(&self, sig: &NodeSignature, radius: u64, threads: usize) -> Vec<ForestHit> {
        match self.sketch_mode {
            SketchMode::Off => self
                .forest
                .range(&SignatureMetric, sig, radius as f64, threads),
            mode => self.bank.range(sig, radius, threads, mode),
        }
    }

    /// Full-scan baseline over the same live set — the reference the
    /// forest's results are defined against, and the benchmark
    /// comparator.
    pub fn scan(&self, sig: &NodeSignature, top: usize) -> Vec<ForestHit> {
        self.forest.scan_knn(&SignatureMetric, sig, top)
    }

    /// Serializes the whole index (config + every live signature) into
    /// the framed NEDIDX01 format; the embedded signature block is a
    /// standard `ned-core::store` snapshot.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.encode(None)
    }

    /// [`SignatureIndex::to_bytes`] in the version-2 framing, embedding
    /// the publication `epoch` this state corresponds to. Checkpoints use
    /// this so recovery can skip WAL records the snapshot already
    /// contains.
    pub fn to_bytes_at_epoch(&self, epoch: u64) -> Vec<u8> {
        self.encode(Some(epoch))
    }

    fn encode(&self, epoch: Option<u64>) -> Vec<u8> {
        let mut entries: Vec<(u64, &NodeSignature)> = self.forest.entries().collect();
        entries.sort_unstable_by_key(|&(id, _)| id);
        let snapshot = store::encode_snapshot(
            self.k,
            entries
                .iter()
                .map(|&(id, sig)| (id, sig.node, sig.prepared())),
        );
        // Bank rows serialized in the same id-sorted order as the
        // snapshot entries, so decoding pairs them back up positionally.
        let mut bank_block = Vec::with_capacity(12 + entries.len() * sketch::SKETCH_DIM * 2);
        bank_block.extend_from_slice(&(sketch::SKETCH_DIM as u32).to_le_bytes());
        bank_block.extend_from_slice(&(entries.len() as u64).to_le_bytes());
        let mut scratch = [0u16; sketch::SKETCH_DIM];
        for &(id, sig) in &entries {
            let lanes = match self.bank.lanes_of(id) {
                Some(lanes) => lanes,
                None => {
                    // The bank mirrors the live set; re-sketching keeps the
                    // file self-consistent even if it ever drifted.
                    sketch::sketch_into(sig.prepared(), &mut scratch);
                    &scratch[..]
                }
            };
            for &lane in lanes {
                bank_block.extend_from_slice(&lane.to_le_bytes());
            }
        }
        let mut w = Writer::with_magic(&INDEX_MAGIC);
        w.put_u32(INDEX_VERSION_SKETCH);
        w.put_u32(self.k as u32);
        w.put_u64(self.threshold as u64);
        w.put_u64(self.seed);
        w.put_u64(self.next_id);
        w.put_u64(epoch.unwrap_or(0));
        w.put_u32(self.sketch_mode.to_u32());
        w.put_block(&snapshot);
        w.put_block(&bank_block);
        w.finish()
    }

    /// Restores [`SignatureIndex::to_bytes`] output. The forest is
    /// bulk-rebuilt (same live set, same query results — shard layout may
    /// differ, which is invisible through the exact query API).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        Self::decode_with_epoch(bytes).map(|(index, _)| index)
    }

    /// Decodes either framing version, returning the index together with
    /// its persisted epoch (`0` for version-1 files, which predate the
    /// epoch field).
    pub fn decode_with_epoch(bytes: &[u8]) -> Result<(Self, u64), CodecError> {
        let mut r = Reader::open(bytes, &INDEX_MAGIC)?;
        let version = r.u32()?;
        if !(INDEX_VERSION..=INDEX_VERSION_SKETCH).contains(&version) {
            return Err(CodecError::UnsupportedVersion(version));
        }
        let k = r.u32()? as usize;
        let threshold = r.u64()? as usize;
        let seed = r.u64()?;
        let next_id = r.u64()?;
        let epoch = if version >= INDEX_VERSION_EPOCH {
            r.u64()?
        } else {
            0
        };
        let sketch_mode = if version >= INDEX_VERSION_SKETCH {
            let raw = r.u32()?;
            SketchMode::from_u32(raw)
                .ok_or_else(|| CodecError::Malformed(format!("unknown sketch mode {raw}")))?
        } else {
            SketchMode::default()
        };
        let snapshot = store::decode_snapshot(r.block()?)?;
        if snapshot.k != k {
            return Err(CodecError::Malformed(format!(
                "index header says k = {k} but the signature block was built at k = {}",
                snapshot.k
            )));
        }
        let entries: Vec<(u64, NodeSignature)> = snapshot.entries();
        let mut seen = std::collections::HashSet::with_capacity(entries.len());
        for &(id, _) in &entries {
            if id >= next_id {
                return Err(CodecError::Malformed(format!(
                    "entry id {id} not below the persisted id watermark {next_id}"
                )));
            }
            if !seen.insert(id) {
                return Err(CodecError::Malformed(format!("duplicate entry id {id}")));
            }
        }
        let bank = if version >= INDEX_VERSION_SKETCH {
            decode_bank_block(r.block()?, &entries)?
        } else {
            // Pre-sketch file: rebuild the rows from the decoded
            // signatures, so old snapshots keep loading and serve
            // sketch-filtered queries immediately.
            SketchBank::bulk(&entries, 0)
        };
        let shards = std::thread::available_parallelism().map_or(1, |c| c.get());
        let forest = ShardedVpForest::from_entries_balanced(
            threshold,
            seed,
            entries,
            &SignatureMetric,
            shards,
        );
        Ok((
            SignatureIndex {
                forest,
                bank,
                sketch_mode,
                k,
                threshold,
                seed,
                next_id,
            },
            epoch,
        ))
    }

    /// [`SignatureIndex::to_bytes`] straight to a file — atomically *and
    /// durably*: the bytes land in a synced sibling temp file that is
    /// renamed over `path`, and the parent directory is fsynced after the
    /// rename, so a crash at any point leaves either the old complete
    /// file or the new complete file — never a zero-length or torn one.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        write_file_durably(path, &self.to_bytes())
    }

    /// [`SignatureIndex::save`] in the epoch-carrying version-2 framing
    /// (same durability discipline) — the checkpoint primitive.
    pub fn save_at_epoch(&self, epoch: u64, path: &Path) -> std::io::Result<()> {
        write_file_durably(path, &self.to_bytes_at_epoch(epoch))
    }

    /// [`SignatureIndex::from_bytes`] straight from a file.
    pub fn load(path: &Path) -> Result<Self, LoadError> {
        Self::load_with_epoch(path).map(|(index, _)| index)
    }

    /// [`SignatureIndex::decode_with_epoch`] straight from a file.
    pub fn load_with_epoch(path: &Path) -> Result<(Self, u64), LoadError> {
        let mut bytes = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut bytes)?;
        Ok(Self::decode_with_epoch(&bytes)?)
    }
}

/// Parses the version-3 sketch bank block: `[u32 dim][u64 rows]` then
/// `rows × dim` little-endian `u16` lanes, row-major, aligned
/// positionally with the id-sorted snapshot entries. Persisted lanes
/// are spot-checked against fresh sketches before being adopted; if the
/// writing binary used a different sketch layout, the bank is rebuilt
/// from the signatures instead.
fn decode_bank_block(
    block: &[u8],
    entries: &[(u64, NodeSignature)],
) -> Result<SketchBank, CodecError> {
    if block.len() < 12 {
        return Err(CodecError::Malformed(
            "sketch bank block shorter than its header".to_string(),
        ));
    }
    let dim = u32::from_le_bytes(block[0..4].try_into().expect("4 bytes")) as usize;
    let rows = u64::from_le_bytes(block[4..12].try_into().expect("8 bytes")) as usize;
    if dim != sketch::SKETCH_DIM {
        return Err(CodecError::Malformed(format!(
            "sketch bank dim {dim} != built-in {}",
            sketch::SKETCH_DIM
        )));
    }
    if rows != entries.len() {
        return Err(CodecError::Malformed(format!(
            "sketch bank has {rows} rows for {} signatures",
            entries.len()
        )));
    }
    let body = &block[12..];
    if body.len() != rows * dim * 2 {
        return Err(CodecError::Malformed(format!(
            "sketch bank body is {} bytes, expected {}",
            body.len(),
            rows * dim * 2
        )));
    }
    let lanes: Vec<u16> = body
        .chunks_exact(2)
        .map(|c| u16::from_le_bytes([c[0], c[1]]))
        .collect();
    // Persisted lanes are only trusted if they match what this binary
    // would compute: the sketch layout (fingerprint bucketing in
    // particular) is an in-process convention, not part of the file
    // format contract, so a snapshot written by a binary with a
    // different layout would silently inflate lower bounds and drop
    // true neighbors in exact mode. Spot-check a deterministic sample
    // of rows and rebuild the whole bank from the signatures if any
    // disagree.
    let sample = [0, rows / 3, 2 * rows / 3, rows.saturating_sub(1)];
    let stale = sample.iter().filter(|&&r| r < rows).any(|&r| {
        let mut fresh = [0u16; sketch::SKETCH_DIM];
        sketch::sketch_into(entries[r].1.prepared(), &mut fresh);
        lanes[r * sketch::SKETCH_DIM..(r + 1) * sketch::SKETCH_DIM] != fresh
    });
    if stale {
        return Ok(SketchBank::bulk(entries, 0));
    }
    Ok(SketchBank::from_rows(entries, lanes))
}

/// Atomic + durable file replacement: write a synced temp sibling, rename
/// it over `path`, fsync the parent directory.
fn write_file_durably(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut tmp_name = path.file_name().unwrap_or_default().to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    ned_core::wal::sync_parent_dir(path)
}

/// Errors from [`SignatureIndex::load`]: I/O or decoding.
#[derive(Debug)]
pub enum LoadError {
    /// The file could not be read.
    Io(std::io::Error),
    /// The bytes could not be decoded.
    Codec(CodecError),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "{e}"),
            LoadError::Codec(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

impl From<CodecError> for LoadError {
    fn from(e: CodecError) -> Self {
        LoadError::Codec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ned_graph::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn build_query_matches_scan() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = generators::barabasi_albert(300, 3, &mut rng);
        let nodes: Vec<u32> = g.nodes().collect();
        let mut index = SignatureIndex::new(3, 64, 42);
        let ids = index.insert_graph(&g, &nodes);
        assert_eq!(ids, 0..300);
        assert_eq!(index.len(), 300);
        for probe in [0u32, 57, 123, 299] {
            let sig = NodeSignature::extract(&g, probe, 3);
            let fast = index.query(&sig, 7, 0);
            let slow = index.scan(&sig, 7);
            assert_eq!(fast, slow, "probe {probe}");
            assert_eq!(fast[0].distance, 0.0, "probe is its own nearest neighbor");
        }
    }

    #[test]
    fn save_load_round_trip_preserves_results() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g1 = generators::barabasi_albert(150, 2, &mut rng);
        let g2 = generators::erdos_renyi_gnm(100, 220, &mut rng);
        let mut index = SignatureIndex::new(4, 32, 7);
        index.insert_graph(&g1, &g1.nodes().collect::<Vec<_>>());
        index.insert_graph(&g2, &g2.nodes().collect::<Vec<_>>());
        index.remove(17);
        index.remove(200);

        let bytes = index.to_bytes();
        let back = SignatureIndex::from_bytes(&bytes).expect("round trip");
        assert_eq!(back.len(), index.len());
        assert_eq!(back.k(), index.k());
        for probe in [0u32, 31, 99] {
            let sig = NodeSignature::extract(&g2, probe, 4);
            assert_eq!(
                back.query(&sig, 9, 0),
                index.query(&sig, 9, 0),
                "probe {probe}"
            );
        }
        // ids keep advancing from the persisted watermark
        let mut back = back;
        let new_id = back.insert(NodeSignature::extract(&g1, 0, 4));
        assert_eq!(new_id, 250);
    }

    #[test]
    fn mixed_graph_index_finds_cross_graph_twins() {
        // Identical structure indexed from two different graphs must be
        // found at distance 0 from either side.
        let cycle_a =
            Graph::undirected_from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let cycle_b = Graph::undirected_from_edges(
            8,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 0),
            ],
        );
        let mut index = SignatureIndex::new(3, 4, 1);
        index.insert_graph(&cycle_a, &cycle_a.nodes().collect::<Vec<_>>());
        let hits = index.query_node(&cycle_b, 0, 3, 0);
        assert!(hits.iter().all(|h| h.distance == 0.0), "{hits:?}");
    }

    /// Re-encodes `index` in the given legacy framing (no sketch bank;
    /// version 1 also drops the epoch field) so decode back-compat can be
    /// tested against bytes this build no longer writes.
    fn encode_legacy(index: &SignatureIndex, version: u32, epoch: u64) -> Vec<u8> {
        let mut entries: Vec<(u64, &NodeSignature)> = index.forest.entries().collect();
        entries.sort_unstable_by_key(|&(id, _)| id);
        let snapshot = store::encode_snapshot(
            index.k,
            entries
                .iter()
                .map(|&(id, sig)| (id, sig.node, sig.prepared())),
        );
        let mut w = Writer::with_magic(&INDEX_MAGIC);
        w.put_u32(version);
        w.put_u32(index.k as u32);
        w.put_u64(index.threshold as u64);
        w.put_u64(index.seed);
        w.put_u64(index.next_id);
        if version >= INDEX_VERSION_EPOCH {
            w.put_u64(epoch);
        }
        w.put_block(&snapshot);
        w.finish()
    }

    #[test]
    fn sketch_bank_survives_save_load() {
        let mut rng = SmallRng::seed_from_u64(31);
        let g = generators::barabasi_albert(200, 3, &mut rng);
        let mut index = SignatureIndex::new(3, 48, 9);
        index.insert_graph(&g, &g.nodes().collect::<Vec<_>>());
        index.remove(11);
        index.set_sketch_mode(SketchMode::Approx);

        let back = SignatureIndex::from_bytes(&index.to_bytes()).expect("round trip");
        assert_eq!(back.sketch_mode(), SketchMode::Approx);
        assert_eq!(back.sketch_stats().rows, index.len());
        // Persisted rows are bit-identical to the live bank's.
        for (id, _) in index.forest.entries() {
            assert_eq!(back.bank.lanes_of(id), index.bank.lanes_of(id), "id {id}");
        }
    }

    #[test]
    fn legacy_versions_load_and_rebuild_the_bank() {
        let mut rng = SmallRng::seed_from_u64(32);
        let g = generators::erdos_renyi_gnm(150, 400, &mut rng);
        let mut index = SignatureIndex::new(3, 32, 5);
        index.insert_graph(&g, &g.nodes().collect::<Vec<_>>());

        for (version, epoch) in [(INDEX_VERSION, 0u64), (INDEX_VERSION_EPOCH, 17)] {
            let bytes = encode_legacy(&index, version, epoch);
            let (back, got_epoch) =
                SignatureIndex::decode_with_epoch(&bytes).expect("legacy decode");
            assert_eq!(got_epoch, epoch, "version {version}");
            // The bank was rebuilt from the decoded signatures: identical
            // rows, default serving mode, and identical query results.
            assert_eq!(back.sketch_mode(), SketchMode::Exact);
            assert_eq!(back.sketch_stats().rows, index.len());
            for (id, _) in index.forest.entries() {
                assert_eq!(back.bank.lanes_of(id), index.bank.lanes_of(id), "id {id}");
            }
            for probe in [0u32, 77, 149] {
                let sig = NodeSignature::extract(&g, probe, 3);
                assert_eq!(back.query(&sig, 6, 0), index.query(&sig, 6, 0));
            }
        }
    }

    #[test]
    fn v3_rejects_malformed_bank_blocks() {
        let mut index = SignatureIndex::new(3, 4, 1);
        let g = Graph::undirected_from_edges(3, &[(0, 1), (1, 2)]);
        index.insert_graph(&g, &g.nodes().collect::<Vec<_>>());
        let sig = NodeSignature::extract(&g, 0, 3);

        // Recompose the file with a corrupted bank block (checksummed
        // correctly, so only the block validation can catch it).
        let good = index.to_bytes();
        let (restored, _) = SignatureIndex::decode_with_epoch(&good).expect("baseline");
        assert_eq!(restored.query(&sig, 2, 0), index.query(&sig, 2, 0));

        let mut w = Writer::with_magic(&INDEX_MAGIC);
        w.put_u32(INDEX_VERSION_SKETCH);
        w.put_u32(index.k as u32);
        w.put_u64(index.threshold as u64);
        w.put_u64(index.seed);
        w.put_u64(index.next_id);
        w.put_u64(0);
        w.put_u32(SketchMode::Exact.to_u32());
        let mut entries: Vec<(u64, &NodeSignature)> = index.forest.entries().collect();
        entries.sort_unstable_by_key(|&(id, _)| id);
        let snapshot = store::encode_snapshot(
            index.k,
            entries
                .iter()
                .map(|&(id, sig)| (id, sig.node, sig.prepared())),
        );
        w.put_block(&snapshot);
        w.put_block(b"tiny"); // shorter than the bank header
        assert!(matches!(
            SignatureIndex::from_bytes(&w.finish()),
            Err(CodecError::Malformed(_))
        ));
    }

    #[test]
    fn stale_persisted_lanes_trigger_a_bank_rebuild() {
        // A well-formed v3 file whose lanes were computed by a binary
        // with a different sketch layout must not be trusted: decode
        // spot-checks persisted rows against fresh sketches and rebuilds
        // the bank, so exact-mode queries stay exact.
        let mut rng = SmallRng::seed_from_u64(33);
        let g = generators::barabasi_albert(120, 3, &mut rng);
        let mut index = SignatureIndex::new(3, 32, 9);
        index.insert_graph(&g, &g.nodes().collect::<Vec<_>>());

        let mut w = Writer::with_magic(&INDEX_MAGIC);
        w.put_u32(INDEX_VERSION_SKETCH);
        w.put_u32(index.k as u32);
        w.put_u64(index.threshold as u64);
        w.put_u64(index.seed);
        w.put_u64(index.next_id);
        w.put_u64(0);
        w.put_u32(SketchMode::Exact.to_u32());
        let mut entries: Vec<(u64, &NodeSignature)> = index.forest.entries().collect();
        entries.sort_unstable_by_key(|&(id, _)| id);
        let snapshot = store::encode_snapshot(
            index.k,
            entries
                .iter()
                .map(|&(id, sig)| (id, sig.node, sig.prepared())),
        );
        w.put_block(&snapshot);
        // Correctly shaped bank block, but every histogram count shifted
        // one bucket over — the signature of a foreign fingerprint
        // layout (totals per level survive, positions do not).
        let mut bank = Vec::new();
        bank.extend_from_slice(&(sketch::SKETCH_DIM as u32).to_le_bytes());
        bank.extend_from_slice(&(entries.len() as u64).to_le_bytes());
        for &(id, _) in &entries {
            let row = index.bank.lanes_of(id).expect("live row");
            for (lane, &v) in row.iter().enumerate() {
                let skewed = if lane < 8 {
                    v
                } else {
                    let level = (lane - 8) / 8;
                    let bucket = (lane - 8) % 8;
                    row[8 + level * 8 + (bucket + 1) % 8]
                };
                bank.extend_from_slice(&skewed.to_le_bytes());
            }
        }
        w.put_block(&bank);

        let (back, _) = SignatureIndex::decode_with_epoch(&w.finish()).expect("decode");
        for (id, _) in index.forest.entries() {
            assert_eq!(back.bank.lanes_of(id), index.bank.lanes_of(id), "id {id}");
        }
        for probe in [0u32, 61, 119] {
            let sig = NodeSignature::extract(&g, probe, 3);
            assert_eq!(back.query(&sig, 6, 0), index.query(&sig, 6, 0));
        }
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(matches!(
            SignatureIndex::from_bytes(b"short"),
            Err(CodecError::Truncated { .. })
        ));
        let mut ok = SignatureIndex::new(3, 4, 1).to_bytes();
        ok[0] = b'X';
        assert!(matches!(
            SignatureIndex::from_bytes(&ok),
            Err(CodecError::BadMagic)
        ));
        let mut flipped = SignatureIndex::new(3, 4, 1).to_bytes();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0xFF;
        assert!(matches!(
            SignatureIndex::from_bytes(&flipped),
            Err(CodecError::ChecksumMismatch { .. })
        ));
    }
}
