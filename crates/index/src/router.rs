//! **Scatter-gather shard router**: one coordinator in front of a fleet
//! of [`NedServer`](crate::server::NedServer) shard processes, each
//! serving a disjoint id range of one logical signature index.
//!
//! The fleet contract, in one paragraph: a [`ShardMap`] statically
//! partitions the id space by lower bounds (`owner(id)` = the last shard
//! whose start is ≤ `id`), writes route to the healthy replicas of the
//! owning shard through the idempotent explicit-id `putsig` primitive (the
//! coordinator owns id assignment), and reads scatter to all shards and
//! merge through one bounded `(distance, id)` heap — with the shared
//! distance budget pushed down per shard as `sig ... within=<b>`, which
//! tightens as shard replies land. Because per-shard results are computed
//! by the same index code at the same `k`, and the merge orders exactly
//! like [`sort_hits`](crate::forest::ForestHit) (distance, then id, ties
//! kept by the **inclusive** budget), a fleet answer is bit-identical to
//! a single-process index holding all the entries — the property the
//! `fleet.rs` integration tests pin.
//!
//! Consistency is **read-your-acked-writes**: every shard reply carries
//! the publication epoch of the snapshot that answered it, the router
//! remembers the highest epoch each shard has acked (the *fleet epoch
//! vector*), and a scatter read retries a replica whose reply is older
//! than that shard's acked epoch — so a cross-shard result never mixes an
//! acked write's before and after. Multi-shard delta batches additionally
//! run under the fleet write lock, excluding scatter reads while the
//! batch is in flight on several shards at once.
//!
//! Failure model: the router tracks a per-replica lifecycle
//! (**healthy → degraded → catching-up → rejoined**). Writes need a
//! configurable **quorum** of a shard's replicas
//! ([`RouterOptions::quorum`], default majority) instead of all of them —
//! a replica that times out or refuses is marked *degraded* and the write
//! still acks, at the minimum epoch across the acking replicas, so a
//! shard keeps taking writes with a replica down. Degraded replicas take
//! no direct writes (that would fork their history); instead each heal
//! pass probes them — one that recovered on its own (restarted, replayed
//! its own WAL) rejoins immediately, and a stale one is put through a
//! **WAL-suffix catch-up** from a healthy peer
//! ([`ned_core::Request::CatchUp`]), held out of the read rotation until
//! the stream completes. Because the hot paths trigger healing, it is
//! kept off their latency profile: degraded replicas are probed at most
//! once per [`HEAL_PROBE_INTERVAL`] (a dead endpoint costs a connect
//! attempt per interval, not per write) and a catch-up stream runs on a
//! background thread over a dedicated long-deadline connection (a real
//! replay outlives the pooled clients' request timeout).
//!
//! The degraded state itself is only the router's in-memory view, so it
//! cannot be the *load-bearing* fork guard — a restarted router, or a
//! second coordinator attaching to the same fleet, starts with every
//! replica presumed healthy. Three checks hold the invariant anyway:
//! at connect time the fleet epoch vector seeds from the **maximum**
//! epoch across each shard's reachable replicas and anything lagging it
//! starts degraded (never written, so never forked); at write time an
//! ack whose epoch is **below** the shard's acked watermark is treated
//! as proof of staleness — the replica is degraded and its ack excluded
//! from the quorum count rather than folded into the watermark; and at
//! catch-up time the replica compares its own head WAL record against
//! the peer's record at the same epoch and refuses with a loud
//! [`ServerError::Corrupt`] on mismatch instead of silently splicing a
//! forked history (see `NedServer::catch_up_from`).
//!
//! Scatter reads that observe a stale reply mark the replica degraded
//! and trigger that same repair instead of just re-polling; a
//! `fingerprint` probe ([`ShardRouter::probe_health`]) additionally
//! compares per-replica live-set fingerprints and fails **loudly** when
//! two replicas claim the same epoch with different contents — silent
//! divergence is the one fault retrying cannot fix. When no quorum can
//! be reached the operation fails with a *retryable*
//! [`ServerError::Overloaded`]; acked writes are never lost, because a
//! read is only accepted from a replica at or past the acked epoch.

use crate::concurrent::WriteOp;
use crate::forest::ForestHit;
use crate::maintain::GraphMaintainer;
use crate::server::{Dispatch, WireClient};
use ned_core::{Request, Response, ServerError, WireHit};
use ned_graph::{io as graph_io, Graph, GraphDelta, NodeId};
use std::collections::{BinaryHeap, HashMap};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Largest number of idle pooled connections kept per replica.
const POOL_CAP: usize = 8;

/// Minimum spacing between heal probes of one degraded replica. The
/// heal pass runs on the write path, so an unreachable replica must
/// cost a connect attempt at most once per interval — not per write.
pub const HEAL_PROBE_INTERVAL: Duration = Duration::from_secs(2);

/// Read deadline for the `catchup` RPC specifically. A WAL-suffix
/// replay legitimately runs far past the pooled clients' request
/// timeout; cutting it off early would re-mark the replica degraded
/// while the server-side replay kept going, then burn repeat repair
/// attempts against its "already in progress" refusal.
const CATCHUP_REPLAY_TIMEOUT: Duration = Duration::from_secs(600);

/// Static id-range partition of one logical index across a shard fleet.
///
/// `starts[i]` is the lowest id shard `i` may own; id `x` belongs to the
/// **last** shard with `start <= x`, so when two shards share a start
/// (an empty split group) the later one wins and the earlier owns
/// nothing — exactly the layout [`split_index`](crate::fleet::split_index)
/// produces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    starts: Vec<u64>,
}

impl ShardMap {
    /// Validates and wraps a lower-bound vector: non-empty, first bound
    /// `0` (every id must have an owner), non-decreasing.
    pub fn new(starts: Vec<u64>) -> Result<ShardMap, String> {
        if starts.is_empty() {
            return Err("a shard map needs at least one shard".to_string());
        }
        if starts[0] != 0 {
            return Err(format!(
                "the first shard must start at id 0, not {}",
                starts[0]
            ));
        }
        if starts.windows(2).any(|w| w[0] > w[1]) {
            return Err(format!("shard starts must be non-decreasing: {starts:?}"));
        }
        Ok(ShardMap { starts })
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.starts.len()
    }

    /// The lower-bound vector, in shard order.
    pub fn starts(&self) -> &[u64] {
        &self.starts
    }

    /// The shard owning `id` (total: every id has exactly one owner).
    pub fn owner(&self, id: u64) -> usize {
        // partition_point is the count of starts <= id; >= 1 since
        // starts[0] == 0.
        self.starts.partition_point(|s| *s <= id) - 1
    }
}

impl std::fmt::Display for ShardMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let bounds: Vec<String> = self.starts.iter().map(u64::to_string).collect();
        write!(f, "{}", bounds.join(","))
    }
}

/// Tunables for a [`ShardRouter`].
#[derive(Debug, Clone, Copy)]
pub struct RouterOptions {
    /// Signature parameter of the fleet (used for router-side extraction
    /// of `query`/`range`/`track` graph commands).
    pub k: usize,
    /// First id the router will auto-assign. Seed from
    /// [`SignatureIndex::next_id`](crate::signatures::SignatureIndex::next_id)
    /// of the index the fleet was split from, so fresh inserts never
    /// collide with historical ids.
    pub next_id: u64,
    /// Per-connection read timeout toward shards.
    pub read_timeout: Option<Duration>,
    /// Per-connection write timeout toward shards.
    pub write_timeout: Option<Duration>,
    /// Redial attempts per replica for (idempotent) shard writes.
    pub retry_attempts: u32,
    /// Scatter-read retry rounds across a shard's replicas before the
    /// router reports the shard degraded. Backoff between rounds doubles
    /// from 20ms up to 500ms.
    pub read_rounds: u32,
    /// How many replicas of a shard must ack a write before it counts as
    /// committed. `0` (the default) means a **majority** (`n/2 + 1` of
    /// the shard's `n` replicas); explicit values are clamped to
    /// `1..=n`. With a quorum below `n` a shard keeps taking writes
    /// while a replica is down — the laggard is marked degraded and
    /// caught back up from a peer's WAL suffix before it serves reads
    /// again.
    pub quorum: usize,
}

impl Default for RouterOptions {
    fn default() -> Self {
        RouterOptions {
            k: 3,
            next_id: 0,
            read_timeout: Some(Duration::from_secs(5)),
            write_timeout: Some(Duration::from_secs(5)),
            retry_attempts: 4,
            read_rounds: 12,
            quorum: 0,
        }
    }
}

/// Replica lifecycle states, as tracked router-side. A replica starts
/// [`HEALTHY`]; a retryable failure or a stale reply demotes it to
/// [`DEGRADED`] (skipped for writes, probed by heal passes); a
/// WAL-suffix stream in flight holds it at [`CATCHING_UP`] (out of the
/// read rotation entirely); completion — or an epoch probe showing it
/// already caught up on its own — returns it to [`HEALTHY`].
const HEALTHY: u8 = 0;
const DEGRADED: u8 = 1;
const CATCHING_UP: u8 = 2;

/// One shard replica endpoint with its idle-connection pool and
/// router-side health state.
struct Replica {
    addr: String,
    pool: Mutex<Vec<WireClient>>,
    health: AtomicU8,
    /// When the last heal probe of this replica ran — the write-path
    /// rate limiter ([`Replica::probe_due`]).
    last_probe: Mutex<Option<Instant>>,
    /// Why the replica is degraded, for `stats`/`fingerprint` surfaces;
    /// cleared on rejoin.
    last_error: Mutex<Option<String>>,
}

impl Replica {
    fn new(addr: String) -> Replica {
        Replica {
            addr,
            pool: Mutex::new(Vec::new()),
            health: AtomicU8::new(HEALTHY),
            last_probe: Mutex::new(None),
            last_error: Mutex::new(None),
        }
    }

    fn health(&self) -> u8 {
        self.health.load(Ordering::Acquire)
    }

    fn set_health(&self, state: u8) {
        self.health.store(state, Ordering::Release);
        if state == HEALTHY {
            *self.last_error.lock().unwrap_or_else(|p| p.into_inner()) = None;
        }
    }

    /// Atomically enters CATCHING_UP from DEGRADED. `false` means some
    /// other path (a concurrent read repair, another heal pass) already
    /// owns a stream toward this replica — exactly one may.
    fn begin_catch_up(&self) -> bool {
        self.health
            .compare_exchange(DEGRADED, CATCHING_UP, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Consumes one rate-limited heal-probe slot: `true` at most once
    /// per [`HEAL_PROBE_INTERVAL`], so the hot paths never pay a
    /// connect attempt to a dead endpoint on every request.
    fn probe_due(&self) -> bool {
        let mut last = self.last_probe.lock().unwrap_or_else(|p| p.into_inner());
        match *last {
            Some(at) if at.elapsed() < HEAL_PROBE_INTERVAL => false,
            _ => {
                *last = Some(Instant::now());
                true
            }
        }
    }

    fn note_error(&self, msg: String) {
        *self.last_error.lock().unwrap_or_else(|p| p.into_inner()) = Some(msg);
    }

    fn health_name(&self) -> &'static str {
        match self.health() {
            DEGRADED => "degraded",
            CATCHING_UP => "catching-up",
            _ => "healthy",
        }
    }

    /// `health_name`, with the degradation reason when one is recorded.
    fn status(&self) -> String {
        let err = self.last_error.lock().unwrap_or_else(|p| p.into_inner());
        match (self.health(), err.as_deref()) {
            (DEGRADED, Some(e)) => format!("degraded: {e}"),
            _ => self.health_name().to_string(),
        }
    }

    /// Pops a pooled connection or dials a fresh one.
    fn lease(&self, opts: &RouterOptions) -> Result<WireClient, ServerError> {
        let pooled = self.pool.lock().unwrap_or_else(|p| p.into_inner()).pop();
        match pooled {
            Some(c) => Ok(c),
            None => WireClient::builder()
                .timeouts(opts.read_timeout, opts.write_timeout)
                .connect(&self.addr)
                .map_err(|e| ServerError::Io(format!("{}: {e}", self.addr))),
        }
    }

    fn give_back(&self, client: WireClient) {
        let mut pool = self.pool.lock().unwrap_or_else(|p| p.into_inner());
        if pool.len() < POOL_CAP {
            pool.push(client);
        }
    }

    /// One request on a pooled connection. In-band `error:` replies are
    /// surfaced as `Err` so callers see one failure channel; the
    /// connection is returned to the pool only on success.
    fn request(&self, opts: &RouterOptions, req: &Request) -> Result<Response, ServerError> {
        let mut batch = self.request_batch(opts, std::slice::from_ref(req))?;
        Ok(batch.pop().expect("length checked by request_batch"))
    }

    /// One multi-command frame on a pooled connection; any in-band
    /// `error:` element fails the whole call.
    fn request_batch(
        &self,
        opts: &RouterOptions,
        reqs: &[Request],
    ) -> Result<Vec<Response>, ServerError> {
        let mut client = self.lease(opts)?;
        match client.request_batch(reqs) {
            Ok(resps) => {
                // A dead or desynced connection must not go back in the
                // pool; an in-band error leaves the stream healthy.
                self.give_back(client);
                for resp in &resps {
                    if let Response::Error(e) = resp {
                        return Err(e.clone());
                    }
                }
                Ok(resps)
            }
            Err(e) => Err(e),
        }
    }

    /// [`Replica::request_batch`] with redial-and-retry on retryable
    /// failures — only for idempotent batches (`putsig`, `remove`,
    /// `epoch`, `checkpoint` all are).
    fn request_retrying(
        &self,
        opts: &RouterOptions,
        reqs: &[Request],
    ) -> Result<Vec<Response>, ServerError> {
        let mut attempt = 0u32;
        loop {
            match self.request_batch(opts, reqs) {
                Err(e) if e.is_retryable() && attempt + 1 < opts.retry_attempts.max(1) => {
                    std::thread::sleep(backoff(attempt));
                    attempt += 1;
                }
                other => return other,
            }
        }
    }
}

fn backoff(round: u32) -> Duration {
    Duration::from_millis((20u64 << round.min(5)).min(500))
}

/// One shard: its replicas plus the highest epoch the router has seen a
/// write acked at — the shard's slot in the fleet epoch vector. The
/// replicas are `Arc`-shared so a background catch-up thread can outlive
/// the request that spawned it.
struct Shard {
    replicas: Vec<Arc<Replica>>,
    acked_epoch: AtomicU64,
    /// Rotation cursor so concurrent reads spread across replicas.
    cursor: AtomicUsize,
}

/// A merged scatter-read result: globally ordered hits plus the
/// per-shard epochs that answered — the proof of which index versions
/// the answer was computed from.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetHits {
    /// Hits sorted by `(distance, id)`, exactly as a single-process
    /// index would return them.
    pub hits: Vec<ForestHit>,
    /// `epochs[i]` = publication epoch of shard `i`'s answering snapshot.
    pub epochs: Vec<u64>,
}

/// The scatter-gather coordinator. See the [module docs](self).
///
/// Cheap to share behind an [`Arc`]; every operation takes `&self`.
/// Writes serialize on the id counter (the fleet keeps the repo's
/// single-writer idiom); scatter reads run concurrently.
pub struct ShardRouter {
    map: ShardMap,
    shards: Vec<Shard>,
    opts: RouterOptions,
    /// Fleet-wide id assignment — held across a whole write so a failed
    /// write never leaks its id into a later insert's way.
    next_id: Mutex<u64>,
    /// Readers-writer fence between scatter reads (read) and multi-shard
    /// delta batches (write): a cross-shard query never observes half of
    /// a delta batch.
    fleet_lock: RwLock<()>,
    /// The tracked mutating graph, maintained router-side; its write
    /// batches are partitioned by owner and pushed down as `putsig`s.
    maintained: Mutex<Option<GraphMaintainer>>,
}

impl ShardRouter {
    /// Connects to a fleet: `replicas[i]` lists the `host:port` endpoints
    /// serving shard `i` (at least one each). **Every** replica of every
    /// shard is probed with `epoch`; some replica of each shard must
    /// answer. The fleet epoch vector seeds from the **maximum** epoch
    /// each shard's replicas report — quorum writes make a lagging
    /// replica a routine steady state, so seeding from whichever replica
    /// answered first could start the watermark below previously-acked
    /// writes and accept reads that miss them. Replicas lagging the max
    /// (or unreachable) start **degraded**: a fresh coordinator must
    /// never write to a stale replica at its own lower epoch, which
    /// would fork its history.
    pub fn connect(
        map: ShardMap,
        replicas: Vec<Vec<String>>,
        opts: RouterOptions,
    ) -> Result<ShardRouter, ServerError> {
        if replicas.len() != map.shards() {
            return Err(ServerError::bad(format!(
                "shard map has {} shard(s) but {} replica group(s) were given",
                map.shards(),
                replicas.len()
            )));
        }
        if let Some(empty) = replicas.iter().position(Vec::is_empty) {
            return Err(ServerError::bad(format!(
                "shard {empty} has no replica endpoints"
            )));
        }
        let shards: Vec<Shard> = replicas
            .into_iter()
            .map(|group| Shard {
                replicas: group
                    .into_iter()
                    .map(|addr| Arc::new(Replica::new(addr)))
                    .collect(),
                acked_epoch: AtomicU64::new(0),
                cursor: AtomicUsize::new(0),
            })
            .collect();
        let router = ShardRouter {
            map,
            shards,
            opts,
            next_id: Mutex::new(opts.next_id),
            fleet_lock: RwLock::new(()),
            maintained: Mutex::new(None),
        };
        for (i, shard) in router.shards.iter().enumerate() {
            let mut epochs: Vec<Option<u64>> = Vec::with_capacity(shard.replicas.len());
            for replica in &shard.replicas {
                let probed = match replica.request_retrying(&router.opts, &[Request::Epoch]) {
                    Ok(resps) => match resps.first() {
                        Some(Response::Epoch { epoch, .. }) => Some(*epoch),
                        _ => None,
                    },
                    Err(_) => None,
                };
                if probed.is_none() {
                    replica.note_error("unreachable at connect".to_string());
                    replica.set_health(DEGRADED);
                }
                epochs.push(probed);
            }
            let Some(max) = epochs.iter().flatten().copied().max() else {
                return Err(ServerError::Overloaded(format!(
                    "shard {i}: no replica answered the connect-time epoch probe"
                )));
            };
            shard.acked_epoch.store(max, Ordering::Release);
            for (replica, epoch) in shard.replicas.iter().zip(&epochs) {
                if let Some(e) = epoch {
                    if *e < max {
                        replica
                            .note_error(format!("lagged the fleet at connect (epoch {e} < {max})"));
                        replica.set_health(DEGRADED);
                    }
                }
            }
        }
        Ok(router)
    }

    /// The id-range partition this router routes by.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// The options the router was built with.
    pub fn options(&self) -> &RouterOptions {
        &self.opts
    }

    /// The current fleet epoch vector (highest acked epoch per shard).
    pub fn acked_epochs(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.acked_epoch.load(Ordering::Acquire))
            .collect()
    }

    /// The id the next auto-assigning insert will take.
    pub fn peek_next_id(&self) -> u64 {
        *self.next_id.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// One read against shard `shard_idx`, requiring a reply epoch of at
    /// least `min_epoch` when the reply carries one. Rotates across
    /// replicas (skipping ones mid catch-up — they are out of the
    /// rotation until their WAL stream completes); a stale reply marks
    /// the replica degraded and triggers **read repair** — a catch-up
    /// from a healthy peer — instead of just re-polling, and a reply at
    /// the required epoch is proof of health, re-admitting a previously
    /// degraded replica. When every round is exhausted the shard is
    /// *degraded* and the error is a retryable
    /// [`ServerError::Overloaded`].
    fn shard_read(
        &self,
        shard_idx: usize,
        req: &Request,
        min_epoch: u64,
    ) -> Result<Response, ServerError> {
        let shard = &self.shards[shard_idx];
        let n = shard.replicas.len();
        let mut last: Option<ServerError> = None;
        for round in 0..self.opts.read_rounds.max(1) {
            if round > 0 {
                std::thread::sleep(backoff(round - 1));
            }
            let start = shard.cursor.fetch_add(1, Ordering::Relaxed);
            let mut stale: Vec<usize> = Vec::new();
            for i in 0..n {
                let idx = (start + i) % n;
                let replica = &shard.replicas[idx];
                if replica.health() == CATCHING_UP {
                    continue;
                }
                match replica.request(&self.opts, req) {
                    Ok(resp) => match resp.epoch() {
                        Some(epoch) if epoch < min_epoch => {
                            replica.set_health(DEGRADED);
                            stale.push(idx);
                            last = Some(ServerError::Overloaded(format!(
                                "replica {} lags at epoch {epoch} (need {min_epoch})",
                                replica.addr
                            )));
                        }
                        _ => {
                            replica.set_health(HEALTHY);
                            return Ok(resp);
                        }
                    },
                    Err(e) if e.is_retryable() => {
                        replica.set_health(DEGRADED);
                        last = Some(e);
                    }
                    Err(e) => return Err(e),
                }
            }
            for idx in stale {
                // Read repair, off the read path: the replica is out of
                // rotation the moment the background stream starts.
                self.spawn_catch_up(shard_idx, idx);
            }
        }
        Err(ServerError::Overloaded(format!(
            "shard {shard_idx} degraded: no replica answered at epoch >= {min_epoch} ({})",
            last.map_or_else(|| "no replicas".to_string(), |e| e.to_string())
        )))
    }

    /// The ack threshold for writes to a shard with `replicas` replicas:
    /// [`RouterOptions::quorum`], defaulting to a majority, clamped to
    /// `1..=replicas`.
    fn effective_quorum(&self, replicas: usize) -> usize {
        let q = if self.opts.quorum == 0 {
            replicas / 2 + 1
        } else {
            self.opts.quorum
        };
        q.clamp(1, replicas)
    }

    /// Best-effort heal pass over a shard's degraded replicas, run from
    /// the hot paths — so it is **rate-limited** (one epoch probe per
    /// replica per [`HEAL_PROBE_INTERVAL`]; a dead endpoint costs a
    /// connect attempt once per interval, not per write) and
    /// **non-blocking** (a stale replica's WAL-suffix stream runs on a
    /// background thread, the CATCHING_UP state keeping it out of both
    /// rotations meanwhile). A replica that already caught up on its own
    /// (restarted and replayed its local WAL) rejoins immediately; an
    /// unreachable one stays degraded for the next pass.
    fn heal_shard(&self, shard_idx: usize) {
        let shard = &self.shards[shard_idx];
        let acked = shard.acked_epoch.load(Ordering::Acquire);
        for (idx, replica) in shard.replicas.iter().enumerate() {
            if replica.health() != DEGRADED || !replica.probe_due() {
                continue;
            }
            let Ok(Response::Epoch { epoch, .. }) = replica.request(&self.opts, &Request::Epoch)
            else {
                continue;
            };
            if epoch >= acked {
                replica.set_health(HEALTHY);
            } else {
                self.spawn_catch_up(shard_idx, idx);
            }
        }
    }

    /// A healthy donor for replica `idx`: any *other* healthy replica of
    /// the shard. `None` means the shard is down to its last copy — the
    /// stale replica stays degraded, and only a loud operator-visible
    /// error can follow, never a silent resurrection from a stale
    /// snapshot.
    fn healthy_peer(&self, shard_idx: usize, idx: usize) -> Option<String> {
        self.shards[shard_idx]
            .replicas
            .iter()
            .enumerate()
            .find(|&(i, p)| i != idx && p.health() == HEALTHY)
            .map(|(_, p)| p.addr.clone())
    }

    /// The `catchup <peer>` RPC against `replica` (already flipped to
    /// CATCHING_UP by the caller), on a **dedicated** connection whose
    /// read deadline is [`CATCHUP_REPLAY_TIMEOUT`] — the pooled clients'
    /// request timeout would report any real replay as failed while the
    /// server side kept replaying, then burn repeat repair attempts
    /// against its "already in progress" refusal. Health is updated from
    /// the outcome; returns whether the replica rejoined.
    fn run_catch_up(replica: &Replica, peer: String, write_timeout: Option<Duration>) -> bool {
        let result = WireClient::builder()
            .timeouts(Some(CATCHUP_REPLAY_TIMEOUT), write_timeout)
            .connect(&replica.addr)
            .map_err(|e| ServerError::Io(format!("{}: {e}", replica.addr)))
            .and_then(|mut client| client.request(&Request::CatchUp { peer }));
        match result {
            Ok(_) => {
                replica.set_health(HEALTHY);
                true
            }
            Err(e) => {
                replica.note_error(format!("catch-up failed: {e}"));
                replica.set_health(DEGRADED);
                false
            }
        }
    }

    /// Blocking WAL-suffix catch-up from a healthy peer into a stale
    /// replica — the explicit anti-entropy pass
    /// ([`ShardRouter::probe_health`]) uses it because its caller wants
    /// the outcome in the report. Returns whether the replica rejoined;
    /// `false` also covers "a stream is already in flight elsewhere".
    fn catch_up_replica(&self, shard_idx: usize, idx: usize) -> bool {
        let Some(peer) = self.healthy_peer(shard_idx, idx) else {
            return false;
        };
        let replica = &self.shards[shard_idx].replicas[idx];
        if !replica.begin_catch_up() {
            return false;
        }
        Self::run_catch_up(replica, peer, self.opts.write_timeout)
    }

    /// Fire-and-forget catch-up for the hot paths (read repair, the
    /// write-path heal pass): the replica flips to CATCHING_UP at once —
    /// out of both rotations — and a background thread drives the
    /// stream, so no client request blocks on a WAL replay.
    fn spawn_catch_up(&self, shard_idx: usize, idx: usize) {
        let Some(peer) = self.healthy_peer(shard_idx, idx) else {
            return;
        };
        let replica = Arc::clone(&self.shards[shard_idx].replicas[idx]);
        if !replica.begin_catch_up() {
            return;
        }
        let write_timeout = self.opts.write_timeout;
        std::thread::spawn(move || {
            Self::run_catch_up(&replica, peer, write_timeout);
        });
    }

    /// One (idempotent) write batch against shard `shard_idx`, committed
    /// once a **quorum** of its replicas ack
    /// ([`ShardRouter::effective_quorum`]). The batch must carry at
    /// least one epoch-bearing reply (a `putsig` ack, or a trailing
    /// `epoch` probe); the write is acked at the *minimum* epoch across
    /// the acking replicas, and a later read only accepts replies at or
    /// past that epoch — so an acked write is never served from a
    /// replica that missed it. Degraded replicas are skipped rather than
    /// written directly (a write applied out of step would fork their
    /// epoch history); they rejoin through the heal pass that runs
    /// first. A replica that fails retryably is marked degraded and the
    /// write continues; below quorum the whole write fails with a
    /// retryable [`ServerError::Overloaded`] and no id or epoch is
    /// consumed router-side. An ack whose epoch is **below** the shard's
    /// acked watermark is proof of staleness, not of replication: the
    /// replica missed acked writes (a restarted router or a second
    /// coordinator saw it as healthy) and has just forked its history —
    /// folding its low epoch into the watermark would let it pass the
    /// read gate while missing acked writes, so it is degraded and its
    /// ack excluded from the quorum count instead; the catch-up it is
    /// scheduled for verifies the fork point and refuses loudly.
    /// Returns the first counted ack's replies.
    fn write_shard(
        &self,
        shard_idx: usize,
        reqs: &[Request],
    ) -> Result<Vec<Response>, ServerError> {
        self.heal_shard(shard_idx);
        let shard = &self.shards[shard_idx];
        let n = shard.replicas.len();
        let quorum = self.effective_quorum(n);
        let floor = shard.acked_epoch.load(Ordering::Acquire);
        let mut first: Option<Vec<Response>> = None;
        let mut acked = u64::MAX;
        let mut acks = 0usize;
        let mut out: Vec<&str> = Vec::new();
        for replica in &shard.replicas {
            if replica.health() != HEALTHY {
                out.push(replica.addr.as_str());
                continue;
            }
            match replica.request_retrying(&self.opts, reqs) {
                Ok(resps) => {
                    let epoch = resps
                        .iter()
                        .rev()
                        .find_map(Response::epoch)
                        .ok_or_else(|| {
                            ServerError::Corrupt(format!(
                                "shard {shard_idx}: write batch reply carried no epoch"
                            ))
                        })?;
                    if epoch < floor {
                        replica.note_error(format!(
                            "acked a write at epoch {epoch}, below the shard's acked \
                             watermark {floor}: stale or forked history"
                        ));
                        replica.set_health(DEGRADED);
                        out.push(replica.addr.as_str());
                        continue;
                    }
                    acked = acked.min(epoch);
                    acks += 1;
                    if first.is_none() {
                        first = Some(resps);
                    }
                }
                Err(e) if e.is_retryable() => {
                    replica.set_health(DEGRADED);
                    out.push(replica.addr.as_str());
                }
                Err(e) => return Err(e),
            }
        }
        if acks < quorum {
            return Err(ServerError::Overloaded(format!(
                "shard {shard_idx}: quorum lost — {acks} of {n} replica(s) acked (need \
                 {quorum}; unavailable: [{}])",
                out.join(", ")
            )));
        }
        shard.acked_epoch.fetch_max(acked, Ordering::AcqRel);
        Ok(first.expect("acks >= quorum >= 1"))
    }

    /// Scatter-gather k-NN by literal shape: bit-identical to querying a
    /// single index holding every shard's entries. `within` (when given)
    /// seeds the shared budget — e.g. a `sig ... within=<b>` forwarded
    /// from an upstream coordinator.
    pub fn knn(
        &self,
        shape: &str,
        top: usize,
        within: Option<u64>,
    ) -> Result<FleetHits, ServerError> {
        let _fleet = self.fleet_lock.read().unwrap_or_else(|p| p.into_inner());
        let min_epochs = self.acked_epochs();
        // The shared radius: an inclusive upper bound on distances that
        // can still enter the global top-k. Starts unbounded (u64::MAX
        // encodes "no budget") and tightens monotonically as shard
        // replies fill the merge heap.
        let budget = AtomicU64::new(within.unwrap_or(u64::MAX));
        let merge = Mutex::new(BoundedMerge::new(top));
        let epochs = Mutex::new(vec![0u64; self.shards.len()]);
        let results: Vec<Result<(), ServerError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.shards.len())
                .map(|i| {
                    let (budget, merge, epochs, min_epochs) =
                        (&budget, &merge, &epochs, &min_epochs);
                    scope.spawn(move || -> Result<(), ServerError> {
                        let b = budget.load(Ordering::Acquire);
                        let req = Request::Sig {
                            shape: shape.to_string(),
                            top,
                            within: (b != u64::MAX).then_some(b),
                        };
                        let resp = self.shard_read(i, &req, min_epochs[i])?;
                        let Response::Hits { epoch, hits } = resp else {
                            return Err(ServerError::Corrupt(format!(
                                "shard {i} answered a sig query with a non-hits reply"
                            )));
                        };
                        let mut m = merge.lock().unwrap_or_else(|p| p.into_inner());
                        for hit in hits {
                            m.push(hit);
                        }
                        if let Some(bound) = m.bound() {
                            budget.fetch_min(bound, Ordering::AcqRel);
                        }
                        drop(m);
                        epochs.lock().unwrap_or_else(|p| p.into_inner())[i] = epoch;
                        Ok(())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("scatter worker panicked"))
                .collect()
        });
        for r in results {
            r?;
        }
        Ok(FleetHits {
            hits: merge
                .into_inner()
                .unwrap_or_else(|p| p.into_inner())
                .into_sorted_hits(),
            epochs: epochs.into_inner().unwrap_or_else(|p| p.into_inner()),
        })
    }

    /// Scatter-gather range query by literal shape (all hits with
    /// NED ≤ `radius`), merged into global `(distance, id)` order.
    pub fn range(&self, shape: &str, radius: u64) -> Result<FleetHits, ServerError> {
        let _fleet = self.fleet_lock.read().unwrap_or_else(|p| p.into_inner());
        let min_epochs = self.acked_epochs();
        let results: Vec<Result<(u64, Vec<WireHit>), ServerError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.shards.len())
                .map(|i| {
                    let min_epochs = &min_epochs;
                    scope.spawn(move || {
                        let req = Request::RangeSig {
                            shape: shape.to_string(),
                            radius,
                        };
                        match self.shard_read(i, &req, min_epochs[i])? {
                            Response::Hits { epoch, hits } => Ok((epoch, hits)),
                            _ => Err(ServerError::Corrupt(format!(
                                "shard {i} answered a rangesig query with a non-hits reply"
                            ))),
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("scatter worker panicked"))
                .collect()
        });
        let mut hits: Vec<ForestHit> = Vec::new();
        let mut epochs = Vec::with_capacity(self.shards.len());
        for r in results {
            let (epoch, shard_hits) = r?;
            epochs.push(epoch);
            hits.extend(shard_hits.into_iter().map(|h| ForestHit {
                id: h.id,
                distance: h.distance,
            }));
        }
        hits.sort_by(|a, b| {
            a.distance
                .total_cmp(&b.distance)
                .then_with(|| a.id.cmp(&b.id))
        });
        Ok(FleetHits { hits, epochs })
    }

    /// Scatter `epoch` to every shard; returns the **summed** epochs and
    /// live sizes — the sums are monotone under writes, which is what a
    /// client polling `epoch` for progress relies on.
    pub fn epoch(&self) -> Result<(u64, u64), ServerError> {
        let _fleet = self.fleet_lock.read().unwrap_or_else(|p| p.into_inner());
        let min_epochs = self.acked_epochs();
        let mut epoch_sum = 0u64;
        let mut len_sum = 0u64;
        for (i, &min_epoch) in min_epochs.iter().enumerate() {
            match self.shard_read(i, &Request::Epoch, min_epoch)? {
                Response::Epoch { epoch, len } => {
                    epoch_sum += epoch;
                    len_sum += len;
                }
                _ => {
                    return Err(ServerError::Corrupt(format!(
                        "shard {i} answered `epoch` with a different reply"
                    )))
                }
            }
        }
        Ok((epoch_sum, len_sum))
    }

    /// Inserts a literal shape under the next fleet-assigned id; the id
    /// is acked on a **quorum** of the owning shard's replicas before it
    /// is returned (a failed write burns no id and may be retried).
    pub fn insert_shape(&self, shape: &str) -> Result<u64, ServerError> {
        let _fleet = self.fleet_lock.read().unwrap_or_else(|p| p.into_inner());
        let mut next = self.next_id.lock().unwrap_or_else(|p| p.into_inner());
        let id = *next;
        self.write_shard(
            self.map.owner(id),
            &[Request::PutSig {
                id,
                shape: shape.to_string(),
            }],
        )?;
        *next = id + 1;
        Ok(id)
    }

    /// Writes a literal shape under an **explicit** id (replacing any
    /// live occupant) and bumps the fleet id watermark past it. Returns
    /// `(fresh, acked_epoch_sum)`.
    pub fn put_shape(&self, id: u64, shape: &str) -> Result<(bool, u64), ServerError> {
        let _fleet = self.fleet_lock.read().unwrap_or_else(|p| p.into_inner());
        let mut next = self.next_id.lock().unwrap_or_else(|p| p.into_inner());
        let resps = self.write_shard(
            self.map.owner(id),
            &[Request::PutSig {
                id,
                shape: shape.to_string(),
            }],
        )?;
        *next = (*next).max(id.saturating_add(1));
        match resps.first() {
            Some(Response::Put { fresh, .. }) => Ok((*fresh, self.acked_epoch_sum())),
            _ => Err(ServerError::Corrupt(
                "shard answered putsig with a different reply".to_string(),
            )),
        }
    }

    /// Removes an id from its owning shard (quorum-acked like every
    /// write). Returns whether a live signature existed.
    pub fn remove(&self, id: u64) -> Result<bool, ServerError> {
        let _fleet = self.fleet_lock.read().unwrap_or_else(|p| p.into_inner());
        let resps = self.write_shard(
            self.map.owner(id),
            // `remove` acks carry no epoch, so harvest one explicitly.
            &[Request::Remove { id }, Request::Epoch],
        )?;
        match resps.first() {
            Some(Response::Removed { existed, .. }) => Ok(*existed),
            _ => Err(ServerError::Corrupt(
                "shard answered remove with a different reply".to_string(),
            )),
        }
    }

    /// Attaches a mutating graph for `addedge`/`deledge` deltas, exactly
    /// like [`NedServer::track`](crate::server::NedServer::track) —
    /// except the router holds no local index to verify against, so the
    /// caller is trusted that node `v` is indexed fleet-wide under id
    /// `v` (the layout a split of an `insert_graph`-built index has).
    pub fn track(&self, graph: &Graph) -> Result<String, ServerError> {
        let mut tracked = self.maintained.lock().unwrap_or_else(|p| p.into_inner());
        let maintainer = GraphMaintainer::attach(graph, self.opts.k, 0, 0);
        let line = format!(
            "tracking graph ({} nodes, {} edges, k = {})",
            maintainer.num_nodes(),
            maintainer.num_edges(),
            maintainer.k()
        );
        *tracked = Some(maintainer);
        Ok(line)
    }

    /// Applies one delta batch to the tracked graph and pushes the
    /// materialized write batch down to the owning shards, under the
    /// fleet **write** lock — scatter reads never observe half of it.
    /// Insert ops get fleet-assigned ids (converted to `putsig`); every
    /// per-shard batch ends with an `epoch` probe that advances the
    /// fleet epoch vector. On any shard failure the tracked graph is
    /// detached (its shadow state no longer matches the fleet) and the
    /// caller must re-track, mirroring the single-process server.
    pub fn apply_delta(&self, deltas: &[GraphDelta]) -> Result<String, ServerError> {
        let _fleet = self.fleet_lock.write().unwrap_or_else(|p| p.into_inner());
        let mut tracked = self.maintained.lock().unwrap_or_else(|p| p.into_inner());
        let maintainer = tracked
            .as_mut()
            .ok_or_else(|| ServerError::bad("no tracked graph; run `track <graph.edges>` first"))?;
        // Validate endpoints against the *running* slot count: an edge may
        // legally reference a node added earlier in the same batch.
        let mut slots = maintainer.num_nodes();
        for delta in deltas {
            match delta {
                GraphDelta::AddNode => slots += 1,
                GraphDelta::AddEdge(a, b) | GraphDelta::RemoveEdge(a, b) => {
                    if *a as usize >= slots || *b as usize >= slots {
                        return Err(ServerError::bad(format!(
                            "edge ({a}, {b}) out of range ({slots} nodes)"
                        )));
                    }
                }
                GraphDelta::RemoveNode(_) => {}
            }
        }
        let batch = match catch_unwind(AssertUnwindSafe(|| maintainer.materialize(deltas))) {
            Ok(batch) => batch,
            Err(_) => {
                *tracked = None;
                return Err(ServerError::Io(
                    "delta materialization failed (internal panic); the tracked graph was \
                     detached — re-track to resume"
                        .to_string(),
                ));
            }
        };
        let mut next = self.next_id.lock().unwrap_or_else(|p| p.into_inner());
        let mut assigned = Vec::with_capacity(batch.added.len());
        let mut per_shard: Vec<Vec<Request>> = vec![Vec::new(); self.shards.len()];
        for op in &batch.ops {
            match op {
                WriteOp::Remove(id) => {
                    per_shard[self.map.owner(*id)].push(Request::Remove { id: *id });
                }
                WriteOp::Replace(id, sig) => {
                    per_shard[self.map.owner(*id)].push(Request::PutSig {
                        id: *id,
                        shape: ned_tree::serialize::print(sig.tree()),
                    });
                }
                WriteOp::Insert(sig) => {
                    let id = *next;
                    *next += 1;
                    assigned.push(id);
                    per_shard[self.map.owner(id)].push(Request::PutSig {
                        id,
                        shape: ned_tree::serialize::print(sig.tree()),
                    });
                }
            }
        }
        for (shard, mut reqs) in per_shard.into_iter().enumerate() {
            if reqs.is_empty() {
                continue;
            }
            reqs.push(Request::Epoch);
            if let Err(e) = self.write_shard(shard, &reqs) {
                *tracked = None;
                return Err(ServerError::Io(format!(
                    "delta application failed on shard {shard} ({e}); the tracked graph was \
                     detached — re-track to resume (acked state is consistent: unacked ops \
                     are idempotent and safe to replay)"
                )));
            }
        }
        maintainer.commit_inserted(&batch.added, assigned);
        Ok(format!("{} epoch={}", batch.report, self.acked_epoch_sum()))
    }

    /// Sends `req` to every replica of every shard, failing on the first
    /// error. Returns how many replicas answered (used by `checkpoint`).
    pub fn broadcast(&self, req: &Request) -> Result<usize, ServerError> {
        let mut count = 0;
        for shard in &self.shards {
            for replica in &shard.replicas {
                replica.request_retrying(&self.opts, std::slice::from_ref(req))?;
                count += 1;
            }
        }
        Ok(count)
    }

    /// Best-effort clean shutdown of every shard replica (each drains,
    /// checkpoints, and exits). Unreachable replicas are skipped; returns
    /// how many acknowledged the drain.
    pub fn shutdown_fleet(&self) -> usize {
        let mut count = 0;
        for shard in &self.shards {
            for replica in &shard.replicas {
                if replica.request(&self.opts, &Request::Shutdown).is_ok() {
                    count += 1;
                }
            }
        }
        count
    }

    /// One anti-entropy pass over the whole fleet: every replica answers
    /// a `fingerprint` probe (publication epoch, live size, and the
    /// process-stable live-set fingerprint). A replica lagging its
    /// shard's acked epoch is marked degraded and put through a
    /// WAL-suffix catch-up from a healthy peer; an unreachable one is
    /// marked degraded for the next pass. Two replicas claiming the
    /// **same** epoch with **different** fingerprints is silent
    /// divergence — a loud, non-retryable [`ServerError::Corrupt`],
    /// because no amount of retrying makes bit-different replicas agree
    /// and serving from either would violate the quorum invariant.
    /// Returns the per-replica health report (the fleet `fingerprint`
    /// surface).
    pub fn probe_health(&self) -> Result<String, ServerError> {
        let mut lines = Vec::new();
        for (i, shard) in self.shards.iter().enumerate() {
            let acked = shard.acked_epoch.load(Ordering::Acquire);
            let mut seen: Vec<(u64, u64, String)> = Vec::new();
            for (idx, replica) in shard.replicas.iter().enumerate() {
                match replica.request(&self.opts, &Request::Fingerprint) {
                    Ok(Response::Fingerprint { epoch, len, hash }) => {
                        for (peer_epoch, peer_hash, peer) in &seen {
                            if *peer_epoch == epoch && *peer_hash != hash {
                                return Err(ServerError::Corrupt(format!(
                                    "shard {i} diverged: {} and {peer} both claim epoch \
                                     {epoch} with different live-set fingerprints \
                                     ({hash:016x} != {peer_hash:016x}); an acked write is \
                                     unaccounted for on one of them",
                                    replica.addr
                                )));
                            }
                        }
                        seen.push((epoch, hash, replica.addr.clone()));
                        let state = if epoch < acked {
                            // Leave a replica mid background stream to
                            // its owner; degrade-and-heal the rest here,
                            // synchronously — the operator asked for the
                            // outcome.
                            if replica.health() != CATCHING_UP {
                                replica.set_health(DEGRADED);
                            }
                            if self.catch_up_replica(i, idx) {
                                "rejoined after catch-up"
                            } else if replica.health() == CATCHING_UP {
                                "catching up (WAL stream in flight)"
                            } else {
                                "degraded (stale, awaiting catch-up)"
                            }
                        } else {
                            replica.set_health(HEALTHY);
                            "healthy"
                        };
                        lines.push(format!(
                            "shard {i} replica {}: {state}, epoch {epoch}, len {len}, \
                             fingerprint {hash:016x}",
                            replica.addr
                        ));
                    }
                    Ok(_) => {
                        return Err(ServerError::Corrupt(format!(
                            "shard {i} replica {} answered `fingerprint` with a different \
                             reply",
                            replica.addr
                        )))
                    }
                    Err(e) => {
                        replica.set_health(DEGRADED);
                        lines.push(format!(
                            "shard {i} replica {}: degraded ({e})",
                            replica.addr
                        ));
                    }
                }
            }
        }
        Ok(lines.join("\n"))
    }

    /// Human-readable fleet topology + epoch vector + per-replica health
    /// (the router's `stats` reply). Health states are the router's
    /// current view — no probes are sent; `fingerprint` runs the active
    /// anti-entropy pass.
    pub fn stats_line(&self) -> String {
        let mut lines = vec![format!(
            "router: {} shard(s), bounds [{}], next id {}, k = {}",
            self.map.shards(),
            self.map,
            self.peek_next_id(),
            self.opts.k
        )];
        for (i, shard) in self.shards.iter().enumerate() {
            let addrs: Vec<String> = shard
                .replicas
                .iter()
                .map(|r| format!("{} ({})", r.addr, r.status()))
                .collect();
            lines.push(format!(
                "shard {i}: start {}, acked epoch {}, write quorum {}/{}, replicas [{}]",
                self.map.starts()[i],
                shard.acked_epoch.load(Ordering::Acquire),
                self.effective_quorum(shard.replicas.len()),
                shard.replicas.len(),
                addrs.join(", ")
            ));
        }
        lines.join("\n")
    }

    fn acked_epoch_sum(&self) -> u64 {
        self.acked_epochs().iter().sum()
    }
}

impl std::fmt::Debug for ShardRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardRouter")
            .field("map", &self.map)
            .field("acked_epochs", &self.acked_epochs())
            .finish()
    }
}

/// A bounded `(distance, id)` merge: keeps the `cap` globally smallest
/// hits, exactly the order [`crate::forest::ShardedVpForest`] sorts by —
/// max-heap rooted at the current worst kept hit, so the eviction bound
/// is O(1) to read and tightens the shared scatter budget.
struct BoundedMerge {
    cap: usize,
    heap: BinaryHeap<MergeEntry>,
}

impl BoundedMerge {
    fn new(cap: usize) -> BoundedMerge {
        BoundedMerge {
            cap,
            heap: BinaryHeap::with_capacity(cap.saturating_add(1)),
        }
    }

    fn push(&mut self, hit: WireHit) {
        if self.cap == 0 {
            return;
        }
        let entry = MergeEntry(hit);
        if self.heap.len() < self.cap {
            self.heap.push(entry);
        } else if let Some(worst) = self.heap.peek() {
            if entry < *worst {
                self.heap.pop();
                self.heap.push(entry);
            }
        }
    }

    /// The inclusive distance budget proven so far: once the heap is
    /// full, no hit with distance strictly above the worst kept distance
    /// can enter — ties still can (smaller id wins), hence *inclusive*.
    /// Distances are integral (NED is a u64 carried as f64), so the cast
    /// is exact.
    fn bound(&self) -> Option<u64> {
        if self.heap.len() == self.cap {
            self.heap.peek().map(|worst| worst.0.distance as u64)
        } else {
            None
        }
    }

    fn into_sorted_hits(self) -> Vec<ForestHit> {
        self.heap
            .into_sorted_vec()
            .into_iter()
            .map(|e| ForestHit {
                id: e.0.id,
                distance: e.0.distance,
            })
            .collect()
    }
}

/// Heap ordering: by `(distance, id)` ascending, so the heap max is the
/// worst kept hit. Distances are never NaN (`total_cmp` for rigor).
struct MergeEntry(WireHit);

impl PartialEq for MergeEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for MergeEntry {}

impl PartialOrd for MergeEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for MergeEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .distance
            .total_cmp(&other.0.distance)
            .then_with(|| self.0.id.cmp(&other.0.id))
    }
}

/// The router's TCP front-end: speaks the **same** framed protocol and
/// reply grammar as a single [`NedServer`](crate::server::NedServer), so
/// every existing client ([`WireClient`], `loadgen`, the CLI REPL) works
/// against a fleet unchanged. Graph-file commands (`query`, `range`,
/// `add`, `track`) are resolved router-side: the graph is loaded here,
/// the signature extracted at the fleet's `k`, and the query pushed down
/// by literal shape.
pub struct RouterServer {
    router: ShardRouter,
    graphs: Mutex<HashMap<String, Arc<Graph>>>,
    shutting_down: AtomicBool,
    local_addr: Mutex<Option<SocketAddr>>,
}

impl RouterServer {
    /// Wraps a connected router.
    pub fn new(router: ShardRouter) -> RouterServer {
        RouterServer {
            router,
            graphs: Mutex::new(HashMap::new()),
            shutting_down: AtomicBool::new(false),
            local_addr: Mutex::new(None),
        }
    }

    /// The wrapped router (e.g. for a clean `shutdown_fleet` after
    /// serving ends).
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Executes one non-session request against the fleet.
    pub fn execute(&self, req: &Request) -> Result<Response, ServerError> {
        Ok(match req {
            Request::Help => Response::Info {
                body: ROUTER_HELP_BODY.to_string(),
            },
            Request::Stats => Response::Info {
                body: self.router.stats_line(),
            },
            Request::Epoch => {
                let (epoch, len) = self.router.epoch()?;
                Response::Epoch { epoch, len }
            }
            Request::Query { path, node, top } => {
                let shape = self.shape_for(path, *node)?;
                fleet_hits_response(self.router.knn(&shape, *top, None)?)
            }
            Request::Range { path, node, radius } => {
                let shape = self.shape_for(path, *node)?;
                fleet_hits_response(self.router.range(&shape, *radius)?)
            }
            Request::Sig { shape, top, within } => {
                fleet_hits_response(self.router.knn(shape, *top, *within)?)
            }
            Request::RangeSig { shape, radius } => {
                fleet_hits_response(self.router.range(shape, *radius)?)
            }
            Request::Add { path, node } => {
                let shape = self.shape_for(path, *node)?;
                Response::Added {
                    id: self.router.insert_shape(&shape)?,
                }
            }
            Request::AddSig { shape } => Response::Added {
                id: self.router.insert_shape(shape)?,
            },
            Request::PutSig { id, shape } => {
                let (fresh, epoch) = self.router.put_shape(*id, shape)?;
                Response::Put {
                    id: *id,
                    fresh,
                    epoch,
                }
            }
            Request::Remove { id } => Response::Removed {
                id: *id,
                existed: self.router.remove(*id)?,
            },
            Request::Track { path } => {
                let graph = self.graph(path)?;
                Response::Ok {
                    msg: self.router.track(&graph)?,
                }
            }
            Request::AddEdge { a, b } => Response::Ok {
                msg: self.router.apply_delta(&[GraphDelta::AddEdge(*a, *b)])?,
            },
            Request::DelEdge { a, b } => Response::Ok {
                msg: self.router.apply_delta(&[GraphDelta::RemoveEdge(*a, *b)])?,
            },
            Request::Save { .. } => {
                return Err(ServerError::bad(
                    "the router holds no index to save; run `save` against a shard, or \
                     `checkpoint` to checkpoint the whole fleet",
                ))
            }
            Request::Checkpoint => {
                let n = self.router.broadcast(&Request::Checkpoint)?;
                Response::Ok {
                    msg: format!("checkpoint forwarded to {n} shard replica(s)"),
                }
            }
            Request::Fingerprint => Response::Info {
                body: self.router.probe_health()?,
            },
            Request::WalSuffix { .. } => {
                return Err(ServerError::bad(
                    "the router holds no write-ahead log; request `walsuffix` from a shard \
                     replica directly",
                ))
            }
            Request::CatchUp { .. } => {
                return Err(ServerError::bad(
                    "catch-up is replica-level; the router schedules it automatically — run \
                     `fingerprint` to force a health pass",
                ))
            }
            Request::TestPanic => {
                return Err(ServerError::bad(
                    "unrecognized command \"__panic\"; try `help`",
                ))
            }
            Request::Quit | Request::Shutdown => {
                unreachable!("session control handled by dispatch_request")
            }
        })
    }

    /// [`NedServer::dispatch`](crate::server::NedServer::dispatch)-shaped
    /// entry point: parse, execute, render.
    pub fn dispatch(&self, line: &str) -> Dispatch {
        match Request::parse_line(line) {
            Ok(None) => Dispatch::Reply(String::new()),
            Ok(Some(req)) => self.dispatch_request(req),
            Err(e) => Dispatch::Reply(Response::Error(e).to_string()),
        }
    }

    /// Routes session control; everything else goes through
    /// [`RouterServer::execute`].
    pub fn dispatch_request(&self, req: Request) -> Dispatch {
        match req {
            Request::Quit => Dispatch::Quit,
            Request::Shutdown => {
                self.initiate_shutdown();
                Dispatch::Shutdown
            }
            req => Dispatch::Reply(
                self.execute(&req)
                    .unwrap_or_else(Response::Error)
                    .to_string(),
            ),
        }
    }

    /// Executes a whole frame payload (newline-separated commands,
    /// replies concatenated in order). The scatter layer is internally
    /// parallel, so frames run sequentially here; a panic in one command
    /// is isolated to an error reply, like the single-process server.
    pub fn handle_payload(&self, payload: &str) -> (String, bool) {
        let mut replies = Vec::new();
        for line in payload.lines() {
            let dispatched =
                catch_unwind(AssertUnwindSafe(|| self.dispatch(line))).unwrap_or_else(|_| {
                    Dispatch::Reply(
                        Response::Error(ServerError::Io(
                            "internal panic while executing the command; the router is \
                             still serving"
                                .to_string(),
                        ))
                        .to_string(),
                    )
                });
            match dispatched {
                Dispatch::Reply(r) => replies.push(r),
                Dispatch::Quit => {
                    replies.push("ok bye".to_string());
                    return (replies.join("\n"), true);
                }
                Dispatch::Shutdown => {
                    replies.push(
                        "ok draining: in-flight connections finish, then the router exits \
                         (shards keep serving)"
                            .to_string(),
                    );
                    return (replies.join("\n"), true);
                }
            }
        }
        (replies.join("\n"), false)
    }

    /// Serves the framed protocol until `shutdown`: thread per
    /// connection, one reply frame per request frame.
    pub fn serve_tcp(self: &Arc<Self>, listener: TcpListener) -> std::io::Result<()> {
        *self.local_addr.lock().unwrap_or_else(|p| p.into_inner()) = listener.local_addr().ok();
        for conn in listener.incoming() {
            if self.shutting_down.load(Ordering::Acquire) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                Err(_) => continue,
            };
            let server = Arc::clone(self);
            std::thread::spawn(move || server.handle_conn(stream));
        }
        Ok(())
    }

    /// Flips the drain flag and wakes the blocked acceptor.
    pub fn initiate_shutdown(&self) {
        self.shutting_down.store(true, Ordering::Release);
        let addr = *self.local_addr.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(addr) = addr {
            let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(250));
        }
    }

    fn handle_conn(&self, mut stream: TcpStream) {
        use ned_core::wire;
        loop {
            match wire::read_frame(&mut stream) {
                Ok(None) => return,
                Err(e) => {
                    let reply = Response::Error(ServerError::from(e)).to_string();
                    let _ = wire::write_text_frame(&mut stream, &reply);
                    return;
                }
                Ok(Some(payload)) => {
                    let text = match String::from_utf8(payload) {
                        Ok(t) => t,
                        Err(_) => {
                            // Framing is still in sync — reply in-band
                            // and keep the session, like NedServer.
                            let reply = Response::Error(ServerError::Corrupt(
                                "frame payload is not UTF-8".to_string(),
                            ))
                            .to_string();
                            if wire::write_text_frame(&mut stream, &reply).is_err() {
                                return;
                            }
                            continue;
                        }
                    };
                    let (reply, end) = self.handle_payload(&text);
                    if wire::write_text_frame(&mut stream, &reply).is_err() || end {
                        return;
                    }
                }
            }
        }
    }

    fn graph(&self, path: &str) -> Result<Arc<Graph>, ServerError> {
        let cached = {
            let graphs = self.graphs.lock().unwrap_or_else(|p| p.into_inner());
            graphs.get(path).cloned()
        };
        match cached {
            Some(g) => Ok(g),
            None => {
                let g = Arc::new(
                    graph_io::read_edge_list(Path::new(path), false)
                        .map_err(|e| ServerError::bad(format!("{path}: {e}")))?,
                );
                self.graphs
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .insert(path.to_string(), Arc::clone(&g));
                Ok(g)
            }
        }
    }

    /// Extracts `<path> <node>`'s signature at the fleet's `k` and
    /// renders it as the literal shape pushed down to shards.
    fn shape_for(&self, path: &str, node: NodeId) -> Result<String, ServerError> {
        let graph = self.graph(path)?;
        if (node as usize) >= graph.num_nodes() {
            return Err(ServerError::bad(format!(
                "node {node} out of range (graph has {} nodes)",
                graph.num_nodes()
            )));
        }
        let sig = ned_core::NodeSignature::extract(&graph, node, self.router.opts.k);
        Ok(ned_tree::serialize::print(sig.tree()))
    }
}

impl std::fmt::Debug for RouterServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouterServer")
            .field("router", &self.router)
            .finish()
    }
}

fn fleet_hits_response(fleet: FleetHits) -> Response {
    Response::Hits {
        // One scalar for the wire: the sum of per-shard epochs, monotone
        // under acked writes.
        epoch: fleet.epochs.iter().sum(),
        hits: fleet
            .hits
            .iter()
            .map(|h| WireHit {
                id: h.id,
                distance: h.distance,
            })
            .collect(),
    }
}

const ROUTER_HELP_BODY: &str = "\
commands (scatter-gather; same grammar as a single server):\n\
\x20 query <graph.edges> <node> [top]   k-NN across all shards\n\
\x20 range <graph.edges> <node> <r>     range query across all shards\n\
\x20 sig <parens-tree> [top] [within=b] k-NN by a literal tree shape\n\
\x20 rangesig <parens-tree> <r>         range query by a literal shape\n\
\x20 add <graph.edges> <node>           index one signature (router assigns the id)\n\
\x20 addsig <parens-tree>               index a literal tree shape\n\
\x20 putsig <id> <parens-tree>          write a shape under an explicit id\n\
\x20 remove <id>                        drop a signature by id\n\
\x20 track <graph.edges>                attach a mutating graph for deltas\n\
\x20 addedge <a> <b> / deledge <a> <b>  delta the tracked graph, fan out to shards\n\
\x20 stats                              fleet topology, epoch vector, replica health\n\
\x20 fingerprint                        anti-entropy pass: probe + heal every replica\n\
\x20 epoch                              summed shard epochs + live size\n\
\x20 checkpoint                         checkpoint every shard replica\n\
\x20 shutdown                           drain the router (shards keep serving)\n\
\x20 quit                               end this session";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_map_routes_by_last_bound() {
        let map = ShardMap::new(vec![0, 10, 10, 20]).expect("valid");
        assert_eq!(map.owner(0), 0);
        assert_eq!(map.owner(9), 0);
        // Duplicate starts: the later shard wins, the earlier owns nothing.
        assert_eq!(map.owner(10), 2);
        assert_eq!(map.owner(19), 2);
        assert_eq!(map.owner(20), 3);
        assert_eq!(map.owner(u64::MAX), 3);
    }

    #[test]
    fn shard_map_rejects_bad_bounds() {
        assert!(ShardMap::new(vec![]).is_err());
        assert!(ShardMap::new(vec![1]).is_err());
        assert!(ShardMap::new(vec![0, 5, 3]).is_err());
    }

    #[test]
    fn bounded_merge_keeps_global_order_and_bound() {
        let mut m = BoundedMerge::new(3);
        assert_eq!(m.bound(), None, "not full yet");
        for (id, d) in [(7u64, 4.0), (1, 2.0), (9, 2.0), (3, 0.0), (5, 6.0)] {
            m.push(WireHit { id, distance: d });
        }
        assert_eq!(m.bound(), Some(2));
        let hits = m.into_sorted_hits();
        let got: Vec<(u64, f64)> = hits.iter().map(|h| (h.id, h.distance)).collect();
        // Ties at distance 2 break by id: 1 then 9.
        assert_eq!(got, vec![(3, 0.0), (1, 2.0), (9, 2.0)]);
    }

    #[test]
    fn bounded_merge_evicts_on_id_ties_too() {
        let mut m = BoundedMerge::new(2);
        m.push(WireHit {
            id: 8,
            distance: 5.0,
        });
        m.push(WireHit {
            id: 9,
            distance: 5.0,
        });
        // Same distance, smaller id: must displace id 9.
        m.push(WireHit {
            id: 2,
            distance: 5.0,
        });
        let got: Vec<u64> = m.into_sorted_hits().iter().map(|h| h.id).collect();
        assert_eq!(got, vec![2, 8]);
    }
}
