//! **Fleet plumbing**: splitting one index into per-shard indexes and
//! managing `ned-cli serve` shard processes — the operational half of
//! the scatter-gather layer in [`crate::router`].

use crate::router::ShardMap;
use crate::signatures::SignatureIndex;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Splits `index` into a routed fleet layout: a validated [`ShardMap`]
/// plus one disjoint [`SignatureIndex`] per shard, in shard order. A
/// fleet serving these shards answers queries bit-identically to
/// `index` itself.
pub fn split_index(index: &SignatureIndex, shards: usize) -> (ShardMap, Vec<SignatureIndex>) {
    let (starts, indexes) = index.split_for_fleet(shards);
    let map = ShardMap::new(starts).expect("split_for_fleet yields a valid map");
    (map, indexes)
}

/// One spawned `ned-cli serve ... --tcp` shard process: the child handle
/// plus the address it actually bound (scraped from its stdout banner,
/// so `127.0.0.1:0` ephemeral binds work).
#[derive(Debug)]
pub struct ShardProcess {
    child: Child,
    addr: String,
    index_path: PathBuf,
}

impl ShardProcess {
    /// Spawns `binary serve <index_path> --tcp <addr> [--wal <wal>]
    /// [extra_args...]` and waits (up to ~10s) for the `serving ... on
    /// tcp://HOST:PORT` banner that proves the listener is up.
    ///
    /// `addr` may use port `0`; the scraped banner carries the real
    /// port. The child's stdout is consumed only up to the banner —
    /// after that the process writes into the inherited pipe buffer,
    /// which serve-mode servers keep quiet enough never to fill. Stderr
    /// is piped and drained into a small tail buffer, so when the child
    /// dies or wedges before announcing its address, the spawn error
    /// carries the child's own last words (a bad flag, a missing index
    /// file, a panic) instead of just "exited before announcing".
    pub fn spawn(
        binary: &Path,
        index_path: &Path,
        addr: &str,
        wal: Option<&Path>,
        extra_args: &[String],
    ) -> std::io::Result<ShardProcess> {
        let mut cmd = Command::new(binary);
        cmd.arg("serve")
            .arg(index_path)
            .arg("--tcp")
            .arg(addr)
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped());
        if let Some(wal) = wal {
            cmd.arg("--wal").arg(wal);
        }
        cmd.args(extra_args);
        let mut child = cmd.spawn()?;
        let stdout = child.stdout.take().expect("stdout was piped");
        let stderr = child.stderr.take().expect("stderr was piped");
        let stderr_tail = drain_stderr(stderr);
        match scrape_banner(stdout) {
            Ok(bound) => Ok(ShardProcess {
                child,
                addr: bound,
                index_path: index_path.to_path_buf(),
            }),
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                // The kill closed the pipe; give the drain thread a
                // beat to flush the final lines into the tail buffer.
                std::thread::sleep(Duration::from_millis(50));
                let tail = stderr_tail
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .join("\n");
                if tail.is_empty() {
                    Err(e)
                } else {
                    Err(std::io::Error::new(
                        e.kind(),
                        format!("{e}; shard stderr tail:\n{tail}"),
                    ))
                }
            }
        }
    }

    /// The `host:port` the shard actually bound.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The index file this shard serves (what a restart re-serves).
    pub fn index_path(&self) -> &Path {
        &self.index_path
    }

    /// The child's pid (for external `SIGKILL` fault injection).
    pub fn pid(&self) -> u32 {
        self.child.id()
    }

    /// Hard-kills the shard (the crash case; WAL-backed shards recover
    /// on respawn) and reaps it.
    pub fn kill(&mut self) -> std::io::Result<()> {
        self.child.kill()?;
        self.child.wait()?;
        Ok(())
    }

    /// Waits for the shard to exit on its own (e.g. after a protocol
    /// `shutdown`), killing it if it is still running after `grace`.
    pub fn wait_or_kill(&mut self, grace: Duration) -> std::io::Result<()> {
        let deadline = Instant::now() + grace;
        loop {
            if self.child.try_wait()?.is_some() {
                return Ok(());
            }
            if Instant::now() >= deadline {
                return self.kill();
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }
}

impl Drop for ShardProcess {
    fn drop(&mut self) {
        if matches!(self.child.try_wait(), Ok(None) | Err(_)) {
            let _ = self.child.kill();
            let _ = self.child.wait();
        }
    }
}

/// How many trailing stderr lines [`ShardProcess::spawn`] keeps for its
/// failure message.
const STDERR_TAIL_LINES: usize = 8;

/// Drains the child's stderr on a detached thread — echoing each line to
/// this process's stderr (preserving the old inherit-stderr behavior for
/// operators watching the fleet) while keeping the last
/// [`STDERR_TAIL_LINES`] lines in a shared tail buffer for spawn-failure
/// diagnostics. The thread exits when the child closes its stderr.
fn drain_stderr(
    stderr: std::process::ChildStderr,
) -> std::sync::Arc<std::sync::Mutex<Vec<String>>> {
    let tail = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
    let sink = std::sync::Arc::clone(&tail);
    std::thread::spawn(move || {
        for line in BufReader::new(stderr).lines() {
            let Ok(line) = line else { break };
            eprintln!("{line}");
            let mut tail = sink.lock().unwrap_or_else(|p| p.into_inner());
            if tail.len() == STDERR_TAIL_LINES {
                tail.remove(0);
            }
            tail.push(line);
        }
    });
    tail
}

/// Reads the child's stdout until the `tcp://HOST:PORT` banner appears,
/// on a watchdog thread so a wedged child cannot hang the spawner.
fn scrape_banner(stdout: std::process::ChildStdout) -> std::io::Result<String> {
    let (tx, rx) = std::sync::mpsc::channel::<std::io::Result<String>>();
    std::thread::spawn(move || {
        let mut reader = BufReader::new(stdout);
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) => break,
                Ok(_) => {}
                Err(e) => {
                    let _ = tx.send(Err(e));
                    return;
                }
            }
            if let Some(at) = line.find("tcp://") {
                let _ = tx.send(Ok(line[at + "tcp://".len()..].trim().to_string()));
                // Keep draining so the child never blocks on a full pipe.
                for _ in reader.lines() {}
                return;
            }
        }
        let _ = tx.send(Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "shard exited before announcing its tcp address",
        )));
    });
    rx.recv_timeout(Duration::from_secs(10)).map_err(|_| {
        std::io::Error::new(
            std::io::ErrorKind::TimedOut,
            "shard did not announce its tcp address within 10s",
        )
    })?
}

/// Picks `n` distinct free loopback ports by binding-and-dropping
/// ephemeral listeners. Racy in principle (another process could grab a
/// port between drop and reuse) but the standard technique for
/// kill-and-respawn-on-the-same-port fleet tests.
pub fn free_loopback_ports(n: usize) -> std::io::Result<Vec<u16>> {
    let listeners: Vec<std::net::TcpListener> = (0..n)
        .map(|_| std::net::TcpListener::bind("127.0.0.1:0"))
        .collect::<std::io::Result<_>>()?;
    listeners
        .iter()
        .map(|l| Ok(l.local_addr()?.port()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ned_graph::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn split_covers_every_entry_exactly_once() {
        let mut rng = SmallRng::seed_from_u64(11);
        let g = generators::barabasi_albert(60, 2, &mut rng);
        let mut index = SignatureIndex::new(3, 16, 5);
        index.insert_graph(&g, &g.nodes().collect::<Vec<_>>());
        let (map, parts) = split_index(&index, 4);
        assert_eq!(map.shards(), 4);
        let total: usize = parts.iter().map(SignatureIndex::len).sum();
        assert_eq!(total, index.len());
        for (s, part) in parts.iter().enumerate() {
            assert_eq!(part.k(), index.k());
            for (id, _) in part.forest().entries() {
                assert_eq!(map.owner(id), s, "entry {id} lives on its owning shard");
            }
        }
    }

    #[test]
    fn split_with_more_shards_than_entries_keeps_the_map_valid() {
        let mut index = SignatureIndex::new(2, 8, 5);
        let g = {
            let mut rng = SmallRng::seed_from_u64(3);
            generators::barabasi_albert(3, 1, &mut rng)
        };
        index.insert_graph(&g, &g.nodes().collect::<Vec<_>>());
        let (map, parts) = split_index(&index, 8);
        assert_eq!(parts.iter().map(SignatureIndex::len).sum::<usize>(), 3);
        // Every id still has exactly one owner and lives there.
        for (s, part) in parts.iter().enumerate() {
            for (id, _) in part.forest().entries() {
                assert_eq!(map.owner(id), s);
            }
        }
        // Fresh ids (>= next_id) all land on the last non-empty shard or
        // later — crucially, on a shard that exists.
        assert!(map.owner(index.next_id()) < map.shards());
    }
}
