//! Burkhard–Keller tree: a metric index specialized to *integer-valued*
//! metrics — which TED\*/NED are (operation counts).
//!
//! Each node keys its children by the exact distance to itself; queries
//! with tolerance `t` only descend into children whose key lies within
//! `[d - t, d + t]` (triangle inequality). Compared to the VP-tree, the
//! BK-tree needs no rebuild-time median splits, supports incremental
//! insertion, and prunes very well when the distance spectrum is small —
//! exactly the regime of NED at small `k`. The benchmarks compare both.

use crate::Hit;

/// A distance function returning non-negative integers and satisfying the
/// metric axioms.
pub trait IntMetric<T: ?Sized> {
    /// Distance between two items.
    fn distance(&self, a: &T, b: &T) -> u64;
}

/// Wraps any closure as an [`IntMetric`].
pub struct IntFnMetric<F>(pub F);

impl<T, F: Fn(&T, &T) -> u64> IntMetric<T> for IntFnMetric<F> {
    fn distance(&self, a: &T, b: &T) -> u64 {
        (self.0)(a, b)
    }
}

#[derive(Debug, Clone)]
struct BkNode {
    item: usize,
    /// Sorted by distance key; linear scan is fine (few distinct keys).
    children: Vec<(u64, usize)>, // (distance to this node, node index)
}

/// A Burkhard–Keller tree over an owned item collection.
#[derive(Debug, Clone)]
pub struct BkTree<T> {
    items: Vec<T>,
    nodes: Vec<BkNode>,
    root: Option<usize>,
}

impl<T> BkTree<T> {
    /// An empty tree.
    pub fn new() -> Self {
        BkTree {
            items: Vec::new(),
            nodes: Vec::new(),
            root: None,
        }
    }

    /// Builds from a collection (insertion order shapes the tree but not
    /// the results).
    pub fn build<M: IntMetric<T>>(items: Vec<T>, metric: &M) -> Self {
        let mut tree = BkTree::new();
        for item in items {
            tree.insert(item, metric);
        }
        tree
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The indexed items; [`Hit::index`] refers to this slice.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Inserts one item (incremental — no rebuild required).
    pub fn insert<M: IntMetric<T>>(&mut self, item: T, metric: &M) {
        let item_idx = self.items.len();
        self.items.push(item);
        let node_idx = self.nodes.len();
        self.nodes.push(BkNode {
            item: item_idx,
            children: Vec::new(),
        });
        let Some(mut cur) = self.root else {
            self.root = Some(node_idx);
            return;
        };
        loop {
            let d = metric.distance(&self.items[self.nodes[cur].item], &self.items[item_idx]);
            match self.nodes[cur].children.iter().find(|&&(key, _)| key == d) {
                Some(&(_, next)) => cur = next,
                None => {
                    self.nodes[cur].children.push((d, node_idx));
                    self.nodes[cur]
                        .children
                        .sort_unstable_by_key(|&(key, _)| key);
                    return;
                }
            }
        }
    }

    /// All items within distance `radius` of `query` (inclusive),
    /// unordered.
    pub fn range<M: IntMetric<T>>(&self, metric: &M, query: &T, radius: u64) -> Vec<Hit> {
        let mut out = Vec::new();
        let Some(root) = self.root else {
            return out;
        };
        let mut stack = vec![root];
        while let Some(idx) = stack.pop() {
            let node = &self.nodes[idx];
            let d = metric.distance(query, &self.items[node.item]);
            if d <= radius {
                out.push(Hit {
                    index: node.item,
                    distance: d as f64,
                });
            }
            let lo = d.saturating_sub(radius);
            let hi = d.saturating_add(radius);
            for &(key, child) in &node.children {
                if key >= lo && key <= hi {
                    stack.push(child);
                }
            }
        }
        out
    }

    /// The `k` nearest items to `query`, closest first. Implemented as a
    /// best-first traversal with a shrinking tolerance.
    pub fn knn<M: IntMetric<T>>(&self, metric: &M, query: &T, k: usize) -> Vec<Hit> {
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        let mut best: Vec<Hit> = Vec::with_capacity(k + 1);
        let Some(root) = self.root else {
            return best;
        };
        let mut stack = vec![root];
        while let Some(idx) = stack.pop() {
            let node = &self.nodes[idx];
            let d = metric.distance(query, &self.items[node.item]);
            if best.len() < k || d < best.last().expect("non-empty").distance as u64 {
                best.push(Hit {
                    index: node.item,
                    distance: d as f64,
                });
                best.sort_by(|a, b| {
                    a.distance
                        .partial_cmp(&b.distance)
                        .expect("integer distances")
                });
                best.truncate(k);
            }
            let tau = if best.len() < k {
                u64::MAX
            } else {
                best.last().expect("non-empty").distance as u64
            };
            let lo = d.saturating_sub(tau);
            let hi = d.saturating_add(tau);
            for &(key, child) in &node.children {
                if key >= lo && key <= hi {
                    stack.push(child);
                }
            }
        }
        best
    }
}

impl<T> Default for BkTree<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct AbsDiff;
    impl IntMetric<u64> for AbsDiff {
        fn distance(&self, a: &u64, b: &u64) -> u64 {
            a.abs_diff(*b)
        }
    }

    fn sample_items(n: u64, stride: u64) -> Vec<u64> {
        (0..n).map(|i| (i * stride) % 997).collect()
    }

    #[test]
    fn empty_tree() {
        let t: BkTree<u64> = BkTree::new();
        assert!(t.is_empty());
        assert!(t.knn(&AbsDiff, &5, 3).is_empty());
        assert!(t.range(&AbsDiff, &5, 100).is_empty());
    }

    #[test]
    fn range_matches_filter() {
        let items = sample_items(300, 37);
        let tree = BkTree::build(items.clone(), &AbsDiff);
        for q in [0u64, 17, 500, 996] {
            for r in [0u64, 5, 50] {
                let mut got: Vec<usize> = tree
                    .range(&AbsDiff, &q, r)
                    .iter()
                    .map(|h| h.index)
                    .collect();
                got.sort_unstable();
                let want: Vec<usize> = items
                    .iter()
                    .enumerate()
                    .filter(|(_, &x)| x.abs_diff(q) <= r)
                    .map(|(i, _)| i)
                    .collect();
                assert_eq!(got, want, "q={q} r={r}");
            }
        }
    }

    #[test]
    fn knn_matches_sorted_scan() {
        let items = sample_items(200, 61);
        let tree = BkTree::build(items.clone(), &AbsDiff);
        for q in [3u64, 100, 950] {
            for k in [1usize, 4, 9] {
                let got = tree.knn(&AbsDiff, &q, k);
                assert_eq!(got.len(), k);
                let mut want: Vec<u64> = items.iter().map(|&x| x.abs_diff(q)).collect();
                want.sort_unstable();
                for (hit, expect) in got.iter().zip(&want) {
                    assert_eq!(hit.distance as u64, *expect);
                }
            }
        }
    }

    #[test]
    fn incremental_insertion() {
        let mut tree: BkTree<u64> = BkTree::new();
        for x in [50u64, 10, 90, 50, 49] {
            tree.insert(x, &AbsDiff);
        }
        assert_eq!(tree.len(), 5);
        let hits = tree.range(&AbsDiff, &50, 1);
        assert_eq!(hits.len(), 3); // 50, 50, 49
    }

    #[test]
    fn duplicate_heavy_distribution() {
        // NED at small k produces many zero distances; the BK-tree must
        // chain duplicates without breaking.
        let items = vec![7u64; 64];
        let tree = BkTree::build(items, &AbsDiff);
        let hits = tree.knn(&AbsDiff, &7, 10);
        assert_eq!(hits.len(), 10);
        assert!(hits.iter().all(|h| h.distance == 0.0));
    }
}
