//! The **serving front-end** over [`crate::durable::DurableIndex`]: one
//! typed command dispatcher shared by every surface, a dependency-free
//! `std::net` TCP server speaking the framed batch protocol, and the
//! matching client.
//!
//! # Command language
//!
//! One command per line, answers as text whose final line starts with
//! `ok` or `error:`. The line grammar lives in [`ned_core::proto`]: a
//! line is parsed **once** into a [`Request`] at whatever boundary it
//! arrives (REPL stdin via [`NedServer::dispatch`], a decoded TCP frame
//! via [`NedServer::handle_payload`]) and from there execution is an
//! exhaustive `match` on the enum — no token matching anywhere past the
//! parse, so behavior cannot drift between the interactive and networked
//! paths and a coordinator composes [`Request`] values programmatically
//! instead of formatting strings.
//!
//! ```text
//! query <graph.edges> <node> [top]    nearest indexed signatures
//! range <graph.edges> <node> <r>      all signatures with NED <= r
//! sig <parens-tree> [top] [within=b]  query by a literal tree shape
//!                                     (within= is the scatter-gather
//!                                     distance budget pushdown)
//! rangesig <parens-tree> <r>          range query by a literal shape
//! add <graph.edges> <node>            index one more signature
//! addsig <parens-tree>                index a literal tree shape
//! putsig <id> <parens-tree>           index under an explicit id (the
//!                                     router owns id assignment)
//! remove <id>                         drop a signature by id
//! track <graph.edges>                 attach a mutating graph (raw
//!                                     add/addsig/putsig/remove writes
//!                                     detach it — they break its
//!                                     node ↔ id invariant; re-track to
//!                                     resume)
//! addedge <a> <b> | deledge <a> <b>   mutate the tracked graph; the
//!                                     (k-1)-hop dirty set is recomputed
//!                                     and published as one epoch
//! stats | epoch | help | quit
//! fingerprint                         epoch + live size + live-set hash
//!                                     (the anti-entropy probe)
//! walsuffix <from_epoch>              one bounded chunk of WAL records
//!                                     past an epoch, for a catching-up
//!                                     peer replica (which loops)
//! catchup <host:port>                 replay a peer's WAL suffix through
//!                                     the journaled write path (after
//!                                     verifying the splice point)
//! save <path>                         persist the current index
//! checkpoint                          snapshot + reset the WAL now
//! shutdown                            drain, checkpoint, exit cleanly
//! ```
//!
//! Query replies are tagged with the **epoch of the snapshot that
//! answered them** (`ok N hits epoch=E`), read atomically with the
//! snapshot — the per-shard consistency tag a fleet coordinator's epoch
//! vector is built from (see `crate::router`).
//!
//! # The batch protocol
//!
//! A TCP frame (see [`ned_core::wire`]) carries one *or more*
//! newline-separated commands; the reply frame carries the concatenated
//! replies in command order. Batching amortizes round-trips, and a frame
//! of **read-only** commands ([`Request::is_write`] is the eligibility
//! test) additionally fans out across the server's persistent
//! [`WorkerPool`] (each command grabs its own snapshot — reads never
//! block). Frames containing any write run sequentially in frame order,
//! so a client's `addsig` is visible to the commands after it in the
//! same frame.
//!
//! Connections are thread-per-connection `std::net` — no async runtime,
//! in keeping with the repo's no-external-dependencies rule. A frame that
//! fails checksum/magic/length validation gets a best-effort
//! `error: ...` reply and the connection is closed: once framing sync is
//! lost the stream cannot be trusted.
//!
//! # Fault tolerance
//!
//! The server is built to keep serving through misbehaving clients and
//! its own bugs ([`ServerConfig`] holds the knobs). Failures answer with
//! a structured [`ServerError`] whose variant tells the client what to
//! do — retry ([`ServerError::is_retryable`]) or give up:
//!
//! * every accepted socket gets **read/write timeouts**, so a wedged or
//!   malicious client cannot pin a connection thread forever;
//! * admissions are capped at [`ServerConfig::max_conns`]; excess
//!   connections get a clean [`ServerError::Overloaded`] frame and
//!   are closed — never silently dropped, never unbounded threads;
//! * command execution is wrapped in `catch_unwind` (per command *and*
//!   per connection), so a panicking handler poisons at most its own
//!   connection — the writer's panic-atomic rollback (see
//!   [`IndexWriter::try_apply`]) keeps the index itself consistent;
//! * `shutdown` drains: the acceptor stops, in-flight frames finish,
//!   idle connections are nudged closed, a final checkpoint runs, and
//!   [`NedServer::serve_tcp`] returns `Ok(())` so the process can exit 0.
//!
//! All of it is observable: `stats` reports accepted/active/timeout/
//! overload/panic counters next to the durability line.

use crate::concurrent::{IndexReader, IndexWriter, WriteOp, WriteOutcome};
use crate::durable::DurableIndex;
use crate::forest::ForestHit;
use crate::maintain::GraphMaintainer;
use crate::signatures::SignatureIndex;
use ned_core::proto::{Request, Response, ServerError, WireHit};
use ned_core::{wire, NodeSignature, PreparedTree, TedMemo, WorkerPool};
use ned_graph::{io as graph_io, Graph, GraphDelta, NodeId};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown as SocketShutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Caps one `walsuffix` reply at this many records. The suffix is read
/// and encoded under the index writer lock, and the whole chunk sits in
/// memory twice (records + response frame) — an unbounded reply would
/// stall donor-side writes and balloon for a long suffix. A catching-up
/// replica loops, re-requesting from its advancing epoch, so bounded
/// chunks need no protocol change.
pub const WAL_CHUNK_MAX_RECORDS: usize = 256;

/// Byte-level companion to [`WAL_CHUNK_MAX_RECORDS`]: the chunk also
/// closes once it holds this many record bytes, so a few huge delta
/// batches cannot blow the frame either.
pub const WAL_CHUNK_MAX_BYTES: usize = 1 << 20;

/// Outcome of dispatching one command line.
pub enum Dispatch {
    /// The text to show or send back (final line `ok ...` / `error: ...`).
    Reply(String),
    /// The client asked to end the session (`quit` / `exit`).
    Quit,
    /// The client asked the whole server to drain and exit (`shutdown`).
    /// The accept loop stops; the surface should end its session too.
    Shutdown,
}

/// Serving limits and fault-tolerance knobs. `Default` suits tests and
/// the REPL; `ned-cli serve` exposes the connection cap as `--max-conns`.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Per-socket read timeout (`None` = block forever). A connection
    /// idle past this is closed with an `error: io: socket timeout`
    /// frame.
    pub read_timeout: Option<Duration>,
    /// Per-socket write timeout (`None` = block forever) — protects
    /// against clients that stop draining their receive buffer.
    pub write_timeout: Option<Duration>,
    /// Admission cap: connections accepted while this many are already
    /// active get an [`ServerError::Overloaded`] frame and are closed.
    pub max_conns: usize,
    /// How long `shutdown` waits for in-flight connections — applied
    /// twice: once politely, once after force-closing idle sockets.
    pub drain_grace: Duration,
    /// Enables the hidden `__panic` command that panics inside the
    /// dispatcher — the fault-injection hook for panic-isolation tests.
    /// Never enable outside tests.
    pub enable_test_panic: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            max_conns: 256,
            drain_grace: Duration::from_secs(2),
            enable_test_panic: false,
        }
    }
}

/// Monotonic serving counters, reported by `stats`.
#[derive(Default)]
struct Counters {
    accepted: AtomicU64,
    timeouts: AtomicU64,
    overloaded: AtomicU64,
    panics: AtomicU64,
    checkpoint_failures: AtomicU64,
    active: AtomicUsize,
}

/// The shared serving state: durable index, graph cache, worker pool.
/// Cheap to share — wrap in an [`Arc`] and hand clones to every
/// connection thread (see [`NedServer::serve_tcp`]).
pub struct NedServer {
    index: DurableIndex,
    /// Parsed edge-list files, cached across commands and connections.
    graphs: Mutex<HashMap<String, Arc<Graph>>>,
    /// The tracked mutating graph behind `addedge`/`deledge`
    /// (`track <path>` installs one). Locked for the whole delta
    /// application — writes are serialized anyway, and readers never
    /// touch it.
    maintained: Mutex<Option<GraphMaintainer>>,
    /// Persistent pool reused by every read-only batch frame.
    pool: WorkerPool,
    /// Intra-query fan-out passed to the forest (`1` is right for
    /// concurrent serving: requests, not shards, should fill the cores).
    query_threads: usize,
    config: ServerConfig,
    /// Set by `shutdown`; the acceptor checks it per accepted connection
    /// and connection loops check it per frame.
    shutting_down: AtomicBool,
    /// Set while a `catchup` is replaying a peer's WAL suffix. Queries
    /// answer [`ServerError::CatchingUp`] until it clears, so a stale
    /// replica never serves a read the router would have to repair.
    catching_up: AtomicBool,
    /// Where the acceptor is listening — `initiate_shutdown` connects
    /// here once to wake a blocked `accept`.
    local_addr: Mutex<Option<SocketAddr>>,
    /// Clones of every live connection's stream, so drain can nudge
    /// idle keep-alive clients closed.
    conns: Mutex<HashMap<u64, TcpStream>>,
    conn_seq: AtomicU64,
    counters: Counters,
}

impl NedServer {
    /// Wraps `index` for **ephemeral** serving (no WAL, no checkpoints).
    /// `query_threads` is the per-query shard fan-out (`0` = all cores —
    /// right for a single-user REPL, wrong for a concurrent server, which
    /// should pass `1`); `pool_threads` sizes the batch pool (`0` = all
    /// cores).
    pub fn new(index: SignatureIndex, query_threads: usize, pool_threads: usize) -> Self {
        Self::with_durability(DurableIndex::ephemeral(index), query_threads, pool_threads)
    }

    /// Serves a [`DurableIndex`] — typically one fresh out of
    /// [`DurableIndex::recover`], with its WAL attached. Write commands
    /// journal before acknowledging and checkpoint on the index's cadence.
    pub fn with_durability(index: DurableIndex, query_threads: usize, pool_threads: usize) -> Self {
        NedServer {
            index,
            graphs: Mutex::new(HashMap::new()),
            maintained: Mutex::new(None),
            pool: WorkerPool::new(pool_threads),
            query_threads,
            config: ServerConfig::default(),
            shutting_down: AtomicBool::new(false),
            catching_up: AtomicBool::new(false),
            local_addr: Mutex::new(None),
            conns: Mutex::new(HashMap::new()),
            conn_seq: AtomicU64::new(0),
            counters: Counters::default(),
        }
    }

    /// Replaces the serving limits (builder-style, before sharing).
    pub fn with_config(mut self, config: ServerConfig) -> Self {
        self.config = config;
        self
    }

    /// The durable index being served (checkpoint paths, cadence, …).
    pub fn durable(&self) -> &DurableIndex {
        &self.index
    }

    /// Installs `graph` as the tracked graph behind `addedge`/`deledge`,
    /// verifying it actually matches the served index (node `v` indexed
    /// under id `v` with the same neighborhood shape). The `track`
    /// command and `ned-cli serve --graph` both land here.
    ///
    /// The writer lock is held across verification *and* installation,
    /// so no write can slip between the check and the attach; raw index
    /// writes (`add`/`addsig`/`putsig`/`remove`) after that point
    /// **detach** the tracked graph instead of silently breaking its
    /// node ↔ id invariant (re-`track` to resume deltas).
    pub fn track(&self, graph: &Graph) -> Result<String, ServerError> {
        let mut tracked = self.maintained.lock().unwrap_or_else(|p| p.into_inner());
        let writer = self.index.writer();
        let maintainer = GraphMaintainer::attach(graph, writer.index().k(), 0, self.query_threads);
        maintainer
            .verify_against(writer.index())
            .map_err(ServerError::BadRequest)?;
        let line = format!(
            "tracking graph ({} nodes, {} edges, k = {})",
            maintainer.num_nodes(),
            maintainer.num_edges(),
            maintainer.k()
        );
        *tracked = Some(maintainer);
        Ok(line)
    }

    /// Runs a raw index write while detaching any tracked graph — a raw
    /// write breaks the maintainer's "node `v` ⇔ id `v`, class as
    /// recorded" invariant, and a stale maintainer could later resurrect
    /// a removed id through a `Replace`. The maintained lock is held
    /// across the write so a concurrent `track` cannot interleave.
    fn raw_write<R>(&self, op: impl FnOnce(&mut IndexWriter) -> R) -> R {
        let mut tracked = self.maintained.lock().unwrap_or_else(|p| p.into_inner());
        let result = op(&mut self.index.writer());
        *tracked = None;
        result
    }

    /// One raw write op, journaled (when durable) and checkpointed on
    /// cadence. Returns the outcome **and the epoch the write published
    /// as** (read under the writer lock, so it is exactly this batch's
    /// publication). A WAL append failure is an error reply, **not** an
    /// acknowledgment — the batch was rolled back and never published.
    fn write_one(&self, op: WriteOp) -> Result<(WriteOutcome, u64), ServerError> {
        let applied = self.raw_write(|w| {
            let outcomes = w.try_apply([op])?;
            Ok::<_, std::io::Error>((outcomes, w.epoch()))
        });
        let (mut outcomes, epoch) = applied.map_err(|e| {
            ServerError::Io(format!(
                "write-ahead log append failed (write not applied): {e}"
            ))
        })?;
        self.after_write();
        Ok((outcomes.pop().expect("one op in, one outcome out"), epoch))
    }

    /// Post-acknowledgment bookkeeping: checkpoint when the WAL has
    /// accumulated a full cadence worth of batches. Checkpoint failures
    /// are counted (the WAL still has everything) rather than failing
    /// the already-acknowledged write.
    fn after_write(&self) {
        if self.index.checkpoint_if_due().is_err() {
            self.counters
                .checkpoint_failures
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Applies one graph delta through the tracked maintainer as one
    /// atomic write batch (one epoch). Errors if no graph is tracked or
    /// an endpoint is out of range. A panic mid-application (including a
    /// WAL append failure surfacing through [`IndexWriter::apply`])
    /// detaches the tracked graph — the maintainer's shadow state can no
    /// longer be trusted — while the index itself stays consistent via
    /// the writer's rollback.
    fn apply_delta(&self, delta: GraphDelta) -> Result<String, ServerError> {
        let mut guard = self.maintained.lock().unwrap_or_else(|p| p.into_inner());
        let maintainer = guard
            .as_mut()
            .ok_or_else(|| ServerError::bad("no tracked graph; run `track <graph.edges>` first"))?;
        if let GraphDelta::AddEdge(a, b) | GraphDelta::RemoveEdge(a, b) = delta {
            let n = maintainer.num_nodes();
            if a as usize >= n || b as usize >= n {
                return Err(ServerError::bad(format!(
                    "edge ({a}, {b}) out of range ({n} nodes)"
                )));
            }
        }
        let applied = catch_unwind(AssertUnwindSafe(|| {
            let mut writer = self.index.writer();
            let report = maintainer.apply(&[delta], &mut writer);
            (report, writer.epoch())
        }));
        match applied {
            Ok((report, epoch)) => {
                drop(guard);
                self.after_write();
                Ok(format!("{report} epoch={epoch}"))
            }
            Err(_) => {
                *guard = None;
                self.counters.panics.fetch_add(1, Ordering::Relaxed);
                Err(ServerError::Io(
                    "delta application failed (journal append failure or internal panic); \
                     the index rolled back to its last published state and the tracked \
                     graph was detached — re-track to resume"
                        .into(),
                ))
            }
        }
    }

    /// Streams the WAL suffix past this server's epoch from `peer` —
    /// in bounded chunks, re-requesting from the advancing epoch until
    /// level — and applies it through the journaled write path (the
    /// `catchup` command). Each streamed record carries the epoch it
    /// originally published as; it is re-journaled into this server's
    /// own WAL and published at that exact epoch, so the caught-up
    /// replica is bit-identical to the peer at every acknowledged
    /// epoch. Before any record is applied the splice point is verified
    /// ([`NedServer::verify_fork_point`]): a forked local history is
    /// refused loudly rather than overwritten. While the replay runs,
    /// queries answer [`ServerError::CatchingUp`].
    pub fn catch_up_from(&self, peer: &str) -> Result<String, ServerError> {
        struct ClearOnExit<'a>(&'a AtomicBool);
        impl Drop for ClearOnExit<'_> {
            fn drop(&mut self) {
                self.0.store(false, Ordering::Release);
            }
        }
        if self.catching_up.swap(true, Ordering::AcqRel) {
            return Err(ServerError::CatchingUp(
                "a catch-up is already in progress".into(),
            ));
        }
        let _clear = ClearOnExit(&self.catching_up);
        let mut client = WireClient::builder()
            .timeouts(self.config.read_timeout, self.config.write_timeout)
            .connect(peer)
            .map_err(|e| ServerError::Io(format!("{peer}: {e}")))?;
        self.verify_fork_point(&mut client)?;
        let start_epoch = self.reader().epoch();
        let mut applied = 0u64;
        loop {
            let from_epoch = self.reader().epoch();
            let (peer_epoch, records) = match client.request(&Request::WalSuffix { from_epoch })? {
                Response::WalChunk { epoch, records, .. } => (epoch, records),
                Response::Error(e) => return Err(e),
                other => {
                    return Err(ServerError::Corrupt(format!(
                        "peer answered a wal suffix request with {other:?}"
                    )))
                }
            };
            if records.is_empty() {
                break; // nothing past our epoch: caught up
            }
            let this_round = self.apply_wal_records(&records)?;
            applied += this_round as u64;
            if this_round == 0 || self.reader().epoch() >= peer_epoch {
                break; // no forward progress, or level with the peer
            }
        }
        self.after_write();
        Ok(format!(
            "caught up {applied} record(s) from {peer}: epoch {start_epoch} -> {}",
            self.reader().epoch()
        ))
    }

    /// Guards the splice point of a WAL-suffix catch-up: when this
    /// replica holds a local WAL record at its head epoch, the peer's
    /// record at the **same** epoch must be byte-identical. A mismatch
    /// means the two histories forked — this replica took a write the
    /// quorum never acked at that epoch (e.g. from a coordinator with a
    /// stale health view) — and streaming the peer's suffix on top would
    /// silently drop acked writes; that is refused as a loud,
    /// non-retryable [`ServerError::Corrupt`], because a forked replica
    /// needs a snapshot resync, not a splice. With nothing to compare
    /// (fresh boot, WAL gone, or the peer checkpointed past our head)
    /// the epoch-gap check in [`NedServer::apply_wal_records`] remains
    /// the guard.
    fn verify_fork_point(&self, client: &mut WireClient) -> Result<(), ServerError> {
        let local_head: Option<Vec<u8>> = {
            let writer = self.index.writer();
            match writer.wal() {
                Some(wal) => wal
                    .records()
                    .map_err(|e| ServerError::Io(format!("wal read failed: {e}")))?
                    .pop(),
                None => None,
            }
        };
        let Some(local) = local_head else {
            return Ok(());
        };
        let Some(head_epoch) = crate::durable::record_epoch(&local) else {
            return Ok(()); // an undecodable tail would fail replay anyway
        };
        match client.request(&Request::WalSuffix {
            from_epoch: head_epoch.saturating_sub(1),
        }) {
            Ok(Response::WalChunk { records, .. }) => match records.first() {
                Some(peer_record)
                    if crate::durable::record_epoch(peer_record) == Some(head_epoch) =>
                {
                    if *peer_record != local {
                        return Err(ServerError::Corrupt(format!(
                            "catch-up refused: this replica's WAL record at epoch \
                             {head_epoch} differs from the peer's — the histories forked, \
                             and splicing the peer's suffix would drop acked writes; \
                             resync from a snapshot"
                        )));
                    }
                    Ok(())
                }
                // The peer holds no record at our head epoch (it is
                // behind us, or level): nothing to compare.
                _ => Ok(()),
            },
            // The peer checkpointed past our head - 1: the verification
            // record is gone, but the suffix past our head may still be
            // streamable — fall through to the normal loop.
            Err(ServerError::BadRequest(_)) => Ok(()),
            Ok(other) => Err(ServerError::Corrupt(format!(
                "peer answered a wal suffix request with {other:?}"
            ))),
            Err(e) => Err(e),
        }
    }

    /// Applies streamed WAL records in order through
    /// [`IndexWriter::try_apply`] — journal-before-publish, exactly the
    /// path a local write takes. Records at or below the current epoch
    /// are skipped (already applied); a gap past `epoch + 1` is
    /// [`ServerError::Corrupt`], because the intermediate history cannot
    /// be reproduced. Returns how many records were applied.
    fn apply_wal_records(&self, records: &[Vec<u8>]) -> Result<usize, ServerError> {
        self.raw_write(|w| {
            let mut applied = 0usize;
            for record in records {
                let (epoch, ops) = crate::durable::decode_batch(record).map_err(|e| {
                    ServerError::Corrupt(format!("peer wal record undecodable: {e}"))
                })?;
                if epoch <= w.epoch() {
                    continue;
                }
                if epoch != w.epoch() + 1 {
                    return Err(ServerError::Corrupt(format!(
                        "peer wal suffix jumps from epoch {} to {epoch}; \
                         the acknowledged history between them is unreachable",
                        w.epoch()
                    )));
                }
                w.try_apply(ops).map_err(|e| {
                    ServerError::Io(format!("journal append failed mid catch-up: {e}"))
                })?;
                applied += 1;
            }
            Ok(applied)
        })
    }

    /// A read handle onto the served index.
    pub fn reader(&self) -> IndexReader {
        self.index.reader()
    }

    /// Multi-line summary of the current snapshot, the TED\* memo's
    /// effectiveness counters, the serving counters, and the durability
    /// configuration (the `stats` reply body).
    pub fn stats_line(&self) -> String {
        let (snap, epoch) = self.reader().snapshot_with_epoch();
        let stats = snap.stats();
        let tracking = match self
            .maintained
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .as_ref()
        {
            Some(m) => format!("{} nodes / {} edges", m.num_nodes(), m.num_edges()),
            None => "none".to_string(),
        };
        let c = &self.counters;
        format!(
            "signatures: {} (k = {}), buffer {}, shards {:?}, tombstones {}, epoch {epoch}, \
             tracking {tracking}\nsketch: mode {}, {}\nmemo: {}\nserver: accepted {}, active {}, \
             timeouts {}, overloaded {}, panics isolated {}, checkpoint failures {}\n{}",
            stats.len,
            snap.k(),
            stats.buffer,
            stats.shard_sizes,
            stats.tombstones,
            snap.sketch_mode(),
            snap.sketch_stats(),
            TedMemo::global().stats(),
            c.accepted.load(Ordering::Relaxed),
            c.active.load(Ordering::Relaxed),
            c.timeouts.load(Ordering::Relaxed),
            c.overloaded.load(Ordering::Relaxed),
            c.panics.load(Ordering::Relaxed),
            c.checkpoint_failures.load(Ordering::Relaxed),
            self.index.describe(),
        )
    }

    /// Executes one command line — the **text surface** (REPL stdin).
    /// The line is parsed once into a [`Request`] and handed to
    /// [`NedServer::dispatch_request`]; parse failures come back as
    /// `error:` reply text, so every surface reports them identically.
    pub fn dispatch(&self, line: &str) -> Dispatch {
        match Request::parse_line(line) {
            Ok(None) => Dispatch::Reply(String::new()),
            Ok(Some(req)) => self.dispatch_request(req),
            Err(e) => Dispatch::Reply(Response::Error(e).to_string()),
        }
    }

    /// Executes one parsed request — the **typed surface**. Session
    /// control (`quit`, `shutdown`) surfaces as its own [`Dispatch`]
    /// variant; everything else executes through the exhaustive match in
    /// [`NedServer::execute`] and renders its [`Response`].
    pub fn dispatch_request(&self, req: Request) -> Dispatch {
        match req {
            Request::Quit => Dispatch::Quit,
            Request::Shutdown => {
                self.initiate_shutdown();
                Dispatch::Shutdown
            }
            req => {
                let response = self
                    .execute(&req)
                    .unwrap_or_else(Response::Error)
                    .to_string();
                Dispatch::Reply(response)
            }
        }
    }

    /// [`NedServer::dispatch`] behind a panic shield: a handler that
    /// panics answers `error: internal panic ...` instead of unwinding
    /// into (and killing) whatever thread is serving the surface. The
    /// index stays consistent — [`IndexWriter::try_apply`] rolls the
    /// master copy back to the published snapshot before re-raising.
    pub fn dispatch_isolated(&self, line: &str) -> Dispatch {
        match catch_unwind(AssertUnwindSafe(|| self.dispatch(line))) {
            Ok(d) => d,
            Err(_) => Dispatch::Reply(self.note_panic()),
        }
    }

    /// [`NedServer::dispatch_request`] behind the same panic shield.
    pub fn dispatch_request_isolated(&self, req: Request) -> Dispatch {
        match catch_unwind(AssertUnwindSafe(|| self.dispatch_request(req))) {
            Ok(d) => d,
            Err(_) => Dispatch::Reply(self.note_panic()),
        }
    }

    /// Counts an isolated panic and renders the standard reply for it.
    fn note_panic(&self) -> String {
        self.counters.panics.fetch_add(1, Ordering::Relaxed);
        "error: internal panic while executing the command; the index rolled \
         back to its last published state and the server is still serving"
            .to_string()
    }

    /// Executes one non-session request. This is the single exhaustive
    /// match the whole serving layer funnels through; errors are the
    /// structured [`ServerError`] taxonomy, rendered into
    /// [`Response::Error`] by the surfaces.
    pub fn execute(&self, req: &Request) -> Result<Response, ServerError> {
        // A replica mid catch-up is at *some* consistent old epoch, but
        // serving it would hand the router a read it immediately has to
        // repair — answer with the dedicated retry-elsewhere state
        // instead. Direct writes are refused too: one applied between
        // two streamed records would take an epoch the peer's WAL
        // assigns different content, forking the replica's history.
        // Epoch/fingerprint probes keep working so the router can watch
        // the catch-up make progress.
        if self.catching_up.load(Ordering::Acquire)
            && matches!(
                req,
                Request::Query { .. }
                    | Request::Range { .. }
                    | Request::Sig { .. }
                    | Request::RangeSig { .. }
                    | Request::Add { .. }
                    | Request::AddSig { .. }
                    | Request::PutSig { .. }
                    | Request::Remove { .. }
                    | Request::AddEdge { .. }
                    | Request::DelEdge { .. }
            )
        {
            return Err(ServerError::CatchingUp(
                "replica is replaying a peer's WAL suffix; retry on another replica".into(),
            ));
        }
        Ok(match req {
            Request::Help => Response::Info {
                body: HELP_BODY.to_string(),
            },
            Request::Stats => Response::Info {
                body: self.stats_line(),
            },
            Request::Epoch => {
                let (snap, epoch) = self.reader().snapshot_with_epoch();
                Response::Epoch {
                    epoch,
                    len: snap.len() as u64,
                }
            }
            Request::Fingerprint => {
                let (snap, epoch) = self.reader().snapshot_with_epoch();
                Response::Fingerprint {
                    epoch,
                    len: snap.len() as u64,
                    hash: snap.live_set_fingerprint(),
                }
            }
            Request::WalSuffix { from_epoch } => {
                // Under the writer lock a checkpoint cannot reset the
                // log mid-read, and no new record can land half-written.
                let writer = self.index.writer();
                let Some(wal) = writer.wal() else {
                    return Err(ServerError::bad(
                        "no write-ahead log attached; WAL suffix streaming needs `serve --wal`",
                    ));
                };
                let base = wal.base();
                if *from_epoch < base {
                    // The records the peer needs were checkpointed away.
                    // Deliberately non-retryable: streaming can never
                    // succeed, the peer must resync from a snapshot.
                    return Err(ServerError::bad(format!(
                        "wal suffix unavailable: the log was reset at checkpoint epoch {base}, \
                         past the requested epoch {from_epoch}; resync from a snapshot"
                    )));
                }
                // One *bounded* chunk per request (the caller loops from
                // its new epoch): records land in the log in epoch
                // order, so the cap keeps a contiguous prefix of the
                // suffix.
                let mut records: Vec<Vec<u8>> = Vec::new();
                let mut bytes = 0usize;
                for record in wal
                    .records()
                    .map_err(|e| ServerError::Io(format!("wal read failed: {e}")))?
                {
                    if crate::durable::record_epoch(&record).is_none_or(|e| e <= *from_epoch) {
                        continue;
                    }
                    bytes += record.len();
                    records.push(record);
                    if records.len() >= WAL_CHUNK_MAX_RECORDS || bytes >= WAL_CHUNK_MAX_BYTES {
                        break;
                    }
                }
                Response::WalChunk {
                    base,
                    epoch: writer.epoch(),
                    records,
                }
            }
            Request::CatchUp { peer } => Response::Ok {
                msg: self.catch_up_from(peer)?,
            },
            Request::Query { path, node, top } => {
                let sig = self.extract(path, *node)?;
                let (snap, epoch) = self.reader().snapshot_with_epoch();
                hits_response(epoch, &snap.query(&sig, *top, self.query_threads))
            }
            Request::Range { path, node, radius } => {
                let sig = self.extract(path, *node)?;
                let (snap, epoch) = self.reader().snapshot_with_epoch();
                hits_response(epoch, &snap.range(&sig, *radius, self.query_threads))
            }
            Request::Sig { shape, top, within } => {
                let sig = parse_sig(shape)?;
                let (snap, epoch) = self.reader().snapshot_with_epoch();
                let hits = match within {
                    // The scatter-gather pushdown: only distances within
                    // the coordinator's shared radius can make the global
                    // top-k, so run a (cheaper, budget-bounded) range
                    // query and keep the best `top` — inclusive bound, so
                    // ties survive and the fleet merge stays bit-identical.
                    Some(budget) => {
                        let mut hits = snap.range(&sig, *budget, self.query_threads);
                        hits.truncate(*top);
                        hits
                    }
                    None => snap.query(&sig, *top, self.query_threads),
                };
                hits_response(epoch, &hits)
            }
            Request::RangeSig { shape, radius } => {
                let sig = parse_sig(shape)?;
                let (snap, epoch) = self.reader().snapshot_with_epoch();
                hits_response(epoch, &snap.range(&sig, *radius, self.query_threads))
            }
            Request::Add { path, node } => {
                let sig = self.extract(path, *node)?;
                match self.write_one(WriteOp::Insert(sig))? {
                    (WriteOutcome::Inserted(id), _) => Response::Added { id },
                    _ => unreachable!("insert answers Inserted"),
                }
            }
            Request::AddSig { shape } => {
                let sig = parse_sig(shape)?;
                match self.write_one(WriteOp::Insert(sig))? {
                    (WriteOutcome::Inserted(id), _) => Response::Added { id },
                    _ => unreachable!("insert answers Inserted"),
                }
            }
            Request::PutSig { id, shape } => {
                let sig = parse_sig(shape)?;
                match self.write_one(WriteOp::Replace(*id, sig))? {
                    (WriteOutcome::Replaced { id, fresh }, epoch) => {
                        Response::Put { id, fresh, epoch }
                    }
                    _ => unreachable!("replace answers Replaced"),
                }
            }
            Request::Remove { id } => match self.write_one(WriteOp::Remove(*id))? {
                (WriteOutcome::Removed { id, existed }, _) => Response::Removed { id, existed },
                _ => unreachable!("remove answers Removed"),
            },
            Request::Track { path } => {
                let graph = self.graph(path)?;
                Response::Ok {
                    msg: self.track(&graph)?,
                }
            }
            Request::AddEdge { a, b } => Response::Ok {
                msg: self.apply_delta(GraphDelta::AddEdge(*a, *b))?,
            },
            Request::DelEdge { a, b } => Response::Ok {
                msg: self.apply_delta(GraphDelta::RemoveEdge(*a, *b))?,
            },
            Request::Save { path } => {
                self.index
                    .writer()
                    .index()
                    .save(Path::new(path))
                    .map_err(|e| ServerError::Io(format!("{path}: {e}")))?;
                Response::Ok {
                    msg: format!("saved {path}"),
                }
            }
            Request::Checkpoint => match self.index.checkpoint() {
                Ok(Some(epoch)) => Response::Ok {
                    msg: format!("checkpoint epoch={epoch}"),
                },
                Ok(None) => Response::Ok {
                    msg: "ephemeral index; nothing to checkpoint".to_string(),
                },
                Err(e) => return Err(ServerError::Io(format!("checkpoint failed: {e}"))),
            },
            Request::TestPanic if self.config.enable_test_panic => {
                panic!("test-injected panic (`__panic` command)")
            }
            Request::TestPanic => {
                return Err(ServerError::bad(
                    "unrecognized command \"__panic\"; try `help`",
                ))
            }
            Request::Quit | Request::Shutdown => {
                unreachable!("session control handled by dispatch_request")
            }
        })
    }

    /// Executes a whole frame payload: one or more newline-separated
    /// commands, each parsed once at this boundary. Multi-command
    /// payloads of pure reads fan out on the worker pool
    /// (order-preserving); anything containing a write runs sequentially.
    /// Returns the concatenated reply and whether the session should end.
    pub fn handle_payload(self: &Arc<Self>, payload: &str) -> (String, bool) {
        let parsed: Vec<Result<Option<Request>, ServerError>> =
            payload.lines().map(Request::parse_line).collect();
        // Blank lines and parse errors count as reads: they answer
        // without touching anything.
        let all_reads = parsed.len() > 1
            && parsed
                .iter()
                .all(|p| !matches!(p, Ok(Some(req)) if req.is_write()));
        if all_reads {
            let jobs: Vec<_> = parsed
                .into_iter()
                .map(|p| {
                    let server = Arc::clone(self);
                    // The isolation matters doubly here: a panic that
                    // escaped a pool job would kill a pool worker and
                    // poison every later batch frame.
                    move || match p {
                        Ok(None) => String::new(),
                        Err(e) => Response::Error(e).to_string(),
                        Ok(Some(req)) => match server.dispatch_request_isolated(req) {
                            Dispatch::Reply(r) => r,
                            _ => unreachable!("read-only requests never end the session"),
                        },
                    }
                })
                .collect();
            return (self.pool.run_ordered(jobs).join("\n"), false);
        }
        let mut replies = Vec::with_capacity(parsed.len());
        for p in parsed {
            match p {
                Ok(None) => replies.push(String::new()),
                Err(e) => replies.push(Response::Error(e).to_string()),
                Ok(Some(req)) => match self.dispatch_request_isolated(req) {
                    Dispatch::Reply(r) => replies.push(r),
                    Dispatch::Quit => {
                        replies.push("ok bye".to_string());
                        return (replies.join("\n"), true);
                    }
                    Dispatch::Shutdown => {
                        replies.push(
                            "ok draining: in-flight connections finish, a final checkpoint \
                             runs, then the server exits"
                                .to_string(),
                        );
                        return (replies.join("\n"), true);
                    }
                },
            }
        }
        (replies.join("\n"), false)
    }

    /// Flips the drain flag and wakes the acceptor with a throwaway
    /// loopback connection (an accept blocked in the kernel cannot see
    /// an atomic). Idempotent; the `shutdown` command lands here.
    pub fn initiate_shutdown(&self) {
        self.shutting_down.store(true, Ordering::Release);
        let addr = *self.local_addr.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(addr) = addr {
            let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(250));
        }
    }

    /// Whether `shutdown` has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::Acquire)
    }

    /// Final checkpoint (snapshot + WAL reset); `Ok(None)` when serving
    /// ephemerally. The drain path and the CLI's session teardown both
    /// call this so a clean exit never needs log replay on the next boot.
    pub fn finalize(&self) -> std::io::Result<Option<u64>> {
        self.index.checkpoint()
    }

    /// Accept loop: one thread per connection, all sharing this server.
    /// Runs until the listener fails or `shutdown` drains it; individual
    /// connection errors only end that connection. On shutdown the loop
    /// stops accepting, waits out in-flight frames (force-closing idle
    /// sockets after [`ServerConfig::drain_grace`]), runs a final
    /// checkpoint, and returns `Ok(())` so the process can exit 0.
    pub fn serve_tcp(self: &Arc<Self>, listener: TcpListener) -> std::io::Result<()> {
        *self.local_addr.lock().unwrap_or_else(|p| p.into_inner()) = listener.local_addr().ok();
        for conn in listener.incoming() {
            if self.is_shutting_down() {
                break;
            }
            let stream = conn?;
            self.counters.accepted.fetch_add(1, Ordering::Relaxed);
            // The accept loop is the only incrementer of `active`, so
            // check-then-increment cannot race past the cap.
            let active = self.counters.active.load(Ordering::Relaxed);
            if active >= self.config.max_conns {
                self.counters.overloaded.fetch_add(1, Ordering::Relaxed);
                let refusal = ServerError::Overloaded(format!(
                    "{active}/{} connections; retry later",
                    self.config.max_conns
                ));
                let mut w = &stream;
                let _ = wire::write_text_frame(&mut w, &refusal.to_string());
                continue; // drop closes the socket
            }
            self.counters.active.fetch_add(1, Ordering::Relaxed);
            let id = self.conn_seq.fetch_add(1, Ordering::Relaxed);
            if let Ok(clone) = stream.try_clone() {
                self.conns
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .insert(id, clone);
            }
            let server = Arc::clone(self);
            std::thread::spawn(move || {
                // Belt over the per-command suspenders: nothing a
                // connection does may unwind into the process.
                if catch_unwind(AssertUnwindSafe(|| server.handle_conn(&stream))).is_err() {
                    server.counters.panics.fetch_add(1, Ordering::Relaxed);
                }
                server.counters.active.fetch_sub(1, Ordering::Relaxed);
                server
                    .conns
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .remove(&id);
            });
        }
        self.drain();
        self.finalize().map(|_| ())
    }

    /// Waits for in-flight connections, then force-closes stragglers and
    /// waits once more. Every wait is bounded by the drain grace.
    fn drain(&self) {
        let wait = |deadline: Instant| {
            while self.counters.active.load(Ordering::Relaxed) > 0 && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(10));
            }
        };
        wait(Instant::now() + self.config.drain_grace);
        for (_, conn) in self.conns.lock().unwrap_or_else(|p| p.into_inner()).drain() {
            let _ = conn.shutdown(SocketShutdown::Both);
        }
        wait(Instant::now() + self.config.drain_grace);
    }

    fn handle_conn(self: &Arc<Self>, stream: &TcpStream) {
        let _ = stream.set_read_timeout(self.config.read_timeout);
        let _ = stream.set_write_timeout(self.config.write_timeout);
        let mut read_half = stream;
        let mut write_half = stream;
        loop {
            match wire::read_frame(&mut read_half) {
                Ok(None) => return, // clean disconnect
                Ok(Some(payload)) => {
                    // UTF-8 decoding happens here rather than in
                    // `read_text_frame`: a non-UTF-8 payload inside a
                    // checksum-valid frame means framing sync is intact,
                    // so it gets an in-band error and the connection
                    // survives.
                    let reply = match String::from_utf8(payload) {
                        Ok(text) => {
                            let (reply, quit) = self.handle_payload(&text);
                            if wire::write_text_frame(&mut write_half, &reply).is_err()
                                || quit
                                || self.is_shutting_down()
                            {
                                return;
                            }
                            continue;
                        }
                        Err(_) => ServerError::Corrupt("frame payload is not UTF-8".to_string())
                            .to_string(),
                    };
                    if wire::write_text_frame(&mut write_half, &reply).is_err() {
                        return;
                    }
                }
                Err(wire::WireError::Io(e))
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    // The socket timeout fired: the client is wedged (or
                    // just idle past the limit). Say why, then hang up.
                    self.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                    let timeout = ServerError::Io("socket timeout; closing connection".to_string());
                    let _ = wire::write_text_frame(&mut write_half, &timeout.to_string());
                    return;
                }
                Err(e) => {
                    // Framing sync is gone (bad length, magic, checksum,
                    // or non-UTF-8 payload): tell the client why — as the
                    // Corrupt it is — then hang up.
                    let corrupt = ServerError::from(e);
                    let _ = wire::write_text_frame(&mut write_half, &corrupt.to_string());
                    return;
                }
            }
        }
    }

    /// Loads (and caches) the edge-list graph at `path`. The cache lock
    /// is never held across parsing.
    fn graph(&self, path: &str) -> Result<Arc<Graph>, ServerError> {
        let cached = {
            let graphs = self.graphs.lock().unwrap_or_else(|p| p.into_inner());
            graphs.get(path).cloned()
        };
        match cached {
            Some(g) => Ok(g),
            None => {
                let g = Arc::new(
                    graph_io::read_edge_list(Path::new(path), false)
                        .map_err(|e| ServerError::bad(format!("{path}: {e}")))?,
                );
                self.graphs
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .insert(path.to_string(), Arc::clone(&g));
                Ok(g)
            }
        }
    }

    /// Extracts the query signature for `<path> <node>`, caching the
    /// parsed graph.
    fn extract(&self, path: &str, node: NodeId) -> Result<NodeSignature, ServerError> {
        let graph = self.graph(path)?;
        if (node as usize) >= graph.num_nodes() {
            return Err(ServerError::bad(format!(
                "node {node} out of range (graph has {} nodes)",
                graph.num_nodes()
            )));
        }
        Ok(NodeSignature::extract(&graph, node, self.reader().k()))
    }
}

fn parse_sig(shape: &str) -> Result<NodeSignature, ServerError> {
    let tree = ned_tree::serialize::parse(shape).map_err(|e| ServerError::bad(e.to_string()))?;
    Ok(NodeSignature::from_prepared(0, PreparedTree::new(&tree)))
}

/// Renders forest hits into the epoch-tagged wire response.
fn hits_response(epoch: u64, hits: &[ForestHit]) -> Response {
    Response::Hits {
        epoch,
        hits: hits
            .iter()
            .map(|h| WireHit {
                id: h.id,
                distance: h.distance,
            })
            .collect(),
    }
}

const HELP_BODY: &str = "commands:\n\
    \x20 query <graph.edges> <node> [top]   nearest indexed signatures\n\
    \x20 range <graph.edges> <node> <r>     all signatures with NED <= r\n\
    \x20                                    (r is the budget of every exact\n\
    \x20                                    TED* call - bounded, not\n\
    \x20                                    compute-then-filter)\n\
    \x20 sig <parens-tree> [top] [within=b] query by a literal tree shape\n\
    \x20                                    (within= caps useful distances\n\
    \x20                                    - the fleet radius pushdown)\n\
    \x20 rangesig <parens-tree> <r>         range query by a literal shape\n\
    \x20 add <graph.edges> <node>           index one more signature\n\
    \x20 addsig <parens-tree>               index a literal tree shape\n\
    \x20 putsig <id> <parens-tree>          index under an explicit id\n\
    \x20                                    (coordinators own id assignment)\n\
    \x20 remove <id>                        drop a signature by id\n\
    \x20 track <graph.edges>                attach a mutating graph (node v\n\
    \x20                                    must be indexed under id v; raw\n\
    \x20                                    add/addsig/putsig/remove detach)\n\
    \x20 addedge <a> <b>                    add a tracked-graph edge; only\n\
    \x20 deledge <a> <b>                    the (k-1)-hop dirty set is\n\
    \x20                                    recomputed, one epoch per delta\n\
    \x20 stats                              index shape + epoch + memo +\n\
    \x20                                    serving counters + durability\n\
    \x20 epoch                              publication count + live size\n\
    \x20 fingerprint                        epoch + live size + live-set\n\
    \x20                                    hash (the anti-entropy probe)\n\
    \x20 walsuffix <from_epoch>             stream WAL records past an\n\
    \x20                                    epoch to a catching-up peer\n\
    \x20 catchup <host:port>                replay a peer's WAL suffix\n\
    \x20                                    through the journaled path\n\
    \x20 save <path>                        persist the current index\n\
    \x20 checkpoint                         snapshot now + reset the WAL\n\
    \x20 shutdown                           drain, checkpoint, exit cleanly\n\
    \x20 quit";

/// Hard cap on the total wall-clock a [`WireClient::call_with_retry`]
/// ladder may spend sleeping-and-retrying. A scatter-gather leg pointed
/// at a dead replica gives up here and lets the router fail over,
/// regardless of how many attempts the budget nominally allows.
pub const RETRY_DEADLINE: Duration = Duration::from_secs(8);

/// The backoff before retry `attempt` (1-based): exponential from 20 ms
/// doubling to a 2 s ceiling, jittered deterministically into
/// `[base/2, base]` by an xorshift* mix of `(seed, attempt)`. The seed
/// is derived from the peer address, so two clients hammering the same
/// dead replica follow *different* schedules (no thundering herd) while
/// any one schedule is reproducible in tests.
fn retry_backoff(attempt: u32, seed: u64) -> Duration {
    let exp = attempt.saturating_sub(1).min(7);
    let base_ms = (20u64 << exp).min(2_000);
    let mut x = seed ^ u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    Duration::from_millis(base_ms / 2 + x % (base_ms / 2 + 1))
}

/// The sleep to take before retry `attempt`, or `None` when taking it
/// would cross `deadline` — the ladder's hard stop.
fn retry_sleep(attempt: u32, seed: u64, elapsed: Duration, deadline: Duration) -> Option<Duration> {
    let delay = retry_backoff(attempt, seed);
    (elapsed + delay < deadline).then_some(delay)
}

/// A blocking client for the framed TCP protocol — used by the CLI, the
/// shard router, the load generator, and the loopback tests.
///
/// Configure through [`WireClient::builder`]:
///
/// ```no_run
/// use ned_index::server::WireClient;
/// use std::time::Duration;
///
/// let mut client = WireClient::builder()
///     .timeouts(Some(Duration::from_secs(5)), Some(Duration::from_secs(5)))
///     .retry(4)
///     .connect("127.0.0.1:7878")?;
/// let reply = client.call("epoch")?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct WireClient {
    stream: TcpStream,
    /// The resolved peer, remembered for redialing.
    addr: Option<SocketAddr>,
    read_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
    /// Attempts used by [`WireClient::call_with_retry`].
    retry_attempts: u32,
}

/// Configures and connects a [`WireClient`] — the one place connection
/// policy (timeouts, retry budget) is decided, replacing the deprecated
/// post-hoc setters.
#[derive(Debug, Clone, Copy)]
pub struct WireClientBuilder {
    read_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
    retry_attempts: u32,
}

impl WireClientBuilder {
    /// Socket read/write timeouts (`None` = block forever). Applied at
    /// connect time and re-applied on every internal redial.
    pub fn timeouts(mut self, read: Option<Duration>, write: Option<Duration>) -> Self {
        self.read_timeout = read;
        self.write_timeout = write;
        self
    }

    /// Total attempts [`WireClient::call_with_retry`] makes (including
    /// the first); clamped to at least 1.
    pub fn retry(mut self, attempts: u32) -> Self {
        self.retry_attempts = attempts.max(1);
        self
    }

    /// Dials the server and returns the configured client.
    pub fn connect<A: ToSocketAddrs>(self, addr: A) -> std::io::Result<WireClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(self.read_timeout)?;
        stream.set_write_timeout(self.write_timeout)?;
        let addr = stream.peer_addr().ok();
        Ok(WireClient {
            stream,
            addr,
            read_timeout: self.read_timeout,
            write_timeout: self.write_timeout,
            retry_attempts: self.retry_attempts,
        })
    }
}

impl WireClient {
    /// A builder with no timeouts and a single attempt — the
    /// configuration entry point.
    pub fn builder() -> WireClientBuilder {
        WireClientBuilder {
            read_timeout: None,
            write_timeout: None,
            retry_attempts: 1,
        }
    }

    /// Connects to a serving `ned-cli serve --tcp` address with the
    /// default configuration (no timeouts, one attempt).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        Self::builder().connect(addr)
    }

    /// Applies socket timeouts so a dead or drained server surfaces as a
    /// timely error instead of a hung client.
    #[deprecated(note = "configure via `WireClient::builder().timeouts(..)` instead")]
    pub fn set_timeouts(
        &self,
        read: Option<Duration>,
        write: Option<Duration>,
    ) -> std::io::Result<()> {
        self.stream.set_read_timeout(read)?;
        self.stream.set_write_timeout(write)
    }

    /// Drops the current stream and dials the remembered peer address
    /// again. Any reply in flight on the old stream is lost.
    #[deprecated(note = "redialing is internal to `WireClient::call_with_retry`; \
                         reconnect by building a new client")]
    pub fn reconnect(&mut self) -> std::io::Result<()> {
        self.redial()
    }

    /// Dials the remembered peer again, re-applying the configured
    /// timeouts, and replaces the stream.
    fn redial(&mut self) -> std::io::Result<()> {
        let addr = self.addr.ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::AddrNotAvailable,
                "peer address unknown; cannot reconnect",
            )
        })?;
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(self.read_timeout)?;
        stream.set_write_timeout(self.write_timeout)?;
        self.stream = stream;
        Ok(())
    }

    /// Sends one payload (one command, or a newline-separated batch) and
    /// returns the reply text.
    pub fn call(&mut self, payload: &str) -> Result<String, wire::WireError> {
        self.send_raw(payload.as_bytes())?;
        self.read_reply()
    }

    /// [`WireClient::call`] with bounded exponential-backoff
    /// reconnect-and-retry using the builder-configured attempt budget,
    /// for payloads that are safe to send twice — **idempotent reads
    /// only**. A retried write could double-apply: the server may have
    /// executed a call whose reply was lost. The backoff before retry
    /// `n` is exponential from 20 ms (capped at 2 s) with deterministic
    /// per-peer jitter in `[base/2, base]`, so concurrent scatter-gather
    /// legs retrying the same dead replica spread out instead of
    /// thundering in lockstep; the whole ladder is cut off at a hard
    /// [`RETRY_DEADLINE`] so a dead peer can never stall a leg for the
    /// full unjittered schedule. Returns the last error if no attempt
    /// succeeds.
    pub fn call_with_retry(&mut self, payload: &str) -> Result<String, wire::WireError> {
        self.retry_inner(payload, self.retry_attempts)
    }

    /// [`WireClient::call_with_retry`] with an explicit attempt count.
    #[deprecated(note = "set the attempt budget via `WireClient::builder().retry(..)` \
                         and use `call_with_retry`")]
    pub fn call_idempotent(
        &mut self,
        payload: &str,
        attempts: u32,
    ) -> Result<String, wire::WireError> {
        self.retry_inner(payload, attempts)
    }

    fn retry_inner(&mut self, payload: &str, attempts: u32) -> Result<String, wire::WireError> {
        let seed = self
            .addr
            .map(|a| ned_core::store::fnv1a64(a.to_string().as_bytes()))
            .unwrap_or(0x4e45_4457); // "NEDW": a fixed seed beats none
        let started = Instant::now();
        let mut last = None;
        for attempt in 0..attempts.max(1) {
            if attempt > 0 {
                let Some(delay) = retry_sleep(attempt, seed, started.elapsed(), RETRY_DEADLINE)
                else {
                    break; // the hard deadline: stop burning time on a dead peer
                };
                std::thread::sleep(delay);
                if let Err(e) = self.redial() {
                    last = Some(wire::WireError::Io(e));
                    continue;
                }
            }
            match self.call(payload) {
                Ok(reply) => return Ok(reply),
                Err(e) => last = Some(e),
            }
        }
        Err(last.expect("at least one attempt ran"))
    }

    /// Sends one typed request and parses the typed reply — the
    /// programmatic surface the shard router drives. Transport failures
    /// and malformed replies both surface as [`ServerError`], so callers
    /// branch on one retryability taxonomy.
    ///
    /// ```
    /// use ned_core::{Request, Response};
    /// use ned_index::{NedServer, SignatureIndex, WireClient};
    /// use std::net::TcpListener;
    /// use std::sync::Arc;
    ///
    /// let server = Arc::new(NedServer::new(SignatureIndex::new(3, 16, 1), 1, 1));
    /// let listener = TcpListener::bind("127.0.0.1:0")?;
    /// let addr = listener.local_addr()?;
    /// std::thread::spawn({
    ///     let server = Arc::clone(&server);
    ///     move || server.serve_tcp(listener)
    /// });
    ///
    /// let mut client = WireClient::connect(addr)?;
    /// match client.request(&Request::Stats)? {
    ///     Response::Info { body } => assert!(body.contains("sketch: mode exact")),
    ///     other => panic!("unexpected reply: {other:?}"),
    /// }
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn request(&mut self, req: &Request) -> Result<Response, ServerError> {
        let reply = self.call(&req.to_string())?;
        Response::parse(&reply)
    }

    /// [`WireClient::request`] with the configured retry budget — for
    /// idempotent (read) requests only.
    pub fn request_with_retry(&mut self, req: &Request) -> Result<Response, ServerError> {
        let reply = self.call_with_retry(&req.to_string())?;
        Response::parse(&reply)
    }

    /// Sends a typed batch as one frame and parses the replies, which
    /// arrive in request order (one per request — the count is checked).
    pub fn request_batch(&mut self, reqs: &[Request]) -> Result<Vec<Response>, ServerError> {
        let payload = reqs
            .iter()
            .map(|r| r.to_string())
            .collect::<Vec<_>>()
            .join("\n");
        let reply = self.call(&payload)?;
        let responses = Response::parse_stream(&reply)?;
        if responses.len() != reqs.len() {
            return Err(ServerError::Corrupt(format!(
                "sent {} requests, got {} replies",
                reqs.len(),
                responses.len()
            )));
        }
        Ok(responses)
    }

    /// Sends raw payload bytes without reading a reply. Only useful
    /// together with [`WireClient::read_reply`]; [`WireClient::call`] is
    /// the normal entry point.
    pub fn send_raw(&mut self, payload: &[u8]) -> Result<(), wire::WireError> {
        wire::write_frame(&mut self.stream, payload)?;
        Ok(())
    }

    /// Reads one reply frame as text.
    pub fn read_reply(&mut self) -> Result<String, wire::WireError> {
        match wire::read_text_frame(&mut self.stream)? {
            Some(text) => Ok(text),
            None => Err(wire::WireError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before replying",
            ))),
        }
    }

    /// Writes raw bytes *outside* the frame discipline — the hook the
    /// malformed-frame tests use to poison a stream on purpose.
    pub fn send_bytes(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// Reads whatever bytes remain until EOF (used after the server hangs
    /// up on a poisoned stream).
    pub fn read_to_end(&mut self) -> std::io::Result<Vec<u8>> {
        let mut out = Vec::new();
        self.stream.read_to_end(&mut out)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_jitter_stays_within_the_exponential_envelope() {
        for attempt in 1..=10u32 {
            let base_ms = (20u64 << attempt.saturating_sub(1).min(7)).min(2_000);
            for seed in [0u64, 1, 42, u64::MAX, 0x4e45_4457] {
                let d = retry_backoff(attempt, seed).as_millis() as u64;
                assert!(
                    (base_ms / 2..=base_ms).contains(&d),
                    "attempt {attempt} seed {seed}: {d}ms outside [{}, {base_ms}]",
                    base_ms / 2
                );
            }
        }
    }

    #[test]
    fn backoff_seeds_desynchronize_concurrent_legs() {
        // Two legs retrying the same dead replica from different client
        // addresses must not sleep in lockstep: across a whole ladder,
        // at least one rung has to differ for distinct seeds.
        let ladder = |seed: u64| {
            (1..=6u32)
                .map(|a| retry_backoff(a, seed))
                .collect::<Vec<_>>()
        };
        assert_ne!(ladder(1), ladder(2));
        assert_ne!(ladder(0xdead_beef), ladder(0xfeed_face));
    }

    #[test]
    fn retry_ladder_respects_the_hard_deadline() {
        // Simulate an absurd attempt budget against a dead peer: the
        // planned sleeps must stop before the deadline, and the total
        // time slept can never cross it.
        for seed in [7u64, 0x4e45_4457] {
            let mut elapsed = Duration::ZERO;
            let mut stopped = false;
            for attempt in 1..=1_000u32 {
                match retry_sleep(attempt, seed, elapsed, RETRY_DEADLINE) {
                    Some(d) => elapsed += d,
                    None => {
                        stopped = true;
                        break;
                    }
                }
            }
            assert!(stopped, "a 1000-attempt ladder must hit the deadline");
            assert!(
                elapsed < RETRY_DEADLINE,
                "slept {elapsed:?} past the {RETRY_DEADLINE:?} deadline"
            );
        }
    }
}
