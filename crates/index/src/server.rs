//! The **serving front-end** over [`crate::concurrent::ConcurrentNedIndex`]:
//! one command dispatcher shared by every surface, a dependency-free
//! `std::net` TCP server speaking the framed batch protocol, and the
//! matching client.
//!
//! # Command language
//!
//! One command per line, answers as text whose final line starts with
//! `ok` or `error:`. The same lines work over every surface — the CLI
//! REPL feeds stdin lines straight into [`NedServer::dispatch`], the TCP
//! server feeds it decoded frame payloads — so behavior cannot drift
//! between the interactive and networked paths.
//!
//! ```text
//! query <graph.edges> <node> [top]    nearest indexed signatures
//! range <graph.edges> <node> <r>      all signatures with NED <= r
//! sig <parens-tree> [top]             query by a literal tree shape
//! rangesig <parens-tree> <r>          range query by a literal shape
//! add <graph.edges> <node>            index one more signature
//! addsig <parens-tree>                index a literal tree shape
//! remove <id>                         drop a signature by id
//! stats | epoch | help | quit
//! save <path>                         persist the current index
//! ```
//!
//! # The batch protocol
//!
//! A TCP frame (see [`ned_core::wire`]) carries one *or more*
//! newline-separated commands; the reply frame carries the concatenated
//! replies in command order. Batching amortizes round-trips, and a frame
//! of **read-only** commands additionally fans out across the server's
//! persistent [`WorkerPool`] (each command grabs its own snapshot — reads
//! never block). Frames containing any write run sequentially in frame
//! order, so a client's `addsig` is visible to the commands after it in
//! the same frame.
//!
//! Connections are thread-per-connection `std::net` — no async runtime,
//! in keeping with the repo's no-external-dependencies rule. A frame that
//! fails checksum/magic/length validation gets a best-effort
//! `error: ...` reply and the connection is closed: once framing sync is
//! lost the stream cannot be trusted.

use crate::concurrent::{ConcurrentNedIndex, IndexReader};
use crate::forest::ForestHit;
use crate::signatures::SignatureIndex;
use ned_core::{wire, NodeSignature, PreparedTree, WorkerPool};
use ned_graph::{io as graph_io, Graph, NodeId};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Outcome of dispatching one command line.
pub enum Dispatch {
    /// The text to show or send back (final line `ok ...` / `error: ...`).
    Reply(String),
    /// The client asked to end the session (`quit` / `exit`).
    Quit,
}

/// The shared serving state: concurrent index, graph cache, worker pool.
/// Cheap to share — wrap in an [`Arc`] and hand clones to every
/// connection thread (see [`NedServer::serve_tcp`]).
pub struct NedServer {
    index: ConcurrentNedIndex,
    /// Parsed edge-list files, cached across commands and connections.
    graphs: Mutex<HashMap<String, Arc<Graph>>>,
    /// Persistent pool reused by every read-only batch frame.
    pool: WorkerPool,
    /// Intra-query fan-out passed to the forest (`1` is right for
    /// concurrent serving: requests, not shards, should fill the cores).
    query_threads: usize,
}

impl NedServer {
    /// Wraps `index` for serving. `query_threads` is the per-query shard
    /// fan-out (`0` = all cores — right for a single-user REPL, wrong for
    /// a concurrent server, which should pass `1`); `pool_threads` sizes
    /// the batch pool (`0` = all cores).
    pub fn new(index: SignatureIndex, query_threads: usize, pool_threads: usize) -> Self {
        NedServer {
            index: ConcurrentNedIndex::new(index),
            graphs: Mutex::new(HashMap::new()),
            pool: WorkerPool::new(pool_threads),
            query_threads,
        }
    }

    /// A read handle onto the served index.
    pub fn reader(&self) -> IndexReader {
        self.index.reader()
    }

    /// One-line summary of the current snapshot (the `stats` reply body).
    pub fn stats_line(&self) -> String {
        let snap = self.reader().snapshot();
        let stats = snap.stats();
        format!(
            "signatures: {} (k = {}), buffer {}, shards {:?}, tombstones {}, epoch {}",
            stats.len,
            snap.k(),
            stats.buffer,
            stats.shard_sizes,
            stats.tombstones,
            self.reader().epoch(),
        )
    }

    /// Executes one command line. Errors come back as `Reply` text with
    /// an `error:` prefix, so every surface reports them identically.
    pub fn dispatch(&self, line: &str) -> Dispatch {
        match self.try_dispatch(line.trim()) {
            Ok(d) => d,
            Err(msg) => Dispatch::Reply(format!("error: {msg}")),
        }
    }

    /// Executes a whole frame payload: one or more newline-separated
    /// commands. Multi-command payloads of pure reads fan out on the
    /// worker pool (order-preserving); anything containing a write runs
    /// sequentially. Returns the concatenated reply and whether the
    /// session should end.
    pub fn handle_payload(self: &Arc<Self>, payload: &str) -> (String, bool) {
        let lines: Vec<&str> = payload.lines().collect();
        if lines.len() > 1 && lines.iter().all(|l| is_read_only(l)) {
            let jobs: Vec<_> = lines
                .iter()
                .map(|l| {
                    let server = Arc::clone(self);
                    let line = l.to_string();
                    move || match server.dispatch(&line) {
                        Dispatch::Reply(r) => r,
                        Dispatch::Quit => unreachable!("read-only lines never quit"),
                    }
                })
                .collect();
            return (self.pool.run_ordered(jobs).join("\n"), false);
        }
        let mut replies = Vec::with_capacity(lines.len());
        for l in &lines {
            match self.dispatch(l) {
                Dispatch::Reply(r) => replies.push(r),
                Dispatch::Quit => {
                    replies.push("ok bye".to_string());
                    return (replies.join("\n"), true);
                }
            }
        }
        (replies.join("\n"), false)
    }

    /// Accept loop: one thread per connection, all sharing this server.
    /// Runs until the listener itself fails; individual connection errors
    /// only end that connection.
    pub fn serve_tcp(self: &Arc<Self>, listener: TcpListener) -> std::io::Result<()> {
        for conn in listener.incoming() {
            let stream = conn?;
            let server = Arc::clone(self);
            std::thread::spawn(move || server.handle_conn(stream));
        }
        Ok(())
    }

    fn handle_conn(self: Arc<Self>, stream: TcpStream) {
        let mut read_half = &stream;
        let mut write_half = &stream;
        loop {
            match wire::read_frame(&mut read_half) {
                Ok(None) => return, // clean disconnect
                Ok(Some(payload)) => {
                    let reply = match String::from_utf8(payload) {
                        Ok(text) => {
                            let (reply, quit) = self.handle_payload(&text);
                            if wire::write_frame(&mut write_half, reply.as_bytes()).is_err() || quit
                            {
                                return;
                            }
                            continue;
                        }
                        Err(_) => "error: frame payload is not UTF-8".to_string(),
                    };
                    if wire::write_frame(&mut write_half, reply.as_bytes()).is_err() {
                        return;
                    }
                }
                Err(e) => {
                    // Framing sync is gone (bad length, magic, or
                    // checksum): tell the client why, then hang up.
                    let _ = wire::write_frame(&mut write_half, format!("error: {e}").as_bytes());
                    return;
                }
            }
        }
    }

    fn try_dispatch(&self, line: &str) -> Result<Dispatch, String> {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let reply = match tokens.as_slice() {
            [] | ["#", ..] => String::new(),
            ["quit"] | ["exit"] => return Ok(Dispatch::Quit),
            ["help"] => HELP.to_string(),
            ["stats"] => format!("{}\nok", self.stats_line()),
            ["epoch"] => {
                let r = self.reader();
                format!("ok epoch={} len={}", r.epoch(), r.len())
            }
            ["query", path, node] | ["query", path, node, _] => {
                let top = parse_opt_count(tokens.get(3), 5)?;
                let sig = self.extract(path, node)?;
                fmt_hits(&self.reader().knn(&sig, top, self.query_threads))
            }
            ["range", path, node, radius] => {
                let r: u64 = radius
                    .parse()
                    .map_err(|_| format!("bad radius {radius:?}"))?;
                let sig = self.extract(path, node)?;
                fmt_hits(&self.reader().range(&sig, r, self.query_threads))
            }
            ["sig", shape] | ["sig", shape, _] => {
                let top = parse_opt_count(tokens.get(2), 5)?;
                let sig = parse_sig(shape)?;
                fmt_hits(&self.reader().knn(&sig, top, self.query_threads))
            }
            ["rangesig", shape, radius] => {
                let r: u64 = radius
                    .parse()
                    .map_err(|_| format!("bad radius {radius:?}"))?;
                let sig = parse_sig(shape)?;
                fmt_hits(&self.reader().range(&sig, r, self.query_threads))
            }
            ["add", path, node] => {
                let sig = self.extract(path, node)?;
                format!("ok id={}", self.index.writer().insert(sig))
            }
            ["addsig", shape] => {
                let sig = parse_sig(shape)?;
                format!("ok id={}", self.index.writer().insert(sig))
            }
            ["remove", id] => {
                let id: u64 = id.parse().map_err(|_| format!("bad id {id:?}"))?;
                if self.index.writer().remove(id) {
                    format!("ok removed {id}")
                } else {
                    format!("ok no such id {id}")
                }
            }
            ["save", path] => {
                self.index
                    .writer()
                    .index()
                    .save(Path::new(path))
                    .map_err(|e| format!("{path}: {e}"))?;
                format!("ok saved {path}")
            }
            _ => return Err(format!("unrecognized command {line:?}; try `help`")),
        };
        Ok(Dispatch::Reply(reply))
    }

    /// Extracts the query signature for `<path> <node>`, caching the
    /// parsed graph. The cache lock is never held across parsing or
    /// extraction.
    fn extract(&self, path: &str, node: &str) -> Result<NodeSignature, String> {
        let cached = {
            let graphs = self.graphs.lock().unwrap_or_else(|p| p.into_inner());
            graphs.get(path).cloned()
        };
        let graph = match cached {
            Some(g) => g,
            None => {
                let g = Arc::new(
                    graph_io::read_edge_list(Path::new(path), false)
                        .map_err(|e| format!("{path}: {e}"))?,
                );
                self.graphs
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .insert(path.to_string(), Arc::clone(&g));
                g
            }
        };
        let v: NodeId = node.parse().map_err(|_| format!("bad node id {node:?}"))?;
        if (v as usize) >= graph.num_nodes() {
            return Err(format!(
                "node {v} out of range (graph has {} nodes)",
                graph.num_nodes()
            ));
        }
        Ok(NodeSignature::extract(&graph, v, self.reader().k()))
    }
}

/// Whether a command line only reads — the batch-fan-out eligibility
/// test. Unknown commands count as reads: they produce an error reply
/// without touching anything.
fn is_read_only(line: &str) -> bool {
    !matches!(
        line.split_whitespace().next(),
        Some("add") | Some("addsig") | Some("remove") | Some("save") | Some("quit") | Some("exit")
    )
}

fn parse_opt_count(token: Option<&&str>, default: usize) -> Result<usize, String> {
    match token {
        Some(t) => t.parse().map_err(|_| format!("bad top {t:?}")),
        None => Ok(default),
    }
}

fn parse_sig(shape: &str) -> Result<NodeSignature, String> {
    let tree = ned_tree::serialize::parse(shape).map_err(|e| e.to_string())?;
    Ok(NodeSignature::from_prepared(0, PreparedTree::new(&tree)))
}

fn fmt_hits(hits: &[ForestHit]) -> String {
    let mut out = String::new();
    for h in hits {
        out.push_str(&format!("hit id={} ned={}\n", h.id, h.distance));
    }
    out.push_str(&format!("ok {} hits", hits.len()));
    out
}

const HELP: &str = "commands:\n\
    \x20 query <graph.edges> <node> [top]   nearest indexed signatures\n\
    \x20 range <graph.edges> <node> <r>     all signatures with NED <= r\n\
    \x20                                    (r is the budget of every exact\n\
    \x20                                    TED* call - bounded, not\n\
    \x20                                    compute-then-filter)\n\
    \x20 sig <parens-tree> [top]            query by a literal tree shape\n\
    \x20 rangesig <parens-tree> <r>         range query by a literal shape\n\
    \x20 add <graph.edges> <node>           index one more signature\n\
    \x20 addsig <parens-tree>               index a literal tree shape\n\
    \x20 remove <id>                        drop a signature by id\n\
    \x20 stats                              index shape + epoch\n\
    \x20 epoch                              publication count + live size\n\
    \x20 save <path>                        persist the current index\n\
    \x20 quit\n\
    ok";

/// A blocking client for the framed TCP protocol — used by the CLI, the
/// load generator, and the loopback tests.
pub struct WireClient {
    stream: TcpStream,
}

impl WireClient {
    /// Connects to a serving `ned-cli serve --tcp` address.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        Ok(WireClient {
            stream: TcpStream::connect(addr)?,
        })
    }

    /// Sends one payload (one command, or a newline-separated batch) and
    /// returns the reply text.
    pub fn call(&mut self, payload: &str) -> Result<String, wire::WireError> {
        self.send_raw(payload.as_bytes())?;
        self.read_reply()
    }

    /// Sends raw payload bytes without reading a reply. Only useful
    /// together with [`WireClient::read_reply`]; [`WireClient::call`] is
    /// the normal entry point.
    pub fn send_raw(&mut self, payload: &[u8]) -> Result<(), wire::WireError> {
        wire::write_frame(&mut self.stream, payload)?;
        Ok(())
    }

    /// Reads one reply frame as text.
    pub fn read_reply(&mut self) -> Result<String, wire::WireError> {
        match wire::read_frame(&mut self.stream)? {
            Some(bytes) => String::from_utf8(bytes).map_err(|_| {
                wire::WireError::Codec(ned_core::store::CodecError::Malformed(
                    "reply payload is not UTF-8".to_string(),
                ))
            }),
            None => Err(wire::WireError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before replying",
            ))),
        }
    }

    /// Writes raw bytes *outside* the frame discipline — the hook the
    /// malformed-frame tests use to poison a stream on purpose.
    pub fn send_bytes(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// Reads whatever bytes remain until EOF (used after the server hangs
    /// up on a poisoned stream).
    pub fn read_to_end(&mut self) -> std::io::Result<Vec<u8>> {
        let mut out = Vec::new();
        self.stream.read_to_end(&mut out)?;
        Ok(out)
    }
}
