//! The **serving front-end** over [`crate::concurrent::ConcurrentNedIndex`]:
//! one command dispatcher shared by every surface, a dependency-free
//! `std::net` TCP server speaking the framed batch protocol, and the
//! matching client.
//!
//! # Command language
//!
//! One command per line, answers as text whose final line starts with
//! `ok` or `error:`. The same lines work over every surface — the CLI
//! REPL feeds stdin lines straight into [`NedServer::dispatch`], the TCP
//! server feeds it decoded frame payloads — so behavior cannot drift
//! between the interactive and networked paths.
//!
//! ```text
//! query <graph.edges> <node> [top]    nearest indexed signatures
//! range <graph.edges> <node> <r>      all signatures with NED <= r
//! sig <parens-tree> [top]             query by a literal tree shape
//! rangesig <parens-tree> <r>          range query by a literal shape
//! add <graph.edges> <node>            index one more signature
//! addsig <parens-tree>                index a literal tree shape
//! remove <id>                         drop a signature by id
//! track <graph.edges>                 attach a mutating graph (raw
//!                                     add/addsig/remove writes detach
//!                                     it — they break its node ↔ id
//!                                     invariant; re-track to resume)
//! addedge <a> <b> | deledge <a> <b>   mutate the tracked graph; the
//!                                     (k-1)-hop dirty set is recomputed
//!                                     and published as one epoch
//! stats | epoch | help | quit
//! save <path>                         persist the current index
//! ```
//!
//! # The batch protocol
//!
//! A TCP frame (see [`ned_core::wire`]) carries one *or more*
//! newline-separated commands; the reply frame carries the concatenated
//! replies in command order. Batching amortizes round-trips, and a frame
//! of **read-only** commands additionally fans out across the server's
//! persistent [`WorkerPool`] (each command grabs its own snapshot — reads
//! never block). Frames containing any write run sequentially in frame
//! order, so a client's `addsig` is visible to the commands after it in
//! the same frame.
//!
//! Connections are thread-per-connection `std::net` — no async runtime,
//! in keeping with the repo's no-external-dependencies rule. A frame that
//! fails checksum/magic/length validation gets a best-effort
//! `error: ...` reply and the connection is closed: once framing sync is
//! lost the stream cannot be trusted.

use crate::concurrent::{ConcurrentNedIndex, IndexReader, IndexWriter};
use crate::forest::ForestHit;
use crate::maintain::GraphMaintainer;
use crate::signatures::SignatureIndex;
use ned_core::{wire, NodeSignature, PreparedTree, TedMemo, WorkerPool};
use ned_graph::{io as graph_io, Graph, GraphDelta, NodeId};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Outcome of dispatching one command line.
pub enum Dispatch {
    /// The text to show or send back (final line `ok ...` / `error: ...`).
    Reply(String),
    /// The client asked to end the session (`quit` / `exit`).
    Quit,
}

/// The shared serving state: concurrent index, graph cache, worker pool.
/// Cheap to share — wrap in an [`Arc`] and hand clones to every
/// connection thread (see [`NedServer::serve_tcp`]).
pub struct NedServer {
    index: ConcurrentNedIndex,
    /// Parsed edge-list files, cached across commands and connections.
    graphs: Mutex<HashMap<String, Arc<Graph>>>,
    /// The tracked mutating graph behind `addedge`/`deledge`
    /// (`track <path>` installs one). Locked for the whole delta
    /// application — writes are serialized anyway, and readers never
    /// touch it.
    maintained: Mutex<Option<GraphMaintainer>>,
    /// Persistent pool reused by every read-only batch frame.
    pool: WorkerPool,
    /// Intra-query fan-out passed to the forest (`1` is right for
    /// concurrent serving: requests, not shards, should fill the cores).
    query_threads: usize,
}

impl NedServer {
    /// Wraps `index` for serving. `query_threads` is the per-query shard
    /// fan-out (`0` = all cores — right for a single-user REPL, wrong for
    /// a concurrent server, which should pass `1`); `pool_threads` sizes
    /// the batch pool (`0` = all cores).
    pub fn new(index: SignatureIndex, query_threads: usize, pool_threads: usize) -> Self {
        NedServer {
            index: ConcurrentNedIndex::new(index),
            graphs: Mutex::new(HashMap::new()),
            maintained: Mutex::new(None),
            pool: WorkerPool::new(pool_threads),
            query_threads,
        }
    }

    /// Installs `graph` as the tracked graph behind `addedge`/`deledge`,
    /// verifying it actually matches the served index (node `v` indexed
    /// under id `v` with the same neighborhood shape). The `track`
    /// command and `ned-cli serve --graph` both land here.
    ///
    /// The writer lock is held across verification *and* installation,
    /// so no write can slip between the check and the attach; raw index
    /// writes (`add`/`addsig`/`remove`) after that point **detach** the
    /// tracked graph instead of silently breaking its node ↔ id
    /// invariant (re-`track` to resume deltas).
    pub fn track(&self, graph: &Graph) -> Result<String, String> {
        let mut tracked = self.maintained.lock().unwrap_or_else(|p| p.into_inner());
        let writer = self.index.writer();
        let maintainer = GraphMaintainer::attach(graph, writer.index().k(), 0, self.query_threads);
        maintainer.verify_against(writer.index())?;
        let line = format!(
            "tracking graph ({} nodes, {} edges, k = {})",
            maintainer.num_nodes(),
            maintainer.num_edges(),
            maintainer.k()
        );
        *tracked = Some(maintainer);
        Ok(line)
    }

    /// Runs a raw index write while detaching any tracked graph — a raw
    /// write breaks the maintainer's "node `v` ⇔ id `v`, class as
    /// recorded" invariant, and a stale maintainer could later resurrect
    /// a removed id through a `Replace`. The maintained lock is held
    /// across the write so a concurrent `track` cannot interleave.
    fn raw_write<R>(&self, op: impl FnOnce(&mut IndexWriter) -> R) -> R {
        let mut tracked = self.maintained.lock().unwrap_or_else(|p| p.into_inner());
        let result = op(&mut self.index.writer());
        *tracked = None;
        result
    }

    /// Applies one graph delta through the tracked maintainer as one
    /// atomic write batch (one epoch). Errors if no graph is tracked or
    /// an endpoint is out of range.
    fn apply_delta(&self, delta: GraphDelta) -> Result<String, String> {
        let mut guard = self.maintained.lock().unwrap_or_else(|p| p.into_inner());
        let maintainer = guard
            .as_mut()
            .ok_or("no tracked graph; run `track <graph.edges>` first")?;
        if let GraphDelta::AddEdge(a, b) | GraphDelta::RemoveEdge(a, b) = delta {
            let n = maintainer.num_nodes();
            if a as usize >= n || b as usize >= n {
                return Err(format!("edge ({a}, {b}) out of range ({n} nodes)"));
            }
        }
        let report = {
            let mut writer = self.index.writer();
            maintainer.apply(&[delta], &mut writer)
        };
        Ok(format!("{report} epoch={}", self.reader().epoch()))
    }

    /// A read handle onto the served index.
    pub fn reader(&self) -> IndexReader {
        self.index.reader()
    }

    /// One-line summary of the current snapshot plus the TED\* memo's
    /// effectiveness counters (the `stats` reply body).
    pub fn stats_line(&self) -> String {
        let snap = self.reader().snapshot();
        let stats = snap.stats();
        let tracking = match self
            .maintained
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .as_ref()
        {
            Some(m) => format!("{} nodes / {} edges", m.num_nodes(), m.num_edges()),
            None => "none".to_string(),
        };
        format!(
            "signatures: {} (k = {}), buffer {}, shards {:?}, tombstones {}, epoch {}, \
             tracking {tracking}\nmemo: {}",
            stats.len,
            snap.k(),
            stats.buffer,
            stats.shard_sizes,
            stats.tombstones,
            self.reader().epoch(),
            TedMemo::global().stats(),
        )
    }

    /// Executes one command line. Errors come back as `Reply` text with
    /// an `error:` prefix, so every surface reports them identically.
    pub fn dispatch(&self, line: &str) -> Dispatch {
        match self.try_dispatch(line.trim()) {
            Ok(d) => d,
            Err(msg) => Dispatch::Reply(format!("error: {msg}")),
        }
    }

    /// Executes a whole frame payload: one or more newline-separated
    /// commands. Multi-command payloads of pure reads fan out on the
    /// worker pool (order-preserving); anything containing a write runs
    /// sequentially. Returns the concatenated reply and whether the
    /// session should end.
    pub fn handle_payload(self: &Arc<Self>, payload: &str) -> (String, bool) {
        let lines: Vec<&str> = payload.lines().collect();
        if lines.len() > 1 && lines.iter().all(|l| is_read_only(l)) {
            let jobs: Vec<_> = lines
                .iter()
                .map(|l| {
                    let server = Arc::clone(self);
                    let line = l.to_string();
                    move || match server.dispatch(&line) {
                        Dispatch::Reply(r) => r,
                        Dispatch::Quit => unreachable!("read-only lines never quit"),
                    }
                })
                .collect();
            return (self.pool.run_ordered(jobs).join("\n"), false);
        }
        let mut replies = Vec::with_capacity(lines.len());
        for l in &lines {
            match self.dispatch(l) {
                Dispatch::Reply(r) => replies.push(r),
                Dispatch::Quit => {
                    replies.push("ok bye".to_string());
                    return (replies.join("\n"), true);
                }
            }
        }
        (replies.join("\n"), false)
    }

    /// Accept loop: one thread per connection, all sharing this server.
    /// Runs until the listener itself fails; individual connection errors
    /// only end that connection.
    pub fn serve_tcp(self: &Arc<Self>, listener: TcpListener) -> std::io::Result<()> {
        for conn in listener.incoming() {
            let stream = conn?;
            let server = Arc::clone(self);
            std::thread::spawn(move || server.handle_conn(stream));
        }
        Ok(())
    }

    fn handle_conn(self: Arc<Self>, stream: TcpStream) {
        let mut read_half = &stream;
        let mut write_half = &stream;
        loop {
            match wire::read_frame(&mut read_half) {
                Ok(None) => return, // clean disconnect
                Ok(Some(payload)) => {
                    let reply = match String::from_utf8(payload) {
                        Ok(text) => {
                            let (reply, quit) = self.handle_payload(&text);
                            if wire::write_frame(&mut write_half, reply.as_bytes()).is_err() || quit
                            {
                                return;
                            }
                            continue;
                        }
                        Err(_) => "error: frame payload is not UTF-8".to_string(),
                    };
                    if wire::write_frame(&mut write_half, reply.as_bytes()).is_err() {
                        return;
                    }
                }
                Err(e) => {
                    // Framing sync is gone (bad length, magic, or
                    // checksum): tell the client why, then hang up.
                    let _ = wire::write_frame(&mut write_half, format!("error: {e}").as_bytes());
                    return;
                }
            }
        }
    }

    fn try_dispatch(&self, line: &str) -> Result<Dispatch, String> {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let reply = match tokens.as_slice() {
            [] | ["#", ..] => String::new(),
            ["quit"] | ["exit"] => return Ok(Dispatch::Quit),
            ["help"] => HELP.to_string(),
            ["stats"] => format!("{}\nok", self.stats_line()),
            ["epoch"] => {
                let r = self.reader();
                format!("ok epoch={} len={}", r.epoch(), r.len())
            }
            ["query", path, node] | ["query", path, node, _] => {
                let top = parse_opt_count(tokens.get(3), 5)?;
                let sig = self.extract(path, node)?;
                fmt_hits(&self.reader().knn(&sig, top, self.query_threads))
            }
            ["range", path, node, radius] => {
                let r: u64 = radius
                    .parse()
                    .map_err(|_| format!("bad radius {radius:?}"))?;
                let sig = self.extract(path, node)?;
                fmt_hits(&self.reader().range(&sig, r, self.query_threads))
            }
            ["sig", shape] | ["sig", shape, _] => {
                let top = parse_opt_count(tokens.get(2), 5)?;
                let sig = parse_sig(shape)?;
                fmt_hits(&self.reader().knn(&sig, top, self.query_threads))
            }
            ["rangesig", shape, radius] => {
                let r: u64 = radius
                    .parse()
                    .map_err(|_| format!("bad radius {radius:?}"))?;
                let sig = parse_sig(shape)?;
                fmt_hits(&self.reader().range(&sig, r, self.query_threads))
            }
            ["add", path, node] => {
                let sig = self.extract(path, node)?;
                format!("ok id={}", self.raw_write(|w| w.insert(sig)))
            }
            ["addsig", shape] => {
                let sig = parse_sig(shape)?;
                format!("ok id={}", self.raw_write(|w| w.insert(sig)))
            }
            ["remove", id] => {
                let id: u64 = id.parse().map_err(|_| format!("bad id {id:?}"))?;
                if self.raw_write(|w| w.remove(id)) {
                    format!("ok removed {id}")
                } else {
                    format!("ok no such id {id}")
                }
            }
            ["track", path] => {
                let graph = self.graph(path)?;
                format!("ok {}", self.track(&graph)?)
            }
            ["addedge", a, b] => {
                let (a, b) = parse_edge(a, b)?;
                format!("ok {}", self.apply_delta(GraphDelta::AddEdge(a, b))?)
            }
            ["deledge", a, b] => {
                let (a, b) = parse_edge(a, b)?;
                format!("ok {}", self.apply_delta(GraphDelta::RemoveEdge(a, b))?)
            }
            ["save", path] => {
                self.index
                    .writer()
                    .index()
                    .save(Path::new(path))
                    .map_err(|e| format!("{path}: {e}"))?;
                format!("ok saved {path}")
            }
            _ => return Err(format!("unrecognized command {line:?}; try `help`")),
        };
        Ok(Dispatch::Reply(reply))
    }

    /// Loads (and caches) the edge-list graph at `path`. The cache lock
    /// is never held across parsing.
    fn graph(&self, path: &str) -> Result<Arc<Graph>, String> {
        let cached = {
            let graphs = self.graphs.lock().unwrap_or_else(|p| p.into_inner());
            graphs.get(path).cloned()
        };
        match cached {
            Some(g) => Ok(g),
            None => {
                let g = Arc::new(
                    graph_io::read_edge_list(Path::new(path), false)
                        .map_err(|e| format!("{path}: {e}"))?,
                );
                self.graphs
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .insert(path.to_string(), Arc::clone(&g));
                Ok(g)
            }
        }
    }

    /// Extracts the query signature for `<path> <node>`, caching the
    /// parsed graph.
    fn extract(&self, path: &str, node: &str) -> Result<NodeSignature, String> {
        let graph = self.graph(path)?;
        let v: NodeId = node.parse().map_err(|_| format!("bad node id {node:?}"))?;
        if (v as usize) >= graph.num_nodes() {
            return Err(format!(
                "node {v} out of range (graph has {} nodes)",
                graph.num_nodes()
            ));
        }
        Ok(NodeSignature::extract(&graph, v, self.reader().k()))
    }
}

/// Whether a command line only reads — the batch-fan-out eligibility
/// test. Unknown commands count as reads: they produce an error reply
/// without touching anything.
fn is_read_only(line: &str) -> bool {
    !matches!(
        line.split_whitespace().next(),
        Some("add")
            | Some("addsig")
            | Some("remove")
            | Some("save")
            | Some("quit")
            | Some("exit")
            | Some("track")
            | Some("addedge")
            | Some("deledge")
    )
}

fn parse_edge(a: &str, b: &str) -> Result<(NodeId, NodeId), String> {
    let a: NodeId = a.parse().map_err(|_| format!("bad node id {a:?}"))?;
    let b: NodeId = b.parse().map_err(|_| format!("bad node id {b:?}"))?;
    Ok((a, b))
}

fn parse_opt_count(token: Option<&&str>, default: usize) -> Result<usize, String> {
    match token {
        Some(t) => t.parse().map_err(|_| format!("bad top {t:?}")),
        None => Ok(default),
    }
}

fn parse_sig(shape: &str) -> Result<NodeSignature, String> {
    let tree = ned_tree::serialize::parse(shape).map_err(|e| e.to_string())?;
    Ok(NodeSignature::from_prepared(0, PreparedTree::new(&tree)))
}

fn fmt_hits(hits: &[ForestHit]) -> String {
    let mut out = String::new();
    for h in hits {
        out.push_str(&format!("hit id={} ned={}\n", h.id, h.distance));
    }
    out.push_str(&format!("ok {} hits", hits.len()));
    out
}

const HELP: &str = "commands:\n\
    \x20 query <graph.edges> <node> [top]   nearest indexed signatures\n\
    \x20 range <graph.edges> <node> <r>     all signatures with NED <= r\n\
    \x20                                    (r is the budget of every exact\n\
    \x20                                    TED* call - bounded, not\n\
    \x20                                    compute-then-filter)\n\
    \x20 sig <parens-tree> [top]            query by a literal tree shape\n\
    \x20 rangesig <parens-tree> <r>         range query by a literal shape\n\
    \x20 add <graph.edges> <node>           index one more signature\n\
    \x20 addsig <parens-tree>               index a literal tree shape\n\
    \x20 remove <id>                        drop a signature by id\n\
    \x20 track <graph.edges>                attach a mutating graph (node v\n\
    \x20                                    must be indexed under id v; raw\n\
    \x20                                    add/addsig/remove detach it)\n\
    \x20 addedge <a> <b>                    add a tracked-graph edge; only\n\
    \x20 deledge <a> <b>                    the (k-1)-hop dirty set is\n\
    \x20                                    recomputed, one epoch per delta\n\
    \x20 stats                              index shape + epoch + memo\n\
    \x20 epoch                              publication count + live size\n\
    \x20 save <path>                        persist the current index\n\
    \x20 quit\n\
    ok";

/// A blocking client for the framed TCP protocol — used by the CLI, the
/// load generator, and the loopback tests.
pub struct WireClient {
    stream: TcpStream,
}

impl WireClient {
    /// Connects to a serving `ned-cli serve --tcp` address.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        Ok(WireClient {
            stream: TcpStream::connect(addr)?,
        })
    }

    /// Sends one payload (one command, or a newline-separated batch) and
    /// returns the reply text.
    pub fn call(&mut self, payload: &str) -> Result<String, wire::WireError> {
        self.send_raw(payload.as_bytes())?;
        self.read_reply()
    }

    /// Sends raw payload bytes without reading a reply. Only useful
    /// together with [`WireClient::read_reply`]; [`WireClient::call`] is
    /// the normal entry point.
    pub fn send_raw(&mut self, payload: &[u8]) -> Result<(), wire::WireError> {
        wire::write_frame(&mut self.stream, payload)?;
        Ok(())
    }

    /// Reads one reply frame as text.
    pub fn read_reply(&mut self) -> Result<String, wire::WireError> {
        match wire::read_frame(&mut self.stream)? {
            Some(bytes) => String::from_utf8(bytes).map_err(|_| {
                wire::WireError::Codec(ned_core::store::CodecError::Malformed(
                    "reply payload is not UTF-8".to_string(),
                ))
            }),
            None => Err(wire::WireError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before replying",
            ))),
        }
    }

    /// Writes raw bytes *outside* the frame discipline — the hook the
    /// malformed-frame tests use to poison a stream on purpose.
    pub fn send_bytes(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// Reads whatever bytes remain until EOF (used after the server hangs
    /// up on a poisoned stream).
    pub fn read_to_end(&mut self) -> std::io::Result<Vec<u8>> {
        let mut out = Vec::new();
        self.stream.read_to_end(&mut out)?;
        Ok(out)
    }
}
