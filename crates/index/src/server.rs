//! The **serving front-end** over [`crate::durable::DurableIndex`]: one
//! command dispatcher shared by every surface, a dependency-free
//! `std::net` TCP server speaking the framed batch protocol, and the
//! matching client.
//!
//! # Command language
//!
//! One command per line, answers as text whose final line starts with
//! `ok` or `error:`. The same lines work over every surface — the CLI
//! REPL feeds stdin lines straight into [`NedServer::dispatch`], the TCP
//! server feeds it decoded frame payloads — so behavior cannot drift
//! between the interactive and networked paths.
//!
//! ```text
//! query <graph.edges> <node> [top]    nearest indexed signatures
//! range <graph.edges> <node> <r>      all signatures with NED <= r
//! sig <parens-tree> [top]             query by a literal tree shape
//! rangesig <parens-tree> <r>          range query by a literal shape
//! add <graph.edges> <node>            index one more signature
//! addsig <parens-tree>                index a literal tree shape
//! remove <id>                         drop a signature by id
//! track <graph.edges>                 attach a mutating graph (raw
//!                                     add/addsig/remove writes detach
//!                                     it — they break its node ↔ id
//!                                     invariant; re-track to resume)
//! addedge <a> <b> | deledge <a> <b>   mutate the tracked graph; the
//!                                     (k-1)-hop dirty set is recomputed
//!                                     and published as one epoch
//! stats | epoch | help | quit
//! save <path>                         persist the current index
//! checkpoint                          snapshot + reset the WAL now
//! shutdown                            drain, checkpoint, exit cleanly
//! ```
//!
//! # The batch protocol
//!
//! A TCP frame (see [`ned_core::wire`]) carries one *or more*
//! newline-separated commands; the reply frame carries the concatenated
//! replies in command order. Batching amortizes round-trips, and a frame
//! of **read-only** commands additionally fans out across the server's
//! persistent [`WorkerPool`] (each command grabs its own snapshot — reads
//! never block). Frames containing any write run sequentially in frame
//! order, so a client's `addsig` is visible to the commands after it in
//! the same frame.
//!
//! Connections are thread-per-connection `std::net` — no async runtime,
//! in keeping with the repo's no-external-dependencies rule. A frame that
//! fails checksum/magic/length validation gets a best-effort
//! `error: ...` reply and the connection is closed: once framing sync is
//! lost the stream cannot be trusted.
//!
//! # Fault tolerance
//!
//! The server is built to keep serving through misbehaving clients and
//! its own bugs ([`ServerConfig`] holds the knobs):
//!
//! * every accepted socket gets **read/write timeouts**, so a wedged or
//!   malicious client cannot pin a connection thread forever;
//! * admissions are capped at [`ServerConfig::max_conns`]; excess
//!   connections get a clean `error: server overloaded ...` frame and
//!   are closed — never silently dropped, never unbounded threads;
//! * command execution is wrapped in `catch_unwind` (per command *and*
//!   per connection), so a panicking handler poisons at most its own
//!   connection — the writer's panic-atomic rollback (see
//!   [`IndexWriter::try_apply`]) keeps the index itself consistent;
//! * `shutdown` drains: the acceptor stops, in-flight frames finish,
//!   idle connections are nudged closed, a final checkpoint runs, and
//!   [`NedServer::serve_tcp`] returns `Ok(())` so the process can exit 0.
//!
//! All of it is observable: `stats` reports accepted/active/timeout/
//! overload/panic counters next to the durability line.

use crate::concurrent::{IndexReader, IndexWriter, WriteOp, WriteOutcome};
use crate::durable::DurableIndex;
use crate::forest::ForestHit;
use crate::maintain::GraphMaintainer;
use crate::signatures::SignatureIndex;
use ned_core::{wire, NodeSignature, PreparedTree, TedMemo, WorkerPool};
use ned_graph::{io as graph_io, Graph, GraphDelta, NodeId};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown as SocketShutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Outcome of dispatching one command line.
pub enum Dispatch {
    /// The text to show or send back (final line `ok ...` / `error: ...`).
    Reply(String),
    /// The client asked to end the session (`quit` / `exit`).
    Quit,
    /// The client asked the whole server to drain and exit (`shutdown`).
    /// The accept loop stops; the surface should end its session too.
    Shutdown,
}

/// Serving limits and fault-tolerance knobs. `Default` suits tests and
/// the REPL; `ned-cli serve` exposes the connection cap as `--max-conns`.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Per-socket read timeout (`None` = block forever). A connection
    /// idle past this is closed with an `error: socket timeout` frame.
    pub read_timeout: Option<Duration>,
    /// Per-socket write timeout (`None` = block forever) — protects
    /// against clients that stop draining their receive buffer.
    pub write_timeout: Option<Duration>,
    /// Admission cap: connections accepted while this many are already
    /// active get an `error: server overloaded` frame and are closed.
    pub max_conns: usize,
    /// How long `shutdown` waits for in-flight connections — applied
    /// twice: once politely, once after force-closing idle sockets.
    pub drain_grace: Duration,
    /// Enables the hidden `__panic` command that panics inside the
    /// dispatcher — the fault-injection hook for panic-isolation tests.
    /// Never enable outside tests.
    pub enable_test_panic: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            max_conns: 256,
            drain_grace: Duration::from_secs(2),
            enable_test_panic: false,
        }
    }
}

/// Monotonic serving counters, reported by `stats`.
#[derive(Default)]
struct Counters {
    accepted: AtomicU64,
    timeouts: AtomicU64,
    overloaded: AtomicU64,
    panics: AtomicU64,
    checkpoint_failures: AtomicU64,
    active: AtomicUsize,
}

/// The shared serving state: durable index, graph cache, worker pool.
/// Cheap to share — wrap in an [`Arc`] and hand clones to every
/// connection thread (see [`NedServer::serve_tcp`]).
pub struct NedServer {
    index: DurableIndex,
    /// Parsed edge-list files, cached across commands and connections.
    graphs: Mutex<HashMap<String, Arc<Graph>>>,
    /// The tracked mutating graph behind `addedge`/`deledge`
    /// (`track <path>` installs one). Locked for the whole delta
    /// application — writes are serialized anyway, and readers never
    /// touch it.
    maintained: Mutex<Option<GraphMaintainer>>,
    /// Persistent pool reused by every read-only batch frame.
    pool: WorkerPool,
    /// Intra-query fan-out passed to the forest (`1` is right for
    /// concurrent serving: requests, not shards, should fill the cores).
    query_threads: usize,
    config: ServerConfig,
    /// Set by `shutdown`; the acceptor checks it per accepted connection
    /// and connection loops check it per frame.
    shutting_down: AtomicBool,
    /// Where the acceptor is listening — `initiate_shutdown` connects
    /// here once to wake a blocked `accept`.
    local_addr: Mutex<Option<SocketAddr>>,
    /// Clones of every live connection's stream, so drain can nudge
    /// idle keep-alive clients closed.
    conns: Mutex<HashMap<u64, TcpStream>>,
    conn_seq: AtomicU64,
    counters: Counters,
}

impl NedServer {
    /// Wraps `index` for **ephemeral** serving (no WAL, no checkpoints).
    /// `query_threads` is the per-query shard fan-out (`0` = all cores —
    /// right for a single-user REPL, wrong for a concurrent server, which
    /// should pass `1`); `pool_threads` sizes the batch pool (`0` = all
    /// cores).
    pub fn new(index: SignatureIndex, query_threads: usize, pool_threads: usize) -> Self {
        Self::with_durability(DurableIndex::ephemeral(index), query_threads, pool_threads)
    }

    /// Serves a [`DurableIndex`] — typically one fresh out of
    /// [`DurableIndex::recover`], with its WAL attached. Write commands
    /// journal before acknowledging and checkpoint on the index's cadence.
    pub fn with_durability(index: DurableIndex, query_threads: usize, pool_threads: usize) -> Self {
        NedServer {
            index,
            graphs: Mutex::new(HashMap::new()),
            maintained: Mutex::new(None),
            pool: WorkerPool::new(pool_threads),
            query_threads,
            config: ServerConfig::default(),
            shutting_down: AtomicBool::new(false),
            local_addr: Mutex::new(None),
            conns: Mutex::new(HashMap::new()),
            conn_seq: AtomicU64::new(0),
            counters: Counters::default(),
        }
    }

    /// Replaces the serving limits (builder-style, before sharing).
    pub fn with_config(mut self, config: ServerConfig) -> Self {
        self.config = config;
        self
    }

    /// The durable index being served (checkpoint paths, cadence, …).
    pub fn durable(&self) -> &DurableIndex {
        &self.index
    }

    /// Installs `graph` as the tracked graph behind `addedge`/`deledge`,
    /// verifying it actually matches the served index (node `v` indexed
    /// under id `v` with the same neighborhood shape). The `track`
    /// command and `ned-cli serve --graph` both land here.
    ///
    /// The writer lock is held across verification *and* installation,
    /// so no write can slip between the check and the attach; raw index
    /// writes (`add`/`addsig`/`remove`) after that point **detach** the
    /// tracked graph instead of silently breaking its node ↔ id
    /// invariant (re-`track` to resume deltas).
    pub fn track(&self, graph: &Graph) -> Result<String, String> {
        let mut tracked = self.maintained.lock().unwrap_or_else(|p| p.into_inner());
        let writer = self.index.writer();
        let maintainer = GraphMaintainer::attach(graph, writer.index().k(), 0, self.query_threads);
        maintainer.verify_against(writer.index())?;
        let line = format!(
            "tracking graph ({} nodes, {} edges, k = {})",
            maintainer.num_nodes(),
            maintainer.num_edges(),
            maintainer.k()
        );
        *tracked = Some(maintainer);
        Ok(line)
    }

    /// Runs a raw index write while detaching any tracked graph — a raw
    /// write breaks the maintainer's "node `v` ⇔ id `v`, class as
    /// recorded" invariant, and a stale maintainer could later resurrect
    /// a removed id through a `Replace`. The maintained lock is held
    /// across the write so a concurrent `track` cannot interleave.
    fn raw_write<R>(&self, op: impl FnOnce(&mut IndexWriter) -> R) -> R {
        let mut tracked = self.maintained.lock().unwrap_or_else(|p| p.into_inner());
        let result = op(&mut self.index.writer());
        *tracked = None;
        result
    }

    /// One raw write op, journaled (when durable) and checkpointed on
    /// cadence. A WAL append failure is an `error:` reply, **not** an
    /// acknowledgment — the batch was rolled back and never published.
    fn write_one(&self, op: WriteOp) -> Result<WriteOutcome, String> {
        let mut outcomes = self
            .raw_write(|w| w.try_apply([op]))
            .map_err(|e| format!("write-ahead log append failed (write not applied): {e}"))?;
        self.after_write();
        Ok(outcomes.pop().expect("one op in, one outcome out"))
    }

    /// Post-acknowledgment bookkeeping: checkpoint when the WAL has
    /// accumulated a full cadence worth of batches. Checkpoint failures
    /// are counted (the WAL still has everything) rather than failing
    /// the already-acknowledged write.
    fn after_write(&self) {
        if self.index.checkpoint_if_due().is_err() {
            self.counters
                .checkpoint_failures
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Applies one graph delta through the tracked maintainer as one
    /// atomic write batch (one epoch). Errors if no graph is tracked or
    /// an endpoint is out of range. A panic mid-application (including a
    /// WAL append failure surfacing through [`IndexWriter::apply`])
    /// detaches the tracked graph — the maintainer's shadow state can no
    /// longer be trusted — while the index itself stays consistent via
    /// the writer's rollback.
    fn apply_delta(&self, delta: GraphDelta) -> Result<String, String> {
        let mut guard = self.maintained.lock().unwrap_or_else(|p| p.into_inner());
        let maintainer = guard
            .as_mut()
            .ok_or("no tracked graph; run `track <graph.edges>` first")?;
        if let GraphDelta::AddEdge(a, b) | GraphDelta::RemoveEdge(a, b) = delta {
            let n = maintainer.num_nodes();
            if a as usize >= n || b as usize >= n {
                return Err(format!("edge ({a}, {b}) out of range ({n} nodes)"));
            }
        }
        let applied = catch_unwind(AssertUnwindSafe(|| {
            let mut writer = self.index.writer();
            maintainer.apply(&[delta], &mut writer)
        }));
        match applied {
            Ok(report) => {
                drop(guard);
                self.after_write();
                Ok(format!("{report} epoch={}", self.reader().epoch()))
            }
            Err(_) => {
                *guard = None;
                self.counters.panics.fetch_add(1, Ordering::Relaxed);
                Err(
                    "delta application failed (journal append failure or internal panic); \
                     the index rolled back to its last published state and the tracked \
                     graph was detached — re-track to resume"
                        .into(),
                )
            }
        }
    }

    /// A read handle onto the served index.
    pub fn reader(&self) -> IndexReader {
        self.index.reader()
    }

    /// Multi-line summary of the current snapshot, the TED\* memo's
    /// effectiveness counters, the serving counters, and the durability
    /// configuration (the `stats` reply body).
    pub fn stats_line(&self) -> String {
        let snap = self.reader().snapshot();
        let stats = snap.stats();
        let tracking = match self
            .maintained
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .as_ref()
        {
            Some(m) => format!("{} nodes / {} edges", m.num_nodes(), m.num_edges()),
            None => "none".to_string(),
        };
        let c = &self.counters;
        format!(
            "signatures: {} (k = {}), buffer {}, shards {:?}, tombstones {}, epoch {}, \
             tracking {tracking}\nmemo: {}\nserver: accepted {}, active {}, timeouts {}, \
             overloaded {}, panics isolated {}, checkpoint failures {}\n{}",
            stats.len,
            snap.k(),
            stats.buffer,
            stats.shard_sizes,
            stats.tombstones,
            self.reader().epoch(),
            TedMemo::global().stats(),
            c.accepted.load(Ordering::Relaxed),
            c.active.load(Ordering::Relaxed),
            c.timeouts.load(Ordering::Relaxed),
            c.overloaded.load(Ordering::Relaxed),
            c.panics.load(Ordering::Relaxed),
            c.checkpoint_failures.load(Ordering::Relaxed),
            self.index.describe(),
        )
    }

    /// Executes one command line. Errors come back as `Reply` text with
    /// an `error:` prefix, so every surface reports them identically.
    pub fn dispatch(&self, line: &str) -> Dispatch {
        match self.try_dispatch(line.trim()) {
            Ok(d) => d,
            Err(msg) => Dispatch::Reply(format!("error: {msg}")),
        }
    }

    /// [`NedServer::dispatch`] behind a panic shield: a handler that
    /// panics answers `error: internal panic ...` instead of unwinding
    /// into (and killing) whatever thread is serving the surface. The
    /// index stays consistent — [`IndexWriter::try_apply`] rolls the
    /// master copy back to the published snapshot before re-raising.
    pub fn dispatch_isolated(&self, line: &str) -> Dispatch {
        match catch_unwind(AssertUnwindSafe(|| self.dispatch(line))) {
            Ok(d) => d,
            Err(_) => {
                self.counters.panics.fetch_add(1, Ordering::Relaxed);
                Dispatch::Reply(
                    "error: internal panic while executing the command; the index rolled \
                     back to its last published state and the server is still serving"
                        .to_string(),
                )
            }
        }
    }

    /// Executes a whole frame payload: one or more newline-separated
    /// commands. Multi-command payloads of pure reads fan out on the
    /// worker pool (order-preserving); anything containing a write runs
    /// sequentially. Returns the concatenated reply and whether the
    /// session should end.
    pub fn handle_payload(self: &Arc<Self>, payload: &str) -> (String, bool) {
        let lines: Vec<&str> = payload.lines().collect();
        if lines.len() > 1 && lines.iter().all(|l| is_read_only(l)) {
            let jobs: Vec<_> = lines
                .iter()
                .map(|l| {
                    let server = Arc::clone(self);
                    let line = l.to_string();
                    // The isolation matters doubly here: a panic that
                    // escaped a pool job would kill a pool worker and
                    // poison every later batch frame.
                    move || match server.dispatch_isolated(&line) {
                        Dispatch::Reply(r) => r,
                        _ => unreachable!("read-only lines never end the session"),
                    }
                })
                .collect();
            return (self.pool.run_ordered(jobs).join("\n"), false);
        }
        let mut replies = Vec::with_capacity(lines.len());
        for l in &lines {
            match self.dispatch_isolated(l) {
                Dispatch::Reply(r) => replies.push(r),
                Dispatch::Quit => {
                    replies.push("ok bye".to_string());
                    return (replies.join("\n"), true);
                }
                Dispatch::Shutdown => {
                    replies.push(
                        "ok draining: in-flight connections finish, a final checkpoint \
                         runs, then the server exits"
                            .to_string(),
                    );
                    return (replies.join("\n"), true);
                }
            }
        }
        (replies.join("\n"), false)
    }

    /// Flips the drain flag and wakes the acceptor with a throwaway
    /// loopback connection (an accept blocked in the kernel cannot see
    /// an atomic). Idempotent; the `shutdown` command lands here.
    pub fn initiate_shutdown(&self) {
        self.shutting_down.store(true, Ordering::Release);
        let addr = *self.local_addr.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(addr) = addr {
            let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(250));
        }
    }

    /// Whether `shutdown` has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::Acquire)
    }

    /// Final checkpoint (snapshot + WAL reset); `Ok(None)` when serving
    /// ephemerally. The drain path and the CLI's session teardown both
    /// call this so a clean exit never needs log replay on the next boot.
    pub fn finalize(&self) -> std::io::Result<Option<u64>> {
        self.index.checkpoint()
    }

    /// Accept loop: one thread per connection, all sharing this server.
    /// Runs until the listener fails or `shutdown` drains it; individual
    /// connection errors only end that connection. On shutdown the loop
    /// stops accepting, waits out in-flight frames (force-closing idle
    /// sockets after [`ServerConfig::drain_grace`]), runs a final
    /// checkpoint, and returns `Ok(())` so the process can exit 0.
    pub fn serve_tcp(self: &Arc<Self>, listener: TcpListener) -> std::io::Result<()> {
        *self.local_addr.lock().unwrap_or_else(|p| p.into_inner()) = listener.local_addr().ok();
        for conn in listener.incoming() {
            if self.is_shutting_down() {
                break;
            }
            let stream = conn?;
            self.counters.accepted.fetch_add(1, Ordering::Relaxed);
            // The accept loop is the only incrementer of `active`, so
            // check-then-increment cannot race past the cap.
            let active = self.counters.active.load(Ordering::Relaxed);
            if active >= self.config.max_conns {
                self.counters.overloaded.fetch_add(1, Ordering::Relaxed);
                let mut w = &stream;
                let _ = wire::write_frame(
                    &mut w,
                    format!(
                        "error: server overloaded ({active}/{} connections); retry later",
                        self.config.max_conns
                    )
                    .as_bytes(),
                );
                continue; // drop closes the socket
            }
            self.counters.active.fetch_add(1, Ordering::Relaxed);
            let id = self.conn_seq.fetch_add(1, Ordering::Relaxed);
            if let Ok(clone) = stream.try_clone() {
                self.conns
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .insert(id, clone);
            }
            let server = Arc::clone(self);
            std::thread::spawn(move || {
                // Belt over the per-command suspenders: nothing a
                // connection does may unwind into the process.
                if catch_unwind(AssertUnwindSafe(|| server.handle_conn(&stream))).is_err() {
                    server.counters.panics.fetch_add(1, Ordering::Relaxed);
                }
                server.counters.active.fetch_sub(1, Ordering::Relaxed);
                server
                    .conns
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .remove(&id);
            });
        }
        self.drain();
        self.finalize().map(|_| ())
    }

    /// Waits for in-flight connections, then force-closes stragglers and
    /// waits once more. Every wait is bounded by the drain grace.
    fn drain(&self) {
        let wait = |deadline: Instant| {
            while self.counters.active.load(Ordering::Relaxed) > 0 && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(10));
            }
        };
        wait(Instant::now() + self.config.drain_grace);
        for (_, conn) in self.conns.lock().unwrap_or_else(|p| p.into_inner()).drain() {
            let _ = conn.shutdown(SocketShutdown::Both);
        }
        wait(Instant::now() + self.config.drain_grace);
    }

    fn handle_conn(self: &Arc<Self>, stream: &TcpStream) {
        let _ = stream.set_read_timeout(self.config.read_timeout);
        let _ = stream.set_write_timeout(self.config.write_timeout);
        let mut read_half = stream;
        let mut write_half = stream;
        loop {
            match wire::read_frame(&mut read_half) {
                Ok(None) => return, // clean disconnect
                Ok(Some(payload)) => {
                    let reply = match String::from_utf8(payload) {
                        Ok(text) => {
                            let (reply, quit) = self.handle_payload(&text);
                            if wire::write_frame(&mut write_half, reply.as_bytes()).is_err()
                                || quit
                                || self.is_shutting_down()
                            {
                                return;
                            }
                            continue;
                        }
                        Err(_) => "error: frame payload is not UTF-8".to_string(),
                    };
                    if wire::write_frame(&mut write_half, reply.as_bytes()).is_err() {
                        return;
                    }
                }
                Err(wire::WireError::Io(e))
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    // The socket timeout fired: the client is wedged (or
                    // just idle past the limit). Say why, then hang up.
                    self.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                    let _ = wire::write_frame(
                        &mut write_half,
                        b"error: socket timeout; closing connection",
                    );
                    return;
                }
                Err(e) => {
                    // Framing sync is gone (bad length, magic, or
                    // checksum): tell the client why, then hang up.
                    let _ = wire::write_frame(&mut write_half, format!("error: {e}").as_bytes());
                    return;
                }
            }
        }
    }

    fn try_dispatch(&self, line: &str) -> Result<Dispatch, String> {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let reply = match tokens.as_slice() {
            [] | ["#", ..] => String::new(),
            ["quit"] | ["exit"] => return Ok(Dispatch::Quit),
            ["shutdown"] => {
                self.initiate_shutdown();
                return Ok(Dispatch::Shutdown);
            }
            ["help"] => HELP.to_string(),
            ["stats"] => format!("{}\nok", self.stats_line()),
            ["epoch"] => {
                let r = self.reader();
                format!("ok epoch={} len={}", r.epoch(), r.len())
            }
            ["query", path, node] | ["query", path, node, _] => {
                let top = parse_opt_count(tokens.get(3), 5)?;
                let sig = self.extract(path, node)?;
                fmt_hits(&self.reader().knn(&sig, top, self.query_threads))
            }
            ["range", path, node, radius] => {
                let r: u64 = radius
                    .parse()
                    .map_err(|_| format!("bad radius {radius:?}"))?;
                let sig = self.extract(path, node)?;
                fmt_hits(&self.reader().range(&sig, r, self.query_threads))
            }
            ["sig", shape] | ["sig", shape, _] => {
                let top = parse_opt_count(tokens.get(2), 5)?;
                let sig = parse_sig(shape)?;
                fmt_hits(&self.reader().knn(&sig, top, self.query_threads))
            }
            ["rangesig", shape, radius] => {
                let r: u64 = radius
                    .parse()
                    .map_err(|_| format!("bad radius {radius:?}"))?;
                let sig = parse_sig(shape)?;
                fmt_hits(&self.reader().range(&sig, r, self.query_threads))
            }
            ["add", path, node] => {
                let sig = self.extract(path, node)?;
                match self.write_one(WriteOp::Insert(sig))? {
                    WriteOutcome::Inserted(id) => format!("ok id={id}"),
                    _ => unreachable!("insert answers Inserted"),
                }
            }
            ["addsig", shape] => {
                let sig = parse_sig(shape)?;
                match self.write_one(WriteOp::Insert(sig))? {
                    WriteOutcome::Inserted(id) => format!("ok id={id}"),
                    _ => unreachable!("insert answers Inserted"),
                }
            }
            ["remove", id] => {
                let id: u64 = id.parse().map_err(|_| format!("bad id {id:?}"))?;
                match self.write_one(WriteOp::Remove(id))? {
                    WriteOutcome::Removed { existed: true, .. } => format!("ok removed {id}"),
                    _ => format!("ok no such id {id}"),
                }
            }
            ["track", path] => {
                let graph = self.graph(path)?;
                format!("ok {}", self.track(&graph)?)
            }
            ["addedge", a, b] => {
                let (a, b) = parse_edge(a, b)?;
                format!("ok {}", self.apply_delta(GraphDelta::AddEdge(a, b))?)
            }
            ["deledge", a, b] => {
                let (a, b) = parse_edge(a, b)?;
                format!("ok {}", self.apply_delta(GraphDelta::RemoveEdge(a, b))?)
            }
            ["save", path] => {
                self.index
                    .writer()
                    .index()
                    .save(Path::new(path))
                    .map_err(|e| format!("{path}: {e}"))?;
                format!("ok saved {path}")
            }
            ["checkpoint"] => match self.index.checkpoint() {
                Ok(Some(epoch)) => format!("ok checkpoint epoch={epoch}"),
                Ok(None) => "ok ephemeral index; nothing to checkpoint".to_string(),
                Err(e) => return Err(format!("checkpoint failed: {e}")),
            },
            ["__panic"] if self.config.enable_test_panic => {
                panic!("test-injected panic (`__panic` command)")
            }
            _ => return Err(format!("unrecognized command {line:?}; try `help`")),
        };
        Ok(Dispatch::Reply(reply))
    }

    /// Loads (and caches) the edge-list graph at `path`. The cache lock
    /// is never held across parsing.
    fn graph(&self, path: &str) -> Result<Arc<Graph>, String> {
        let cached = {
            let graphs = self.graphs.lock().unwrap_or_else(|p| p.into_inner());
            graphs.get(path).cloned()
        };
        match cached {
            Some(g) => Ok(g),
            None => {
                let g = Arc::new(
                    graph_io::read_edge_list(Path::new(path), false)
                        .map_err(|e| format!("{path}: {e}"))?,
                );
                self.graphs
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .insert(path.to_string(), Arc::clone(&g));
                Ok(g)
            }
        }
    }

    /// Extracts the query signature for `<path> <node>`, caching the
    /// parsed graph.
    fn extract(&self, path: &str, node: &str) -> Result<NodeSignature, String> {
        let graph = self.graph(path)?;
        let v: NodeId = node.parse().map_err(|_| format!("bad node id {node:?}"))?;
        if (v as usize) >= graph.num_nodes() {
            return Err(format!(
                "node {v} out of range (graph has {} nodes)",
                graph.num_nodes()
            ));
        }
        Ok(NodeSignature::extract(&graph, v, self.reader().k()))
    }
}

/// Whether a command line only reads — the batch-fan-out eligibility
/// test. Unknown commands count as reads: they produce an error reply
/// without touching anything. `shutdown`, `checkpoint`, and the
/// fault-injection `__panic` must run on the connection thread, never a
/// pool worker, so they count as writes here.
fn is_read_only(line: &str) -> bool {
    !matches!(
        line.split_whitespace().next(),
        Some("add")
            | Some("addsig")
            | Some("remove")
            | Some("save")
            | Some("quit")
            | Some("exit")
            | Some("track")
            | Some("addedge")
            | Some("deledge")
            | Some("checkpoint")
            | Some("shutdown")
            | Some("__panic")
    )
}

fn parse_edge(a: &str, b: &str) -> Result<(NodeId, NodeId), String> {
    let a: NodeId = a.parse().map_err(|_| format!("bad node id {a:?}"))?;
    let b: NodeId = b.parse().map_err(|_| format!("bad node id {b:?}"))?;
    Ok((a, b))
}

fn parse_opt_count(token: Option<&&str>, default: usize) -> Result<usize, String> {
    match token {
        Some(t) => t.parse().map_err(|_| format!("bad top {t:?}")),
        None => Ok(default),
    }
}

fn parse_sig(shape: &str) -> Result<NodeSignature, String> {
    let tree = ned_tree::serialize::parse(shape).map_err(|e| e.to_string())?;
    Ok(NodeSignature::from_prepared(0, PreparedTree::new(&tree)))
}

fn fmt_hits(hits: &[ForestHit]) -> String {
    let mut out = String::new();
    for h in hits {
        out.push_str(&format!("hit id={} ned={}\n", h.id, h.distance));
    }
    out.push_str(&format!("ok {} hits", hits.len()));
    out
}

const HELP: &str = "commands:\n\
    \x20 query <graph.edges> <node> [top]   nearest indexed signatures\n\
    \x20 range <graph.edges> <node> <r>     all signatures with NED <= r\n\
    \x20                                    (r is the budget of every exact\n\
    \x20                                    TED* call - bounded, not\n\
    \x20                                    compute-then-filter)\n\
    \x20 sig <parens-tree> [top]            query by a literal tree shape\n\
    \x20 rangesig <parens-tree> <r>         range query by a literal shape\n\
    \x20 add <graph.edges> <node>           index one more signature\n\
    \x20 addsig <parens-tree>               index a literal tree shape\n\
    \x20 remove <id>                        drop a signature by id\n\
    \x20 track <graph.edges>                attach a mutating graph (node v\n\
    \x20                                    must be indexed under id v; raw\n\
    \x20                                    add/addsig/remove detach it)\n\
    \x20 addedge <a> <b>                    add a tracked-graph edge; only\n\
    \x20 deledge <a> <b>                    the (k-1)-hop dirty set is\n\
    \x20                                    recomputed, one epoch per delta\n\
    \x20 stats                              index shape + epoch + memo +\n\
    \x20                                    serving counters + durability\n\
    \x20 epoch                              publication count + live size\n\
    \x20 save <path>                        persist the current index\n\
    \x20 checkpoint                         snapshot now + reset the WAL\n\
    \x20 shutdown                           drain, checkpoint, exit cleanly\n\
    \x20 quit\n\
    ok";

/// A blocking client for the framed TCP protocol — used by the CLI, the
/// load generator, and the loopback tests.
pub struct WireClient {
    stream: TcpStream,
    /// The resolved peer, remembered for [`WireClient::reconnect`].
    addr: Option<SocketAddr>,
}

impl WireClient {
    /// Connects to a serving `ned-cli serve --tcp` address.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let addr = stream.peer_addr().ok();
        Ok(WireClient { stream, addr })
    }

    /// Applies socket timeouts so a dead or drained server surfaces as a
    /// timely error instead of a hung client.
    pub fn set_timeouts(
        &self,
        read: Option<Duration>,
        write: Option<Duration>,
    ) -> std::io::Result<()> {
        self.stream.set_read_timeout(read)?;
        self.stream.set_write_timeout(write)
    }

    /// Drops the current stream and dials the remembered peer address
    /// again. Any reply in flight on the old stream is lost.
    pub fn reconnect(&mut self) -> std::io::Result<()> {
        let addr = self.addr.ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::AddrNotAvailable,
                "peer address unknown; cannot reconnect",
            )
        })?;
        self.stream = TcpStream::connect(addr)?;
        Ok(())
    }

    /// Sends one payload (one command, or a newline-separated batch) and
    /// returns the reply text.
    pub fn call(&mut self, payload: &str) -> Result<String, wire::WireError> {
        self.send_raw(payload.as_bytes())?;
        self.read_reply()
    }

    /// [`WireClient::call`] with bounded exponential-backoff
    /// reconnect-and-retry, for payloads that are safe to send twice —
    /// **idempotent reads only**. A retried write could double-apply: the
    /// server may have executed a call whose reply was lost. Waits 20 ms
    /// before the second attempt, doubling up to 2 s, `attempts` tries
    /// total; returns the last error if none succeed.
    pub fn call_idempotent(
        &mut self,
        payload: &str,
        attempts: u32,
    ) -> Result<String, wire::WireError> {
        let mut delay = Duration::from_millis(20);
        let mut last = None;
        for attempt in 0..attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(delay);
                delay = (delay * 2).min(Duration::from_secs(2));
                if let Err(e) = self.reconnect() {
                    last = Some(wire::WireError::Io(e));
                    continue;
                }
            }
            match self.call(payload) {
                Ok(reply) => return Ok(reply),
                Err(e) => last = Some(e),
            }
        }
        Err(last.expect("at least one attempt ran"))
    }

    /// Sends raw payload bytes without reading a reply. Only useful
    /// together with [`WireClient::read_reply`]; [`WireClient::call`] is
    /// the normal entry point.
    pub fn send_raw(&mut self, payload: &[u8]) -> Result<(), wire::WireError> {
        wire::write_frame(&mut self.stream, payload)?;
        Ok(())
    }

    /// Reads one reply frame as text.
    pub fn read_reply(&mut self) -> Result<String, wire::WireError> {
        match wire::read_frame(&mut self.stream)? {
            Some(bytes) => String::from_utf8(bytes).map_err(|_| {
                wire::WireError::Codec(ned_core::store::CodecError::Malformed(
                    "reply payload is not UTF-8".to_string(),
                ))
            }),
            None => Err(wire::WireError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before replying",
            ))),
        }
    }

    /// Writes raw bytes *outside* the frame discipline — the hook the
    /// malformed-frame tests use to poison a stream on purpose.
    pub fn send_bytes(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// Reads whatever bytes remain until EOF (used after the server hangs
    /// up on a poisoned stream).
    pub fn read_to_end(&mut self) -> std::io::Result<Vec<u8>> {
        let mut out = Vec::new();
        self.stream.read_to_end(&mut out)?;
        Ok(out)
    }
}
