//! Metric-preserving vector sketches: a cache-friendly filter tier in
//! front of the exact TED\* kernel.
//!
//! Every [`NodeSignature`] is mapped once, at insert time, to a small
//! fixed-dimension vector of `u16` lanes (a [`Sketch`]) such that a
//! cheap scalar distance between two sketches **provably lower-bounds**
//! NED between the signatures. Candidate generation for knn/range then
//! becomes a linear scan over a flat structure-of-arrays sketch bank —
//! one contiguous `u16` array the CPU streams through and
//! autovectorizes — instead of a pointer-chasing walk over two
//! [`PreparedTree`]s per candidate pair. Survivors are re-ranked by the
//! budgeted early-abandoning kernel
//! ([`ned_core::ted_star_prepared_within`] via
//! [`SignatureMetric::distance_within`]), sharing one pruning radius
//! exactly like the sharded forest does.
//!
//! # Sketch layout
//!
//! A sketch has [`SKETCH_DIM`] = `SKETCH_LEVELS + SKETCH_LEVELS ×
//! SKETCH_BUCKETS` lanes:
//!
//! * **Size lanes** `0..SKETCH_LEVELS`: lane `l` holds level `l`'s node
//!   count (BFS level of the k-adjacent tree), saturated to `u16`;
//!   levels at and beyond `SKETCH_LEVELS - 1` fold into the last size
//!   lane.
//! * **Histogram lanes**: for each level `l < SKETCH_LEVELS`, a group
//!   of [`SKETCH_BUCKETS`] lanes holds the level's subtree-class
//!   histogram aggregated by bucket, where a node's bucket is a stable
//!   **subtree fingerprint** modulo the bucket count — a bottom-up
//!   FNV-1a combine of the node's children's fingerprints in sorted
//!   order (a WL-style feature). The fingerprint is a pure function of
//!   the subtree's isomorphism class — isomorphic subtrees always land
//!   in the same bucket — so it is stable across processes and safe to
//!   persist (unlike interner ids), and it never materializes
//!   per-subtree canonical codes, so sketching stays cheap enough for
//!   the per-mutation write path (hash collisions merely merge classes
//!   into a bucket, which the soundness argument below already
//!   absorbs).
//!
//! # Why the bound is sound
//!
//! Write `d = NED(a, b)` and let `Δ` denote per-lane absolute
//! differences.
//!
//! * **Size part.** TED\* pays at least `Σ_l |size_a(l) − size_b(l)|`
//!   (each level's forced padding). Folding tail levels into one lane
//!   only shrinks the sum (triangle inequality), and saturation to
//!   `u16` is a monotone 1-Lipschitz map, so the plain scalar L1 over
//!   the size lanes is `≤ d`.
//! * **Histogram part.** One edit operation changes at most two nodes'
//!   subtree classes per level, shifting that level's class-histogram
//!   L1 by at most 4 — so `hist_L1(l) ≤ 4d` for **every** level
//!   (the same argument behind
//!   [`ned_core::ted_star_class_lower_bound`]). Aggregating a
//!   histogram into buckets can only reduce its L1 (again the triangle
//!   inequality: equal classes always share a bucket), and saturation
//!   only reduces it further, therefore
//!   `ceil(bucket_L1(l) / 4) ≤ d` per level and the max over levels is
//!   still `≤ d`.
//!
//! [`sketch_lower_bound`] returns
//! `max(L1(size lanes), max_l ceil(L1(hist lanes of l) / 4))`, which by
//! the two points above never exceeds NED — so pruning candidates whose
//! bound exceeds the current radius drops **nothing** the exact scan
//! would keep. Exact mode is property-tested bit-identical to the
//! unfiltered forest (`tests/sketch_filter.rs`).
//!
//! # Approximate mode
//!
//! [`sketch_estimate`] replaces the per-level max with the L1 over
//! *all* histogram lanes divided by 4 — a sharper, cheaper, fully
//! vectorizable scalar that may exceed NED (an edit shifts every
//! level's histogram on its ancestor path, so summing levels
//! over-counts up to the tree depth). Used as the pruning bound it
//! trades a measured recall (`sketch_approx_recall` in the benchmark
//! trajectory, asserted ≥ 0.95 on the BA-4000 workload) for fewer
//! exact refinements.

use crate::forest::{BoundedHeap, ForestHit, SharedBound};
use crate::signatures::SignatureMetric;
use crate::BoundedMetric;
use ned_core::{NodeSignature, PreparedTree};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Tree levels a sketch resolves individually; deeper levels fold into
/// the last size lane and are ignored by the histogram lanes (both
/// directions only weaken the bound). NED's extraction depth `k` is
/// almost always far below this.
pub const SKETCH_LEVELS: usize = 8;

/// Histogram buckets per level.
pub const SKETCH_BUCKETS: usize = 8;

/// Total `u16` lanes per sketch (size lanes + per-level histogram
/// groups): 72 lanes = 144 bytes.
pub const SKETCH_DIM: usize = SKETCH_LEVELS + SKETCH_LEVELS * SKETCH_BUCKETS;

#[inline]
fn sat16(v: u32) -> u16 {
    v.min(u32::from(u16::MAX)) as u16
}

/// Scalar L1 between two equal-length lane slices. The compiler
/// autovectorizes this shape (widen, subtract, absolute value,
/// accumulate); lane sums cannot overflow `u32` for `SKETCH_DIM`-sized
/// inputs.
#[inline]
fn lane_l1(a: &[u16], b: &[u16]) -> u32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0u32;
    for i in 0..a.len() {
        acc += (i32::from(a[i]) - i32::from(b[i])).unsigned_abs();
    }
    acc
}

/// Per-node stable subtree fingerprints: a bottom-up FNV-1a combine of
/// each node's children's fingerprints in sorted order. A pure function
/// of the subtree's isomorphism class (isomorphic subtrees hash equal),
/// stable across processes — and, unlike
/// [`ned_tree::ahu::subtree_fingerprints`], it never materializes
/// per-subtree canonical code strings, which keeps sketching fast
/// enough to run on every index mutation.
fn stable_subtree_fingerprints(tree: &ned_tree::Tree) -> Vec<u64> {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    debug_assert!(!tree.is_empty(), "signature trees are never empty");
    let n = tree.len();
    let mut out = vec![0u64; n];
    let mut kids: Vec<u64> = Vec::new();
    // BFS-ordered storage: children always follow their parent, so a
    // reverse scan sees every child before its parent.
    for v in (0..n as u32).rev() {
        kids.clear();
        kids.extend(tree.children(v).map(|c| out[c as usize]));
        kids.sort_unstable();
        let mut h = FNV_OFFSET;
        for &k in &kids {
            for b in k.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(FNV_PRIME);
            }
        }
        out[v as usize] = h;
    }
    out
}

/// The root's stable subtree fingerprint: a process-stable,
/// isomorphism-invariant hash of the whole tree's shape (two trees hash
/// equal iff their sorted-children bottom-up FNV-1a combines collide —
/// in particular whenever they are isomorphic). The replication layer's
/// live-set fingerprint folds one of these per live id, so two replicas
/// holding the same acknowledged history agree on it **across
/// processes** — which interner root classes, being process-local,
/// could never provide.
pub fn stable_tree_fingerprint(tree: &ned_tree::Tree) -> u64 {
    stable_subtree_fingerprints(tree)[0]
}

/// Coarse cap on the process-wide sketch cache: ~150 bytes per entry,
/// so the cache tops out around 40 MB before a full clear (the same
/// coarse eviction shape as [`ned_core::TedMemo`]).
const SKETCH_CACHE_CAP: usize = 1 << 18;

/// Process-wide sketch cache keyed by the prepared tree's interned root
/// class ([`PreparedTree::root_class`]): equal class ⇔ isomorphic tree
/// ⇔ identical sketch. Interner ids are process-local, which is fine
/// here — the cache never persists (persisted banks store raw lanes).
/// Shapes repeat heavily under churn (an edge flipped back restores an
/// already-seen class), so steady-state per-mutation sketching becomes
/// a read-lock + 144-byte copy instead of a tree walk.
fn sketch_cached(prepared: &PreparedTree, out: &mut [u16]) {
    use std::sync::{LazyLock, RwLock};
    static CACHE: LazyLock<RwLock<HashMap<u32, [u16; SKETCH_DIM]>>> =
        LazyLock::new(|| RwLock::new(HashMap::new()));
    let class = prepared.root_class();
    if let Some(lanes) = CACHE.read().expect("sketch cache poisoned").get(&class) {
        out.copy_from_slice(lanes);
        return;
    }
    sketch_into(prepared, out);
    let mut cache = CACHE.write().expect("sketch cache poisoned");
    if cache.len() >= SKETCH_CACHE_CAP {
        cache.clear();
    }
    cache.insert(class, out.try_into().expect("out is SKETCH_DIM long"));
}

/// Writes the sketch of `prepared` into `out` (length [`SKETCH_DIM`]).
/// See the [module docs](self) for the lane layout. This is the
/// uncached path; the bank and [`Sketch::of`] go through a
/// root-class-keyed process cache.
pub fn sketch_into(prepared: &PreparedTree, out: &mut [u16]) {
    assert_eq!(out.len(), SKETCH_DIM, "sketch output slice has wrong dim");
    out.fill(0);
    for (l, &s) in prepared.level_sizes().iter().enumerate() {
        let lane = l.min(SKETCH_LEVELS - 1);
        out[lane] = out[lane].saturating_add(sat16(s));
    }
    let tree = prepared.tree();
    let fp = stable_subtree_fingerprints(tree);
    for l in 0..tree.num_levels().min(SKETCH_LEVELS) {
        for v in tree.level(l) {
            let bucket = (fp[v as usize] % SKETCH_BUCKETS as u64) as usize;
            let lane = SKETCH_LEVELS + l * SKETCH_BUCKETS + bucket;
            out[lane] = out[lane].saturating_add(1);
        }
    }
}

/// The provable lower bound:
/// `max(L1(sizes), max_l ceil(L1(hist_l) / 4)) ≤ NED`. Soundness proof
/// in the [module docs](self).
#[inline]
pub fn sketch_lower_bound(a: &[u16], b: &[u16]) -> u64 {
    let size = u64::from(lane_l1(&a[..SKETCH_LEVELS], &b[..SKETCH_LEVELS]));
    let mut worst = 0u32;
    for l in 0..SKETCH_LEVELS {
        let s = SKETCH_LEVELS + l * SKETCH_BUCKETS;
        worst = worst.max(lane_l1(
            &a[s..s + SKETCH_BUCKETS],
            &b[s..s + SKETCH_BUCKETS],
        ));
    }
    size.max(u64::from(worst).div_ceil(4))
}

/// The approximate estimator:
/// `max(L1(sizes), ceil(L1(all hist lanes) / 4))`. Sharper and fully
/// vectorizable, but **may exceed** NED (see the [module docs](self))
/// — exact mode never uses it.
#[inline]
pub fn sketch_estimate(a: &[u16], b: &[u16]) -> u64 {
    let size = u64::from(lane_l1(&a[..SKETCH_LEVELS], &b[..SKETCH_LEVELS]));
    let hist = u64::from(lane_l1(&a[SKETCH_LEVELS..], &b[SKETCH_LEVELS..]));
    size.max(hist.div_ceil(4))
}

/// One signature's sketch as an owned value — the unit the property
/// tests and the bank's rows are built from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sketch(pub [u16; SKETCH_DIM]);

impl Sketch {
    /// Sketches a signature's prepared tree.
    pub fn of(sig: &NodeSignature) -> Sketch {
        let mut lanes = [0u16; SKETCH_DIM];
        sketch_cached(sig.prepared(), &mut lanes);
        Sketch(lanes)
    }

    /// [`sketch_lower_bound`] against another sketch.
    pub fn lower_bound(&self, other: &Sketch) -> u64 {
        sketch_lower_bound(&self.0, &other.0)
    }

    /// [`sketch_estimate`] against another sketch.
    pub fn estimate(&self, other: &Sketch) -> u64 {
        sketch_estimate(&self.0, &other.0)
    }

    /// The raw lanes.
    pub fn lanes(&self) -> &[u16; SKETCH_DIM] {
        &self.0
    }
}

/// How [`crate::SignatureIndex`] routes queries through its sketch
/// bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SketchMode {
    /// Bypass the bank: queries take the sharded VP-forest path
    /// unchanged (the pre-sketch serving configuration).
    Off,
    /// Pre-filter by [`sketch_lower_bound`] — results stay bit-identical
    /// to the forest (no false drops; the default).
    #[default]
    Exact,
    /// Pre-filter by [`sketch_estimate`] — faster, with measured (not
    /// guaranteed) recall.
    Approx,
}

impl SketchMode {
    /// Stable wire/codec encoding (`0/1/2`).
    pub fn to_u32(self) -> u32 {
        match self {
            SketchMode::Off => 0,
            SketchMode::Exact => 1,
            SketchMode::Approx => 2,
        }
    }

    /// Inverse of [`SketchMode::to_u32`]; `None` for unknown values.
    pub fn from_u32(v: u32) -> Option<SketchMode> {
        match v {
            0 => Some(SketchMode::Off),
            1 => Some(SketchMode::Exact),
            2 => Some(SketchMode::Approx),
            _ => None,
        }
    }
}

impl std::fmt::Display for SketchMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SketchMode::Off => "off",
            SketchMode::Exact => "exact",
            SketchMode::Approx => "approx",
        })
    }
}

impl std::str::FromStr for SketchMode {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(SketchMode::Off),
            "exact" => Ok(SketchMode::Exact),
            "approx" => Ok(SketchMode::Approx),
            other => Err(format!(
                "unknown sketch mode '{other}' (expected off|exact|approx)"
            )),
        }
    }
}

/// Work counters the bank accumulates across queries; shared by every
/// clone of a bank (publication snapshots observe one set of serving
/// counters).
#[derive(Debug, Default)]
struct SketchCounters {
    queries: AtomicU64,
    scanned: AtomicU64,
    refined: AtomicU64,
    pruned: AtomicU64,
}

/// A point-in-time snapshot of a bank's shape and work counters (the
/// `sketch:` line of the server's `stats` reply).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SketchStats {
    /// Live sketch rows (equals the index's live signature count).
    pub rows: usize,
    /// Queries answered through the bank since creation.
    pub queries: u64,
    /// Sketch rows scanned (bound evaluations).
    pub scanned: u64,
    /// Candidates refined by the exact budgeted kernel.
    pub refined: u64,
    /// Candidates dismissed by the sketch bound alone.
    pub pruned: u64,
}

impl std::fmt::Display for SketchStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rows {}, queries {}, scanned {}, refined {}, pruned {}",
            self.rows, self.queries, self.scanned, self.refined, self.pruned
        )
    }
}

/// Rows per parallel scan chunk: large enough that a chunk amortizes
/// its dispatch, small enough that the `par_map` pool balances.
const SCAN_CHUNK: usize = 1024;

/// Rows per copy-on-write lane chunk: 256 rows × [`SKETCH_DIM`] lanes ×
/// 2 bytes = 36 KB — small enough that a churn write republishing one
/// row copies 36 KB instead of the whole bank, large enough that the
/// scan still streams long contiguous runs.
const CHUNK_ROWS: usize = 256;

/// Chunk index and in-chunk lane offset for row `r`.
#[inline]
fn chunk_loc(r: usize) -> (usize, usize) {
    (r / CHUNK_ROWS, (r % CHUNK_ROWS) * SKETCH_DIM)
}

/// Splits a flat row-major lane buffer into `Arc`-shared chunks.
fn chunk_lanes(flat: &[u16]) -> Vec<Arc<Vec<u16>>> {
    flat.chunks(CHUNK_ROWS * SKETCH_DIM)
        .map(|c| Arc::new(c.to_vec()))
        .collect()
}

/// The SoA sketch bank: one row per live signature, lanes stored in
/// fixed-size **`Arc`-shared chunks**, scanned linearly at query time
/// and fed into the shared-radius exact refine. Maintained by
/// [`crate::SignatureIndex`] on every insert/replace/remove so rows
/// mirror the live set exactly.
///
/// Cloning the bank — which happens on **every publication** (the
/// concurrent index snapshots the master copy) — shares the lane chunks
/// by pointer; the writer's next mutation copies only the chunk it
/// touches ([`Arc::make_mut`]). That turns the per-publication lane
/// copy from O(rows) to O(chunks touched), the difference the
/// `delta/ba4000-edge-churn` trajectory entry measures.
///
/// ```
/// use ned_core::NodeSignature;
/// use ned_graph::Graph;
/// use ned_index::sketch::{SketchBank, SketchMode};
///
/// // Index a 6-cycle's nodes, then query with a node of an 8-cycle.
/// let hexagon =
///     Graph::undirected_from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
/// let mut bank = SketchBank::new();
/// for v in hexagon.nodes() {
///     bank.upsert(u64::from(v), &NodeSignature::extract(&hexagon, v, 3));
/// }
/// assert_eq!(bank.len(), 6);
///
/// let octagon = Graph::undirected_from_edges(
///     8,
///     &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (7, 0)],
/// );
/// let probe = NodeSignature::extract(&octagon, 0, 3);
/// let hits = bank.knn(&probe, 3, 1, SketchMode::Exact);
/// // Within 3 hops every cycle node looks like a path — distance 0.
/// assert_eq!(hits.len(), 3);
/// assert!(hits.iter().all(|h| h.distance == 0.0));
/// assert!(bank.stats().queries >= 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SketchBank {
    ids: Vec<u64>,
    /// Row `r`'s lanes live in chunk `r / CHUNK_ROWS` at offset
    /// `(r % CHUNK_ROWS) * SKETCH_DIM`; rows never straddle chunks. The
    /// tail chunk may hold stale lanes past the live row count after a
    /// swap-remove — they are never read and never serialized.
    lanes: Vec<Arc<Vec<u16>>>,
    sigs: Vec<NodeSignature>,
    row_of: HashMap<u64, u32>,
    counters: Arc<SketchCounters>,
}

impl SketchBank {
    /// An empty bank.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bulk build: sketches every entry on up to `threads` threads
    /// (`0` = all cores).
    pub fn bulk(entries: &[(u64, NodeSignature)], threads: usize) -> Self {
        let rows = ned_core::batch::par_map(entries.len(), threads, |i| {
            let mut lanes = [0u16; SKETCH_DIM];
            sketch_cached(entries[i].1.prepared(), &mut lanes);
            lanes
        });
        let mut ids: Vec<u64> = Vec::with_capacity(entries.len());
        let mut flat: Vec<u16> = Vec::with_capacity(entries.len() * SKETCH_DIM);
        let mut sigs: Vec<NodeSignature> = Vec::with_capacity(entries.len());
        let mut row_of: HashMap<u64, u32> = HashMap::with_capacity(entries.len());
        for ((id, sig), lanes) in entries.iter().zip(rows) {
            match row_of.get(id) {
                // Later duplicates win, matching forest replace semantics.
                Some(&r) => {
                    let r = r as usize;
                    flat[r * SKETCH_DIM..(r + 1) * SKETCH_DIM].copy_from_slice(&lanes);
                    sigs[r] = sig.clone();
                }
                None => {
                    row_of.insert(*id, ids.len() as u32);
                    ids.push(*id);
                    flat.extend_from_slice(&lanes);
                    sigs.push(sig.clone());
                }
            }
        }
        SketchBank {
            ids,
            lanes: chunk_lanes(&flat),
            sigs,
            row_of,
            counters: Arc::new(SketchCounters::default()),
        }
    }

    /// Rebuilds a bank from entries plus their **persisted** lanes (the
    /// NEDIDX snapshot fast path: no re-sketching). `lanes` is row-major
    /// in entry order. Panics if the shapes disagree — the codec
    /// validates sizes before calling.
    pub fn from_rows(entries: &[(u64, NodeSignature)], lanes: Vec<u16>) -> Self {
        assert_eq!(lanes.len(), entries.len() * SKETCH_DIM, "lane shape");
        let mut row_of = HashMap::with_capacity(entries.len());
        for (r, (id, _)) in entries.iter().enumerate() {
            let prev = row_of.insert(*id, r as u32);
            assert!(prev.is_none(), "duplicate id {id} in persisted bank");
        }
        SketchBank {
            ids: entries.iter().map(|&(id, _)| id).collect(),
            lanes: chunk_lanes(&lanes),
            sigs: entries.iter().map(|(_, s)| s.clone()).collect(),
            row_of,
            counters: Arc::new(SketchCounters::default()),
        }
    }

    /// Live rows.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` when no rows are live.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Inserts or replaces the row for `id`.
    pub fn upsert(&mut self, id: u64, sig: &NodeSignature) {
        match self.row_of.get(&id) {
            Some(&r) => {
                let r = r as usize;
                let mut lanes = [0u16; SKETCH_DIM];
                sketch_cached(sig.prepared(), &mut lanes);
                self.row_lanes_mut(r).copy_from_slice(&lanes);
                self.sigs[r] = sig.clone();
            }
            None => {
                let r = self.ids.len();
                self.row_of.insert(id, r as u32);
                self.ids.push(id);
                let mut lanes = [0u16; SKETCH_DIM];
                sketch_cached(sig.prepared(), &mut lanes);
                let (c, off) = chunk_loc(r);
                if c == self.lanes.len() {
                    self.lanes
                        .push(Arc::new(Vec::with_capacity(CHUNK_ROWS * SKETCH_DIM)));
                }
                let chunk = Arc::make_mut(&mut self.lanes[c]);
                // The tail chunk may still hold a swap-removed row's
                // stale lanes; overwrite in place instead of growing.
                if chunk.len() < off + SKETCH_DIM {
                    chunk.resize(off + SKETCH_DIM, 0);
                }
                chunk[off..off + SKETCH_DIM].copy_from_slice(&lanes);
                self.sigs.push(sig.clone());
            }
        }
    }

    /// Drops the row for `id` (swap-remove). Returns `false` for
    /// unknown ids.
    pub fn remove(&mut self, id: u64) -> bool {
        let Some(r) = self.row_of.remove(&id) else {
            return false;
        };
        let r = r as usize;
        let last = self.ids.len() - 1;
        if r != last {
            let moved = self.ids[last];
            self.ids.swap(r, last);
            self.sigs.swap(r, last);
            let last_row: [u16; SKETCH_DIM] = self.row_lanes(last).try_into().expect("row dim");
            self.row_lanes_mut(r).copy_from_slice(&last_row);
            self.row_of.insert(moved, r as u32);
        }
        self.ids.pop();
        self.sigs.pop();
        // The vacated tail row's lanes go stale in place (never read);
        // only a fully emptied tail chunk is dropped — neither path
        // copies a shared chunk just to shrink it.
        if chunk_loc(last).1 == 0 {
            self.lanes.pop();
        }
        true
    }

    /// The lanes of `id`'s row, if live (the codec reads rows in id
    /// order through this).
    pub fn lanes_of(&self, id: u64) -> Option<&[u16]> {
        self.row_of.get(&id).map(|&r| self.row_lanes(r as usize))
    }

    /// Current counters snapshot.
    pub fn stats(&self) -> SketchStats {
        SketchStats {
            rows: self.ids.len(),
            queries: self.counters.queries.load(Ordering::Relaxed),
            scanned: self.counters.scanned.load(Ordering::Relaxed),
            refined: self.counters.refined.load(Ordering::Relaxed),
            pruned: self.counters.pruned.load(Ordering::Relaxed),
        }
    }

    #[inline]
    fn row_lanes(&self, r: usize) -> &[u16] {
        let (c, off) = chunk_loc(r);
        &self.lanes[c][off..off + SKETCH_DIM]
    }

    /// Mutable view of row `r`, copying its chunk first if a clone still
    /// shares it (the copy-on-write step).
    fn row_lanes_mut(&mut self, r: usize) -> &mut [u16] {
        let (c, off) = chunk_loc(r);
        &mut Arc::make_mut(&mut self.lanes[c])[off..off + SKETCH_DIM]
    }

    /// All rows' sketch distances to `qs`, computed chunk-parallel on
    /// the shared `par_map` pool, sorted ascending by
    /// `(bound, id)` so the refine stage can stop at the first bound
    /// past its radius.
    fn scan_bounds(&self, qs: &[u16; SKETCH_DIM], threads: usize, approx: bool) -> Vec<(u64, u32)> {
        let n = self.ids.len();
        let chunks = n.div_ceil(SCAN_CHUNK);
        let per_chunk: Vec<Vec<(u64, u32)>> = ned_core::batch::par_map(chunks, threads, |ci| {
            let start = ci * SCAN_CHUNK;
            let end = (start + SCAN_CHUNK).min(n);
            let mut out = Vec::with_capacity(end - start);
            for r in start..end {
                let b = if approx {
                    sketch_estimate(qs, self.row_lanes(r))
                } else {
                    sketch_lower_bound(qs, self.row_lanes(r))
                };
                out.push((b, r as u32));
            }
            out
        });
        let mut bounds: Vec<(u64, u32)> = per_chunk.into_iter().flatten().collect();
        bounds.sort_unstable_by_key(|&(b, r)| (b, self.ids[r as usize]));
        bounds
    }

    /// The `k` nearest rows to `query`, sorted by `(distance, id)`.
    /// In [`SketchMode::Exact`] (or `Off`, treated as exact here) the
    /// result is bit-identical to a full scan: the scan is ordered by
    /// the provable bound and stops once the bound alone exceeds the
    /// current k-th best distance; every exact call runs the budgeted
    /// kernel with that radius.
    pub fn knn(
        &self,
        query: &NodeSignature,
        k: usize,
        threads: usize,
        mode: SketchMode,
    ) -> Vec<ForestHit> {
        if k == 0 || self.ids.is_empty() {
            return Vec::new();
        }
        let approx = mode == SketchMode::Approx;
        let mut qs = [0u16; SKETCH_DIM];
        sketch_cached(query.prepared(), &mut qs);
        let bounds = self.scan_bounds(&qs, threads, approx);
        let shared = SharedBound::unbounded();
        let mut heap = BoundedHeap::new(k, &shared);
        let mut refined = 0u64;
        let mut cut = 0u64;
        for (pos, &(bound, r)) in bounds.iter().enumerate() {
            let tau = heap.tau();
            if bound as f64 > tau {
                cut = (bounds.len() - pos) as u64;
                break;
            }
            if let Some(d) = SignatureMetric.distance_within(query, &self.sigs[r as usize], tau) {
                heap.offer_id(self.ids[r as usize], d);
            }
            refined += 1;
        }
        self.counters.queries.fetch_add(1, Ordering::Relaxed);
        self.counters
            .scanned
            .fetch_add(bounds.len() as u64, Ordering::Relaxed);
        self.counters.refined.fetch_add(refined, Ordering::Relaxed);
        self.counters.pruned.fetch_add(cut, Ordering::Relaxed);
        heap.into_sorted()
    }

    /// Every row within `radius` of `query` (inclusive), sorted by
    /// `(distance, id)`. The radius is fixed, so survivors refine in
    /// parallel inside the scan chunks.
    pub fn range(
        &self,
        query: &NodeSignature,
        radius: u64,
        threads: usize,
        mode: SketchMode,
    ) -> Vec<ForestHit> {
        if self.ids.is_empty() {
            return Vec::new();
        }
        let approx = mode == SketchMode::Approx;
        let mut qs = [0u16; SKETCH_DIM];
        sketch_cached(query.prepared(), &mut qs);
        let n = self.ids.len();
        let chunks = n.div_ceil(SCAN_CHUNK);
        let refined = Arc::new(AtomicU64::new(0));
        let per_chunk: Vec<Vec<ForestHit>> = ned_core::batch::par_map(chunks, threads, |ci| {
            let start = ci * SCAN_CHUNK;
            let end = (start + SCAN_CHUNK).min(n);
            let mut out = Vec::new();
            let mut local_refined = 0u64;
            for r in start..end {
                let b = if approx {
                    sketch_estimate(&qs, self.row_lanes(r))
                } else {
                    sketch_lower_bound(&qs, self.row_lanes(r))
                };
                if b > radius {
                    continue;
                }
                local_refined += 1;
                if let Some(d) =
                    SignatureMetric.distance_within(query, &self.sigs[r], radius as f64)
                {
                    out.push(ForestHit {
                        id: self.ids[r],
                        distance: d,
                    });
                }
            }
            refined.fetch_add(local_refined, Ordering::Relaxed);
            out
        });
        let mut hits: Vec<ForestHit> = per_chunk.into_iter().flatten().collect();
        crate::forest::sort_hits(&mut hits);
        let refined = refined.load(Ordering::Relaxed);
        self.counters.queries.fetch_add(1, Ordering::Relaxed);
        self.counters.scanned.fetch_add(n as u64, Ordering::Relaxed);
        self.counters.refined.fetch_add(refined, Ordering::Relaxed);
        self.counters
            .pruned
            .fetch_add(n as u64 - refined, Ordering::Relaxed);
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ned_graph::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn sigs(n: usize, k: usize, seed: u64) -> Vec<NodeSignature> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = generators::barabasi_albert(n, 3, &mut rng);
        let nodes: Vec<u32> = g.nodes().collect();
        ned_core::bulk_signatures(&g, &nodes, k, 0)
    }

    #[test]
    fn lower_bound_never_exceeds_distance() {
        let a = sigs(60, 3, 1);
        let b = sigs(60, 3, 2);
        for x in a.iter().step_by(7) {
            let sx = Sketch::of(x);
            for y in b.iter().step_by(11) {
                let d = x.distance(y);
                let lb = sx.lower_bound(&Sketch::of(y));
                assert!(lb <= d, "sketch bound {lb} exceeds NED {d}");
            }
        }
    }

    #[test]
    fn sketch_is_isomorphism_invariant() {
        // Same structure from different graphs → identical sketches.
        let a = sigs(50, 3, 9);
        for x in &a {
            for y in &a {
                if x.prepared().code() == y.prepared().code() {
                    assert_eq!(Sketch::of(x), Sketch::of(y));
                    assert_eq!(Sketch::of(x).lower_bound(&Sketch::of(y)), 0);
                }
            }
        }
    }

    #[test]
    fn bank_knn_matches_naive_scan() {
        let db = sigs(120, 3, 3);
        let probes = sigs(10, 3, 4);
        let mut bank = SketchBank::new();
        for (i, s) in db.iter().enumerate() {
            bank.upsert(i as u64, s);
        }
        for q in &probes {
            let mut naive: Vec<(u64, u64)> = db
                .iter()
                .enumerate()
                .map(|(i, s)| (q.distance(s), i as u64))
                .collect();
            naive.sort_unstable();
            for k in [1usize, 4, 9] {
                let hits = bank.knn(q, k, 1, SketchMode::Exact);
                assert_eq!(hits.len(), k);
                for (h, &(d, id)) in hits.iter().zip(&naive) {
                    assert_eq!((h.distance as u64, h.id), (d, id));
                }
            }
        }
    }

    #[test]
    fn bank_range_matches_naive_scan() {
        let db = sigs(100, 3, 5);
        let q = &sigs(5, 3, 6)[0];
        let mut bank = SketchBank::new();
        for (i, s) in db.iter().enumerate() {
            bank.upsert(i as u64, s);
        }
        for radius in [0u64, 2, 5, 20] {
            let hits = bank.range(q, radius, 2, SketchMode::Exact);
            let naive: Vec<(u64, u64)> = {
                let mut v: Vec<(u64, u64)> = db
                    .iter()
                    .enumerate()
                    .filter_map(|(i, s)| {
                        let d = q.distance(s);
                        (d <= radius).then_some((d, i as u64))
                    })
                    .collect();
                v.sort_unstable();
                v
            };
            assert_eq!(hits.len(), naive.len(), "radius {radius}");
            for (h, &(d, id)) in hits.iter().zip(&naive) {
                assert_eq!((h.distance as u64, h.id), (d, id));
            }
        }
    }

    #[test]
    fn upsert_remove_keep_rows_consistent() {
        let db = sigs(40, 3, 7);
        let mut bank = SketchBank::new();
        for (i, s) in db.iter().enumerate() {
            bank.upsert(i as u64, s);
        }
        assert_eq!(bank.len(), 40);
        // Replace a row, remove a middle row and the last row.
        bank.upsert(3, &db[10]);
        assert_eq!(bank.len(), 40);
        assert!(bank.remove(17));
        assert!(bank.remove(39));
        assert!(!bank.remove(17));
        assert!(!bank.remove(999));
        assert_eq!(bank.len(), 38);
        // Surviving rows still answer exactly.
        let q = &db[20];
        let hits = bank.knn(q, 38, 1, SketchMode::Exact);
        assert_eq!(hits.len(), 38);
        assert!(hits.iter().all(|h| h.id != 17 && h.id != 39));
        // Row 3 now carries db[10]'s signature.
        let three = hits.iter().find(|h| h.id == 3).expect("id 3 live");
        assert_eq!(three.distance as u64, q.distance(&db[10]));
    }

    #[test]
    fn clone_is_copy_on_write_per_chunk() {
        // > CHUNK_ROWS rows → two lane chunks, so a clone + one-row write
        // must copy exactly the touched chunk and keep sharing the other.
        let db = sigs(300, 3, 8);
        let entries: Vec<(u64, NodeSignature)> = db
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, s)| (i as u64, s))
            .collect();
        let mut bank = SketchBank::bulk(&entries, 0);
        assert_eq!(bank.lanes.len(), 2, "300 rows span two 256-row chunks");

        let snapshot = bank.clone();
        for (c, chunk) in bank.lanes.iter().enumerate() {
            assert!(
                Arc::ptr_eq(chunk, &snapshot.lanes[c]),
                "clone shares chunk {c} by pointer"
            );
        }

        let before: Vec<u16> = bank.lanes_of(0).expect("row 0 live").to_vec();
        bank.upsert(0, &db[1]);
        assert!(
            !Arc::ptr_eq(&bank.lanes[0], &snapshot.lanes[0]),
            "writing row 0 copied chunk 0"
        );
        assert!(
            Arc::ptr_eq(&bank.lanes[1], &snapshot.lanes[1]),
            "chunk 1 is untouched and still shared"
        );
        // The snapshot still reads the pre-write lanes; the writer reads
        // the new ones.
        assert_eq!(snapshot.lanes_of(0).expect("row 0 live"), &before[..]);
        assert_eq!(
            bank.lanes_of(0).expect("row 0 live"),
            bank.lanes_of(1).expect("row 1 live"),
            "row 0 now carries db[1]'s sketch"
        );
    }

    #[test]
    fn approx_mode_estimates_dominate_lower_bound() {
        let a = sigs(30, 4, 11);
        for x in a.iter().step_by(3) {
            for y in a.iter().step_by(5) {
                let (sx, sy) = (Sketch::of(x), Sketch::of(y));
                assert!(sx.estimate(&sy) >= sx.lower_bound(&sy) / SKETCH_LEVELS as u64);
            }
        }
    }

    #[test]
    fn mode_round_trips() {
        for m in [SketchMode::Off, SketchMode::Exact, SketchMode::Approx] {
            assert_eq!(SketchMode::from_u32(m.to_u32()), Some(m));
            assert_eq!(m.to_string().parse::<SketchMode>().unwrap(), m);
        }
        assert_eq!(SketchMode::from_u32(9), None);
        assert!("fast".parse::<SketchMode>().is_err());
    }
}
