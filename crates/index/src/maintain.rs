//! **Incremental signature maintenance** for a live index tracking a
//! mutating graph: [`GraphMaintainer`] turns [`GraphDelta`] batches into
//! minimal [`WriteOp`] batches against an [`IndexWriter`], so a serving
//! index follows edge churn without full rebuilds.
//!
//! Per delta batch the maintainer:
//!
//! 1. applies each delta to its private [`DynamicGraph`], collecting the
//!    **dirty candidates** — the `(k − 1)`-hop ball of a touched endpoint
//!    per applied delta, computed by truncated BFS in the graph variant
//!    that contains the touched edge (see `ned_graph::delta` for why that
//!    radius and that variant are sufficient);
//! 2. recomputes only the candidates' signatures through the shared-work
//!    bulk pipeline ([`SignatureFactory`]) — a kept-alive factory means
//!    an edge flip that returns a neighborhood to a previously seen
//!    shape is a pure cache hit;
//! 3. diffs each candidate's interned root class against the maintained
//!    class vector: equal class ⇔ isomorphic tree ⇔ bit-identical
//!    signature, so the emitted [`WriteOp::Replace`] set is **exactly**
//!    the set of changed signatures (pinned by the incremental-vs-rebuild
//!    property tests);
//! 4. applies the whole batch through [`IndexWriter::apply`] — one atomic
//!    publication, so readers observe each delta batch as one epoch.

use crate::concurrent::{IndexWriter, WriteOp, WriteOutcome};
use crate::signatures::SignatureIndex;
use ned_core::SignatureFactory;
use ned_graph::{DynamicGraph, Graph, GraphDelta, NodeId};
use std::collections::BTreeSet;

/// Sentinel for "this node has no index id (yet)".
const NO_ID: u64 = u64::MAX;

/// What one delta batch did to the index. All counts are per batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeltaReport {
    /// Deltas that actually changed the graph (no-ops excluded).
    pub applied: usize,
    /// Dirty-set candidates whose signatures were recomputed.
    pub candidates: usize,
    /// Candidates whose signature really changed ([`WriteOp::Replace`]s
    /// emitted) — exactly the changed-signature set.
    pub replaced: usize,
    /// Signatures of newly added nodes inserted.
    pub inserted: usize,
    /// Signatures of removed nodes dropped.
    pub removed: usize,
}

impl std::fmt::Display for DeltaReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "applied={} dirty={} replaced={} inserted={} removed={}",
            self.applied, self.candidates, self.replaced, self.inserted, self.removed
        )
    }
}

/// Tracks one mutating graph against the signature index that serves it.
/// See the [module docs](self).
pub struct GraphMaintainer {
    graph: DynamicGraph,
    k: usize,
    threads: usize,
    factory: SignatureFactory,
    /// `ids[v]` = index id of node `v`'s signature (`NO_ID` for retired
    /// nodes and not-yet-inserted additions).
    ids: Vec<u64>,
    /// `classes[v]` = interned root class of the currently indexed
    /// signature of `v` — the change detector.
    classes: Vec<u32>,
    alive: Vec<bool>,
}

impl GraphMaintainer {
    /// Attaches to `graph` (undirected), whose nodes are indexed under
    /// ids `first_id + v` — the id layout
    /// [`SignatureIndex::insert_graph`] produces. `k` must match the
    /// index; `threads` bounds the recompute fan-out (`0` = all cores).
    ///
    /// Attachment runs one bulk class pass over the graph to seed the
    /// change detector.
    pub fn attach(graph: &Graph, k: usize, first_id: u64, threads: usize) -> Self {
        let factory = SignatureFactory::new();
        let nodes: Vec<NodeId> = graph.nodes().collect();
        let classes = factory.root_classes(graph, &nodes, k, threads);
        GraphMaintainer {
            graph: DynamicGraph::from_graph(graph),
            k,
            threads,
            factory,
            ids: nodes.iter().map(|&v| first_id + u64::from(v)).collect(),
            classes,
            alive: vec![true; nodes.len()],
        }
    }

    /// The signature parameter this maintainer recomputes at.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Node slots (including retired ones).
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Live undirected edges.
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// Whether `v` is a live node.
    pub fn is_alive(&self, v: NodeId) -> bool {
        (v as usize) < self.alive.len() && self.alive[v as usize]
    }

    /// The tracked graph (current state, mutable only through
    /// [`GraphMaintainer::apply`]).
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// Checks that `index` really serves this maintainer's graph: every
    /// live node's id must be indexed with a signature of the maintained
    /// root class (one pass over the index entries). Catches attaching
    /// the wrong graph file to a server before churn corrupts the index.
    pub fn verify_against(&self, index: &SignatureIndex) -> Result<(), String> {
        if index.k() != self.k {
            return Err(format!(
                "index k = {} but the tracked graph is maintained at k = {}",
                index.k(),
                self.k
            ));
        }
        let by_id: std::collections::HashMap<u64, u32> = index
            .forest()
            .entries()
            .map(|(id, sig)| (id, sig.prepared().root_class()))
            .collect();
        for v in 0..self.alive.len() {
            if !self.alive[v] {
                continue;
            }
            match by_id.get(&self.ids[v]) {
                None => {
                    return Err(format!(
                        "node {v} (id {}) is not indexed — wrong graph for this index?",
                        self.ids[v]
                    ))
                }
                Some(&class) if class != self.classes[v] => {
                    return Err(format!(
                        "node {v} (id {}) is indexed with a different neighborhood shape — \
                         wrong graph for this index?",
                        self.ids[v]
                    ))
                }
                Some(_) => {}
            }
        }
        Ok(())
    }

    /// Applies a delta batch: mutates the tracked graph, recomputes
    /// exactly the dirty candidates, and pushes the resulting minimal
    /// write batch through `writer` as **one** atomic publication (the
    /// epoch advances once per call, even for an all-no-op batch).
    pub fn apply(&mut self, deltas: &[GraphDelta], writer: &mut IndexWriter) -> DeltaReport {
        let MaterializedBatch {
            report,
            ops,
            insert_from,
            added,
        } = self.materialize(deltas);
        let outcomes = writer.apply(ops);
        let ids = outcomes[insert_from..].iter().map(|o| match o {
            WriteOutcome::Inserted(id) => *id,
            other => unreachable!("insert op answered {other:?}"),
        });
        self.commit_inserted(&added, ids);
        report
    }

    /// The first half of [`GraphMaintainer::apply`]: mutates the tracked
    /// graph and materializes the minimal write batch **without applying
    /// it anywhere** — the seam a shard router needs, because its write
    /// batch must be partitioned by owning shard (and its `Insert`s
    /// converted to explicit-id puts) before anything executes.
    ///
    /// The maintainer's shadow state (graph, classes, liveness) is
    /// updated eagerly by this call; newly added nodes stay id-less until
    /// [`GraphMaintainer::commit_inserted`] runs. If the caller fails to
    /// apply the batch (a shard write fails partway), this maintainer's
    /// state no longer matches the index — **discard it** and re-attach,
    /// exactly as the server detaches a tracked graph on a failed delta.
    pub fn materialize(&mut self, deltas: &[GraphDelta]) -> MaterializedBatch {
        let radius = self.k.saturating_sub(1);
        let mut report = DeltaReport::default();
        let mut candidates: BTreeSet<NodeId> = BTreeSet::new();
        let mut added: Vec<NodeId> = Vec::new();
        let mut ops: Vec<WriteOp> = Vec::new();
        for &delta in deltas {
            // Deltas naming a retired node are no-ops, not panics — and
            // crucially an edge touching a retired endpoint must NOT
            // land, or the "removed" node's subtree would reappear inside
            // its neighbors' signatures while staying unindexed itself.
            match delta {
                GraphDelta::RemoveNode(v) if !self.is_alive(v) => continue,
                GraphDelta::AddEdge(a, b) | GraphDelta::RemoveEdge(a, b)
                    if !self.is_alive(a) || !self.is_alive(b) =>
                {
                    continue
                }
                _ => {}
            }
            let effect = self.graph.apply(delta, radius);
            if !effect.applied {
                continue;
            }
            report.applied += 1;
            match delta {
                GraphDelta::AddNode => {
                    let v = effect.added_node.expect("AddNode reports its node");
                    debug_assert_eq!(v as usize, self.ids.len());
                    self.ids.push(NO_ID);
                    self.classes.push(u32::MAX);
                    self.alive.push(true);
                    added.push(v);
                }
                GraphDelta::RemoveNode(v) => {
                    candidates.extend(effect.candidates);
                    candidates.remove(&v);
                    self.alive[v as usize] = false;
                    self.classes[v as usize] = u32::MAX;
                    if self.ids[v as usize] == NO_ID {
                        // Added and removed within this very batch.
                        added.retain(|&u| u != v);
                    } else {
                        ops.push(WriteOp::Remove(self.ids[v as usize]));
                        self.ids[v as usize] = NO_ID;
                        report.removed += 1;
                    }
                }
                GraphDelta::AddEdge(..) | GraphDelta::RemoveEdge(..) => {
                    candidates.extend(effect.candidates);
                }
            }
        }
        // Batch-final state decides: drop candidates that died or that
        // are this batch's additions (those get fresh inserts below).
        let cand_vec: Vec<NodeId> = candidates
            .into_iter()
            .filter(|&v| self.is_alive(v) && self.ids[v as usize] != NO_ID)
            .collect();
        report.candidates = cand_vec.len();
        let insert_from;
        if cand_vec.is_empty() && added.is_empty() {
            // Nothing to recompute (all-no-op batch, or pure removals):
            // skip the O(n + m) CSR snapshot entirely.
            insert_from = ops.len();
        } else {
            // One CSR snapshot per batch with work to do. This is an
            // O(n + m) memcpy — at serving scales it is dwarfed by even a
            // single candidate's BFS + canonization, and batching deltas
            // amortizes it further; if graphs grow to where this floor
            // matters, the next step is extracting directly over the
            // adjacency overlay rather than snapshotting per batch.
            let snapshot = self.graph.to_graph();
            let sigs = self
                .factory
                .signatures(&snapshot, &cand_vec, self.k, self.threads);
            for (&v, sig) in cand_vec.iter().zip(sigs) {
                let class = sig.prepared().root_class();
                if class != self.classes[v as usize] {
                    self.classes[v as usize] = class;
                    ops.push(WriteOp::Replace(self.ids[v as usize], sig));
                    report.replaced += 1;
                }
            }
            insert_from = ops.len();
            let added_sigs = self
                .factory
                .signatures(&snapshot, &added, self.k, self.threads);
            for (&v, sig) in added.iter().zip(added_sigs) {
                self.classes[v as usize] = sig.prepared().root_class();
                ops.push(WriteOp::Insert(sig));
                report.inserted += 1;
            }
        }
        MaterializedBatch {
            report,
            ops,
            insert_from,
            added,
        }
    }

    /// The second half of [`GraphMaintainer::apply`]: records the index
    /// ids assigned to the batch's newly added nodes. `added` is the
    /// [`MaterializedBatch::added`] vector and `ids` must yield one id
    /// per node **in the same order** — the order the batch's `Insert`
    /// ops appear at `ops[insert_from..]`.
    pub fn commit_inserted(&mut self, added: &[NodeId], ids: impl IntoIterator<Item = u64>) {
        let mut ids = ids.into_iter();
        for &v in added {
            let id = ids
                .next()
                .expect("one assigned id per added node, in batch order");
            self.ids[v as usize] = id;
        }
        assert!(ids.next().is_none(), "more ids than added nodes");
    }
}

/// The write batch one delta batch materializes to, before it is applied
/// anywhere — see [`GraphMaintainer::materialize`].
#[derive(Debug)]
pub struct MaterializedBatch {
    /// What the batch did (its `inserted`/`removed`/`replaced` counts
    /// describe the ops below).
    pub report: DeltaReport,
    /// The minimal write batch, `Remove`/`Replace` first, then `Insert`s.
    pub ops: Vec<WriteOp>,
    /// `ops[insert_from..]` are the `Insert` ops, one per entry of
    /// `added`, in order.
    pub insert_from: usize,
    /// Nodes added by this batch, in `Insert`-op order. Their ids are
    /// unassigned until [`GraphMaintainer::commit_inserted`].
    pub added: Vec<NodeId>,
}

impl std::fmt::Debug for GraphMaintainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphMaintainer")
            .field("graph", &self.graph)
            .field("k", &self.k)
            .field("live", &self.alive.iter().filter(|&&a| a).count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concurrent::ConcurrentNedIndex;
    use ned_graph::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn setup(k: usize) -> (Graph, GraphMaintainer, crate::IndexReader, IndexWriter) {
        let mut rng = SmallRng::seed_from_u64(77);
        let g = generators::barabasi_albert(80, 2, &mut rng);
        let mut index = SignatureIndex::new(k, 16, 5);
        index.insert_graph(&g, &g.nodes().collect::<Vec<_>>());
        let maintainer = GraphMaintainer::attach(&g, k, 0, 1);
        maintainer.verify_against(&index).expect("fresh attach");
        let (writer, reader) = ConcurrentNedIndex::split(index);
        (g, maintainer, reader, writer)
    }

    #[test]
    fn edge_flip_round_trips_to_the_original_index() {
        let (g, mut m, reader, mut writer) = setup(3);
        let before: Vec<_> = {
            let snap = reader.snapshot();
            let mut e: Vec<_> = snap
                .forest()
                .entries()
                .map(|(id, s)| (id, s.clone()))
                .collect();
            e.sort_by_key(|&(id, _)| id);
            e
        };
        // pick a non-edge
        let (a, b) = (0u32, 79u32);
        assert!(!g.has_edge(a, b));
        let r1 = m.apply(&[GraphDelta::AddEdge(a, b)], &mut writer);
        assert_eq!(r1.applied, 1);
        assert!(r1.replaced > 0, "{r1:?}");
        assert_eq!(reader.epoch(), 1, "one batch, one epoch");
        let r2 = m.apply(&[GraphDelta::RemoveEdge(a, b)], &mut writer);
        assert_eq!(reader.epoch(), 2);
        assert_eq!(r1.replaced, r2.replaced, "flip back replaces the same set");
        let after: Vec<_> = {
            let snap = reader.snapshot();
            let mut e: Vec<_> = snap
                .forest()
                .entries()
                .map(|(id, s)| (id, s.clone()))
                .collect();
            e.sort_by_key(|&(id, _)| id);
            e
        };
        assert_eq!(before, after, "net-zero churn restores every signature");
    }

    #[test]
    fn node_lifecycle() {
        let (_, mut m, reader, mut writer) = setup(3);
        let report = m.apply(
            &[GraphDelta::AddNode, GraphDelta::AddEdge(80, 0)],
            &mut writer,
        );
        assert_eq!(report.inserted, 1);
        assert!(report.replaced > 0, "0's neighborhood changed: {report:?}");
        assert_eq!(reader.len(), 81);
        let snap = reader.snapshot();
        let new_sig = snap.get(80).expect("new node indexed");
        assert_eq!(
            new_sig.tree().len(),
            ned_core::NodeSignature::extract(&m.graph().to_graph(), 80, 3)
                .tree()
                .len()
        );
        let report = m.apply(&[GraphDelta::RemoveNode(80)], &mut writer);
        assert_eq!(report.removed, 1);
        assert_eq!(reader.len(), 80);
        // removing again is a no-op batch, still one publication
        let epoch = reader.epoch();
        let report = m.apply(&[GraphDelta::RemoveNode(80)], &mut writer);
        assert_eq!(report.applied, 0);
        assert_eq!(reader.epoch(), epoch + 1);
    }

    #[test]
    fn edge_deltas_on_retired_nodes_are_no_ops() {
        let (_, mut m, reader, mut writer) = setup(3);
        m.apply(&[GraphDelta::RemoveNode(5)], &mut writer);
        assert!(!m.is_alive(5));
        // Edges naming the retired node must not land: the node would
        // reappear inside neighbors' signatures while staying unindexed.
        let report = m.apply(
            &[GraphDelta::AddEdge(5, 0), GraphDelta::RemoveEdge(5, 0)],
            &mut writer,
        );
        assert_eq!(report.applied, 0, "{report:?}");
        assert!(m.graph().neighbors(5).is_empty());
        // Served state equals a from-scratch rebuild without node 5.
        let current = m.graph().to_graph();
        let snap = reader.snapshot();
        for v in (0..80u32).filter(|&v| v != 5) {
            let want = ned_core::NodeSignature::extract(&current, v, 3);
            assert_eq!(
                snap.get(u64::from(v)).expect("indexed").prepared(),
                want.prepared(),
                "node {v}"
            );
        }
        assert!(snap.get(5).is_none());
    }

    #[test]
    fn add_then_remove_node_in_one_batch_is_clean() {
        let (_, mut m, reader, mut writer) = setup(2);
        let report = m.apply(
            &[
                GraphDelta::AddNode,
                GraphDelta::AddEdge(80, 1),
                GraphDelta::RemoveNode(80),
            ],
            &mut writer,
        );
        assert_eq!(report.inserted, 0, "{report:?}");
        assert_eq!(report.removed, 0, "{report:?}");
        assert_eq!(reader.len(), 80);
        assert_eq!(reader.epoch(), 1);
    }

    #[test]
    fn verify_against_rejects_a_different_graph() {
        let mut rng = SmallRng::seed_from_u64(78);
        let g1 = generators::barabasi_albert(50, 2, &mut rng);
        let g2 = generators::erdos_renyi_gnm(50, 100, &mut rng);
        let mut index = SignatureIndex::new(3, 16, 5);
        index.insert_graph(&g1, &g1.nodes().collect::<Vec<_>>());
        assert!(GraphMaintainer::attach(&g2, 3, 0, 1)
            .verify_against(&index)
            .is_err());
        assert!(GraphMaintainer::attach(&g1, 4, 0, 1)
            .verify_against(&index)
            .is_err());
        assert!(GraphMaintainer::attach(&g1, 3, 0, 1)
            .verify_against(&index)
            .is_ok());
    }
}
