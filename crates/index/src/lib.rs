//! Metric indexing for NED (Section 13.4 / Figure 9b).
//!
//! Because NED is a true metric, node signatures can be indexed by any
//! metric access method; the paper demonstrates this with a VP-tree and
//! shows nearest-neighbor queries running orders of magnitude faster than
//! the full scans that non-metric measures (Feature-based, HITS-based)
//! require. [`VpTree`] is that index; [`linear_knn`] is the full-scan
//! baseline it is compared against.
//!
//! The index works for any item type and any [`Metric`]; the `ned-core`
//! integration (NED signatures) lives in the integration tests and the
//! benchmark harness.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bk_tree;
pub mod concurrent;
pub mod durable;
pub mod filter;
pub mod fleet;
pub mod forest;
pub mod maintain;
pub mod router;
pub mod server;
pub mod signatures;
pub mod sketch;

pub use bk_tree::{BkTree, IntFnMetric, IntMetric};
pub use concurrent::{ConcurrentNedIndex, IndexReader, IndexWriter, WriteOp, WriteOutcome};
pub use durable::{DurableError, DurableIndex, DurableOptions, RecoveryReport};
pub use filter::{filter_refine_knn, BoundedMetric, FilteredKnn, FnBoundedMetric};
pub use fleet::{split_index, ShardProcess};
pub use forest::{ForestHit, ForestStats, ShardedVpForest};
pub use maintain::{DeltaReport, GraphMaintainer, MaterializedBatch};
pub use router::{FleetHits, RouterOptions, RouterServer, ShardMap, ShardRouter};
pub use server::{Dispatch, NedServer, ServerConfig, WireClient, WireClientBuilder};
pub use signatures::{SignatureIndex, SignatureMetric, UnboundedSignatureMetric};
pub use sketch::{Sketch, SketchBank, SketchMode, SketchStats};

use rand::Rng;
use std::cell::Cell;
use std::collections::BinaryHeap;

/// A distance function expected to satisfy the metric axioms
/// (the VP-tree prunes with the triangle inequality; a non-metric
/// "distance" silently loses recall).
pub trait Metric<T: ?Sized> {
    /// Distance between two items. Must be non-negative and symmetric.
    fn distance(&self, a: &T, b: &T) -> f64;
}

/// Wraps any closure as a [`Metric`].
pub struct FnMetric<F>(pub F);

impl<T, F: Fn(&T, &T) -> f64> Metric<T> for FnMetric<F> {
    fn distance(&self, a: &T, b: &T) -> f64 {
        (self.0)(a, b)
    }
}

/// Counts distance evaluations — used by the benchmarks to show how much
/// work triangle-inequality pruning saves versus a linear scan.
pub struct CountingMetric<'m, T, M: Metric<T>> {
    inner: &'m M,
    calls: Cell<u64>,
    _marker: std::marker::PhantomData<fn(&T)>,
}

impl<'m, T, M: Metric<T>> CountingMetric<'m, T, M> {
    /// Wraps `inner`, starting the counter at zero.
    pub fn new(inner: &'m M) -> Self {
        CountingMetric {
            inner,
            calls: Cell::new(0),
            _marker: std::marker::PhantomData,
        }
    }

    /// Number of distance evaluations so far.
    pub fn calls(&self) -> u64 {
        self.calls.get()
    }

    /// Resets the counter.
    pub fn reset(&self) {
        self.calls.set(0);
    }
}

impl<T, M: Metric<T>> Metric<T> for CountingMetric<'_, T, M> {
    fn distance(&self, a: &T, b: &T) -> f64 {
        self.calls.set(self.calls.get() + 1);
        self.inner.distance(a, b)
    }
}

/// A query hit: item index and its distance to the query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// Index into the item slice the index was built over.
    pub index: usize,
    /// Distance to the query.
    pub distance: f64,
}

/// Vantage-point tree over an owned item collection.
///
/// Construction is `O(n log n)` distance computations in expectation;
/// k-NN queries prune sub-trees whose annulus cannot contain a better
/// candidate than the current k-th best.
///
/// **Duplicates are collapsed.** Items at distance 0 from a vantage point
/// are — by the identity axiom — indistinguishable from it under the
/// metric, so they are stored as a flat duplicate bucket on the vantage
/// node instead of being recursed into. A degenerate input (thousands of
/// identical items, the norm for interned NED signatures on scale-free
/// graphs) therefore costs **one** distance evaluation per query instead
/// of one per copy, and the median-radius split can never go degenerate:
/// every remaining distance is strictly positive, and the split of the
/// remainder is positional (half and half), not radius-based.
#[derive(Debug, Clone)]
pub struct VpTree<T> {
    items: Vec<T>,
    nodes: Vec<VpNode>,
    /// Flat pool of duplicate item indices; each node owns the slice
    /// `dup_start..dup_start + dup_len`.
    dup_items: Vec<u32>,
    root: Option<usize>,
}

#[derive(Debug, Clone, Copy)]
struct VpNode {
    item: usize,
    /// Median distance from the vantage point to its non-duplicate
    /// subtree items; `inside` holds items with `d <= radius`.
    radius: f64,
    /// Range into [`VpTree::dup_items`]: items at distance 0 from `item`.
    dup_start: u32,
    dup_len: u32,
    inside: Option<usize>,
    outside: Option<usize>,
}

impl<T> VpTree<T> {
    /// Builds the tree. Vantage points are chosen uniformly at random from
    /// each partition (`rng` fixes the shape deterministically).
    pub fn build<M: Metric<T>, R: Rng + ?Sized>(items: Vec<T>, metric: &M, rng: &mut R) -> Self {
        let n = items.len();
        let mut nodes = Vec::with_capacity(n);
        let mut dup_items = Vec::new();
        let mut ids: Vec<usize> = (0..n).collect();
        let root = Self::build_rec(&items, metric, rng, &mut ids, &mut nodes, &mut dup_items);
        VpTree {
            items,
            nodes,
            dup_items,
            root,
        }
    }

    fn build_rec<M: Metric<T>, R: Rng + ?Sized>(
        items: &[T],
        metric: &M,
        rng: &mut R,
        ids: &mut [usize],
        nodes: &mut Vec<VpNode>,
        dup_items: &mut Vec<u32>,
    ) -> Option<usize> {
        if ids.is_empty() {
            return None;
        }
        // Move a random vantage point to the front.
        let pick = rng.gen_range(0..ids.len());
        ids.swap(0, pick);
        let vantage = ids[0];
        let rest = &mut ids[1..];
        if rest.is_empty() {
            nodes.push(VpNode {
                item: vantage,
                radius: 0.0,
                dup_start: dup_items.len() as u32,
                dup_len: 0,
                inside: None,
                outside: None,
            });
            return Some(nodes.len() - 1);
        }
        let mut dists: Vec<(f64, usize)> = rest
            .iter()
            .map(|&i| (metric.distance(&items[vantage], &items[i]), i))
            .collect();
        dists.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN distance"));
        // Duplicate collapse: distance 0 to the vantage point means the
        // item is metrically identical to it, so queries never need a
        // separate distance evaluation for it. Bucketing duplicates here
        // also keeps the median radius strictly positive below, which is
        // what protects duplicate-heavy inputs from degenerate splits.
        let zeros = dists.iter().take_while(|&&(d, _)| d == 0.0).count();
        let dup_start = dup_items.len() as u32;
        dup_items.extend(dists[..zeros].iter().map(|&(_, i)| i as u32));
        for (slot, (_, i)) in rest.iter_mut().zip(&dists) {
            *slot = *i;
        }
        let live = &mut rest[zeros..];
        if live.is_empty() {
            nodes.push(VpNode {
                item: vantage,
                radius: 0.0,
                dup_start,
                dup_len: zeros as u32,
                inside: None,
                outside: None,
            });
            return Some(nodes.len() - 1);
        }
        let mid = (live.len() - 1) / 2;
        let radius = dists[zeros + mid].0;
        let (inside_ids, outside_ids) = live.split_at_mut(mid + 1);
        let placeholder = nodes.len();
        nodes.push(VpNode {
            item: vantage,
            radius,
            dup_start,
            dup_len: zeros as u32,
            inside: None,
            outside: None,
        });
        let inside = Self::build_rec(items, metric, rng, inside_ids, nodes, dup_items);
        let outside = Self::build_rec(items, metric, rng, outside_ids, nodes, dup_items);
        nodes[placeholder].inside = inside;
        nodes[placeholder].outside = outside;
        Some(placeholder)
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when no items are indexed.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The indexed items, in original order (indices in [`Hit`] refer to
    /// this slice).
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Consumes the tree, returning the items (original order). Used by
    /// [`forest::ShardedVpForest`] when merging shards.
    pub fn into_items(self) -> Vec<T> {
        self.items
    }

    /// The `k` nearest items to `query`, closest first (ties broken by
    /// traversal order). `metric` must be the one used at build time (or
    /// an equivalent wrapper such as [`CountingMetric`]).
    pub fn knn<M: Metric<T>>(&self, metric: &M, query: &T, k: usize) -> Vec<Hit> {
        if k == 0 || self.items.is_empty() {
            return Vec::new();
        }
        let mut collector = KnnCollector {
            // max-heap of current best k (worst on top)
            heap: BinaryHeap::with_capacity(k + 1),
            k,
        };
        self.search(&ZeroBound(metric), query, &mut collector);
        let mut hits: Vec<Hit> = collector.heap.into_iter().map(|h| h.0).collect();
        hits.sort_by(|a, b| a.distance.partial_cmp(&b.distance).expect("NaN distance"));
        hits
    }

    /// The duplicate bucket of `node`: item indices at distance 0 from its
    /// vantage point (hence at the vantage's distance from any query).
    fn dups(&self, n: &VpNode) -> &[u32] {
        &self.dup_items[n.dup_start as usize..(n.dup_start + n.dup_len) as usize]
    }

    /// All items within `radius` of `query` (inclusive), unordered.
    pub fn range<M: Metric<T>>(&self, metric: &M, query: &T, radius: f64) -> Vec<Hit> {
        let mut collector = RangeCollector {
            radius,
            out: Vec::new(),
        };
        self.search(&ZeroBound(metric), query, &mut collector);
        collector.out
    }

    /// Streaming filter-and-refine search, the engine behind
    /// [`forest::ShardedVpForest`] queries.
    ///
    /// At every visited node the cheap [`BoundedMetric::lower_bound`] is
    /// evaluated **before** the exact distance; when the bound already
    /// exceeds the collector's current [`SearchCollector::tau`], the exact
    /// computation is skipped entirely and both sub-trees are scanned
    /// (each getting its own bound check) — the annulus test needs the
    /// exact distance, so pruning degrades gracefully into a
    /// lower-bound-filtered scan instead of paying for exact distances.
    ///
    /// Surviving candidates are refined through
    /// [`BoundedMetric::distance_within`] under the budget
    /// `node radius + tau`: that budget is loose enough to answer every
    /// question the traversal asks — a hit needs `d <= tau`, pruning the
    /// inside sub-tree needs to know whether `d - tau <= radius` — so an
    /// abandoned computation (`None`) simultaneously proves "not a hit"
    /// and "inside annulus unreachable", and the search recurses outside
    /// only. No pruning power is lost relative to computing the exact
    /// distance. Every candidate that survives is handed to
    /// [`SearchCollector::offer`]; duplicate-bucket items are offered at
    /// their vantage point's distance without further metric calls.
    ///
    /// The collector decides what "tau" means: a k-NN collector returns
    /// its current k-th best distance (shrinking as hits arrive), a range
    /// collector a fixed radius. Results are exact for any collector whose
    /// `tau` never excludes a candidate it would still accept.
    pub fn search<M: BoundedMetric<T>, C: SearchCollector>(
        &self,
        metric: &M,
        query: &T,
        collector: &mut C,
    ) {
        self.search_rec(self.root, metric, query, collector);
    }

    fn search_rec<M: BoundedMetric<T>, C: SearchCollector>(
        &self,
        node: Option<usize>,
        metric: &M,
        query: &T,
        collector: &mut C,
    ) {
        let Some(idx) = node else { return };
        let n = self.nodes[idx];
        let tau = collector.tau();
        let lb = metric.lower_bound(query, &self.items[n.item]);
        if lb > tau {
            // The vantage point (and its duplicates) provably cannot beat
            // the bound; without its exact distance the annulus test is
            // unavailable, so scan both sides under their own bounds.
            self.search_rec(n.inside, metric, query, collector);
            self.search_rec(n.outside, metric, query, collector);
            return;
        }
        // Budget = radius + tau: covers the hit test (d <= tau) *and* the
        // only annulus question a too-far vantage can still influence
        // (is d <= radius + tau, i.e. can the inside ball intersect the
        // query ball). Ties at the budget are returned, not abandoned,
        // preserving deterministic (distance, id) ordering downstream.
        match metric.distance_within(query, &self.items[n.item], n.radius + tau) {
            None => {
                // d > radius + tau >= tau: neither the vantage point nor
                // its duplicates can be hits, and the inside ball
                // (all within `radius` of the vantage) lies strictly
                // beyond tau of the query. Only the outside remains.
                self.search_rec(n.outside, metric, query, collector);
            }
            Some(d) => {
                collector.offer(n.item, d);
                for &dup in self.dups(&n) {
                    collector.offer(dup as usize, d);
                }
                if d <= n.radius {
                    self.search_rec(n.inside, metric, query, collector);
                    if d + collector.tau() >= n.radius {
                        self.search_rec(n.outside, metric, query, collector);
                    }
                } else {
                    self.search_rec(n.outside, metric, query, collector);
                    if d - collector.tau() <= n.radius {
                        self.search_rec(n.inside, metric, query, collector);
                    }
                }
            }
        }
    }
}

/// Consumer driving [`VpTree::search`]: receives surviving candidates and
/// exposes the current pruning bound.
pub trait SearchCollector {
    /// A candidate item (index into the tree's item slice) at its exact
    /// distance from the query. May be called with distances above
    /// [`SearchCollector::tau`]; the collector filters.
    fn offer(&mut self, index: usize, distance: f64);

    /// Current pruning bound: the search may skip any computation that
    /// provably cannot produce a distance `<= tau()`. Must never shrink
    /// below a value that would have excluded a candidate the collector
    /// still wants (for k-NN: the current k-th best; for range: the
    /// radius).
    fn tau(&self) -> f64;
}

/// Views a plain [`Metric`] as a [`BoundedMetric`] with the trivial (but
/// sound) lower bound 0 — the bound check never fires and [`VpTree::search`]
/// degenerates to the classic annulus-pruned traversal, which is how
/// [`VpTree::knn`] and [`VpTree::range`] share its implementation.
struct ZeroBound<'m, M>(&'m M);

impl<T, M: Metric<T>> Metric<T> for ZeroBound<'_, M> {
    fn distance(&self, a: &T, b: &T) -> f64 {
        self.0.distance(a, b)
    }
}

impl<T, M: Metric<T>> BoundedMetric<T> for ZeroBound<'_, M> {
    fn lower_bound(&self, _a: &T, _b: &T) -> f64 {
        0.0
    }
}

/// [`VpTree::knn`]'s collector: bounded max-heap by distance.
struct KnnCollector {
    heap: BinaryHeap<HeapHit>,
    k: usize,
}

impl SearchCollector for KnnCollector {
    fn offer(&mut self, index: usize, distance: f64) {
        if self.heap.len() < self.k {
            self.heap.push(HeapHit(Hit { index, distance }));
        } else if distance < self.heap.peek().expect("non-empty").0.distance {
            self.heap.pop();
            self.heap.push(HeapHit(Hit { index, distance }));
        }
    }

    fn tau(&self) -> f64 {
        if self.heap.len() < self.k {
            f64::INFINITY
        } else {
            self.heap.peek().expect("non-empty").0.distance
        }
    }
}

/// [`VpTree::range`]'s collector: fixed bound, keep everything inside it.
struct RangeCollector {
    radius: f64,
    out: Vec<Hit>,
}

impl SearchCollector for RangeCollector {
    fn offer(&mut self, index: usize, distance: f64) {
        if distance <= self.radius {
            self.out.push(Hit { index, distance });
        }
    }

    fn tau(&self) -> f64 {
        self.radius
    }
}

/// Wrapper giving `Hit` a max-heap ordering by distance.
struct HeapHit(Hit);

impl PartialEq for HeapHit {
    fn eq(&self, other: &Self) -> bool {
        self.0.distance == other.0.distance
    }
}
impl Eq for HeapHit {}
impl PartialOrd for HeapHit {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapHit {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .distance
            .partial_cmp(&other.0.distance)
            .expect("NaN distance")
    }
}

/// Full-scan k-NN baseline: computes every distance.
pub fn linear_knn<T, M: Metric<T>>(items: &[T], metric: &M, query: &T, k: usize) -> Vec<Hit> {
    let mut hits: Vec<Hit> = items
        .iter()
        .enumerate()
        .map(|(index, item)| Hit {
            index,
            distance: metric.distance(query, item),
        })
        .collect();
    hits.sort_by(|a, b| a.distance.partial_cmp(&b.distance).expect("NaN distance"));
    hits.truncate(k);
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    struct AbsDiff;
    impl Metric<f64> for AbsDiff {
        fn distance(&self, a: &f64, b: &f64) -> f64 {
            (a - b).abs()
        }
    }

    fn random_points(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(0.0..1000.0)).collect()
    }

    #[test]
    fn empty_tree() {
        let tree: VpTree<f64> =
            VpTree::build(Vec::new(), &AbsDiff, &mut SmallRng::seed_from_u64(0));
        assert!(tree.is_empty());
        assert!(tree.knn(&AbsDiff, &1.0, 3).is_empty());
        assert!(tree.range(&AbsDiff, &1.0, 10.0).is_empty());
    }

    #[test]
    fn knn_matches_linear_scan() {
        let points = random_points(300, 1);
        let tree = VpTree::build(points.clone(), &AbsDiff, &mut SmallRng::seed_from_u64(2));
        let mut qrng = SmallRng::seed_from_u64(3);
        for _ in 0..50 {
            let q: f64 = qrng.gen_range(-100.0..1100.0);
            for k in [1usize, 3, 10] {
                let a = tree.knn(&AbsDiff, &q, k);
                let b = linear_knn(&points, &AbsDiff, &q, k);
                assert_eq!(a.len(), k);
                // distances must agree (indices may differ on exact ties)
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.distance, y.distance, "q={q} k={k}");
                }
            }
        }
    }

    #[test]
    fn range_matches_linear_filter() {
        let points = random_points(200, 4);
        let tree = VpTree::build(points.clone(), &AbsDiff, &mut SmallRng::seed_from_u64(5));
        let mut qrng = SmallRng::seed_from_u64(6);
        for _ in 0..30 {
            let q: f64 = qrng.gen_range(0.0..1000.0);
            let r = qrng.gen_range(0.0..80.0);
            let mut got: Vec<usize> = tree
                .range(&AbsDiff, &q, r)
                .into_iter()
                .map(|h| h.index)
                .collect();
            got.sort_unstable();
            let want: Vec<usize> = points
                .iter()
                .enumerate()
                .filter(|(_, &p)| (p - q).abs() <= r)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn k_larger_than_n_returns_all() {
        let points = random_points(5, 7);
        let tree = VpTree::build(points.clone(), &AbsDiff, &mut SmallRng::seed_from_u64(8));
        let hits = tree.knn(&AbsDiff, &0.0, 50);
        assert_eq!(hits.len(), 5);
    }

    #[test]
    fn duplicates_handled() {
        let points = vec![5.0, 5.0, 5.0, 9.0];
        let tree = VpTree::build(points, &AbsDiff, &mut SmallRng::seed_from_u64(9));
        let hits = tree.knn(&AbsDiff, &5.0, 3);
        assert_eq!(hits.len(), 3);
        assert!(hits.iter().all(|h| h.distance == 0.0));
    }

    #[test]
    fn pruning_saves_distance_calls() {
        let points = random_points(4096, 10);
        let tree = VpTree::build(points.clone(), &AbsDiff, &mut SmallRng::seed_from_u64(11));
        let counting = CountingMetric::new(&AbsDiff);
        let _ = tree.knn(&counting, &500.0, 5);
        let tree_calls = counting.calls();
        counting.reset();
        let _ = linear_knn(&points, &counting, &500.0, 5);
        let scan_calls = counting.calls();
        assert!(
            tree_calls * 4 < scan_calls,
            "VP-tree used {tree_calls} calls vs scan {scan_calls}"
        );
    }

    #[test]
    fn thousand_identical_points_collapse() {
        // Regression: duplicate-heavy inputs used to be at the mercy of a
        // zero median radius; duplicates now collapse into the vantage
        // node's bucket, so the build stays shallow and a query resolves
        // the whole cluster with O(1) distance evaluations.
        let points = vec![7.0f64; 1000];
        let tree = VpTree::build(points.clone(), &AbsDiff, &mut SmallRng::seed_from_u64(13));
        // Structure: a single node holding 999 duplicates.
        assert_eq!(tree.nodes.len(), 1, "identical items must share one node");
        let counting = CountingMetric::new(&AbsDiff);
        let hits = tree.knn(&counting, &7.0, 5);
        assert_eq!(hits.len(), 5);
        assert!(hits.iter().all(|h| h.distance == 0.0));
        assert_eq!(counting.calls(), 1, "one evaluation serves every duplicate");
        // range sees all 1000 copies
        assert_eq!(tree.range(&AbsDiff, &7.0, 0.0).len(), 1000);
        // and the results still agree with a linear scan
        let a = tree.knn(&AbsDiff, &9.5, 3);
        let b = linear_knn(&points, &AbsDiff, &9.5, 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.distance, y.distance);
        }
    }

    #[test]
    fn duplicate_clusters_mixed_with_distinct_points() {
        // Three heavy clusters plus distinct points: exactness must hold
        // for knn and range everywhere.
        let mut points = Vec::new();
        for c in [100.0f64, 200.0, 300.0] {
            points.extend((0..200).map(|_| c));
        }
        points.extend((0..50).map(|i| i as f64 * 13.7));
        let tree = VpTree::build(points.clone(), &AbsDiff, &mut SmallRng::seed_from_u64(14));
        let mut qrng = SmallRng::seed_from_u64(15);
        for _ in 0..40 {
            let q: f64 = qrng.gen_range(0.0..700.0);
            for k in [1usize, 7, 250] {
                let a = tree.knn(&AbsDiff, &q, k);
                let b = linear_knn(&points, &AbsDiff, &q, k);
                assert_eq!(a.len(), b.len(), "q={q} k={k}");
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.distance, y.distance, "q={q} k={k}");
                }
            }
            let r = qrng.gen_range(0.0..120.0);
            let mut got: Vec<usize> = tree
                .range(&AbsDiff, &q, r)
                .into_iter()
                .map(|h| h.index)
                .collect();
            got.sort_unstable();
            let want: Vec<usize> = points
                .iter()
                .enumerate()
                .filter(|(_, &p)| (p - q).abs() <= r)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(got, want, "range q={q} r={r}");
        }
    }

    #[test]
    fn search_collector_matches_knn() {
        struct TopK {
            k: usize,
            hits: Vec<Hit>,
        }
        impl SearchCollector for TopK {
            fn offer(&mut self, index: usize, distance: f64) {
                self.hits.push(Hit { index, distance });
                self.hits
                    .sort_by(|a, b| a.distance.partial_cmp(&b.distance).expect("NaN"));
                self.hits.truncate(self.k);
            }
            fn tau(&self) -> f64 {
                if self.hits.len() < self.k {
                    f64::INFINITY
                } else {
                    self.hits[self.k - 1].distance
                }
            }
        }
        let points = random_points(400, 21);
        let tree = VpTree::build(points.clone(), &AbsDiff, &mut SmallRng::seed_from_u64(22));
        // A sound lower bound for |a-b|: the distance between coarse bins.
        let m = FnBoundedMetric(
            |a: &f64, b: &f64| (a - b).abs(),
            |a: &f64, b: &f64| ((a - b).abs() / 16.0).floor() * 16.0,
        );
        let mut qrng = SmallRng::seed_from_u64(23);
        for _ in 0..30 {
            let q: f64 = qrng.gen_range(-50.0..1050.0);
            let mut c = TopK {
                k: 7,
                hits: Vec::new(),
            };
            tree.search(&m, &q, &mut c);
            let want = linear_knn(&points, &m, &q, 7);
            assert_eq!(c.hits.len(), want.len());
            for (x, y) in c.hits.iter().zip(&want) {
                assert_eq!(x.distance, y.distance, "q={q}");
            }
        }
    }

    #[test]
    fn integer_metric_via_fn_wrapper() {
        let items: Vec<u64> = (0..100).collect();
        let metric = FnMetric(|a: &u64, b: &u64| a.abs_diff(*b) as f64);
        let tree = VpTree::build(items, &metric, &mut SmallRng::seed_from_u64(12));
        let hits = tree.knn(&metric, &42, 3);
        assert_eq!(hits[0].distance, 0.0);
        assert!(hits.iter().any(|h| h.index == 42));
    }
}
