//! Metric indexing for NED (Section 13.4 / Figure 9b).
//!
//! Because NED is a true metric, node signatures can be indexed by any
//! metric access method; the paper demonstrates this with a VP-tree and
//! shows nearest-neighbor queries running orders of magnitude faster than
//! the full scans that non-metric measures (Feature-based, HITS-based)
//! require. [`VpTree`] is that index; [`linear_knn`] is the full-scan
//! baseline it is compared against.
//!
//! The index works for any item type and any [`Metric`]; the `ned-core`
//! integration (NED signatures) lives in the integration tests and the
//! benchmark harness.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bk_tree;
pub mod filter;

pub use bk_tree::{BkTree, IntFnMetric, IntMetric};
pub use filter::{filter_refine_knn, BoundedMetric, FilteredKnn, FnBoundedMetric};

use rand::Rng;
use std::cell::Cell;
use std::collections::BinaryHeap;

/// A distance function expected to satisfy the metric axioms
/// (the VP-tree prunes with the triangle inequality; a non-metric
/// "distance" silently loses recall).
pub trait Metric<T: ?Sized> {
    /// Distance between two items. Must be non-negative and symmetric.
    fn distance(&self, a: &T, b: &T) -> f64;
}

/// Wraps any closure as a [`Metric`].
pub struct FnMetric<F>(pub F);

impl<T, F: Fn(&T, &T) -> f64> Metric<T> for FnMetric<F> {
    fn distance(&self, a: &T, b: &T) -> f64 {
        (self.0)(a, b)
    }
}

/// Counts distance evaluations — used by the benchmarks to show how much
/// work triangle-inequality pruning saves versus a linear scan.
pub struct CountingMetric<'m, T, M: Metric<T>> {
    inner: &'m M,
    calls: Cell<u64>,
    _marker: std::marker::PhantomData<fn(&T)>,
}

impl<'m, T, M: Metric<T>> CountingMetric<'m, T, M> {
    /// Wraps `inner`, starting the counter at zero.
    pub fn new(inner: &'m M) -> Self {
        CountingMetric {
            inner,
            calls: Cell::new(0),
            _marker: std::marker::PhantomData,
        }
    }

    /// Number of distance evaluations so far.
    pub fn calls(&self) -> u64 {
        self.calls.get()
    }

    /// Resets the counter.
    pub fn reset(&self) {
        self.calls.set(0);
    }
}

impl<T, M: Metric<T>> Metric<T> for CountingMetric<'_, T, M> {
    fn distance(&self, a: &T, b: &T) -> f64 {
        self.calls.set(self.calls.get() + 1);
        self.inner.distance(a, b)
    }
}

/// A query hit: item index and its distance to the query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// Index into the item slice the index was built over.
    pub index: usize,
    /// Distance to the query.
    pub distance: f64,
}

/// Vantage-point tree over an owned item collection.
///
/// Construction is `O(n log n)` distance computations in expectation;
/// k-NN queries prune sub-trees whose annulus cannot contain a better
/// candidate than the current k-th best.
#[derive(Debug, Clone)]
pub struct VpTree<T> {
    items: Vec<T>,
    nodes: Vec<VpNode>,
    root: Option<usize>,
}

#[derive(Debug, Clone, Copy)]
struct VpNode {
    item: usize,
    /// Median distance from the vantage point to its subtree items;
    /// `inside` holds items with `d <= radius`.
    radius: f64,
    inside: Option<usize>,
    outside: Option<usize>,
}

impl<T> VpTree<T> {
    /// Builds the tree. Vantage points are chosen uniformly at random from
    /// each partition (`rng` fixes the shape deterministically).
    pub fn build<M: Metric<T>, R: Rng + ?Sized>(items: Vec<T>, metric: &M, rng: &mut R) -> Self {
        let n = items.len();
        let mut nodes = Vec::with_capacity(n);
        let mut ids: Vec<usize> = (0..n).collect();
        let root = Self::build_rec(&items, metric, rng, &mut ids, &mut nodes);
        VpTree { items, nodes, root }
    }

    fn build_rec<M: Metric<T>, R: Rng + ?Sized>(
        items: &[T],
        metric: &M,
        rng: &mut R,
        ids: &mut [usize],
        nodes: &mut Vec<VpNode>,
    ) -> Option<usize> {
        if ids.is_empty() {
            return None;
        }
        // Move a random vantage point to the front.
        let pick = rng.gen_range(0..ids.len());
        ids.swap(0, pick);
        let vantage = ids[0];
        let rest = &mut ids[1..];
        if rest.is_empty() {
            nodes.push(VpNode {
                item: vantage,
                radius: 0.0,
                inside: None,
                outside: None,
            });
            return Some(nodes.len() - 1);
        }
        let mut dists: Vec<(f64, usize)> = rest
            .iter()
            .map(|&i| (metric.distance(&items[vantage], &items[i]), i))
            .collect();
        dists.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN distance"));
        let mid = (dists.len() - 1) / 2;
        let radius = dists[mid].0;
        for (slot, (_, i)) in rest.iter_mut().zip(&dists) {
            *slot = *i;
        }
        let (inside_ids, outside_ids) = rest.split_at_mut(mid + 1);
        let placeholder = nodes.len();
        nodes.push(VpNode {
            item: vantage,
            radius,
            inside: None,
            outside: None,
        });
        let inside = Self::build_rec(items, metric, rng, inside_ids, nodes);
        let outside = Self::build_rec(items, metric, rng, outside_ids, nodes);
        nodes[placeholder].inside = inside;
        nodes[placeholder].outside = outside;
        Some(placeholder)
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when no items are indexed.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The indexed items, in original order (indices in [`Hit`] refer to
    /// this slice).
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// The `k` nearest items to `query`, closest first (ties broken by
    /// traversal order). `metric` must be the one used at build time (or
    /// an equivalent wrapper such as [`CountingMetric`]).
    pub fn knn<M: Metric<T>>(&self, metric: &M, query: &T, k: usize) -> Vec<Hit> {
        if k == 0 || self.items.is_empty() {
            return Vec::new();
        }
        // max-heap of current best k (worst on top)
        let mut heap: BinaryHeap<HeapHit> = BinaryHeap::with_capacity(k + 1);
        self.knn_rec(self.root, metric, query, k, &mut heap);
        let mut hits: Vec<Hit> = heap.into_iter().map(|h| h.0).collect();
        hits.sort_by(|a, b| a.distance.partial_cmp(&b.distance).expect("NaN distance"));
        hits
    }

    fn knn_rec<M: Metric<T>>(
        &self,
        node: Option<usize>,
        metric: &M,
        query: &T,
        k: usize,
        heap: &mut BinaryHeap<HeapHit>,
    ) {
        let Some(idx) = node else { return };
        let n = self.nodes[idx];
        let d = metric.distance(query, &self.items[n.item]);
        if heap.len() < k {
            heap.push(HeapHit(Hit {
                index: n.item,
                distance: d,
            }));
        } else if d < heap.peek().expect("non-empty").0.distance {
            heap.pop();
            heap.push(HeapHit(Hit {
                index: n.item,
                distance: d,
            }));
        }
        // Visit the more promising side first, prune with the annulus test.
        if d <= n.radius {
            self.knn_rec(n.inside, metric, query, k, heap);
            if d + self.current_tau(heap, k) >= n.radius {
                self.knn_rec(n.outside, metric, query, k, heap);
            }
        } else {
            self.knn_rec(n.outside, metric, query, k, heap);
            if d - self.current_tau(heap, k) <= n.radius {
                self.knn_rec(n.inside, metric, query, k, heap);
            }
        }
    }

    fn current_tau(&self, heap: &BinaryHeap<HeapHit>, k: usize) -> f64 {
        if heap.len() < k {
            f64::INFINITY
        } else {
            heap.peek().expect("non-empty").0.distance
        }
    }

    /// All items within `radius` of `query` (inclusive), unordered.
    pub fn range<M: Metric<T>>(&self, metric: &M, query: &T, radius: f64) -> Vec<Hit> {
        let mut out = Vec::new();
        self.range_rec(self.root, metric, query, radius, &mut out);
        out
    }

    fn range_rec<M: Metric<T>>(
        &self,
        node: Option<usize>,
        metric: &M,
        query: &T,
        radius: f64,
        out: &mut Vec<Hit>,
    ) {
        let Some(idx) = node else { return };
        let n = self.nodes[idx];
        let d = metric.distance(query, &self.items[n.item]);
        if d <= radius {
            out.push(Hit {
                index: n.item,
                distance: d,
            });
        }
        if d - radius <= n.radius {
            self.range_rec(n.inside, metric, query, radius, out);
        }
        if d + radius >= n.radius {
            self.range_rec(n.outside, metric, query, radius, out);
        }
    }
}

/// Wrapper giving `Hit` a max-heap ordering by distance.
struct HeapHit(Hit);

impl PartialEq for HeapHit {
    fn eq(&self, other: &Self) -> bool {
        self.0.distance == other.0.distance
    }
}
impl Eq for HeapHit {}
impl PartialOrd for HeapHit {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapHit {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .distance
            .partial_cmp(&other.0.distance)
            .expect("NaN distance")
    }
}

/// Full-scan k-NN baseline: computes every distance.
pub fn linear_knn<T, M: Metric<T>>(items: &[T], metric: &M, query: &T, k: usize) -> Vec<Hit> {
    let mut hits: Vec<Hit> = items
        .iter()
        .enumerate()
        .map(|(index, item)| Hit {
            index,
            distance: metric.distance(query, item),
        })
        .collect();
    hits.sort_by(|a, b| a.distance.partial_cmp(&b.distance).expect("NaN distance"));
    hits.truncate(k);
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    struct AbsDiff;
    impl Metric<f64> for AbsDiff {
        fn distance(&self, a: &f64, b: &f64) -> f64 {
            (a - b).abs()
        }
    }

    fn random_points(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(0.0..1000.0)).collect()
    }

    #[test]
    fn empty_tree() {
        let tree: VpTree<f64> =
            VpTree::build(Vec::new(), &AbsDiff, &mut SmallRng::seed_from_u64(0));
        assert!(tree.is_empty());
        assert!(tree.knn(&AbsDiff, &1.0, 3).is_empty());
        assert!(tree.range(&AbsDiff, &1.0, 10.0).is_empty());
    }

    #[test]
    fn knn_matches_linear_scan() {
        let points = random_points(300, 1);
        let tree = VpTree::build(points.clone(), &AbsDiff, &mut SmallRng::seed_from_u64(2));
        let mut qrng = SmallRng::seed_from_u64(3);
        for _ in 0..50 {
            let q: f64 = qrng.gen_range(-100.0..1100.0);
            for k in [1usize, 3, 10] {
                let a = tree.knn(&AbsDiff, &q, k);
                let b = linear_knn(&points, &AbsDiff, &q, k);
                assert_eq!(a.len(), k);
                // distances must agree (indices may differ on exact ties)
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.distance, y.distance, "q={q} k={k}");
                }
            }
        }
    }

    #[test]
    fn range_matches_linear_filter() {
        let points = random_points(200, 4);
        let tree = VpTree::build(points.clone(), &AbsDiff, &mut SmallRng::seed_from_u64(5));
        let mut qrng = SmallRng::seed_from_u64(6);
        for _ in 0..30 {
            let q: f64 = qrng.gen_range(0.0..1000.0);
            let r = qrng.gen_range(0.0..80.0);
            let mut got: Vec<usize> = tree
                .range(&AbsDiff, &q, r)
                .into_iter()
                .map(|h| h.index)
                .collect();
            got.sort_unstable();
            let want: Vec<usize> = points
                .iter()
                .enumerate()
                .filter(|(_, &p)| (p - q).abs() <= r)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn k_larger_than_n_returns_all() {
        let points = random_points(5, 7);
        let tree = VpTree::build(points.clone(), &AbsDiff, &mut SmallRng::seed_from_u64(8));
        let hits = tree.knn(&AbsDiff, &0.0, 50);
        assert_eq!(hits.len(), 5);
    }

    #[test]
    fn duplicates_handled() {
        let points = vec![5.0, 5.0, 5.0, 9.0];
        let tree = VpTree::build(points, &AbsDiff, &mut SmallRng::seed_from_u64(9));
        let hits = tree.knn(&AbsDiff, &5.0, 3);
        assert_eq!(hits.len(), 3);
        assert!(hits.iter().all(|h| h.distance == 0.0));
    }

    #[test]
    fn pruning_saves_distance_calls() {
        let points = random_points(4096, 10);
        let tree = VpTree::build(points.clone(), &AbsDiff, &mut SmallRng::seed_from_u64(11));
        let counting = CountingMetric::new(&AbsDiff);
        let _ = tree.knn(&counting, &500.0, 5);
        let tree_calls = counting.calls();
        counting.reset();
        let _ = linear_knn(&points, &counting, &500.0, 5);
        let scan_calls = counting.calls();
        assert!(
            tree_calls * 4 < scan_calls,
            "VP-tree used {tree_calls} calls vs scan {scan_calls}"
        );
    }

    #[test]
    fn integer_metric_via_fn_wrapper() {
        let items: Vec<u64> = (0..100).collect();
        let metric = FnMetric(|a: &u64, b: &u64| a.abs_diff(*b) as f64);
        let tree = VpTree::build(items, &metric, &mut SmallRng::seed_from_u64(12));
        let hits = tree.knn(&metric, &42, 3);
        assert_eq!(hits[0].distance, 0.0);
        assert!(hits.iter().any(|h| h.index == 42));
    }
}
