//! Crash-equivalence tests for [`ned_index::DurableIndex`]: recovery
//! from (checkpoint, WAL) must be **bit-identical** to the pre-crash
//! published state at every acknowledged epoch — including recoveries
//! from torn log tails, stale snapshots, and repeated replays.
//!
//! The byte-level comparison is sound because
//! `SignatureIndex::to_bytes` sorts entries by id before encoding:
//! equal live sets encode equally regardless of shard layout.

use ned_core::wal::{self, FsyncPolicy, WAL_HEADER_LEN, WAL_RECORD_OVERHEAD};
use ned_core::{NodeSignature, PreparedTree};
use ned_graph::{generators, GraphDelta};
use ned_index::{
    DurableError, DurableIndex, DurableOptions, GraphMaintainer, SignatureIndex, WriteOp,
};
use ned_tree::Tree;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};

/// Fresh scratch directory per test (removed by the caller at the end).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ned-durable-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A random small signature (1..10-node tree, random topology).
fn rand_sig(rng: &mut SmallRng) -> NodeSignature {
    let n = rng.gen_range(1..10usize);
    let parents: Vec<u32> = (0..n)
        .map(|v| {
            if v == 0 {
                0
            } else {
                rng.gen_range(0..v) as u32
            }
        })
        .collect();
    let tree = Tree::from_parents(&parents).expect("valid parent array");
    NodeSignature::from_prepared(rng.gen_range(0..1000), PreparedTree::new(&tree))
}

/// A random write batch against the mirrored live-id set, keeping the
/// mirror in sync (removes and replaces only target live ids).
fn rand_batch(rng: &mut SmallRng, live: &mut Vec<u64>, next_id: &mut u64) -> Vec<WriteOp> {
    let count = rng.gen_range(1..4usize);
    (0..count)
        .map(|_| {
            let choice = rng.gen_range(0..3u8);
            if choice == 0 || live.is_empty() {
                live.push(*next_id);
                *next_id += 1;
                WriteOp::Insert(rand_sig(rng))
            } else if choice == 1 {
                WriteOp::Remove(live.remove(rng.gen_range(0..live.len())))
            } else {
                WriteOp::Replace(live[rng.gen_range(0..live.len())], rand_sig(rng))
            }
        })
        .collect()
}

/// Seeds an index file (version-1, epoch 0), runs `batches` journaled
/// write batches against it with `checkpoint_every = 0` (nothing
/// truncates the log), and returns the per-epoch expected encodings
/// plus the byte offset where each WAL record ends.
fn journaled_run(
    dir: &Path,
    seed: u64,
    batches: usize,
) -> (PathBuf, PathBuf, Vec<Vec<u8>>, Vec<usize>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let index_path = dir.join("index.idx");
    let wal_path = dir.join("index.wal");

    let mut seed_index = SignatureIndex::new(2, 8, 7);
    let mut live = Vec::new();
    let mut next_id = 0u64;
    for _ in 0..6 {
        seed_index.insert(rand_sig(&mut rng));
        live.push(next_id);
        next_id += 1;
    }
    seed_index.save(&index_path).expect("seed checkpoint");

    let opts = DurableOptions {
        fsync: FsyncPolicy::PerBatch,
        checkpoint_every: 0,
    };
    let (durable, report) = DurableIndex::recover(&index_path, &wal_path, opts).expect("boot");
    assert!(report.log_created);
    assert_eq!(report.recovered_epoch, 0);

    let mut expected = Vec::with_capacity(batches);
    for _ in 0..batches {
        let batch = rand_batch(&mut rng, &mut live, &mut next_id);
        let mut writer = durable.writer();
        writer.apply(batch);
        expected.push(writer.index().to_bytes());
    }
    drop(durable);

    let bytes = std::fs::read(&wal_path).expect("read wal");
    let replay = wal::replay_bytes(&bytes).expect("intact log");
    assert_eq!(replay.records.len(), batches, "one record per batch");
    assert!(!replay.torn_tail);
    let mut ends = Vec::with_capacity(batches);
    let mut at = WAL_HEADER_LEN;
    for r in &replay.records {
        at += WAL_RECORD_OVERHEAD + r.len();
        ends.push(at);
    }
    assert_eq!(at, bytes.len());
    (index_path, wal_path, expected, ends)
}

/// Recovers from copies of `(index_path, wal prefix)` in a fresh
/// directory, so the originals stay untouched for the next cut.
fn recover_prefix(
    index_path: &Path,
    wal_bytes: &[u8],
    tag: &str,
) -> (DurableIndex, ned_index::RecoveryReport, PathBuf) {
    let dir = scratch(tag);
    let idx = dir.join("index.idx");
    let wal = dir.join("index.wal");
    std::fs::copy(index_path, &idx).expect("copy checkpoint");
    std::fs::write(&wal, wal_bytes).expect("write wal prefix");
    let opts = DurableOptions {
        fsync: FsyncPolicy::PerBatch,
        checkpoint_every: 0,
    };
    let (durable, report) = DurableIndex::recover(&idx, &wal, opts).expect("recover");
    (durable, report, dir)
}

#[test]
fn recovery_is_bit_identical_at_every_acked_epoch() {
    let dir = scratch("acked");
    let (index_path, wal_path, expected, ends) = journaled_run(&dir, 101, 8);
    let wal_bytes = std::fs::read(&wal_path).expect("read wal");

    for (i, &end) in ends.iter().enumerate() {
        // A crash right after batch i+1 was acknowledged: the log holds
        // exactly its records. Recovery must reproduce that state, byte
        // for byte.
        let (durable, report, tmp) = recover_prefix(&index_path, &wal_bytes[..end], "acked-cut");
        assert_eq!(report.replayed, i + 1);
        assert_eq!(report.skipped, 0);
        assert!(!report.torn_tail);
        assert_eq!(report.recovered_epoch, (i + 1) as u64);
        assert_eq!(durable.reader().epoch(), (i + 1) as u64);
        let recovered = durable.writer().index().to_bytes();
        assert_eq!(recovered, expected[i], "epoch {}", i + 1);
        drop(durable);
        let _ = std::fs::remove_dir_all(tmp);
    }
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn torn_tail_recovers_to_the_last_acked_batch_at_every_cut() {
    let dir = scratch("torn");
    let (index_path, wal_path, expected, ends) = journaled_run(&dir, 202, 3);
    let wal_bytes = std::fs::read(&wal_path).expect("read wal");
    let seed_bytes = {
        let (idx, _) = SignatureIndex::load_with_epoch(&index_path).expect("seed");
        idx.to_bytes()
    };

    // Every byte offset in the record stream is a possible SIGKILL
    // point; each must recover to exactly the last fully-journaled
    // (= last acknowledged) batch.
    for cut in WAL_HEADER_LEN..=wal_bytes.len() {
        let (durable, report, tmp) = recover_prefix(&index_path, &wal_bytes[..cut], "torn-cut");
        let acked = ends.iter().filter(|&&e| e <= cut).count();
        assert_eq!(report.replayed, acked, "cut={cut}");
        let at_boundary = cut == WAL_HEADER_LEN || ends.contains(&cut);
        assert_eq!(report.torn_tail, !at_boundary, "cut={cut}");
        let want = if acked == 0 {
            &seed_bytes
        } else {
            &expected[acked - 1]
        };
        assert_eq!(&durable.writer().index().to_bytes(), want, "cut={cut}");
        drop(durable);
        let _ = std::fs::remove_dir_all(tmp);
    }
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn replay_is_idempotent_and_skips_what_the_snapshot_contains() {
    let dir = scratch("idem");
    let (index_path, wal_path, expected, _) = journaled_run(&dir, 303, 6);
    let wal_bytes = std::fs::read(&wal_path).expect("read wal");
    let final_bytes = expected.last().expect("batches ran");

    // First recovery from the full pair.
    let (durable, report, tmp) = recover_prefix(&index_path, &wal_bytes, "idem-a");
    assert_eq!(report.replayed, 6);
    assert_eq!(&durable.writer().index().to_bytes(), final_bytes);
    drop(durable);

    // Recovering again from the *same files the first recovery left
    // behind* (checkpoint_every = 0 never truncates) changes nothing:
    // double replay is a no-op.
    let opts = DurableOptions {
        fsync: FsyncPolicy::PerBatch,
        checkpoint_every: 0,
    };
    let (again, report2) =
        DurableIndex::recover(&tmp.join("index.idx"), &tmp.join("index.wal"), opts)
            .expect("second recovery");
    assert_eq!(report2.replayed, 6);
    assert_eq!(&again.writer().index().to_bytes(), final_bytes);
    drop(again);
    let _ = std::fs::remove_dir_all(tmp);

    // A *newer* snapshot (as if a checkpoint ran at epoch 4 but crashed
    // before resetting the log) skips the already-contained records and
    // replays only the tail.
    let newer = scratch("idem-newer");
    let idx4 = newer.join("index.idx");
    {
        // Rebuild the epoch-4 state by replaying a 4-record prefix, then
        // save it (epoch-stamped) as the "newer snapshot".
        let replay = wal::replay_bytes(&wal_bytes).expect("intact");
        let mut at = WAL_HEADER_LEN;
        for r in replay.records.iter().take(4) {
            at += WAL_RECORD_OVERHEAD + r.len();
        }
        let (d4, _, tmp4) = recover_prefix(&index_path, &wal_bytes[..at], "idem-p4");
        d4.writer()
            .index()
            .save_at_epoch(4, &idx4)
            .expect("save epoch-4 snapshot");
        drop(d4);
        let _ = std::fs::remove_dir_all(tmp4);
    }
    std::fs::write(newer.join("index.wal"), &wal_bytes).expect("old log");
    let (durable, report) =
        DurableIndex::recover(&idx4, &newer.join("index.wal"), opts).expect("recover");
    assert_eq!(report.snapshot_epoch, 4);
    assert_eq!(report.skipped, 4);
    assert_eq!(report.replayed, 2);
    assert_eq!(&durable.writer().index().to_bytes(), final_bytes);
    drop(durable);
    let _ = std::fs::remove_dir_all(newer);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn an_epoch_gap_is_refused_loudly() {
    let dir = scratch("gap");
    let index_path = dir.join("index.idx");
    let wal_path = dir.join("index.wal");
    let mut rng = SmallRng::seed_from_u64(404);
    let mut index = SignatureIndex::new(2, 8, 7);
    index.insert(rand_sig(&mut rng));
    index.save(&index_path).expect("seed");

    // A log whose first record claims epoch 2 against an epoch-0
    // snapshot: epoch 1 is missing, so the pair cannot reproduce the
    // acknowledged history. Recovery must refuse, not resurrect.
    let mut w = wal::WalWriter::create(&wal_path, 0, FsyncPolicy::PerBatch).expect("create");
    let record = ned_index::durable::encode_batch(2, &[WriteOp::Insert(rand_sig(&mut rng))]);
    w.append(&record).expect("append");
    drop(w);

    let opts = DurableOptions::default();
    match DurableIndex::recover(&index_path, &wal_path, opts) {
        Err(DurableError::Corrupt(why)) => {
            assert!(why.contains("epoch 2"), "{why}");
        }
        Err(other) => panic!("wrong error kind: {other}"),
        Ok(_) => panic!("recovery must refuse an epoch gap"),
    }
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn checkpoint_truncates_the_log_and_bounds_replay() {
    let dir = scratch("ckpt");
    let index_path = dir.join("index.idx");
    let wal_path = dir.join("index.wal");
    let mut rng = SmallRng::seed_from_u64(505);
    let mut seed_index = SignatureIndex::new(2, 8, 7);
    let mut live = Vec::new();
    let mut next_id = 0u64;
    for _ in 0..5 {
        seed_index.insert(rand_sig(&mut rng));
        live.push(next_id);
        next_id += 1;
    }
    seed_index.save(&index_path).expect("seed");

    let opts = DurableOptions {
        fsync: FsyncPolicy::PerBatch,
        checkpoint_every: 0, // checkpoints run explicitly below
    };
    let (durable, _) = DurableIndex::recover(&index_path, &wal_path, opts).expect("boot");
    for _ in 0..3 {
        let batch = rand_batch(&mut rng, &mut live, &mut next_id);
        durable.writer().apply(batch);
    }
    assert_eq!(durable.checkpoint().expect("checkpoint"), Some(3));
    for _ in 0..2 {
        let batch = rand_batch(&mut rng, &mut live, &mut next_id);
        durable.writer().apply(batch);
    }
    let final_bytes = durable.writer().index().to_bytes();
    drop(durable);

    // The checkpoint re-based the log: only the two post-checkpoint
    // batches remain in it.
    let replay = wal::replay_bytes(&std::fs::read(&wal_path).expect("wal")).expect("intact");
    assert_eq!(replay.base, 3);
    assert_eq!(replay.records.len(), 2);

    let (recovered, report) = DurableIndex::recover(&index_path, &wal_path, opts).expect("recover");
    assert_eq!(report.snapshot_epoch, 3);
    assert_eq!(report.replayed, 2);
    assert_eq!(report.skipped, 0);
    assert_eq!(recovered.writer().index().to_bytes(), final_bytes);
    drop(recovered);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn graph_delta_batches_replay_without_the_graph() {
    // Deltas are journaled as the materialized WriteOp batches the
    // maintainer produced, so recovery needs only the log — never the
    // tracked graph.
    let dir = scratch("delta");
    let index_path = dir.join("index.idx");
    let wal_path = dir.join("index.wal");
    let mut rng = SmallRng::seed_from_u64(606);
    let g = generators::barabasi_albert(60, 2, &mut rng);
    let nodes: Vec<u32> = g.nodes().collect();
    let mut seed_index = SignatureIndex::new(2, 16, 7);
    seed_index.insert_graph(&g, &nodes);
    seed_index.save(&index_path).expect("seed");

    let opts = DurableOptions {
        fsync: FsyncPolicy::PerBatch,
        checkpoint_every: 0,
    };
    let (durable, _) = DurableIndex::recover(&index_path, &wal_path, opts).expect("boot");
    let mut maintainer = GraphMaintainer::attach(&g, 2, 0, 1);
    maintainer
        .verify_against(durable.writer().index())
        .expect("tracked graph matches");
    for i in 0..8u32 {
        let (a, b) = (i % 7, (i * 3 + 1) % 60);
        let delta = if g.has_edge(a, b) {
            GraphDelta::RemoveEdge(a, b)
        } else {
            GraphDelta::AddEdge(a, b)
        };
        let mut writer = durable.writer();
        maintainer.apply(&[delta], &mut writer);
    }
    let final_bytes = durable.writer().index().to_bytes();
    let final_epoch = durable.reader().epoch();
    drop(durable);

    let (recovered, report) = DurableIndex::recover(&index_path, &wal_path, opts).expect("recover");
    assert_eq!(report.replayed, 8);
    assert_eq!(recovered.reader().epoch(), final_epoch);
    assert_eq!(recovered.writer().index().to_bytes(), final_bytes);
    drop(recovered);
    let _ = std::fs::remove_dir_all(dir);
}
