//! Incremental-vs-rebuild equivalence: random [`GraphDelta`] sequences
//! applied through [`GraphMaintainer`] must leave the live index
//! holding, for every live node, a signature **bit-identical** to a
//! from-scratch extraction on the mutated graph — and the emitted
//! `Replace` set must be **exactly** the set of signatures that changed
//! (the dirty-ball candidates are a superset; the class diff trims it to
//! equality). Each delta batch must publish exactly one epoch.

use ned_core::NodeSignature;
use ned_graph::{generators, Graph, GraphDelta, NodeId};
use ned_index::{ConcurrentNedIndex, GraphMaintainer, SignatureIndex};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// From-scratch ground truth: every live node's signature extracted
/// independently on the given graph.
fn rebuild(g: &Graph, live: &[bool], k: usize) -> HashMap<u64, NodeSignature> {
    live.iter()
        .enumerate()
        .filter(|&(_, &alive)| alive)
        .map(|(v, _)| (v as u64, NodeSignature::extract(g, v as NodeId, k)))
        .collect()
}

/// The index's current contents by id.
fn index_contents(index: &SignatureIndex) -> HashMap<u64, NodeSignature> {
    index
        .forest()
        .entries()
        .map(|(id, sig)| (id, sig.clone()))
        .collect()
}

/// Drives `batches` of random deltas through a maintainer and checks the
/// full contract after every batch.
fn run_churn(seed: u64, n: usize, k: usize, batches: usize, batch_len: usize) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let g = generators::barabasi_albert(n, 2, &mut rng);
    let mut index = SignatureIndex::new(k, 12, seed);
    index.insert_graph(&g, &g.nodes().collect::<Vec<_>>());
    let mut maintainer = GraphMaintainer::attach(&g, k, 0, 1);
    maintainer.verify_against(&index).expect("clean attach");
    let (mut writer, reader) = ConcurrentNedIndex::split(index);

    // Shadow adjacency for generating sensible deltas; node ids only grow.
    let mut edges: std::collections::BTreeSet<(NodeId, NodeId)> = g.edges().collect();
    let mut alive: Vec<bool> = vec![true; n];

    for batch_no in 0..batches {
        let mut batch: Vec<GraphDelta> = Vec::new();
        for _ in 0..batch_len {
            let node_count = alive.len() as u32;
            let roll: f64 = rng.gen();
            if roll < 0.40 {
                let a = rng.gen_range(0..node_count);
                let b = rng.gen_range(0..node_count);
                batch.push(GraphDelta::AddEdge(a, b));
                if a != b && alive[a as usize] && alive[b as usize] {
                    edges.insert((a.min(b), a.max(b)));
                }
            } else if roll < 0.80 {
                if let Some(&(a, b)) = edges.iter().nth(rng.gen_range(0..edges.len().max(1))) {
                    batch.push(GraphDelta::RemoveEdge(a, b));
                    edges.remove(&(a, b));
                }
            } else if roll < 0.90 {
                batch.push(GraphDelta::AddNode);
                alive.push(true);
            } else {
                let v = rng.gen_range(0..node_count);
                batch.push(GraphDelta::RemoveNode(v));
                if alive[v as usize] {
                    alive[v as usize] = false;
                    edges.retain(|&(a, b)| a != v && b != v);
                }
            }
        }
        let epoch_before = reader.epoch();
        let before = index_contents(&reader.snapshot());
        let report = maintainer.apply(&batch, &mut writer);
        assert_eq!(
            reader.epoch(),
            epoch_before + 1,
            "batch {batch_no}: exactly one publication per delta batch"
        );

        // Ground truth on the mutated graph.
        let current = maintainer.graph().to_graph();
        let want = rebuild(&current, &alive, k);
        let got = index_contents(&reader.snapshot());
        assert_eq!(
            got.len(),
            want.len(),
            "batch {batch_no}: live set size (report {report})"
        );
        for (id, sig) in &want {
            let indexed = got
                .get(id)
                .unwrap_or_else(|| panic!("batch {batch_no}: id {id} missing from the index"));
            assert_eq!(
                indexed, sig,
                "batch {batch_no}: id {id} not bit-identical to a from-scratch extraction"
            );
        }

        // Exactness of the emitted change set: `Replace` is the only way
        // a surviving id's stored signature changes, so (state now
        // correct) replaced ⊇ changed; count equality forces equality.
        let changed = want
            .iter()
            .filter(|(id, sig)| before.get(id).is_some_and(|old| old != *sig))
            .count();
        assert_eq!(
            report.replaced, changed,
            "batch {batch_no}: replace set must be exactly the changed set (report {report})"
        );
    }
}

#[test]
fn single_edge_flips_maintain_exactly_the_changed_set() {
    run_churn(11, 60, 3, 30, 1);
}

#[test]
fn dirty_set_stays_local_on_sparse_graphs() {
    // On a road-like graph the (k-1)-ball of an endpoint is a tiny
    // fraction of the graph, so an edge flip must recompute only a
    // handful of nodes — never degenerate into a rebuild.
    let mut rng = SmallRng::seed_from_u64(21);
    let g = generators::road_network(20, 20, 0.4, 0.0, &mut rng);
    let n = g.num_nodes();
    let k = 3;
    let mut index = SignatureIndex::new(k, 64, 1);
    index.insert_graph(&g, &g.nodes().collect::<Vec<_>>());
    let mut maintainer = GraphMaintainer::attach(&g, k, 0, 1);
    let (mut writer, reader) = ConcurrentNedIndex::split(index);
    let mut max_candidates = 0usize;
    for i in 0..10u32 {
        let (a, b) = (i * 37 % n as u32, (i * 53 + 7) % n as u32);
        let add = maintainer.apply(&[GraphDelta::AddEdge(a, b)], &mut writer);
        if add.applied == 1 {
            let del = maintainer.apply(&[GraphDelta::RemoveEdge(a, b)], &mut writer);
            assert_eq!(del.applied, 1);
            max_candidates = max_candidates.max(add.candidates).max(del.candidates);
        }
    }
    assert!(max_candidates > 0, "some flip must have landed");
    assert!(
        max_candidates * 4 < n,
        "dirty set {max_candidates} is not local on a {n}-node road grid"
    );
    // net-zero churn: final contents equal a from-scratch rebuild
    let want = rebuild(&g, &vec![true; n], k);
    assert_eq!(index_contents(&reader.snapshot()), want);
}

#[test]
fn mixed_batches_maintain_exactly_the_changed_set() {
    run_churn(12, 50, 3, 12, 4);
}

#[test]
fn deep_trees_k4() {
    run_churn(13, 40, 4, 10, 2);
}

#[test]
fn shallow_trees_k2_and_k1() {
    run_churn(14, 45, 2, 10, 3);
    // k = 1: every signature is a singleton; edge churn must emit zero
    // replaces but still publish.
    run_churn(15, 30, 1, 6, 2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn random_delta_sequences_equal_rebuild(
        seed in any::<u64>(),
        n in 20..60usize,
        k in 2..5usize,
        batches in 2..8usize,
        batch_len in 1..5usize,
    ) {
        run_churn(seed, n, k, batches, batch_len);
    }
}
