//! Loopback round-trip tests for the framed TCP serving layer: command
//! dispatch over a real socket, the batch protocol, concurrent clients,
//! and — just as important — the malformed-frame error paths (garbage
//! bodies, corrupted checksums, hostile length prefixes all get an
//! `error:` reply and a closed connection, never a hang or a panic).

use ned_core::{wire, NodeSignature};
use ned_graph::generators;
use ned_index::{NedServer, SignatureIndex, WireClient};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::net::TcpListener;
use std::sync::Arc;

/// Starts a server over a fresh BA-graph index on an ephemeral loopback
/// port; returns the address (the listener thread dies with the test
/// process).
fn start_server() -> (std::net::SocketAddr, Arc<NedServer>) {
    let mut rng = SmallRng::seed_from_u64(77);
    let g = generators::barabasi_albert(120, 2, &mut rng);
    let nodes: Vec<u32> = g.nodes().collect();
    let mut index = SignatureIndex::new(2, 32, 1);
    index.insert_graph(&g, &nodes);
    let server = Arc::new(NedServer::new(index, 1, 2));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    {
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            let _ = server.serve_tcp(listener);
        });
    }
    (addr, server)
}

#[test]
fn track_addedge_deledge_maintain_the_live_index() {
    // The server needs the tracked graph as a file; build both the file
    // and the index from the same graph.
    let mut rng = SmallRng::seed_from_u64(78);
    let g = generators::barabasi_albert(90, 2, &mut rng);
    let path = std::env::temp_dir().join(format!("ned-track-{}.edges", std::process::id()));
    ned_graph::io::write_edge_list(&g, &path).expect("write graph");
    let mut index = SignatureIndex::new(3, 32, 1);
    index.insert_graph(&g, &g.nodes().collect::<Vec<_>>());
    let server = Arc::new(NedServer::new(index, 1, 2));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    {
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            let _ = server.serve_tcp(listener);
        });
    }
    let mut client = WireClient::connect(addr).expect("connect");

    // Deltas before tracking are in-band errors.
    let err = client.call("addedge 0 1").expect("reply");
    assert!(err.starts_with("error:"), "{err}");

    let tracked = client
        .call(&format!("track {}", path.display()))
        .expect("track");
    assert!(tracked.starts_with("ok tracking graph"), "{tracked}");

    // Pick a non-edge; flip it on and off. One epoch per delta command.
    let (a, b) = g
        .nodes()
        .flat_map(|a| g.nodes().map(move |b| (a, b)))
        .find(|&(a, b)| a < b && !g.has_edge(a, b))
        .expect("some non-edge");
    let epoch0 = server.reader().epoch();
    let added = client.call(&format!("addedge {a} {b}")).expect("addedge");
    assert!(added.starts_with("ok applied=1"), "{added}");
    assert_eq!(server.reader().epoch(), epoch0 + 1);
    // duplicate add: applied=0, still one publication
    let dup = client.call(&format!("addedge {a} {b}")).expect("dup");
    assert!(dup.starts_with("ok applied=0"), "{dup}");
    assert_eq!(server.reader().epoch(), epoch0 + 2);
    let removed = client.call(&format!("deledge {a} {b}")).expect("deledge");
    assert!(removed.starts_with("ok applied=1"), "{removed}");
    assert_eq!(server.reader().epoch(), epoch0 + 3);
    // out-of-range endpoints are in-band errors
    let oob = client.call("addedge 0 100000").expect("reply");
    assert!(oob.starts_with("error:"), "{oob}");

    // Net-zero churn: every indexed signature equals a fresh extraction
    // from the original graph.
    let snap = server.reader().snapshot();
    for v in g.nodes() {
        let want = NodeSignature::extract(&g, v, 3);
        let got = snap.get(u64::from(v)).expect("indexed");
        assert_eq!(got.prepared(), want.prepared(), "node {v}");
    }
    // The memo line and tracking status are part of stats now.
    let stats = client.call("stats").expect("stats");
    assert!(stats.contains("memo: hits"), "{stats}");
    assert!(stats.contains("tracking 90 nodes"), "{stats}");

    // A raw write breaks the tracked graph's node <-> id invariant, so it
    // detaches the maintainer: deltas error until the graph is re-tracked
    // (otherwise a stale maintainer could resurrect the removed id
    // through a later Replace).
    let removed = client.call("remove 0").expect("raw remove");
    assert_eq!(removed, "ok removed 0");
    let detached = client.call(&format!("addedge {a} {b}")).expect("reply");
    assert!(
        detached.starts_with("error: no tracked graph"),
        "{detached}"
    );
    let stats = client.call("stats").expect("stats");
    assert!(stats.contains("tracking none"), "{stats}");
    // restoring the removed signature lets track verify again
    let shape = ned_tree::serialize::print(NodeSignature::extract(&g, 0, 3).tree());
    let readd = client.call(&format!("addsig {shape}")).expect("addsig");
    assert!(readd.starts_with("ok id="), "{readd}");
    // ...but node 0's signature now lives under a different id, so track
    // must refuse rather than maintain a wrong mapping.
    let retrack = client
        .call(&format!("track {}", path.display()))
        .expect("reply");
    assert!(retrack.starts_with("error:"), "{retrack}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn commands_round_trip_over_the_socket() {
    let (addr, server) = start_server();
    let mut client = WireClient::connect(addr).expect("connect");

    let stats = client.call("stats").expect("stats");
    assert!(stats.contains("signatures: 120"), "{stats}");
    assert!(stats.ends_with("ok"), "{stats}");

    let hits = client.call("sig (()()) 3").expect("sig query");
    assert!(hits.ends_with("ok 3 hits"), "{hits}");
    assert_eq!(hits.matches("hit id=").count(), 3, "{hits}");

    let range = client.call("rangesig (()()) 1").expect("range query");
    assert!(range.contains("ok "), "{range}");

    // Writes round-trip and bump the epoch; reads see them immediately.
    let before = server.reader().epoch();
    let added = client.call("addsig (()()())").expect("addsig");
    assert!(added.starts_with("ok id="), "{added}");
    let id: u64 = added.trim_start_matches("ok id=").parse().expect("id");
    assert_eq!(id, 120);
    assert_eq!(server.reader().epoch(), before + 1);
    let removed = client.call(&format!("remove {id}")).expect("remove");
    assert_eq!(removed, format!("ok removed {id}"));
    let gone = client.call(&format!("remove {id}")).expect("remove again");
    assert_eq!(gone, format!("ok no such id {id}"));

    // Unknown commands are in-band errors, not dropped connections.
    let err = client.call("frobnicate 3").expect("still connected");
    assert!(err.starts_with("error:"), "{err}");
    let after = client.call("epoch").expect("connection survives errors");
    assert!(after.starts_with("ok epoch="), "{after}");
}

#[test]
fn batch_frames_return_one_reply_per_command_in_order() {
    let (addr, _server) = start_server();
    let mut client = WireClient::connect(addr).expect("connect");

    // Pure-read batch: fans out on the server's worker pool, but replies
    // must come back in command order.
    let reply = client
        .call("epoch\nsig (()()) 2\nstats\nsig (()) 1")
        .expect("read batch");
    let lines: Vec<&str> = reply.lines().collect();
    assert!(lines[0].starts_with("ok epoch="), "{reply}");
    let ok_lines = reply
        .lines()
        .filter(|l| l.starts_with("ok") || l.starts_with("error:"))
        .count();
    assert_eq!(ok_lines, 4, "one terminator per command: {reply}");
    assert!(reply.ends_with("ok 1 hits"), "{reply}");

    // A batch containing a write runs sequentially in frame order: the
    // epoch read *after* the write observes it.
    let before: u64 = {
        let r = client.call("epoch").expect("epoch");
        r.split("epoch=")
            .nth(1)
            .unwrap()
            .split(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap()
    };
    let reply = client.call("addsig (()())\nepoch").expect("mixed batch");
    assert!(reply.contains("ok id="), "{reply}");
    assert!(
        reply.contains(&format!("epoch={}", before + 1)),
        "write must be visible to later commands in the same frame: {reply}"
    );

    // quit ends the session after flushing the reply.
    let bye = client.call("quit").expect("quit reply");
    assert_eq!(bye, "ok bye");
    assert!(
        client.call("stats").is_err(),
        "connection must be closed after quit"
    );
}

#[test]
fn concurrent_clients_get_consistent_replies() {
    let (addr, _server) = start_server();
    let writer_handle = std::thread::spawn(move || {
        let mut c = WireClient::connect(addr).expect("connect writer");
        for i in 0..20 {
            let r = c.call("addsig (()()(()))").expect("addsig");
            assert!(r.starts_with("ok id="), "iter {i}: {r}");
            let id: u64 = r.trim_start_matches("ok id=").parse().expect("id");
            let r = c.call(&format!("remove {id}")).expect("remove");
            assert_eq!(r, format!("ok removed {id}"), "iter {i}");
        }
    });
    let readers: Vec<_> = (0..3)
        .map(|t| {
            std::thread::spawn(move || {
                let mut c = WireClient::connect(addr).expect("connect reader");
                for i in 0..25 {
                    let r = c.call("sig (()()) 4").expect("query");
                    assert!(r.ends_with("ok 4 hits"), "reader {t} iter {i}: {r}");
                    assert_eq!(r.matches("hit id=").count(), 4, "reader {t} iter {i}");
                }
            })
        })
        .collect();
    writer_handle.join().expect("writer thread");
    for r in readers {
        r.join().expect("reader thread");
    }
}

#[test]
fn malformed_frames_get_an_error_reply_and_a_hangup() {
    let (addr, _server) = start_server();

    // Valid length prefix, garbage body: bad magic.
    let mut client = WireClient::connect(addr).expect("connect");
    let mut poison = Vec::new();
    poison.extend_from_slice(&32u32.to_le_bytes());
    poison.extend_from_slice(&[0xAB; 32]);
    client.send_bytes(&poison).expect("send garbage");
    let reply = client.read_reply().expect("error reply before hangup");
    assert!(reply.starts_with("error:"), "{reply}");
    assert!(
        reply.contains("malformed frame") || reply.contains("magic"),
        "{reply}"
    );
    let rest = client.read_to_end().expect("read after error");
    assert!(rest.is_empty(), "server must close a poisoned stream");

    // Corrupted checksum inside an otherwise well-formed frame.
    let mut client = WireClient::connect(addr).expect("connect");
    let mut frame = wire::encode_frame(b"stats");
    let last = frame.len() - 1;
    frame[last] ^= 0xFF;
    client.send_bytes(&frame).expect("send corrupted");
    let reply = client.read_reply().expect("error reply");
    assert!(reply.contains("checksum"), "{reply}");
    assert!(client.read_to_end().expect("eof").is_empty());

    // Hostile length prefix: rejected without a giant allocation.
    let mut client = WireClient::connect(addr).expect("connect");
    client
        .send_bytes(&u32::MAX.to_le_bytes())
        .expect("send hostile length");
    let reply = client.read_reply().expect("error reply");
    assert!(reply.contains("bad frame length"), "{reply}");
    assert!(client.read_to_end().expect("eof").is_empty());

    // Non-UTF-8 payload in a valid frame: in-band error, connection
    // survives (framing sync is intact).
    let mut client = WireClient::connect(addr).expect("connect");
    client
        .send_raw(&[0xFF, 0xFE, 0x80])
        .expect("send non-utf8 payload");
    let reply = client.read_reply().expect("reply");
    assert!(reply.contains("not UTF-8"), "{reply}");
    let ok = client.call("epoch").expect("connection still usable");
    assert!(ok.starts_with("ok epoch="), "{ok}");

    // And the server is still healthy for everyone else.
    let mut client = WireClient::connect(addr).expect("connect");
    assert!(client.call("stats").expect("stats").contains("signatures:"));
}

#[test]
fn queries_over_tcp_match_local_scans() {
    let (addr, server) = start_server();
    let mut client = WireClient::connect(addr).expect("connect");
    // The server's own snapshot is the ground truth; the wire must not
    // change a single hit.
    let mut rng = SmallRng::seed_from_u64(77);
    let g = generators::barabasi_albert(120, 2, &mut rng);
    let snap = server.reader().snapshot();
    for node in [0u32, 13, 59, 118] {
        let sig = NodeSignature::extract(&g, node, 2);
        let want = snap.scan(&sig, 5);
        let shape = ned_tree::serialize::print(sig.tree());
        let reply = client.call(&format!("sig {shape} 5")).expect("query");
        let got: Vec<(u64, f64)> = reply
            .lines()
            .filter(|l| l.starts_with("hit "))
            .map(|l| {
                let id = l.split("id=").nth(1).unwrap().split(' ').next().unwrap();
                let d = l.split("ned=").nth(1).unwrap();
                (id.parse().unwrap(), d.parse().unwrap())
            })
            .collect();
        let want: Vec<(u64, f64)> = want.iter().map(|h| (h.id, h.distance)).collect();
        assert_eq!(got, want, "node {node}");
    }
}
