//! Loopback round-trip tests for the framed TCP serving layer: command
//! dispatch over a real socket, the batch protocol, concurrent clients,
//! and — just as important — the malformed-frame error paths (garbage
//! bodies, corrupted checksums, hostile length prefixes all get an
//! `error:` reply and a closed connection, never a hang or a panic).

use ned_core::{wire, NodeSignature};
use ned_graph::generators;
use ned_index::{NedServer, ServerConfig, SignatureIndex, WireClient};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

/// Starts a server over a fresh BA-graph index on an ephemeral loopback
/// port; returns the address (the listener thread dies with the test
/// process).
fn start_server() -> (std::net::SocketAddr, Arc<NedServer>) {
    let (addr, server, _) = start_server_with(ServerConfig::default());
    (addr, server)
}

/// [`start_server`] with explicit serving limits, also returning the
/// acceptor thread's handle so shutdown tests can join it.
fn start_server_with(
    config: ServerConfig,
) -> (
    std::net::SocketAddr,
    Arc<NedServer>,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let mut rng = SmallRng::seed_from_u64(77);
    let g = generators::barabasi_albert(120, 2, &mut rng);
    let nodes: Vec<u32> = g.nodes().collect();
    let mut index = SignatureIndex::new(2, 32, 1);
    index.insert_graph(&g, &nodes);
    let server = Arc::new(NedServer::new(index, 1, 2).with_config(config));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let handle = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.serve_tcp(listener))
    };
    (addr, server, handle)
}

#[test]
fn track_addedge_deledge_maintain_the_live_index() {
    // The server needs the tracked graph as a file; build both the file
    // and the index from the same graph.
    let mut rng = SmallRng::seed_from_u64(78);
    let g = generators::barabasi_albert(90, 2, &mut rng);
    let path = std::env::temp_dir().join(format!("ned-track-{}.edges", std::process::id()));
    ned_graph::io::write_edge_list(&g, &path).expect("write graph");
    let mut index = SignatureIndex::new(3, 32, 1);
    index.insert_graph(&g, &g.nodes().collect::<Vec<_>>());
    let server = Arc::new(NedServer::new(index, 1, 2));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    {
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            let _ = server.serve_tcp(listener);
        });
    }
    let mut client = WireClient::connect(addr).expect("connect");

    // Deltas before tracking are in-band errors.
    let err = client.call("addedge 0 1").expect("reply");
    assert!(err.starts_with("error:"), "{err}");

    let tracked = client
        .call(&format!("track {}", path.display()))
        .expect("track");
    assert!(tracked.starts_with("ok tracking graph"), "{tracked}");

    // Pick a non-edge; flip it on and off. One epoch per delta command.
    let (a, b) = g
        .nodes()
        .flat_map(|a| g.nodes().map(move |b| (a, b)))
        .find(|&(a, b)| a < b && !g.has_edge(a, b))
        .expect("some non-edge");
    let epoch0 = server.reader().epoch();
    let added = client.call(&format!("addedge {a} {b}")).expect("addedge");
    assert!(added.starts_with("ok applied=1"), "{added}");
    assert_eq!(server.reader().epoch(), epoch0 + 1);
    // duplicate add: applied=0, still one publication
    let dup = client.call(&format!("addedge {a} {b}")).expect("dup");
    assert!(dup.starts_with("ok applied=0"), "{dup}");
    assert_eq!(server.reader().epoch(), epoch0 + 2);
    let removed = client.call(&format!("deledge {a} {b}")).expect("deledge");
    assert!(removed.starts_with("ok applied=1"), "{removed}");
    assert_eq!(server.reader().epoch(), epoch0 + 3);
    // out-of-range endpoints are in-band errors
    let oob = client.call("addedge 0 100000").expect("reply");
    assert!(oob.starts_with("error:"), "{oob}");

    // Net-zero churn: every indexed signature equals a fresh extraction
    // from the original graph.
    let snap = server.reader().snapshot();
    for v in g.nodes() {
        let want = NodeSignature::extract(&g, v, 3);
        let got = snap.get(u64::from(v)).expect("indexed");
        assert_eq!(got.prepared(), want.prepared(), "node {v}");
    }
    // The memo line and tracking status are part of stats now.
    let stats = client.call("stats").expect("stats");
    assert!(stats.contains("memo: hits"), "{stats}");
    assert!(stats.contains("tracking 90 nodes"), "{stats}");

    // A raw write breaks the tracked graph's node <-> id invariant, so it
    // detaches the maintainer: deltas error until the graph is re-tracked
    // (otherwise a stale maintainer could resurrect the removed id
    // through a later Replace).
    let removed = client.call("remove 0").expect("raw remove");
    assert_eq!(removed, "ok removed 0");
    let detached = client.call(&format!("addedge {a} {b}")).expect("reply");
    assert!(
        detached.starts_with("error: no tracked graph"),
        "{detached}"
    );
    let stats = client.call("stats").expect("stats");
    assert!(stats.contains("tracking none"), "{stats}");
    // restoring the removed signature lets track verify again
    let shape = ned_tree::serialize::print(NodeSignature::extract(&g, 0, 3).tree());
    let readd = client.call(&format!("addsig {shape}")).expect("addsig");
    assert!(readd.starts_with("ok id="), "{readd}");
    // ...but node 0's signature now lives under a different id, so track
    // must refuse rather than maintain a wrong mapping.
    let retrack = client
        .call(&format!("track {}", path.display()))
        .expect("reply");
    assert!(retrack.starts_with("error:"), "{retrack}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn commands_round_trip_over_the_socket() {
    let (addr, server) = start_server();
    let mut client = WireClient::connect(addr).expect("connect");

    let stats = client.call("stats").expect("stats");
    assert!(stats.contains("signatures: 120"), "{stats}");
    assert!(stats.contains("sketch: mode exact, rows 120"), "{stats}");
    assert!(stats.ends_with("ok"), "{stats}");

    let hits = client.call("sig (()()) 3").expect("sig query");
    assert!(hits.contains("ok 3 hits epoch="), "{hits}");
    assert_eq!(hits.matches("hit id=").count(), 3, "{hits}");

    let range = client.call("rangesig (()()) 1").expect("range query");
    assert!(range.contains("ok "), "{range}");

    // Writes round-trip and bump the epoch; reads see them immediately.
    let before = server.reader().epoch();
    let added = client.call("addsig (()()())").expect("addsig");
    assert!(added.starts_with("ok id="), "{added}");
    let id: u64 = added.trim_start_matches("ok id=").parse().expect("id");
    assert_eq!(id, 120);
    assert_eq!(server.reader().epoch(), before + 1);
    let removed = client.call(&format!("remove {id}")).expect("remove");
    assert_eq!(removed, format!("ok removed {id}"));
    let gone = client.call(&format!("remove {id}")).expect("remove again");
    assert_eq!(gone, format!("ok no such id {id}"));

    // Unknown commands are in-band errors, not dropped connections.
    let err = client.call("frobnicate 3").expect("still connected");
    assert!(err.starts_with("error:"), "{err}");
    let after = client.call("epoch").expect("connection survives errors");
    assert!(after.starts_with("ok epoch="), "{after}");
}

#[test]
fn batch_frames_return_one_reply_per_command_in_order() {
    let (addr, _server) = start_server();
    let mut client = WireClient::connect(addr).expect("connect");

    // Pure-read batch: fans out on the server's worker pool, but replies
    // must come back in command order.
    let reply = client
        .call("epoch\nsig (()()) 2\nstats\nsig (()) 1")
        .expect("read batch");
    let lines: Vec<&str> = reply.lines().collect();
    assert!(lines[0].starts_with("ok epoch="), "{reply}");
    let ok_lines = reply
        .lines()
        .filter(|l| l.starts_with("ok") || l.starts_with("error:"))
        .count();
    assert_eq!(ok_lines, 4, "one terminator per command: {reply}");
    assert!(reply.contains("ok 1 hits epoch="), "{reply}");

    // A batch containing a write runs sequentially in frame order: the
    // epoch read *after* the write observes it.
    let before: u64 = {
        let r = client.call("epoch").expect("epoch");
        r.split("epoch=")
            .nth(1)
            .unwrap()
            .split(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap()
    };
    let reply = client.call("addsig (()())\nepoch").expect("mixed batch");
    assert!(reply.contains("ok id="), "{reply}");
    assert!(
        reply.contains(&format!("epoch={}", before + 1)),
        "write must be visible to later commands in the same frame: {reply}"
    );

    // quit ends the session after flushing the reply.
    let bye = client.call("quit").expect("quit reply");
    assert_eq!(bye, "ok bye");
    assert!(
        client.call("stats").is_err(),
        "connection must be closed after quit"
    );
}

#[test]
fn concurrent_clients_get_consistent_replies() {
    let (addr, _server) = start_server();
    let writer_handle = std::thread::spawn(move || {
        let mut c = WireClient::connect(addr).expect("connect writer");
        for i in 0..20 {
            let r = c.call("addsig (()()(()))").expect("addsig");
            assert!(r.starts_with("ok id="), "iter {i}: {r}");
            let id: u64 = r.trim_start_matches("ok id=").parse().expect("id");
            let r = c.call(&format!("remove {id}")).expect("remove");
            assert_eq!(r, format!("ok removed {id}"), "iter {i}");
        }
    });
    let readers: Vec<_> = (0..3)
        .map(|t| {
            std::thread::spawn(move || {
                let mut c = WireClient::connect(addr).expect("connect reader");
                for i in 0..25 {
                    let r = c.call("sig (()()) 4").expect("query");
                    assert!(r.contains("ok 4 hits epoch="), "reader {t} iter {i}: {r}");
                    assert_eq!(r.matches("hit id=").count(), 4, "reader {t} iter {i}");
                }
            })
        })
        .collect();
    writer_handle.join().expect("writer thread");
    for r in readers {
        r.join().expect("reader thread");
    }
}

#[test]
fn malformed_frames_get_an_error_reply_and_a_hangup() {
    let (addr, _server) = start_server();

    // Valid length prefix, garbage body: bad magic.
    let mut client = WireClient::connect(addr).expect("connect");
    let mut poison = Vec::new();
    poison.extend_from_slice(&32u32.to_le_bytes());
    poison.extend_from_slice(&[0xAB; 32]);
    client.send_bytes(&poison).expect("send garbage");
    let reply = client.read_reply().expect("error reply before hangup");
    assert!(reply.starts_with("error:"), "{reply}");
    assert!(
        reply.contains("malformed frame") || reply.contains("magic"),
        "{reply}"
    );
    let rest = client.read_to_end().expect("read after error");
    assert!(rest.is_empty(), "server must close a poisoned stream");

    // Corrupted checksum inside an otherwise well-formed frame.
    let mut client = WireClient::connect(addr).expect("connect");
    let mut frame = wire::encode_frame(b"stats");
    let last = frame.len() - 1;
    frame[last] ^= 0xFF;
    client.send_bytes(&frame).expect("send corrupted");
    let reply = client.read_reply().expect("error reply");
    assert!(reply.contains("checksum"), "{reply}");
    assert!(client.read_to_end().expect("eof").is_empty());

    // Hostile length prefix: rejected without a giant allocation.
    let mut client = WireClient::connect(addr).expect("connect");
    client
        .send_bytes(&u32::MAX.to_le_bytes())
        .expect("send hostile length");
    let reply = client.read_reply().expect("error reply");
    assert!(reply.contains("bad frame length"), "{reply}");
    assert!(client.read_to_end().expect("eof").is_empty());

    // Non-UTF-8 payload in a valid frame: in-band error, connection
    // survives (framing sync is intact).
    let mut client = WireClient::connect(addr).expect("connect");
    client
        .send_raw(&[0xFF, 0xFE, 0x80])
        .expect("send non-utf8 payload");
    let reply = client.read_reply().expect("reply");
    assert!(reply.contains("not UTF-8"), "{reply}");
    let ok = client.call("epoch").expect("connection still usable");
    assert!(ok.starts_with("ok epoch="), "{ok}");

    // And the server is still healthy for everyone else.
    let mut client = WireClient::connect(addr).expect("connect");
    assert!(client.call("stats").expect("stats").contains("signatures:"));
}

#[test]
fn queries_over_tcp_match_local_scans() {
    let (addr, server) = start_server();
    let mut client = WireClient::connect(addr).expect("connect");
    // The server's own snapshot is the ground truth; the wire must not
    // change a single hit.
    let mut rng = SmallRng::seed_from_u64(77);
    let g = generators::barabasi_albert(120, 2, &mut rng);
    let snap = server.reader().snapshot();
    for node in [0u32, 13, 59, 118] {
        let sig = NodeSignature::extract(&g, node, 2);
        let want = snap.scan(&sig, 5);
        let shape = ned_tree::serialize::print(sig.tree());
        let reply = client.call(&format!("sig {shape} 5")).expect("query");
        let got: Vec<(u64, f64)> = reply
            .lines()
            .filter(|l| l.starts_with("hit "))
            .map(|l| {
                let id = l.split("id=").nth(1).unwrap().split(' ').next().unwrap();
                let d = l.split("ned=").nth(1).unwrap();
                (id.parse().unwrap(), d.parse().unwrap())
            })
            .collect();
        let want: Vec<(u64, f64)> = want.iter().map(|h| (h.id, h.distance)).collect();
        assert_eq!(got, want, "node {node}");
    }
}

#[test]
fn overload_cap_rejects_with_a_clean_error_frame() {
    let (addr, _server, _h) = start_server_with(ServerConfig {
        max_conns: 1,
        drain_grace: Duration::from_millis(200),
        ..ServerConfig::default()
    });
    let mut first = WireClient::connect(addr).expect("connect first");
    // Round-trip once so the acceptor has definitely admitted us before
    // the second connection races in.
    assert!(first
        .call("epoch")
        .expect("first client works")
        .starts_with("ok"));

    let mut second = WireClient::connect(addr).expect("tcp connect still succeeds");
    let refusal = second.read_reply().expect("overload frame");
    assert!(refusal.starts_with("error: overloaded:"), "{refusal}");
    assert!(
        second.read_to_end().expect("eof").is_empty(),
        "overloaded connection must be closed after the error frame"
    );

    // Freeing the slot lets new clients in (the handler decrements the
    // active count asynchronously, so poll briefly). A probe on a
    // rejected connection reads the overload frame where its reply
    // would be; an admitted probe gets the real answer.
    assert_eq!(first.call("quit").expect("quit"), "ok bye");
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let reply = loop {
        let mut probe = WireClient::connect(addr).expect("probe connect");
        match probe.call("epoch") {
            Ok(r) if r.starts_with("ok epoch=") => break r,
            Ok(r) => assert!(r.starts_with("error: overloaded:"), "{r}"),
            Err(_) => {} // rejected and closed mid-probe
        }
        assert!(std::time::Instant::now() < deadline, "slot never freed");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(reply.starts_with("ok epoch="), "{reply}");
}

#[test]
fn idle_connections_time_out_with_an_error_frame() {
    let (addr, server, _h) = start_server_with(ServerConfig {
        read_timeout: Some(Duration::from_millis(150)),
        ..ServerConfig::default()
    });
    let mut client = WireClient::connect(addr).expect("connect");
    // Send nothing: the server's read timeout must fire, answer with an
    // in-band error, and close the connection.
    let reply = client.read_reply().expect("timeout frame");
    assert!(reply.contains("socket timeout"), "{reply}");
    assert!(client.read_to_end().expect("eof").is_empty());
    let stats = {
        let mut c = WireClient::connect(addr).expect("connect");
        c.call("stats").expect("stats")
    };
    assert!(stats.contains("timeouts 1"), "{stats}");
    drop(server);
}

#[test]
fn a_panicking_command_is_isolated_to_an_error_reply() {
    let (addr, server, _h) = start_server_with(ServerConfig {
        enable_test_panic: true,
        ..ServerConfig::default()
    });
    let mut client = WireClient::connect(addr).expect("connect");
    let epoch_before = server.reader().epoch();

    let reply = client.call("__panic").expect("panic must become a reply");
    assert!(reply.starts_with("error: internal panic"), "{reply}");

    // The connection, the server, and the index all survive.
    let ok = client.call("epoch").expect("same connection still works");
    assert!(ok.starts_with("ok epoch="), "{ok}");
    assert_eq!(
        server.reader().epoch(),
        epoch_before,
        "no phantom publication"
    );
    let added = client.call("addsig (()())").expect("writes still work");
    assert!(added.starts_with("ok id="), "{added}");

    // Mixed into a batch frame, the panic poisons only its own line.
    let batch = client
        .call("epoch\n__panic\nepoch")
        .expect("batch with a panicking line");
    let lines: Vec<&str> = batch.lines().collect();
    assert!(lines[0].starts_with("ok epoch="), "{batch}");
    assert!(lines[1].starts_with("error: internal panic"), "{batch}");
    assert!(lines[2].starts_with("ok epoch="), "{batch}");

    let stats = client.call("stats").expect("stats");
    assert!(stats.contains("panics isolated 2"), "{stats}");
}

#[test]
fn shutdown_drains_checkpoints_and_stops_the_acceptor() {
    let (addr, server, handle) = start_server_with(ServerConfig {
        drain_grace: Duration::from_millis(300),
        ..ServerConfig::default()
    });
    let mut client = WireClient::connect(addr).expect("connect");
    // An idle second connection must not wedge the drain.
    let _idle = WireClient::connect(addr).expect("idle connect");
    std::thread::sleep(Duration::from_millis(50));

    let reply = client.call("shutdown").expect("shutdown reply");
    assert!(reply.starts_with("ok draining"), "{reply}");
    assert!(server.is_shutting_down());

    // The accept loop exits cleanly: exit code 0 material.
    let served = handle.join().expect("acceptor thread");
    assert!(served.is_ok(), "{served:?}");

    // The listener is gone; new connections are refused.
    assert!(
        WireClient::connect(addr).is_err() || {
            // A connect may still succeed if the OS hands us a queued
            // backlog slot, but no one will ever answer.
            let mut c = WireClient::builder()
                .timeouts(Some(Duration::from_millis(200)), None)
                .connect(addr)
                .expect("backlog connect");
            c.call("epoch").is_err()
        }
    );
}

#[test]
fn client_reconnects_and_retries_idempotent_reads() {
    let (addr, _server) = start_server();
    let mut client = WireClient::builder()
        .retry(4)
        .connect(addr)
        .expect("connect");
    // `quit` makes the server hang up; the next plain call fails...
    assert_eq!(client.call("quit").expect("quit"), "ok bye");
    assert!(
        client.call("epoch").is_err(),
        "closed connection must error"
    );
    // ...but the retrying wrapper reconnects and succeeds.
    let reply = client.call_with_retry("epoch").expect("reconnect + retry");
    assert!(reply.starts_with("ok epoch="), "{reply}");
}

#[test]
#[allow(deprecated)]
fn deprecated_client_setters_still_work() {
    // The three pre-builder entry points stay functional for one
    // deprecation cycle; this is the compatibility pin.
    let (addr, _server) = start_server();
    let mut client = WireClient::connect(addr).expect("connect");
    client
        .set_timeouts(Some(Duration::from_secs(5)), Some(Duration::from_secs(5)))
        .expect("set_timeouts");
    assert_eq!(client.call("quit").expect("quit"), "ok bye");
    client.reconnect().expect("reconnect");
    let reply = client.call_idempotent("epoch", 3).expect("call_idempotent");
    assert!(reply.starts_with("ok epoch="), "{reply}");
}

#[test]
fn stats_reports_serving_counters_and_durability() {
    let (addr, _server) = start_server();
    let mut client = WireClient::connect(addr).expect("connect");
    let stats = client.call("stats").expect("stats");
    assert!(stats.contains("server: accepted"), "{stats}");
    assert!(
        stats.contains("durability: none (in-memory only)"),
        "{stats}"
    );
    let ckpt = client.call("checkpoint").expect("checkpoint");
    assert!(ckpt.contains("ephemeral"), "{ckpt}");
}
