//! Property tests for the sketch filter tier.
//!
//! Two invariants keep the tier honest:
//!
//! 1. **Soundness of the bound** — the scalar sketch distance never
//!    exceeds NED, on every graph family the paper benchmarks (BA, ER,
//!    road grids) and every extraction depth `k ∈ 1..=5`. A violated
//!    bound would mean silent false drops in exact mode.
//! 2. **Bit-identical exact mode** — with [`SketchMode::Exact`] (the
//!    default), `query`/`range` return exactly what the unfiltered
//!    VP-forest path ([`SketchMode::Off`]) and the full scan return —
//!    ids *and* distances — under arbitrary insert/remove churn and
//!    across a save/load round trip of the sketch-carrying snapshot
//!    format.

use ned_core::NodeSignature;
use ned_graph::{generators, Graph};
use ned_index::sketch::Sketch;
use ned_index::{SignatureIndex, SketchMode};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One of the paper's three benchmark graph families, picked by `kind`.
fn sample_graph(kind: u8, rng: &mut SmallRng) -> Graph {
    match kind % 3 {
        0 => generators::barabasi_albert(60, 2, rng),
        1 => generators::erdos_renyi_gnm(50, 110, rng),
        _ => generators::road_network(8, 6, 0.4, 0.05, rng),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Invariant 1: `sketch_lower_bound(a, b) <= NED(a, b)` across
    /// BA/ER/road graphs and `k ∈ 1..=5`.
    #[test]
    fn sketch_l1_lower_bounds_ned(
        seed in any::<u64>(),
        kind_a in 0u8..3,
        kind_b in 0u8..3,
        k in 1usize..=5,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let ga = sample_graph(kind_a, &mut rng);
        let gb = sample_graph(kind_b, &mut rng);
        // A spread of nodes from both graphs, cross-compared.
        let mut sigs = Vec::new();
        for v in ga.nodes().step_by(7) {
            sigs.push(NodeSignature::extract(&ga, v, k));
        }
        for v in gb.nodes().step_by(9) {
            sigs.push(NodeSignature::extract(&gb, v, k));
        }
        let sketches: Vec<Sketch> = sigs.iter().map(Sketch::of).collect();
        for (i, a) in sigs.iter().enumerate() {
            for (j, b) in sigs.iter().enumerate().skip(i) {
                let d = a.distance(b);
                let lb = sketches[i].lower_bound(&sketches[j]);
                prop_assert!(
                    lb <= d,
                    "sketch bound {lb} exceeds NED {d} (k = {k}, pair {i}/{j})"
                );
                // The bound is a metric-style quantity: symmetric, and
                // zero on identical signatures.
                prop_assert_eq!(lb, sketches[j].lower_bound(&sketches[i]));
            }
        }
    }

    /// Invariant 2: exact-mode results are bit-identical to the
    /// unfiltered forest and the full scan, under churn and across a
    /// save/load round trip.
    #[test]
    fn exact_mode_is_bit_identical_to_the_forest(
        seed in any::<u64>(),
        threshold in 1..48usize,
        churn in 10..60usize,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g1 = generators::barabasi_albert(80, 2, &mut rng);
        let g2 = generators::road_network(7, 5, 0.4, 0.1, &mut rng);
        let mut index = SignatureIndex::new(3, threshold, seed);
        index.insert_graph(&g1, &g1.nodes().collect::<Vec<_>>());
        index.insert_graph(&g2, &g2.nodes().collect::<Vec<_>>());
        prop_assert_eq!(index.sketch_mode(), SketchMode::Exact);

        // Interleaved removes and re-inserts so the bank tracks swaps,
        // replacements, and tombstones — not just the bulk build.
        let pool: Vec<NodeSignature> = g1
            .nodes()
            .map(|v| NodeSignature::extract(&g1, v, 3))
            .collect();
        for _ in 0..churn {
            if rng.gen_bool(0.5) {
                index.remove(rng.gen_range(0..115u64));
            } else {
                index.insert(pool[rng.gen_range(0..pool.len())].clone());
            }
        }

        let mut off = index.clone();
        off.set_sketch_mode(SketchMode::Off);
        let reloaded = SignatureIndex::from_bytes(&index.to_bytes()).expect("round trip");
        prop_assert_eq!(reloaded.sketch_mode(), SketchMode::Exact);

        for probe in [0u32, 39, 79] {
            let q = NodeSignature::extract(&g1, probe, 3);
            for k in [1usize, 5, 12] {
                let sketched = index.query(&q, k, 0);
                prop_assert_eq!(&sketched, &off.query(&q, k, 0), "knn k = {}", k);
                prop_assert_eq!(&sketched, &off.scan(&q, k), "scan k = {}", k);
                prop_assert_eq!(&sketched, &reloaded.query(&q, k, 0), "reload k = {}", k);
            }
            for radius in [0u64, 3, 10] {
                let sketched = index.range(&q, radius, 0);
                prop_assert_eq!(
                    &sketched,
                    &off.range(&q, radius, 0),
                    "range r = {}", radius
                );
                prop_assert_eq!(
                    &sketched,
                    &reloaded.range(&q, radius, 0),
                    "reload range r = {}", radius
                );
            }
        }
    }
}

/// Approximate mode must stay a subset story, not a correctness story:
/// every hit it returns carries the true distance, even when it drops
/// neighbors. (Recall itself is measured in the benchmark harness.)
#[test]
fn approx_mode_returns_true_distances() {
    let mut rng = SmallRng::seed_from_u64(99);
    let g = generators::barabasi_albert(150, 3, &mut rng);
    let mut index = SignatureIndex::new(3, 64, 7);
    index.insert_graph(&g, &g.nodes().collect::<Vec<_>>());
    index.set_sketch_mode(SketchMode::Approx);
    for probe in [2u32, 50, 149] {
        let q = NodeSignature::extract(&g, probe, 3);
        for hit in index.query(&q, 8, 0) {
            let sig = index.get(hit.id).expect("hit is live");
            assert_eq!(hit.distance as u64, q.distance(sig), "id {}", hit.id);
        }
    }
}
