//! Cross-engine property tests: the sharded forest must return **exactly**
//! the hits of a linear scan over the same live signature set — same ids,
//! same distances — through arbitrary interleavings of inserts and
//! removes, in serial and parallel query modes, and across a save/load
//! round trip.
//!
//! Since the budget-aware kernel landed, every forest query here also
//! exercises the bounded path: [`SignatureMetric`] overrides
//! `BoundedMetric::distance_within`, so `knn`/`range` issue each exact
//! TED\* call under the current pruning radius. Reference results go
//! through the classic Algorithm 1 engine (no bounded kernel, no scratch
//! arena, no memo — see [`classic_distance`]), so these tests pin the
//! bounded serving stack bit-identical to an independent implementation,
//! not merely to itself.

use ned_core::{signatures, ted_star_prepared_report, NodeSignature, TedStarConfig};
use ned_graph::generators;
use ned_index::{
    BoundedMetric, ForestHit, Metric, ShardedVpForest, SignatureIndex, SignatureMetric,
    UnboundedSignatureMetric,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Exact NED computed through the classic Algorithm 1 engine — a code
/// path that shares neither the bounded kernel, the scratch arena, nor
/// the cross-pair memo with the forest under test, so a defect in any
/// of those cannot corrupt reference and result identically.
fn classic_distance(a: &NodeSignature, b: &NodeSignature) -> f64 {
    ted_star_prepared_report(a.prepared(), b.prepared(), &TedStarConfig::standard()).distance as f64
}

/// Reference result computed from first principles: classic-engine NED
/// to every live `(id, signature)` pair, sorted by `(distance, id)`.
fn reference_knn(
    live: &HashMap<u64, NodeSignature>,
    q: &NodeSignature,
    k: usize,
) -> Vec<ForestHit> {
    let mut hits: Vec<ForestHit> = live
        .iter()
        .map(|(&id, sig)| ForestHit {
            id,
            distance: classic_distance(q, sig),
        })
        .collect();
    hits.sort_by(|a, b| {
        a.distance
            .partial_cmp(&b.distance)
            .expect("NaN")
            .then_with(|| a.id.cmp(&b.id))
    });
    hits.truncate(k);
    hits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn forest_knn_equals_linear_scan_under_churn(
        seed in any::<u64>(),
        threshold in 1..48usize,
        ops in 20..120usize,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g1 = generators::barabasi_albert(100, 2, &mut rng);
        let g2 = generators::erdos_renyi_gnm(80, 160, &mut rng);
        let nodes1: Vec<u32> = g1.nodes().collect();
        let nodes2: Vec<u32> = g2.nodes().collect();
        let pool: Vec<NodeSignature> = signatures(&g1, &nodes1, 3)
            .into_iter()
            .chain(signatures(&g2, &nodes2, 3))
            .collect();

        let mut forest: ShardedVpForest<NodeSignature> =
            ShardedVpForest::new(threshold, seed);
        let mut live: HashMap<u64, NodeSignature> = HashMap::new();
        for step in 0..ops {
            if live.is_empty() || rng.gen_bool(0.6) {
                let id = rng.gen_range(0..60u64);
                let sig = pool[rng.gen_range(0..pool.len())].clone();
                let fresh = forest.insert(&SignatureMetric, id, sig.clone());
                prop_assert_eq!(fresh, !live.contains_key(&id), "step {}", step);
                live.insert(id, sig);
            } else {
                let id = rng.gen_range(0..60u64);
                let removed = forest.remove(&SignatureMetric, id);
                prop_assert_eq!(removed, live.remove(&id).is_some(), "step {}", step);
            }
            prop_assert_eq!(forest.len(), live.len(), "step {}", step);

            if step % 9 == 0 {
                let q = &pool[rng.gen_range(0..pool.len())];
                let k = rng.gen_range(1..10usize);
                let want = reference_knn(&live, q, k);
                let serial = forest.knn(&SignatureMetric, q, k, 1);
                let parallel = forest.knn(&SignatureMetric, q, k, 0);
                prop_assert_eq!(&serial, &want, "serial knn, step {}", step);
                prop_assert_eq!(&parallel, &want, "parallel knn, step {}", step);
                let scan = forest.scan_knn(&SignatureMetric, q, k);
                prop_assert_eq!(&scan, &want, "scan baseline, step {}", step);
            }
        }
    }

    #[test]
    fn forest_range_equals_linear_filter(
        seed in any::<u64>(),
        threshold in 1..32usize,
        radius in 0..12u64,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = generators::barabasi_albert(90, 3, &mut rng);
        let nodes: Vec<u32> = g.nodes().collect();
        let pool = signatures(&g, &nodes, 3);
        let mut forest: ShardedVpForest<NodeSignature> =
            ShardedVpForest::new(threshold, seed);
        let mut live: HashMap<u64, NodeSignature> = HashMap::new();
        for (i, sig) in pool.iter().enumerate() {
            forest.insert(&SignatureMetric, i as u64, sig.clone());
            live.insert(i as u64, sig.clone());
        }
        for drop in (0..90u64).step_by(4) {
            forest.remove(&SignatureMetric, drop);
            live.remove(&drop);
        }
        let q = &pool[rng.gen_range(0..pool.len())];
        let got = forest.range(&SignatureMetric, q, radius as f64, 0);
        let mut want: Vec<ForestHit> = live
            .iter()
            .filter_map(|(&id, sig)| {
                let d = classic_distance(q, sig);
                (d <= radius as f64).then_some(ForestHit { id, distance: d })
            })
            .collect();
        want.sort_by(|a, b| {
            a.distance
                .partial_cmp(&b.distance)
                .expect("NaN")
                .then_with(|| a.id.cmp(&b.id))
        });
        prop_assert_eq!(got, want);
    }

    #[test]
    fn save_load_round_trip_is_query_identical(
        seed in any::<u64>(),
        threshold in 1..40usize,
        removals in 0..30usize,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = generators::barabasi_albert(120, 2, &mut rng);
        let nodes: Vec<u32> = g.nodes().collect();
        let mut index = SignatureIndex::new(3, threshold, seed);
        index.insert_graph(&g, &nodes);
        for _ in 0..removals {
            index.remove(rng.gen_range(0..120u64));
        }
        let bytes = index.to_bytes();
        let back = SignatureIndex::from_bytes(&bytes).expect("round trip");
        prop_assert_eq!(back.len(), index.len());

        // Queries after the round trip are bit-identical to before — and
        // both are the linear scan's answer.
        let probes = signatures(&g, &[0, 13, 77, 119], 3);
        for q in &probes {
            let k = rng.gen_range(1..12usize);
            let before = index.query(q, k, 0);
            let after = back.query(q, k, 0);
            let scan = index.scan(q, k);
            prop_assert_eq!(&before, &scan);
            prop_assert_eq!(&after, &scan);
        }

        // ... and the restored index stays exact under further churn.
        let mut back = back;
        let mut extra = signatures(&g, &[5, 6, 7], 3).into_iter();
        let new_id = back.insert(extra.next().expect("three sigs"));
        prop_assert!(back.remove(new_id));
        back.insert(extra.next().expect("three sigs"));
        let q = extra.next().expect("three sigs");
        let fast = back.query(&q, 6, 0);
        let slow = back.scan(&q, 6);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn bounded_metric_contract_on_signature_pairs(
        seed in any::<u64>(),
    ) {
        // `distance_within(a, b, t)` is `Some(d)` with the exact distance
        // iff `d <= t` — for integral, fractional, negative, and infinite
        // budgets alike.
        let mut rng = SmallRng::seed_from_u64(seed);
        let g1 = generators::barabasi_albert(60, 2, &mut rng);
        let g2 = generators::road_network(6, 6, 0.4, 0.05, &mut rng);
        let a = signatures(&g1, &(0..20u32).collect::<Vec<_>>(), 3);
        let b = signatures(&g2, &(0..20u32).collect::<Vec<_>>(), 3);
        let m = SignatureMetric;
        for (x, y) in a.iter().zip(&b) {
            let d = m.distance(x, y);
            for t in [0.0, d - 1.0, d - 0.5, d, d + 0.5, d + 10.0, f64::INFINITY] {
                let want = (d <= t).then_some(d);
                prop_assert_eq!(m.distance_within(x, y, t), want, "budget {}", t);
            }
            prop_assert_eq!(m.distance_within(x, y, -1.0), None, "negative budget");
        }
    }

    #[test]
    fn bounded_forest_equals_unbounded_forest_under_churn(
        seed in any::<u64>(),
        threshold in 1..32usize,
        ops in 20..90usize,
    ) {
        // A duplicate-heavy pool (every signature drawn from a small node
        // set, so interned shapes repeat constantly — the memo's target
        // regime): bounded knn and range must equal both the unbounded
        // metric's results and the first-principles reference.
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = generators::barabasi_albert(50, 3, &mut rng);
        let nodes: Vec<u32> = g.nodes().collect();
        let pool = signatures(&g, &nodes, 3);
        let mut forest: ShardedVpForest<NodeSignature> =
            ShardedVpForest::new(threshold, seed);
        let mut live: HashMap<u64, NodeSignature> = HashMap::new();
        for step in 0..ops {
            if live.is_empty() || rng.gen_bool(0.7) {
                let id = rng.gen_range(0..40u64);
                let sig = pool[rng.gen_range(0..pool.len())].clone();
                forest.insert(&SignatureMetric, id, sig.clone());
                live.insert(id, sig);
            } else {
                let id = rng.gen_range(0..40u64);
                forest.remove(&SignatureMetric, id);
                live.remove(&id);
            }
            if step % 7 == 0 {
                let q = &pool[rng.gen_range(0..pool.len())];
                let k = rng.gen_range(1..8usize);
                let want = reference_knn(&live, q, k);
                prop_assert_eq!(&forest.knn(&SignatureMetric, q, k, 0), &want, "bounded, step {}", step);
                prop_assert_eq!(
                    &forest.knn(&UnboundedSignatureMetric, q, k, 0),
                    &want,
                    "unbounded, step {}",
                    step
                );
                let radius = rng.gen_range(0..6u64) as f64;
                prop_assert_eq!(
                    forest.range(&SignatureMetric, q, radius, 0),
                    forest.range(&UnboundedSignatureMetric, q, radius, 0),
                    "range, step {}",
                    step
                );
            }
        }
    }
}
