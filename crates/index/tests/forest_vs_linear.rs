//! Cross-engine property tests: the sharded forest must return **exactly**
//! the hits of a linear scan over the same live signature set — same ids,
//! same distances — through arbitrary interleavings of inserts and
//! removes, in serial and parallel query modes, and across a save/load
//! round trip.

use ned_core::{signatures, NodeSignature};
use ned_graph::generators;
use ned_index::{ForestHit, ShardedVpForest, SignatureIndex, SignatureMetric};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Reference result computed from first principles: exact NED to every
/// live `(id, signature)` pair, sorted by `(distance, id)`.
fn reference_knn(
    live: &HashMap<u64, NodeSignature>,
    q: &NodeSignature,
    k: usize,
) -> Vec<ForestHit> {
    let mut hits: Vec<ForestHit> = live
        .iter()
        .map(|(&id, sig)| ForestHit {
            id,
            distance: q.distance(sig) as f64,
        })
        .collect();
    hits.sort_by(|a, b| {
        a.distance
            .partial_cmp(&b.distance)
            .expect("NaN")
            .then_with(|| a.id.cmp(&b.id))
    });
    hits.truncate(k);
    hits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn forest_knn_equals_linear_scan_under_churn(
        seed in any::<u64>(),
        threshold in 1..48usize,
        ops in 20..120usize,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g1 = generators::barabasi_albert(100, 2, &mut rng);
        let g2 = generators::erdos_renyi_gnm(80, 160, &mut rng);
        let nodes1: Vec<u32> = g1.nodes().collect();
        let nodes2: Vec<u32> = g2.nodes().collect();
        let pool: Vec<NodeSignature> = signatures(&g1, &nodes1, 3)
            .into_iter()
            .chain(signatures(&g2, &nodes2, 3))
            .collect();

        let mut forest: ShardedVpForest<NodeSignature> =
            ShardedVpForest::new(threshold, seed);
        let mut live: HashMap<u64, NodeSignature> = HashMap::new();
        for step in 0..ops {
            if live.is_empty() || rng.gen_bool(0.6) {
                let id = rng.gen_range(0..60u64);
                let sig = pool[rng.gen_range(0..pool.len())].clone();
                let fresh = forest.insert(&SignatureMetric, id, sig.clone());
                prop_assert_eq!(fresh, !live.contains_key(&id), "step {}", step);
                live.insert(id, sig);
            } else {
                let id = rng.gen_range(0..60u64);
                let removed = forest.remove(&SignatureMetric, id);
                prop_assert_eq!(removed, live.remove(&id).is_some(), "step {}", step);
            }
            prop_assert_eq!(forest.len(), live.len(), "step {}", step);

            if step % 9 == 0 {
                let q = &pool[rng.gen_range(0..pool.len())];
                let k = rng.gen_range(1..10usize);
                let want = reference_knn(&live, q, k);
                let serial = forest.knn(&SignatureMetric, q, k, 1);
                let parallel = forest.knn(&SignatureMetric, q, k, 0);
                prop_assert_eq!(&serial, &want, "serial knn, step {}", step);
                prop_assert_eq!(&parallel, &want, "parallel knn, step {}", step);
                let scan = forest.scan_knn(&SignatureMetric, q, k);
                prop_assert_eq!(&scan, &want, "scan baseline, step {}", step);
            }
        }
    }

    #[test]
    fn forest_range_equals_linear_filter(
        seed in any::<u64>(),
        threshold in 1..32usize,
        radius in 0..12u64,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = generators::barabasi_albert(90, 3, &mut rng);
        let nodes: Vec<u32> = g.nodes().collect();
        let pool = signatures(&g, &nodes, 3);
        let mut forest: ShardedVpForest<NodeSignature> =
            ShardedVpForest::new(threshold, seed);
        let mut live: HashMap<u64, NodeSignature> = HashMap::new();
        for (i, sig) in pool.iter().enumerate() {
            forest.insert(&SignatureMetric, i as u64, sig.clone());
            live.insert(i as u64, sig.clone());
        }
        for drop in (0..90u64).step_by(4) {
            forest.remove(&SignatureMetric, drop);
            live.remove(&drop);
        }
        let q = &pool[rng.gen_range(0..pool.len())];
        let got = forest.range(&SignatureMetric, q, radius as f64, 0);
        let mut want: Vec<ForestHit> = live
            .iter()
            .filter_map(|(&id, sig)| {
                let d = q.distance(sig);
                (d <= radius).then_some(ForestHit {
                    id,
                    distance: d as f64,
                })
            })
            .collect();
        want.sort_by(|a, b| {
            a.distance
                .partial_cmp(&b.distance)
                .expect("NaN")
                .then_with(|| a.id.cmp(&b.id))
        });
        prop_assert_eq!(got, want);
    }

    #[test]
    fn save_load_round_trip_is_query_identical(
        seed in any::<u64>(),
        threshold in 1..40usize,
        removals in 0..30usize,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = generators::barabasi_albert(120, 2, &mut rng);
        let nodes: Vec<u32> = g.nodes().collect();
        let mut index = SignatureIndex::new(3, threshold, seed);
        index.insert_graph(&g, &nodes);
        for _ in 0..removals {
            index.remove(rng.gen_range(0..120u64));
        }
        let bytes = index.to_bytes();
        let back = SignatureIndex::from_bytes(&bytes).expect("round trip");
        prop_assert_eq!(back.len(), index.len());

        // Queries after the round trip are bit-identical to before — and
        // both are the linear scan's answer.
        let probes = signatures(&g, &[0, 13, 77, 119], 3);
        for q in &probes {
            let k = rng.gen_range(1..12usize);
            let before = index.query(q, k, 0);
            let after = back.query(q, k, 0);
            let scan = index.scan(q, k);
            prop_assert_eq!(&before, &scan);
            prop_assert_eq!(&after, &scan);
        }

        // ... and the restored index stays exact under further churn.
        let mut back = back;
        let mut extra = signatures(&g, &[5, 6, 7], 3).into_iter();
        let new_id = back.insert(extra.next().expect("three sigs"));
        prop_assert!(back.remove(new_id));
        back.insert(extra.next().expect("three sigs"));
        let q = extra.next().expect("three sigs");
        let fast = back.query(&q, 6, 0);
        let slow = back.scan(&q, 6);
        prop_assert_eq!(fast, slow);
    }
}
