//! Linearizability-style pinning of the concurrent serving layer:
//! N reader threads run knn/range queries while a single writer churns
//! the index with insert/remove/replace batches. Every reader result
//! must equal a linear scan over **some snapshot the writer actually
//! published** — same hits, same membership, no torn reads — which is
//! checked two ways:
//!
//! 1. on the spot: the query result is compared against a full linear
//!    scan of the *same* snapshot `Arc` (snapshot self-consistency), and
//! 2. after the fact: every snapshot pointer a reader observed is
//!    matched (by `Arc::ptr_eq`) against the writer's publication log,
//!    and the id set the reader saw must equal the id set the writer's
//!    master held at that publication (membership consistency).
//!
//! The writer is the only publisher, so logging `reader.snapshot()`
//! right after each `apply` returns captures exactly the published
//! `Arc` — that single-writer property is what the whole scheme rests
//! on, and what this test would break if publication ever tore.

use ned_core::NodeSignature;
use ned_graph::generators;
use ned_index::{ConcurrentNedIndex, SignatureIndex, WriteOp};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::{Arc, Mutex};

fn sorted_ids(index: &SignatureIndex) -> Vec<u64> {
    let mut ids: Vec<u64> = index.forest().entries().map(|(id, _)| id).collect();
    ids.sort_unstable();
    ids
}

#[test]
fn readers_race_a_churning_writer_without_torn_reads() {
    let mut rng = SmallRng::seed_from_u64(0xC0C0);
    let g = generators::barabasi_albert(150, 2, &mut rng);
    let nodes: Vec<u32> = g.nodes().collect();
    // Small freeze threshold: the churn below repeatedly merges shards
    // and trips compactions, which is exactly where torn state would
    // hide.
    let mut index = SignatureIndex::new(2, 16, 3);
    index.insert_graph(&g, &nodes[..100]);
    let spare: Vec<NodeSignature> = ned_core::signatures(&g, &nodes[100..], 2);
    let probes: Vec<NodeSignature> = ned_core::signatures(&g, &[0, 31, 77, 140], 2);

    let (mut writer, reader) = ConcurrentNedIndex::split(index);
    // Publication log: (published snapshot, the master's live id set at
    // that point). Seeded with the initial epoch-0 state.
    let log: Mutex<Vec<(Arc<SignatureIndex>, Vec<u64>)>> =
        Mutex::new(vec![(reader.snapshot(), sorted_ids(&reader.snapshot()))]);

    const READERS: usize = 3;
    const READS_PER_THREAD: usize = 30;
    const BATCHES: usize = 40;

    // (snapshot ptr, ids the scan saw) observations, checked post-join.
    let observations: Mutex<Vec<(Arc<SignatureIndex>, Vec<u64>)>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for t in 0..READERS {
            let reader = reader.clone();
            let probes = &probes;
            let observations = &observations;
            scope.spawn(move || {
                for i in 0..READS_PER_THREAD {
                    let probe = &probes[(t + i) % probes.len()];
                    let snap = reader.snapshot();
                    // knn against the snapshot must equal a linear scan
                    // over that same snapshot, bit for bit.
                    let k = 1 + (i % 5);
                    let fast = snap.query(probe, k, 1);
                    let slow = snap.scan(probe, k);
                    assert_eq!(fast, slow, "reader {t} iter {i}: knn tore");
                    // range too (radius exercises the bounded kernel).
                    let fast_r = snap.range(probe, 3, 1);
                    let mut slow_r = snap.scan(probe, snap.len());
                    slow_r.retain(|h| h.distance <= 3.0);
                    assert_eq!(fast_r, slow_r, "reader {t} iter {i}: range tore");
                    observations
                        .lock()
                        .unwrap()
                        .push((Arc::clone(&snap), sorted_ids(&snap)));
                }
            });
        }

        // The single writer: batches of mixed churn; log each published
        // snapshot with the id set it must contain.
        let mut wrng = SmallRng::seed_from_u64(7);
        for b in 0..BATCHES {
            let mut batch = Vec::new();
            for _ in 0..3 {
                match wrng.gen_range(0..3u32) {
                    0 => batch.push(WriteOp::Insert(
                        spare[wrng.gen_range(0..spare.len())].clone(),
                    )),
                    1 => batch.push(WriteOp::Remove(wrng.gen_range(0..180u64))),
                    _ => batch.push(WriteOp::Replace(
                        wrng.gen_range(0..120u64),
                        spare[wrng.gen_range(0..spare.len())].clone(),
                    )),
                }
            }
            writer.apply(batch);
            let published = reader.snapshot();
            assert_eq!(
                reader.epoch(),
                b as u64 + 1,
                "single writer publishes exactly once per batch"
            );
            let ids = sorted_ids(writer.index());
            log.lock().unwrap().push((published, ids));
        }
    });

    // Post-join: every snapshot any reader saw must be one the writer
    // published, holding exactly the ids the writer gave it.
    let log = log.into_inner().unwrap();
    let observations = observations.into_inner().unwrap();
    assert_eq!(observations.len(), READERS * READS_PER_THREAD);
    for (snap, seen_ids) in &observations {
        let published = log
            .iter()
            .find(|(p, _)| Arc::ptr_eq(p, snap))
            .unwrap_or_else(|| panic!("reader saw a snapshot that was never published"));
        assert_eq!(
            &published.1, seen_ids,
            "snapshot membership diverged from the writer's state at publication"
        );
    }
    // The writer ended where the last published snapshot says it did.
    assert_eq!(sorted_ids(writer.index()), log.last().unwrap().1);
}

#[test]
fn long_reads_pin_old_snapshots_while_epochs_advance() {
    let mut rng = SmallRng::seed_from_u64(11);
    let g = generators::barabasi_albert(80, 2, &mut rng);
    let nodes: Vec<u32> = g.nodes().collect();
    let mut index = SignatureIndex::new(2, 8, 5);
    index.insert_graph(&g, &nodes);
    let probe = NodeSignature::extract(&g, 13, 2);

    let (mut writer, reader) = ConcurrentNedIndex::split(index);
    let old = reader.snapshot();
    let before = old.scan(&probe, 10);
    // Heavy churn: remove everything, then refill with different content.
    for id in 0..80u64 {
        writer.remove(id);
    }
    assert_eq!(reader.len(), 0, "new snapshots see the empty state");
    assert_eq!(reader.epoch(), 80);
    // The pinned snapshot still answers exactly as before the churn.
    assert_eq!(old.len(), 80);
    assert_eq!(old.scan(&probe, 10), before);
    assert_eq!(old.query(&probe, 10, 1), before);
}
