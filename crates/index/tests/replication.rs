//! Self-healing replication, pinned end to end: a replica respawned from
//! a **stale checkpoint** streams the WAL suffix past its epoch from a
//! peer over the wire protocol, re-journals every record through its own
//! journal-before-publish path, and rejoins **bit-identical** to the
//! quorum — same epoch, same live size, same process-stable live-set
//! fingerprint. Along the way: quorum writes keep succeeding with a
//! replica down and never lose an acked write, a WAL truncated by a
//! checkpoint refuses suffix streaming loudly instead of resurrecting a
//! gap, and the [`ServerError`] retryability taxonomy drives router
//! failover exactly as each variant promises.

use ned_core::{Request, Response, ServerError};
use ned_graph::{generators, Graph};
use ned_index::durable::{DurableIndex, DurableOptions};
use ned_index::router::{RouterOptions, ShardMap, ShardRouter};
use ned_index::server::WireClient;
use ned_index::signatures::SignatureIndex;
use ned_index::NedServer;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

fn ba_graph(n: usize, seed: u64) -> Graph {
    let mut rng = SmallRng::seed_from_u64(seed);
    generators::barabasi_albert(n, 2, &mut rng)
}

fn build_index(g: &Graph, k: usize) -> SignatureIndex {
    let mut index = SignatureIndex::new(k, 16, 5);
    index.insert_graph(g, &g.nodes().collect::<Vec<_>>());
    index
}

fn shape_of(g: &Graph, node: u32, k: usize) -> String {
    let sig = ned_core::NodeSignature::extract(g, node, k);
    ned_tree::serialize::print(sig.tree())
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ned-repl-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn fast_options(k: usize, next_id: u64) -> RouterOptions {
    RouterOptions {
        k,
        next_id,
        read_timeout: Some(Duration::from_secs(2)),
        write_timeout: Some(Duration::from_secs(2)),
        retry_attempts: 2,
        read_rounds: 3,
        quorum: 0,
    }
}

/// One in-process durable replica on an OS-assigned (or given) port.
struct ReplicaHandle {
    server: Arc<NedServer>,
    addr: String,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ReplicaHandle {
    fn spawn(index_path: &Path, wal_path: &Path, listener: TcpListener) -> ReplicaHandle {
        let (durable, _report) =
            DurableIndex::recover(index_path, wal_path, DurableOptions::default())
                .expect("recover replica");
        let server = Arc::new(NedServer::with_durability(durable, 1, 1));
        let addr = listener.local_addr().expect("bound").to_string();
        let for_thread = Arc::clone(&server);
        let thread = std::thread::spawn(move || {
            let _ = for_thread.serve_tcp(listener);
        });
        ReplicaHandle {
            server,
            addr,
            thread: Some(thread),
        }
    }

    fn shutdown(mut self) {
        self.server.initiate_shutdown();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ReplicaHandle {
    fn drop(&mut self) {
        self.server.initiate_shutdown();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Binds `addr`, retrying briefly — the previous listener's close may
/// still be settling when the replacement replica boots.
fn retry_bind(addr: &str) -> TcpListener {
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        match TcpListener::bind(addr) {
            Ok(l) => return l,
            Err(e) if std::time::Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => panic!("rebind {addr}: {e}"),
        }
    }
}

fn fingerprint_of(addr: &str) -> (u64, u64, u64) {
    let mut client = WireClient::connect(addr).expect("dial");
    match client.request(&Request::Fingerprint).expect("fingerprint") {
        Response::Fingerprint { epoch, len, hash } => (epoch, len, hash),
        other => panic!("expected fingerprint, got {other:?}"),
    }
}

/// The tentpole pin: three durable replicas of one shard; one is lost
/// mid-churn while quorum writes keep landing, then respawned from a
/// **stale** checkpoint (its WAL gone — the older-checkpoint crash
/// shape), streams the missing WAL suffix from a peer, and rejoins with
/// the exact fingerprint the quorum carries. No acked write is lost at
/// any point.
#[test]
fn stale_respawn_streams_wal_suffix_and_rejoins_bit_identical() {
    let k = 3;
    let g = ba_graph(40, 17);
    let index = build_index(&g, k);
    let dir = scratch_dir("rejoin");

    // Three independent durable copies of the same shard state, plus a
    // pristine copy of r3's checkpoint to respawn stale from.
    let paths: Vec<(PathBuf, PathBuf)> = (1..=3)
        .map(|r| (dir.join(format!("r{r}.idx")), dir.join(format!("r{r}.wal"))))
        .collect();
    for (idx_path, _) in &paths {
        index.save(idx_path).expect("save checkpoint");
    }
    let stale_checkpoint = dir.join("r3.stale.idx");
    std::fs::copy(&paths[2].0, &stale_checkpoint).expect("stash stale checkpoint");

    let mut replicas: Vec<ReplicaHandle> = paths
        .iter()
        .map(|(idx_path, wal_path)| {
            ReplicaHandle::spawn(
                idx_path,
                wal_path,
                TcpListener::bind("127.0.0.1:0").expect("bind"),
            )
        })
        .collect();
    let addrs: Vec<String> = replicas.iter().map(|r| r.addr.clone()).collect();
    let map = ShardMap::new(vec![0]).expect("single shard");
    let router = ShardRouter::connect(map, vec![addrs.clone()], fast_options(k, index.next_id()))
        .expect("router connects");

    // Phase 1: healthy churn — every replica applies and journals.
    let donor = ba_graph(30, 99);
    for i in 0..10u64 {
        router
            .put_shape(i, &shape_of(&donor, i as u32, k))
            .expect("healthy put");
    }

    // Replica 3 is lost. Its durable files are then rewound to the
    // pristine pre-churn checkpoint with no WAL — the "respawned from an
    // older checkpoint" crash shape (a same-files respawn would replay
    // its own WAL and recover fully, never exercising peer streaming).
    let r3 = replicas.pop().expect("three replicas");
    let r3_addr = r3.addr.clone();
    r3.shutdown();
    std::fs::copy(&stale_checkpoint, &paths[2].0).expect("rewind checkpoint");
    std::fs::remove_file(&paths[2].1).expect("drop r3 wal");

    // Phase 2: writes keep succeeding under quorum (2 of 3) — the first
    // one marks the dead replica degraded and acks on the survivors.
    for i in 10..16u64 {
        router
            .put_shape(i, &shape_of(&donor, i as u32, k))
            .expect("quorum put with a replica down");
    }

    // Respawn stale on the same address: epoch 0 against a fleet at 16.
    let r3 = ReplicaHandle::spawn(&paths[2].0, &paths[2].1, retry_bind(&r3_addr));
    let (stale_epoch, _, _) = fingerprint_of(&r3.addr);
    assert_eq!(stale_epoch, 0, "respawned replica is stale");
    let (peer_epoch, _, _) = fingerprint_of(&addrs[0]);
    assert_eq!(peer_epoch, 16, "peers carry every acked write");

    // Protocol-level catch-up: the stale replica streams the WAL suffix
    // past its epoch from a peer and reports the exact epoch span.
    let mut client = WireClient::connect(&r3.addr).expect("dial stale replica");
    let msg = match client
        .request(&Request::CatchUp {
            peer: addrs[0].clone(),
        })
        .expect("catch-up succeeds")
    {
        Response::Ok { msg } => msg,
        other => panic!("expected ok, got {other:?}"),
    };
    assert!(
        msg.contains("caught up 16 record(s)") && msg.contains("epoch 0 -> 16"),
        "suffix stream covered the whole gap: {msg}"
    );

    // Bit-identical rejoin: all three replicas agree on (epoch, len,
    // fingerprint) exactly.
    let prints: Vec<(u64, u64, u64)> = addrs.iter().map(|a| fingerprint_of(a)).collect();
    assert_eq!(prints[0], prints[1], "surviving quorum agrees");
    assert_eq!(prints[0], prints[2], "rejoined replica is bit-identical");

    // And the router-facing invariant: nothing acked was lost — a
    // direct read of every written id finds it on the fleet.
    for i in 0..16u64 {
        let hits = router
            .knn(&shape_of(&donor, i as u32, k), 1, None)
            .expect("post-rejoin knn");
        assert_eq!(hits.hits.len(), 1, "id-space non-empty");
    }
    // A healed fleet keeps taking quorum writes on all replicas.
    router
        .put_shape(20, &shape_of(&donor, 20, k))
        .expect("post-rejoin put");

    drop(r3);
    drop(replicas);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The router's own anti-entropy pass detects the stale replica, drives
/// the catch-up itself, and reports the lifecycle — no manual protocol
/// poking required.
#[test]
fn router_probe_health_heals_a_stale_replica() {
    let k = 3;
    let g = ba_graph(30, 23);
    let index = build_index(&g, k);
    let dir = scratch_dir("probe");

    let paths: Vec<(PathBuf, PathBuf)> = (1..=2)
        .map(|r| (dir.join(format!("r{r}.idx")), dir.join(format!("r{r}.wal"))))
        .collect();
    for (idx_path, _) in &paths {
        index.save(idx_path).expect("save checkpoint");
    }
    let stale_checkpoint = dir.join("r2.stale.idx");
    std::fs::copy(&paths[1].0, &stale_checkpoint).expect("stash stale checkpoint");

    let r1 = ReplicaHandle::spawn(
        &paths[0].0,
        &paths[0].1,
        TcpListener::bind("127.0.0.1:0").expect("bind"),
    );
    let r2 = ReplicaHandle::spawn(
        &paths[1].0,
        &paths[1].1,
        TcpListener::bind("127.0.0.1:0").expect("bind"),
    );
    let (r1_addr, r2_addr) = (r1.addr.clone(), r2.addr.clone());
    let router = ShardRouter::connect(
        ShardMap::new(vec![0]).expect("single shard"),
        vec![vec![r1_addr.clone(), r2_addr.clone()]],
        // Explicit quorum 1 of 2: writes keep landing while r2 is down,
        // exactly the configuration that *requires* read repair later.
        RouterOptions {
            quorum: 1,
            ..fast_options(k, index.next_id())
        },
    )
    .expect("router connects");

    let donor = ba_graph(20, 7);
    for i in 0..5u64 {
        router
            .put_shape(i, &shape_of(&donor, i as u32, k))
            .expect("healthy put");
    }
    r2.shutdown();
    for i in 5..9u64 {
        router
            .put_shape(i, &shape_of(&donor, i as u32, k))
            .expect("quorum-1 put");
    }
    std::fs::copy(&stale_checkpoint, &paths[1].0).expect("rewind checkpoint");
    std::fs::remove_file(&paths[1].1).expect("drop r2 wal");
    let _r2 = ReplicaHandle::spawn(&paths[1].0, &paths[1].1, retry_bind(&r2_addr));

    // One anti-entropy pass: the stale replica is detected (epoch 0 vs
    // acked 9), caught up from its healthy peer, and reported rejoined.
    let report = router.probe_health().expect("probe passes");
    assert!(
        report.contains("rejoined after catch-up"),
        "probe drove the heal: {report}"
    );
    let next = router.probe_health().expect("second probe");
    assert!(
        next.lines().all(|l| l.contains("healthy")),
        "fleet settled healthy: {next}"
    );
    assert_eq!(
        fingerprint_of(&r1_addr),
        fingerprint_of(&r2_addr),
        "replicas agree bit-for-bit after the heal"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// A WAL reset by a checkpoint cannot serve the suffix below its base:
/// the replica must refuse **loudly and non-retryably** (the caller
/// needs a snapshot resync), never fabricate the gap.
#[test]
fn wal_suffix_below_the_checkpoint_base_is_refused() {
    let k = 3;
    let g = ba_graph(20, 31);
    let index = build_index(&g, k);
    let dir = scratch_dir("truncated");
    let idx_path = dir.join("r.idx");
    let wal_path = dir.join("r.wal");
    index.save(&idx_path).expect("save checkpoint");
    let replica = ReplicaHandle::spawn(
        &idx_path,
        &wal_path,
        TcpListener::bind("127.0.0.1:0").expect("bind"),
    );

    let donor = ba_graph(10, 3);
    let mut client = WireClient::connect(&replica.addr).expect("dial");
    for i in 0..4u64 {
        client
            .request(&Request::PutSig {
                id: i,
                shape: shape_of(&donor, i as u32, k),
            })
            .expect("put");
    }
    // Forcing a checkpoint resets the WAL base to epoch 4 — epochs 1..4
    // now live only in the snapshot.
    client.request(&Request::Checkpoint).expect("checkpoint");
    client
        .request(&Request::PutSig {
            id: 9,
            shape: shape_of(&donor, 9, k),
        })
        .expect("post-checkpoint put");

    // Suffixes from the base onward stream fine...
    match client
        .request(&Request::WalSuffix { from_epoch: 4 })
        .expect("suffix at base")
    {
        Response::WalChunk {
            base,
            epoch,
            records,
        } => {
            assert_eq!(base, 4);
            assert_eq!(epoch, 5);
            assert_eq!(records.len(), 1, "one record past epoch 4");
        }
        other => panic!("expected walchunk, got {other:?}"),
    }
    // ...but a request below the base is a non-retryable refusal naming
    // the truncation, not an empty or partial stream.
    let err = match client
        .request(&Request::WalSuffix { from_epoch: 1 })
        .expect("reply parses")
    {
        Response::Error(err) => err,
        other => panic!("expected a refusal, got {other:?}"),
    };
    assert!(!err.is_retryable(), "needs a snapshot resync: {err}");
    assert!(
        err.to_string().contains("wal suffix unavailable"),
        "names the truncation: {err}"
    );

    drop(replica);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A stub replica speaking raw NEDWIRE1: answers `epoch` probes with a
/// healthy reply and everything else with one configured error — the
/// injection point for pinning error-taxonomy × failover behavior.
fn spawn_error_stub(err: ServerError) -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind stub");
    let addr = listener.local_addr().expect("addr").to_string();
    std::thread::spawn(move || {
        for conn in listener.incoming() {
            let Ok(mut stream) = conn else { continue };
            let err = err.clone();
            std::thread::spawn(move || {
                use ned_core::wire;
                while let Ok(Some(payload)) = wire::read_frame(&mut stream) {
                    let text = String::from_utf8_lossy(&payload);
                    let reply = if text.trim() == "epoch" {
                        Response::Epoch { epoch: 0, len: 0 }.to_string()
                    } else {
                        Response::Error(err.clone()).to_string()
                    };
                    if wire::write_text_frame(&mut stream, &reply).is_err() {
                        return;
                    }
                }
            });
        }
    });
    addr
}

/// The full [`ServerError`] taxonomy × router failover, table-driven:
/// every retryable variant (catch-up-in-progress included) fails over to
/// the healthy replica of the same shard; every non-retryable variant
/// surfaces immediately, unchanged, because retrying cannot fix it.
#[test]
fn error_taxonomy_drives_failover_table() {
    let k = 3;
    let g = ba_graph(25, 41);
    let index = build_index(&g, k);
    let probe = shape_of(&g, 3, k);

    let table: &[(ServerError, bool)] = &[
        (ServerError::BadRequest("bad shape".into()), false),
        (ServerError::Corrupt("bit rot".into()), false),
        (ServerError::Overloaded("busy".into()), true),
        (ServerError::ShuttingDown("draining".into()), true),
        (ServerError::Io("pipe burst".into()), true),
        (
            ServerError::CatchingUp("replaying a peer's WAL suffix".into()),
            true,
        ),
    ];

    for (err, retryable) in table {
        assert_eq!(err.is_retryable(), *retryable, "taxonomy pin for {err:?}");

        // Two replicas, one poisoned: retryable errors must fail over to
        // the healthy peer and answer; non-retryable ones depend on
        // rotation order, so they are pinned on the single-replica shard
        // below instead.
        if *retryable {
            let healthy = {
                let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
                let addr = listener.local_addr().expect("addr").to_string();
                let server = Arc::new(NedServer::new(index.clone(), 1, 1));
                let for_thread = Arc::clone(&server);
                std::thread::spawn(move || {
                    let _ = for_thread.serve_tcp(listener);
                });
                (server, addr)
            };
            let stub_addr = spawn_error_stub(err.clone());
            let router = ShardRouter::connect(
                ShardMap::new(vec![0]).expect("map"),
                vec![vec![stub_addr, healthy.1.clone()]],
                fast_options(k, index.next_id()),
            )
            .expect("router connects");
            let hits = router
                .knn(&probe, 5, None)
                .unwrap_or_else(|e| panic!("{err:?} must fail over, got {e}"));
            assert_eq!(hits.hits.len(), 5, "healthy replica answered");
            healthy.0.initiate_shutdown();
        }

        // Single poisoned replica: the error's retryability decides the
        // shape of the failure — retryable variants exhaust the rounds
        // into a retryable degraded-shard report, non-retryable ones
        // surface as-is on the first try.
        let stub_addr = spawn_error_stub(err.clone());
        let router = ShardRouter::connect(
            ShardMap::new(vec![0]).expect("map"),
            vec![vec![stub_addr]],
            fast_options(k, index.next_id()),
        )
        .expect("router connects");
        let got = router.knn(&probe, 5, None).expect_err("poisoned shard");
        assert_eq!(
            got.is_retryable(),
            *retryable,
            "failure shape follows the taxonomy: {err:?} -> {got:?}"
        );
        if !*retryable {
            assert_eq!(
                std::mem::discriminant(&got),
                std::mem::discriminant(err),
                "non-retryable errors surface unchanged"
            );
        }
    }
}
