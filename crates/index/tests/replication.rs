//! Self-healing replication, pinned end to end: a replica respawned from
//! a **stale checkpoint** streams the WAL suffix past its epoch from a
//! peer over the wire protocol, re-journals every record through its own
//! journal-before-publish path, and rejoins **bit-identical** to the
//! quorum — same epoch, same live size, same process-stable live-set
//! fingerprint. Along the way: quorum writes keep succeeding with a
//! replica down and never lose an acked write, a WAL truncated by a
//! checkpoint refuses suffix streaming loudly instead of resurrecting a
//! gap, and the [`ServerError`] retryability taxonomy drives router
//! failover exactly as each variant promises. The fork-safety trio is
//! pinned too: a fresh router seeds its fleet epoch vector from the
//! **max** across replicas and shields laggards, a write ack below the
//! acked watermark degrades the acker instead of counting toward
//! quorum, and catch-up refuses to splice over a forked WAL — while
//! `walsuffix` streams in bounded chunks so the donor never stalls.

use ned_core::{Request, Response, ServerError};
use ned_graph::{generators, Graph};
use ned_index::durable::{DurableIndex, DurableOptions};
use ned_index::router::{RouterOptions, ShardMap, ShardRouter};
use ned_index::server::WireClient;
use ned_index::signatures::SignatureIndex;
use ned_index::NedServer;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

fn ba_graph(n: usize, seed: u64) -> Graph {
    let mut rng = SmallRng::seed_from_u64(seed);
    generators::barabasi_albert(n, 2, &mut rng)
}

fn build_index(g: &Graph, k: usize) -> SignatureIndex {
    let mut index = SignatureIndex::new(k, 16, 5);
    index.insert_graph(g, &g.nodes().collect::<Vec<_>>());
    index
}

fn shape_of(g: &Graph, node: u32, k: usize) -> String {
    let sig = ned_core::NodeSignature::extract(g, node, k);
    ned_tree::serialize::print(sig.tree())
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ned-repl-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn fast_options(k: usize, next_id: u64) -> RouterOptions {
    RouterOptions {
        k,
        next_id,
        read_timeout: Some(Duration::from_secs(2)),
        write_timeout: Some(Duration::from_secs(2)),
        retry_attempts: 2,
        read_rounds: 3,
        quorum: 0,
    }
}

/// One in-process durable replica on an OS-assigned (or given) port.
struct ReplicaHandle {
    server: Arc<NedServer>,
    addr: String,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ReplicaHandle {
    fn spawn(index_path: &Path, wal_path: &Path, listener: TcpListener) -> ReplicaHandle {
        Self::spawn_with(index_path, wal_path, listener, DurableOptions::default())
    }

    fn spawn_with(
        index_path: &Path,
        wal_path: &Path,
        listener: TcpListener,
        opts: DurableOptions,
    ) -> ReplicaHandle {
        let (durable, _report) =
            DurableIndex::recover(index_path, wal_path, opts).expect("recover replica");
        let server = Arc::new(NedServer::with_durability(durable, 1, 1));
        let addr = listener.local_addr().expect("bound").to_string();
        let for_thread = Arc::clone(&server);
        let thread = std::thread::spawn(move || {
            let _ = for_thread.serve_tcp(listener);
        });
        ReplicaHandle {
            server,
            addr,
            thread: Some(thread),
        }
    }

    fn shutdown(mut self) {
        self.server.initiate_shutdown();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ReplicaHandle {
    fn drop(&mut self) {
        self.server.initiate_shutdown();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Binds `addr`, retrying briefly — the previous listener's close may
/// still be settling when the replacement replica boots.
fn retry_bind(addr: &str) -> TcpListener {
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        match TcpListener::bind(addr) {
            Ok(l) => return l,
            Err(e) if std::time::Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => panic!("rebind {addr}: {e}"),
        }
    }
}

fn fingerprint_of(addr: &str) -> (u64, u64, u64) {
    let mut client = WireClient::connect(addr).expect("dial");
    match client.request(&Request::Fingerprint).expect("fingerprint") {
        Response::Fingerprint { epoch, len, hash } => (epoch, len, hash),
        other => panic!("expected fingerprint, got {other:?}"),
    }
}

/// The tentpole pin: three durable replicas of one shard; one is lost
/// mid-churn while quorum writes keep landing, then respawned from a
/// **stale** checkpoint (its WAL gone — the older-checkpoint crash
/// shape), streams the missing WAL suffix from a peer, and rejoins with
/// the exact fingerprint the quorum carries. No acked write is lost at
/// any point.
#[test]
fn stale_respawn_streams_wal_suffix_and_rejoins_bit_identical() {
    let k = 3;
    let g = ba_graph(40, 17);
    let index = build_index(&g, k);
    let dir = scratch_dir("rejoin");

    // Three independent durable copies of the same shard state, plus a
    // pristine copy of r3's checkpoint to respawn stale from.
    let paths: Vec<(PathBuf, PathBuf)> = (1..=3)
        .map(|r| (dir.join(format!("r{r}.idx")), dir.join(format!("r{r}.wal"))))
        .collect();
    for (idx_path, _) in &paths {
        index.save(idx_path).expect("save checkpoint");
    }
    let stale_checkpoint = dir.join("r3.stale.idx");
    std::fs::copy(&paths[2].0, &stale_checkpoint).expect("stash stale checkpoint");

    let mut replicas: Vec<ReplicaHandle> = paths
        .iter()
        .map(|(idx_path, wal_path)| {
            ReplicaHandle::spawn(
                idx_path,
                wal_path,
                TcpListener::bind("127.0.0.1:0").expect("bind"),
            )
        })
        .collect();
    let addrs: Vec<String> = replicas.iter().map(|r| r.addr.clone()).collect();
    let map = ShardMap::new(vec![0]).expect("single shard");
    let router = ShardRouter::connect(map, vec![addrs.clone()], fast_options(k, index.next_id()))
        .expect("router connects");

    // Phase 1: healthy churn — every replica applies and journals.
    let donor = ba_graph(30, 99);
    for i in 0..10u64 {
        router
            .put_shape(i, &shape_of(&donor, i as u32, k))
            .expect("healthy put");
    }

    // Replica 3 is lost. Its durable files are then rewound to the
    // pristine pre-churn checkpoint with no WAL — the "respawned from an
    // older checkpoint" crash shape (a same-files respawn would replay
    // its own WAL and recover fully, never exercising peer streaming).
    let r3 = replicas.pop().expect("three replicas");
    let r3_addr = r3.addr.clone();
    r3.shutdown();
    std::fs::copy(&stale_checkpoint, &paths[2].0).expect("rewind checkpoint");
    std::fs::remove_file(&paths[2].1).expect("drop r3 wal");

    // Phase 2: writes keep succeeding under quorum (2 of 3) — the first
    // one marks the dead replica degraded and acks on the survivors.
    for i in 10..16u64 {
        router
            .put_shape(i, &shape_of(&donor, i as u32, k))
            .expect("quorum put with a replica down");
    }

    // Respawn stale on the same address: epoch 0 against a fleet at 16.
    let r3 = ReplicaHandle::spawn(&paths[2].0, &paths[2].1, retry_bind(&r3_addr));
    let (stale_epoch, _, _) = fingerprint_of(&r3.addr);
    assert_eq!(stale_epoch, 0, "respawned replica is stale");
    let (peer_epoch, _, _) = fingerprint_of(&addrs[0]);
    assert_eq!(peer_epoch, 16, "peers carry every acked write");

    // Protocol-level catch-up: the stale replica streams the WAL suffix
    // past its epoch from a peer and reports the exact epoch span.
    let mut client = WireClient::connect(&r3.addr).expect("dial stale replica");
    let msg = match client
        .request(&Request::CatchUp {
            peer: addrs[0].clone(),
        })
        .expect("catch-up succeeds")
    {
        Response::Ok { msg } => msg,
        other => panic!("expected ok, got {other:?}"),
    };
    assert!(
        msg.contains("caught up 16 record(s)") && msg.contains("epoch 0 -> 16"),
        "suffix stream covered the whole gap: {msg}"
    );

    // Bit-identical rejoin: all three replicas agree on (epoch, len,
    // fingerprint) exactly.
    let prints: Vec<(u64, u64, u64)> = addrs.iter().map(|a| fingerprint_of(a)).collect();
    assert_eq!(prints[0], prints[1], "surviving quorum agrees");
    assert_eq!(prints[0], prints[2], "rejoined replica is bit-identical");

    // And the router-facing invariant: nothing acked was lost — a
    // direct read of every written id finds it on the fleet.
    for i in 0..16u64 {
        let hits = router
            .knn(&shape_of(&donor, i as u32, k), 1, None)
            .expect("post-rejoin knn");
        assert_eq!(hits.hits.len(), 1, "id-space non-empty");
    }
    // A healed fleet keeps taking quorum writes on all replicas.
    router
        .put_shape(20, &shape_of(&donor, 20, k))
        .expect("post-rejoin put");

    drop(r3);
    drop(replicas);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The router's own anti-entropy pass detects the stale replica, drives
/// the catch-up itself, and reports the lifecycle — no manual protocol
/// poking required.
#[test]
fn router_probe_health_heals_a_stale_replica() {
    let k = 3;
    let g = ba_graph(30, 23);
    let index = build_index(&g, k);
    let dir = scratch_dir("probe");

    let paths: Vec<(PathBuf, PathBuf)> = (1..=2)
        .map(|r| (dir.join(format!("r{r}.idx")), dir.join(format!("r{r}.wal"))))
        .collect();
    for (idx_path, _) in &paths {
        index.save(idx_path).expect("save checkpoint");
    }
    let stale_checkpoint = dir.join("r2.stale.idx");
    std::fs::copy(&paths[1].0, &stale_checkpoint).expect("stash stale checkpoint");

    let r1 = ReplicaHandle::spawn(
        &paths[0].0,
        &paths[0].1,
        TcpListener::bind("127.0.0.1:0").expect("bind"),
    );
    let r2 = ReplicaHandle::spawn(
        &paths[1].0,
        &paths[1].1,
        TcpListener::bind("127.0.0.1:0").expect("bind"),
    );
    let (r1_addr, r2_addr) = (r1.addr.clone(), r2.addr.clone());
    let router = ShardRouter::connect(
        ShardMap::new(vec![0]).expect("single shard"),
        vec![vec![r1_addr.clone(), r2_addr.clone()]],
        // Explicit quorum 1 of 2: writes keep landing while r2 is down,
        // exactly the configuration that *requires* read repair later.
        RouterOptions {
            quorum: 1,
            ..fast_options(k, index.next_id())
        },
    )
    .expect("router connects");

    let donor = ba_graph(20, 7);
    for i in 0..5u64 {
        router
            .put_shape(i, &shape_of(&donor, i as u32, k))
            .expect("healthy put");
    }
    r2.shutdown();
    for i in 5..9u64 {
        router
            .put_shape(i, &shape_of(&donor, i as u32, k))
            .expect("quorum-1 put");
    }
    std::fs::copy(&stale_checkpoint, &paths[1].0).expect("rewind checkpoint");
    std::fs::remove_file(&paths[1].1).expect("drop r2 wal");
    let _r2 = ReplicaHandle::spawn(&paths[1].0, &paths[1].1, retry_bind(&r2_addr));

    // One anti-entropy pass: the stale replica is detected (epoch 0 vs
    // acked 9), caught up from its healthy peer, and reported rejoined.
    let report = router.probe_health().expect("probe passes");
    assert!(
        report.contains("rejoined after catch-up"),
        "probe drove the heal: {report}"
    );
    let next = router.probe_health().expect("second probe");
    assert!(
        next.lines().all(|l| l.contains("healthy")),
        "fleet settled healthy: {next}"
    );
    assert_eq!(
        fingerprint_of(&r1_addr),
        fingerprint_of(&r2_addr),
        "replicas agree bit-for-bit after the heal"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// A WAL reset by a checkpoint cannot serve the suffix below its base:
/// the replica must refuse **loudly and non-retryably** (the caller
/// needs a snapshot resync), never fabricate the gap.
#[test]
fn wal_suffix_below_the_checkpoint_base_is_refused() {
    let k = 3;
    let g = ba_graph(20, 31);
    let index = build_index(&g, k);
    let dir = scratch_dir("truncated");
    let idx_path = dir.join("r.idx");
    let wal_path = dir.join("r.wal");
    index.save(&idx_path).expect("save checkpoint");
    let replica = ReplicaHandle::spawn(
        &idx_path,
        &wal_path,
        TcpListener::bind("127.0.0.1:0").expect("bind"),
    );

    let donor = ba_graph(10, 3);
    let mut client = WireClient::connect(&replica.addr).expect("dial");
    for i in 0..4u64 {
        client
            .request(&Request::PutSig {
                id: i,
                shape: shape_of(&donor, i as u32, k),
            })
            .expect("put");
    }
    // Forcing a checkpoint resets the WAL base to epoch 4 — epochs 1..4
    // now live only in the snapshot.
    client.request(&Request::Checkpoint).expect("checkpoint");
    client
        .request(&Request::PutSig {
            id: 9,
            shape: shape_of(&donor, 9, k),
        })
        .expect("post-checkpoint put");

    // Suffixes from the base onward stream fine...
    match client
        .request(&Request::WalSuffix { from_epoch: 4 })
        .expect("suffix at base")
    {
        Response::WalChunk {
            base,
            epoch,
            records,
        } => {
            assert_eq!(base, 4);
            assert_eq!(epoch, 5);
            assert_eq!(records.len(), 1, "one record past epoch 4");
        }
        other => panic!("expected walchunk, got {other:?}"),
    }
    // ...but a request below the base is a non-retryable refusal naming
    // the truncation, not an empty or partial stream.
    let err = match client
        .request(&Request::WalSuffix { from_epoch: 1 })
        .expect("reply parses")
    {
        Response::Error(err) => err,
        other => panic!("expected a refusal, got {other:?}"),
    };
    assert!(!err.is_retryable(), "needs a snapshot resync: {err}");
    assert!(
        err.to_string().contains("wal suffix unavailable"),
        "names the truncation: {err}"
    );

    drop(replica);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A fresh router (a restart, or a second coordinator attaching to the
/// same fleet) starts with no health memory — so the fleet epoch vector
/// must seed from the **max** epoch across each shard's replicas, and
/// anything lagging it must start degraded. Otherwise the first write
/// would land on the laggard at its own lower epoch, forking its
/// history and burning epochs whose acked content a later catch-up
/// could never reproduce.
#[test]
fn fresh_router_seeds_from_the_max_epoch_and_shields_the_laggard() {
    let k = 3;
    let g = ba_graph(30, 53);
    let index = build_index(&g, k);
    let dir = scratch_dir("reseed");
    let paths: Vec<(PathBuf, PathBuf)> = (1..=2)
        .map(|r| (dir.join(format!("r{r}.idx")), dir.join(format!("r{r}.wal"))))
        .collect();
    for (idx_path, _) in &paths {
        index.save(idx_path).expect("save checkpoint");
    }
    let r1 = ReplicaHandle::spawn(
        &paths[0].0,
        &paths[0].1,
        TcpListener::bind("127.0.0.1:0").expect("bind"),
    );
    let r2 = ReplicaHandle::spawn(
        &paths[1].0,
        &paths[1].1,
        TcpListener::bind("127.0.0.1:0").expect("bind"),
    );

    // r1 takes writes the old coordinator acked; r2 misses all of them —
    // the routine steady state quorum writes leave behind.
    let donor = ba_graph(20, 11);
    let mut direct = WireClient::connect(&r1.addr).expect("dial r1");
    for i in 0..6u64 {
        direct
            .request(&Request::PutSig {
                id: i,
                shape: shape_of(&donor, i as u32, k),
            })
            .expect("direct put");
    }
    assert_eq!(fingerprint_of(&r1.addr).0, 6);
    assert_eq!(fingerprint_of(&r2.addr).0, 0);

    let router = ShardRouter::connect(
        ShardMap::new(vec![0]).expect("map"),
        vec![vec![r1.addr.clone(), r2.addr.clone()]],
        RouterOptions {
            quorum: 1,
            ..fast_options(k, index.next_id())
        },
    )
    .expect("router connects");
    assert_eq!(
        router.acked_epochs(),
        vec![6],
        "seeded from the max across replicas, not whichever answered first"
    );
    assert!(
        router.stats_line().contains("degraded"),
        "the laggard starts degraded, shielded from direct writes: {}",
        router.stats_line()
    );

    // The next quorum write lands on the up-to-date replica; the
    // laggard converges through WAL streaming (the write-path heal may
    // run it in the background), never through a forked direct write.
    router
        .put_shape(6, &shape_of(&donor, 6, k))
        .expect("quorum-1 put through the fresh router");
    assert_eq!(router.acked_epochs(), vec![7]);

    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let _ = router.probe_health();
        if fingerprint_of(&r1.addr) == fingerprint_of(&r2.addr) {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "laggard failed to heal: r1 {:?} vs r2 {:?}",
            fingerprint_of(&r1.addr),
            fingerprint_of(&r2.addr)
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    assert_eq!(
        fingerprint_of(&r2.addr).0,
        7,
        "laggard replayed every acked write"
    );
    // Nothing acked was lost anywhere along the way.
    for i in 0..7u64 {
        let hits = router
            .knn(&shape_of(&donor, i as u32, k), 1, None)
            .expect("post-heal knn");
        assert_eq!(hits.hits.len(), 1);
    }

    drop((r1, r2));
    let _ = std::fs::remove_dir_all(&dir);
}

/// A stub that advertises a high epoch to probes but acks writes at a
/// much lower one — the wire shape of a replica whose history forked
/// (it applied the write on top of a stale state).
fn spawn_stale_ack_stub() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind stub");
    let addr = listener.local_addr().expect("addr").to_string();
    std::thread::spawn(move || {
        for conn in listener.incoming() {
            let Ok(mut stream) = conn else { continue };
            std::thread::spawn(move || {
                use ned_core::wire;
                while let Ok(Some(payload)) = wire::read_frame(&mut stream) {
                    let text = String::from_utf8_lossy(&payload);
                    let reply = text
                        .lines()
                        .map(|line| {
                            if line.trim() == "epoch" {
                                Response::Epoch { epoch: 100, len: 0 }.to_string()
                            } else {
                                Response::Put {
                                    id: 0,
                                    fresh: false,
                                    epoch: 3,
                                }
                                .to_string()
                            }
                        })
                        .collect::<Vec<_>>()
                        .join("\n");
                    if wire::write_text_frame(&mut stream, &reply).is_err() {
                        return;
                    }
                }
            });
        }
    });
    addr
}

/// A write ack whose epoch is *below* the shard's acked watermark is
/// proof of staleness (a forked history), not of replication: the
/// router must degrade that replica and keep its ack out of the quorum
/// count — folding the low epoch into the watermark would let the
/// forked replica pass the read gate while missing acked writes.
#[test]
fn write_acks_below_the_acked_watermark_are_rejected_as_stale() {
    let stub = spawn_stale_ack_stub();
    let router = ShardRouter::connect(
        ShardMap::new(vec![0]).expect("map"),
        vec![vec![stub]],
        RouterOptions {
            quorum: 1,
            ..fast_options(3, 0)
        },
    )
    .expect("router connects");
    assert_eq!(router.acked_epochs(), vec![100], "seeded from the probe");

    let err = router
        .put_shape(0, "(()())")
        .expect_err("an ack at epoch 3 against a watermark of 100 must not count");
    assert!(err.is_retryable(), "quorum loss stays retryable: {err}");
    assert_eq!(
        router.acked_epochs(),
        vec![100],
        "the low ack never folded into the watermark"
    );
    assert!(
        router.stats_line().contains("degraded"),
        "the stale acker was degraded: {}",
        router.stats_line()
    );
}

/// Catch-up verifies the splice point: when the stale replica's own WAL
/// record at its head epoch differs byte-for-byte from the peer's
/// record at the same epoch, the histories forked — streaming must be
/// refused loudly (`Corrupt`, non-retryable) instead of silently
/// splicing the peer's suffix over acked-but-divergent local writes.
#[test]
fn catch_up_refuses_a_forked_wal_instead_of_splicing() {
    let k = 3;
    let g = ba_graph(25, 61);
    let index = build_index(&g, k);
    let dir = scratch_dir("fork");
    let paths: Vec<(PathBuf, PathBuf)> = (1..=2)
        .map(|r| (dir.join(format!("r{r}.idx")), dir.join(format!("r{r}.wal"))))
        .collect();
    for (idx_path, _) in &paths {
        index.save(idx_path).expect("save checkpoint");
    }
    let r1 = ReplicaHandle::spawn(
        &paths[0].0,
        &paths[0].1,
        TcpListener::bind("127.0.0.1:0").expect("bind"),
    );
    let r2 = ReplicaHandle::spawn(
        &paths[1].0,
        &paths[1].1,
        TcpListener::bind("127.0.0.1:0").expect("bind"),
    );

    // Epoch 1 takes *different* writes on the two replicas — same
    // shape, different id, so the journaled records differ
    // byte-for-byte: the split-brain shape a stale health view produces.
    let donor = ba_graph(15, 5);
    let shape = shape_of(&donor, 0, k);
    let mut c1 = WireClient::connect(&r1.addr).expect("dial r1");
    c1.request(&Request::PutSig {
        id: 0,
        shape: shape.clone(),
    })
    .expect("r1 epoch 1");
    c1.request(&Request::PutSig {
        id: 1,
        shape: shape.clone(),
    })
    .expect("r1 epoch 2");
    let mut c2 = WireClient::connect(&r2.addr).expect("dial r2");
    c2.request(&Request::PutSig { id: 5, shape })
        .expect("r2 epoch 1, forked");

    let err = match c2
        .request(&Request::CatchUp {
            peer: r1.addr.clone(),
        })
        .expect("reply parses")
    {
        Response::Error(err) => err,
        other => panic!("a forked catch-up must be refused, got {other:?}"),
    };
    assert!(!err.is_retryable(), "fork needs a snapshot resync: {err}");
    assert!(err.to_string().contains("forked"), "names the fork: {err}");
    assert_eq!(
        fingerprint_of(&r2.addr).0,
        1,
        "the forked replica's state was not touched"
    );

    drop((r1, r2));
    let _ = std::fs::remove_dir_all(&dir);
}

/// One `walsuffix` reply is a bounded chunk, not the whole suffix — the
/// donor never stalls its writers for an unbounded read — and the
/// catch-up loop re-requests from its advancing epoch until level, so a
/// gap longer than one chunk still heals to bit-identity.
#[test]
fn catch_up_streams_a_long_suffix_in_bounded_chunks() {
    use ned_index::server::WAL_CHUNK_MAX_RECORDS;
    let k = 3;
    let g = ba_graph(20, 71);
    let index = build_index(&g, k);
    let dir = scratch_dir("chunks");
    let paths: Vec<(PathBuf, PathBuf)> = (1..=2)
        .map(|r| (dir.join(format!("r{r}.idx")), dir.join(format!("r{r}.wal"))))
        .collect();
    for (idx_path, _) in &paths {
        index.save(idx_path).expect("save checkpoint");
    }
    // Checkpointing off: the whole history must stay in the WAL so the
    // suffix from epoch 0 is streamable at all.
    let no_checkpoint = DurableOptions {
        checkpoint_every: 0,
        ..DurableOptions::default()
    };
    let r1 = ReplicaHandle::spawn_with(
        &paths[0].0,
        &paths[0].1,
        TcpListener::bind("127.0.0.1:0").expect("bind"),
        no_checkpoint,
    );
    let r2 = ReplicaHandle::spawn_with(
        &paths[1].0,
        &paths[1].1,
        TcpListener::bind("127.0.0.1:0").expect("bind"),
        no_checkpoint,
    );

    let total = WAL_CHUNK_MAX_RECORDS + 40;
    let donor = ba_graph(12, 9);
    let shape = shape_of(&donor, 2, k);
    let mut client = WireClient::connect(&r1.addr).expect("dial donor");
    for ids in (0..total as u64).collect::<Vec<_>>().chunks(32) {
        let reqs: Vec<Request> = ids
            .iter()
            .map(|id| Request::PutSig {
                id: *id,
                shape: shape.clone(),
            })
            .collect();
        client.request_batch(&reqs).expect("batched puts");
    }

    // A single suffix request answers exactly one full chunk...
    match client
        .request(&Request::WalSuffix { from_epoch: 0 })
        .expect("suffix")
    {
        Response::WalChunk { records, epoch, .. } => {
            assert_eq!(records.len(), WAL_CHUNK_MAX_RECORDS, "chunk is capped");
            assert_eq!(epoch as usize, total, "donor reports its true head");
        }
        other => panic!("expected walchunk, got {other:?}"),
    }

    // ...and the catch-up loop walks every chunk to bit-identity.
    let mut stale = WireClient::connect(&r2.addr).expect("dial stale");
    let msg = match stale
        .request(&Request::CatchUp {
            peer: r1.addr.clone(),
        })
        .expect("catch-up succeeds")
    {
        Response::Ok { msg } => msg,
        other => panic!("expected ok, got {other:?}"),
    };
    assert!(
        msg.contains(&format!("caught up {total} record(s)")),
        "every chunk was walked: {msg}"
    );
    assert_eq!(fingerprint_of(&r1.addr), fingerprint_of(&r2.addr));

    drop((r1, r2));
    let _ = std::fs::remove_dir_all(&dir);
}

/// A stub replica speaking raw NEDWIRE1: answers `epoch` probes with a
/// healthy reply and everything else with one configured error — the
/// injection point for pinning error-taxonomy × failover behavior.
fn spawn_error_stub(err: ServerError) -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind stub");
    let addr = listener.local_addr().expect("addr").to_string();
    std::thread::spawn(move || {
        for conn in listener.incoming() {
            let Ok(mut stream) = conn else { continue };
            let err = err.clone();
            std::thread::spawn(move || {
                use ned_core::wire;
                while let Ok(Some(payload)) = wire::read_frame(&mut stream) {
                    let text = String::from_utf8_lossy(&payload);
                    let reply = if text.trim() == "epoch" {
                        Response::Epoch { epoch: 0, len: 0 }.to_string()
                    } else {
                        Response::Error(err.clone()).to_string()
                    };
                    if wire::write_text_frame(&mut stream, &reply).is_err() {
                        return;
                    }
                }
            });
        }
    });
    addr
}

/// The full [`ServerError`] taxonomy × router failover, table-driven:
/// every retryable variant (catch-up-in-progress included) fails over to
/// the healthy replica of the same shard; every non-retryable variant
/// surfaces immediately, unchanged, because retrying cannot fix it.
#[test]
fn error_taxonomy_drives_failover_table() {
    let k = 3;
    let g = ba_graph(25, 41);
    let index = build_index(&g, k);
    let probe = shape_of(&g, 3, k);

    let table: &[(ServerError, bool)] = &[
        (ServerError::BadRequest("bad shape".into()), false),
        (ServerError::Corrupt("bit rot".into()), false),
        (ServerError::Overloaded("busy".into()), true),
        (ServerError::ShuttingDown("draining".into()), true),
        (ServerError::Io("pipe burst".into()), true),
        (
            ServerError::CatchingUp("replaying a peer's WAL suffix".into()),
            true,
        ),
    ];

    for (err, retryable) in table {
        assert_eq!(err.is_retryable(), *retryable, "taxonomy pin for {err:?}");

        // Two replicas, one poisoned: retryable errors must fail over to
        // the healthy peer and answer; non-retryable ones depend on
        // rotation order, so they are pinned on the single-replica shard
        // below instead.
        if *retryable {
            let healthy = {
                let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
                let addr = listener.local_addr().expect("addr").to_string();
                let server = Arc::new(NedServer::new(index.clone(), 1, 1));
                let for_thread = Arc::clone(&server);
                std::thread::spawn(move || {
                    let _ = for_thread.serve_tcp(listener);
                });
                (server, addr)
            };
            let stub_addr = spawn_error_stub(err.clone());
            let router = ShardRouter::connect(
                ShardMap::new(vec![0]).expect("map"),
                vec![vec![stub_addr, healthy.1.clone()]],
                fast_options(k, index.next_id()),
            )
            .expect("router connects");
            let hits = router
                .knn(&probe, 5, None)
                .unwrap_or_else(|e| panic!("{err:?} must fail over, got {e}"));
            assert_eq!(hits.hits.len(), 5, "healthy replica answered");
            healthy.0.initiate_shutdown();
        }

        // Single poisoned replica: the error's retryability decides the
        // shape of the failure — retryable variants exhaust the rounds
        // into a retryable degraded-shard report, non-retryable ones
        // surface as-is on the first try.
        let stub_addr = spawn_error_stub(err.clone());
        let router = ShardRouter::connect(
            ShardMap::new(vec![0]).expect("map"),
            vec![vec![stub_addr]],
            fast_options(k, index.next_id()),
        )
        .expect("router connects");
        let got = router.knn(&probe, 5, None).expect_err("poisoned shard");
        assert_eq!(
            got.is_retryable(),
            *retryable,
            "failure shape follows the taxonomy: {err:?} -> {got:?}"
        );
        if !*retryable {
            assert_eq!(
                std::mem::discriminant(&got),
                std::mem::discriminant(err),
                "non-retryable errors surface unchanged"
            );
        }
    }
}
