//! Fleet-vs-monolith equivalence: a [`ShardRouter`] over in-process
//! [`NedServer`] shards must answer **bit-identically** to one
//! single-process index holding every entry — statically, under write
//! churn, under tracked-graph delta batches, and across a shard replica
//! dying and being recovered from its durable files. This is the pinned
//! acceptance property of the scatter-gather layer.

use ned_core::{Request, Response};
use ned_graph::{generators, Graph, GraphDelta};
use ned_index::durable::{DurableIndex, DurableOptions};
use ned_index::maintain::GraphMaintainer;
use ned_index::router::{RouterOptions, ShardRouter};
use ned_index::signatures::SignatureIndex;
use ned_index::{fleet, ConcurrentNedIndex, NedServer};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

fn ba_graph(n: usize, seed: u64) -> Graph {
    let mut rng = SmallRng::seed_from_u64(seed);
    generators::barabasi_albert(n, 2, &mut rng)
}

fn build_index(g: &Graph, k: usize) -> SignatureIndex {
    let mut index = SignatureIndex::new(k, 16, 5);
    index.insert_graph(g, &g.nodes().collect::<Vec<_>>());
    index
}

fn shape_of(g: &Graph, node: u32, k: usize) -> String {
    let sig = ned_core::NodeSignature::extract(g, node, k);
    ned_tree::serialize::print(sig.tree())
}

/// `(id, distance-bits)` pairs — exact comparison, no float tolerance.
fn key(hits: &[ned_index::ForestHit]) -> Vec<(u64, u64)> {
    hits.iter().map(|h| (h.id, h.distance.to_bits())).collect()
}

fn wire_key(resp: Response) -> Vec<(u64, u64)> {
    match resp {
        Response::Hits { hits, .. } => hits.iter().map(|h| (h.id, h.distance.to_bits())).collect(),
        other => panic!("expected hits, got {other:?}"),
    }
}

/// One in-process shard: a [`NedServer`] on an OS-assigned loopback port.
struct ShardHandle {
    server: Arc<NedServer>,
    addr: String,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ShardHandle {
    fn spawn(server: NedServer, listener: TcpListener) -> ShardHandle {
        let server = Arc::new(server);
        let addr = listener.local_addr().expect("bound").to_string();
        let for_thread = Arc::clone(&server);
        let thread = std::thread::spawn(move || {
            let _ = for_thread.serve_tcp(listener);
        });
        ShardHandle {
            server,
            addr,
            thread: Some(thread),
        }
    }

    fn spawn_ephemeral(index: SignatureIndex) -> ShardHandle {
        Self::spawn(
            NedServer::new(index, 1, 1),
            TcpListener::bind("127.0.0.1:0").expect("bind"),
        )
    }

    fn spawn_durable(index_path: &Path, wal_path: &Path, listener: TcpListener) -> ShardHandle {
        let (durable, _report) =
            DurableIndex::recover(index_path, wal_path, DurableOptions::default())
                .expect("recover shard");
        Self::spawn(NedServer::with_durability(durable, 1, 1), listener)
    }

    /// Clean shutdown (drain + final checkpoint when durable) — the
    /// "replica went away" event from the router's point of view.
    fn shutdown(mut self) {
        self.server.initiate_shutdown();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ShardHandle {
    fn drop(&mut self) {
        self.server.initiate_shutdown();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn fast_options(k: usize, next_id: u64) -> RouterOptions {
    RouterOptions {
        k,
        next_id,
        read_timeout: Some(Duration::from_secs(2)),
        write_timeout: Some(Duration::from_secs(2)),
        retry_attempts: 2,
        read_rounds: 3,
        quorum: 0,
    }
}

/// Splits `index` across `shards` ephemeral in-process servers and
/// connects a router to them (one replica per shard).
fn stand_up_fleet(
    index: &SignatureIndex,
    shards: usize,
    k: usize,
) -> (Vec<ShardHandle>, ShardRouter) {
    let (map, parts) = fleet::split_index(index, shards);
    let handles: Vec<ShardHandle> = parts
        .into_iter()
        .map(ShardHandle::spawn_ephemeral)
        .collect();
    let replicas: Vec<Vec<String>> = handles.iter().map(|h| vec![h.addr.clone()]).collect();
    let router = ShardRouter::connect(map, replicas, fast_options(k, index.next_id()))
        .expect("router connects");
    (handles, router)
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ned-fleet-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

#[test]
fn fleet_knn_and_range_match_the_monolith() {
    let k = 3;
    let g = ba_graph(200, 42);
    let index = build_index(&g, k);
    let monolith = NedServer::new(index.clone(), 1, 1);
    let (_handles, router) = stand_up_fleet(&index, 3, k);

    for node in [0u32, 7, 63, 120, 199] {
        let shape = shape_of(&g, node, k);
        for top in [1usize, 5, 17, 400] {
            let want = wire_key(
                monolith
                    .execute(&Request::Sig {
                        shape: shape.clone(),
                        top,
                        within: None,
                    })
                    .expect("monolith sig"),
            );
            let got = router.knn(&shape, top, None).expect("fleet knn");
            assert_eq!(key(&got.hits), want, "knn node {node} top {top}");
        }
        for radius in [0u64, 2, 6, 50] {
            let want = wire_key(
                monolith
                    .execute(&Request::RangeSig {
                        shape: shape.clone(),
                        radius,
                    })
                    .expect("monolith rangesig"),
            );
            let got = router.range(&shape, radius).expect("fleet range");
            assert_eq!(key(&got.hits), want, "range node {node} r {radius}");
        }
    }

    // The fleet epoch vector has one slot per shard, and `epoch` sums
    // shard sizes back to the monolith's.
    let hits = router.knn(&shape_of(&g, 0, k), 3, None).expect("knn");
    assert_eq!(hits.epochs.len(), 3);
    let (_epoch_sum, len_sum) = router.epoch().expect("epoch scatter");
    assert_eq!(len_sum as usize, index.len());
}

#[test]
fn fleet_churn_stays_bit_identical() {
    let k = 3;
    let g = ba_graph(120, 7);
    let index = build_index(&g, k);
    let monolith = NedServer::new(index.clone(), 1, 1);
    let (_handles, router) = stand_up_fleet(&index, 3, k);
    let donor = ba_graph(90, 1234);

    let probes: Vec<String> = [3u32, 40, 88].iter().map(|&v| shape_of(&g, v, k)).collect();
    let check = |round: usize| {
        for (i, shape) in probes.iter().enumerate() {
            let want = wire_key(
                monolith
                    .execute(&Request::Sig {
                        shape: shape.clone(),
                        top: 12,
                        within: None,
                    })
                    .expect("monolith sig"),
            );
            let got = router.knn(shape, 12, None).expect("fleet knn");
            assert_eq!(key(&got.hits), want, "round {round} probe {i}");
        }
    };

    for round in 0..30usize {
        let shape = shape_of(&donor, (round % 90) as u32, k);
        match round % 4 {
            // Mirrored auto-assigning inserts: both sides assign ids
            // from the same sequence, so the streams stay aligned.
            0 | 1 => {
                let fleet_id = router.insert_shape(&shape).expect("fleet insert");
                let mono = monolith
                    .execute(&Request::AddSig {
                        shape: shape.clone(),
                    })
                    .expect("monolith addsig");
                match mono {
                    Response::Added { id } => assert_eq!(id, fleet_id, "id streams aligned"),
                    other => panic!("expected Added, got {other:?}"),
                }
            }
            // Explicit-id overwrite.
            2 => {
                let id = (round as u64 * 13) % 120;
                let (fresh, _epoch) = router.put_shape(id, &shape).expect("fleet put");
                let mono = monolith
                    .execute(&Request::PutSig {
                        id,
                        shape: shape.clone(),
                    })
                    .expect("monolith putsig");
                match mono {
                    Response::Put { fresh: mf, .. } => assert_eq!(mf, fresh, "freshness agrees"),
                    other => panic!("expected Put, got {other:?}"),
                }
            }
            // Removal (sometimes of an id that is already gone).
            _ => {
                let id = (round as u64 * 29) % 140;
                let fleet_existed = router.remove(id).expect("fleet remove");
                let mono = monolith
                    .execute(&Request::Remove { id })
                    .expect("monolith remove");
                match mono {
                    Response::Removed { existed, .. } => {
                        assert_eq!(existed, fleet_existed, "removal visibility agrees")
                    }
                    other => panic!("expected Removed, got {other:?}"),
                }
            }
        }
        check(round);
    }
}

#[test]
fn tracked_delta_batches_fan_out_and_match() {
    let k = 3;
    let g = ba_graph(100, 21);
    let index = build_index(&g, k);

    // Library-level monolith mirror: maintainer + single-writer index,
    // the exact machinery the router reuses via materialize/commit.
    let mut mono_maintainer = GraphMaintainer::attach(&g, k, 0, 1);
    let (mut mono_writer, mono_reader) = ConcurrentNedIndex::split(index.clone());

    let (_handles, router) = stand_up_fleet(&index, 3, k);
    router.track(&g).expect("router tracks");

    let batches: Vec<Vec<GraphDelta>> = vec![
        vec![GraphDelta::AddEdge(0, 99), GraphDelta::AddEdge(1, 98)],
        vec![GraphDelta::RemoveEdge(0, 99), GraphDelta::AddEdge(2, 97)],
        // Node growth: the router must assign the new nodes fleet ids in
        // the same sequence the monolith writer auto-assigns.
        vec![
            GraphDelta::AddNode,
            GraphDelta::AddEdge(100, 5),
            GraphDelta::AddNode,
            GraphDelta::AddEdge(101, 100),
        ],
        vec![GraphDelta::RemoveNode(3), GraphDelta::AddEdge(101, 7)],
        vec![GraphDelta::AddEdge(4, 96), GraphDelta::AddEdge(4, 95)],
    ];

    for (b, deltas) in batches.iter().enumerate() {
        let mono_report = mono_maintainer.apply(deltas, &mut mono_writer);
        let fleet_line = router.apply_delta(deltas).expect("fleet delta");
        assert!(
            fleet_line.starts_with(&mono_report.to_string()),
            "batch {b}: fleet report {fleet_line:?} vs monolith {mono_report}"
        );

        let current = mono_maintainer.graph().to_graph();
        let snap = mono_reader.snapshot();
        for node in [0u32, 50, 99] {
            let shape = shape_of(&current, node, k);
            let want: Vec<(u64, u64)> = snap
                .query(&ned_core::NodeSignature::extract(&current, node, k), 10, 1)
                .iter()
                .map(|h| (h.id, h.distance.to_bits()))
                .collect();
            let got = router.knn(&shape, 10, None).expect("fleet knn");
            assert_eq!(key(&got.hits), want, "batch {b} probe node {node}");
        }
    }
}

#[test]
fn replica_loss_degrades_retryably_and_recovery_preserves_acked_writes() {
    let k = 3;
    let g = ba_graph(80, 5);
    let index = build_index(&g, k);
    let monolith = NedServer::new(index.clone(), 1, 1);
    let dir = scratch_dir("recover");

    let (map, mut parts) = fleet::split_index(&index, 2);
    // Shard 0 runs TWO durable replicas (independent copies of the same
    // shard state); shard 1 a single ephemeral replica.
    let shard0 = parts.remove(0);
    let shard1 = parts.remove(0);
    let r1_idx = dir.join("s0r1.idx");
    let r1_wal = dir.join("s0r1.wal");
    let r2_idx = dir.join("s0r2.idx");
    let r2_wal = dir.join("s0r2.wal");
    shard0.save(&r1_idx).expect("save r1");
    shard0.save(&r2_idx).expect("save r2");

    let r1_listener = TcpListener::bind("127.0.0.1:0").expect("bind r1");
    let r1_addr = r1_listener.local_addr().expect("addr").to_string();
    let r1 = ShardHandle::spawn_durable(&r1_idx, &r1_wal, r1_listener);
    let r2 = ShardHandle::spawn_durable(
        &r2_idx,
        &r2_wal,
        TcpListener::bind("127.0.0.1:0").expect("bind r2"),
    );
    let s1 = ShardHandle::spawn_ephemeral(shard1);

    let router = ShardRouter::connect(
        map,
        vec![
            vec![r1.addr.clone(), r2.addr.clone()],
            vec![s1.addr.clone()],
        ],
        fast_options(k, index.next_id()),
    )
    .expect("router connects");

    // Churn while everything is healthy; mirror into the monolith. Ids
    // 0..40 are owned by shard 0 (80 entries split in two), so the
    // explicit puts below land on the replicated shard.
    let donor = ba_graph(40, 99);
    for i in 0..12u64 {
        let shape = shape_of(&donor, i as u32, k);
        if i % 3 == 2 {
            router.remove(i).expect("remove");
            monolith.execute(&Request::Remove { id: i }).expect("mono");
        } else {
            router.put_shape(i, &shape).expect("put");
            monolith
                .execute(&Request::PutSig { id: i, shape })
                .expect("mono");
        }
    }
    let probe = shape_of(&g, 10, k);
    let want = wire_key(
        monolith
            .execute(&Request::Sig {
                shape: probe.clone(),
                top: 15,
                within: None,
            })
            .expect("monolith sig"),
    );
    assert_eq!(
        key(&router.knn(&probe, 15, None).expect("healthy knn").hits),
        want
    );

    // Replica r1 goes away: reads fail over to r2 and stay identical...
    r1.shutdown();
    assert_eq!(
        key(&router.knn(&probe, 15, None).expect("failover knn").hits),
        want,
        "reads survive one replica loss"
    );
    // ...while writes to shard 0 cannot be acked on every replica — the
    // router reports *degraded*, a retryable condition, and never
    // half-acks (shard 1 writes still work).
    let blocked = router
        .put_shape(1, &shape_of(&donor, 20, k))
        .expect_err("shard 0 writes blocked");
    assert!(blocked.is_retryable(), "degraded, not failed: {blocked}");
    router
        .put_shape(60, &shape_of(&donor, 21, k))
        .expect("shard 1 unaffected");
    monolith
        .execute(&Request::PutSig {
            id: 60,
            shape: shape_of(&donor, 21, k),
        })
        .expect("mono");

    // Recovery: a replacement replica boots from r1's durable files on
    // the same address. Every write acked before the loss was journaled
    // before its ack, so nothing is missing, and shard 0 accepts writes
    // again.
    let r1_listener = retry_bind(&r1_addr);
    let _r1b = ShardHandle::spawn_durable(&r1_idx, &r1_wal, r1_listener);
    let want = wire_key(
        monolith
            .execute(&Request::Sig {
                shape: probe.clone(),
                top: 15,
                within: None,
            })
            .expect("monolith sig"),
    );
    assert_eq!(
        key(&router.knn(&probe, 15, None).expect("recovered knn").hits),
        want,
        "acked writes survive the crash/recover cycle"
    );
    let retried = shape_of(&donor, 20, k);
    router.put_shape(1, &retried).expect("write path recovered");
    monolith
        .execute(&Request::PutSig {
            id: 1,
            shape: retried,
        })
        .expect("mono");
    let want = wire_key(
        monolith
            .execute(&Request::Sig {
                shape: probe.clone(),
                top: 15,
                within: None,
            })
            .expect("monolith sig"),
    );
    assert_eq!(
        key(&router.knn(&probe, 15, None).expect("final knn").hits),
        want
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// Binds `addr`, retrying briefly — the previous listener's close may
/// still be settling when the replacement replica boots.
fn retry_bind(addr: &str) -> TcpListener {
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        match TcpListener::bind(addr) {
            Ok(l) => return l,
            Err(e) if std::time::Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => panic!("rebind {addr}: {e}"),
        }
    }
}

#[test]
fn router_server_speaks_the_same_wire_protocol() {
    use ned_index::router::RouterServer;
    use ned_index::WireClient;

    let k = 3;
    let g = ba_graph(60, 17);
    let index = build_index(&g, k);
    let monolith = NedServer::new(index.clone(), 1, 1);
    let (_handles, router) = stand_up_fleet(&index, 3, k);

    let front = Arc::new(RouterServer::new(router));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind front");
    let front_addr = listener.local_addr().expect("addr").to_string();
    let serving = Arc::clone(&front);
    let front_thread = std::thread::spawn(move || {
        let _ = serving.serve_tcp(listener);
    });

    let mut client = WireClient::connect(&front_addr).expect("connect");
    let shape = shape_of(&g, 9, k);

    // Typed round trip through the real socket.
    let resp = client
        .request(&Request::Sig {
            shape: shape.clone(),
            top: 8,
            within: None,
        })
        .expect("front sig");
    let want = wire_key(
        monolith
            .execute(&Request::Sig {
                shape: shape.clone(),
                top: 8,
                within: None,
            })
            .expect("monolith sig"),
    );
    assert_eq!(wire_key(resp), want, "front-end == monolith over the wire");

    // Text-form compatibility: the epoch probe and a write keep the
    // historical reply grammar intact for old clients.
    let reply = client.call("epoch").expect("epoch text");
    assert!(reply.starts_with("ok epoch="), "reply was {reply:?}");
    let reply = client.call(&format!("addsig {shape}")).expect("addsig");
    assert!(reply.starts_with("ok id="), "reply was {reply:?}");
    let reply = client.call("stats").expect("stats");
    assert!(reply.contains("router: 3 shard(s)"), "reply was {reply:?}");
    let reply = client.call("help").expect("help");
    assert!(reply.contains("scatter-gather"), "reply was {reply:?}");
    // Batched frames split per command, like the single server.
    let reply = client
        .call(&format!("sig {shape} 3\nepoch"))
        .expect("batch");
    let parsed = Response::parse_stream(&reply).expect("parse batch");
    assert_eq!(parsed.len(), 2, "two replies for two commands");
    let reply = client.call("save /tmp/nope.idx").expect("save");
    assert!(
        reply.starts_with("error: ") && reply.contains("no index"),
        "reply was {reply:?}"
    );
    let reply = client.call("quit").expect("quit");
    assert_eq!(reply, "ok bye");

    // Shutdown drains the front-end but leaves the shards serving.
    let mut c2 = WireClient::connect(&front_addr).expect("reconnect");
    let reply = c2.call("shutdown").expect("shutdown");
    assert!(reply.starts_with("ok draining"), "reply was {reply:?}");
    front_thread.join().expect("front drains");
    front.router().shutdown_fleet();
}
