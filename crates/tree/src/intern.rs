//! Interning of canonical children-multiset signatures.
//!
//! Everywhere the TED\*/NED pipeline canonizes tree levels it asks one
//! question over and over: *are these two sorted children-label multisets
//! equal?* The seed answered it by sorting `Vec<u32>` collections and
//! comparing them lexicographically — per level, per pair, re-hashing the
//! same handful of shapes (`[]` alone usually covers most of a BFS
//! level's slots) millions of times across a workload.
//!
//! A [`SignatureInterner`] maps each distinct multiset to a dense `u32`
//! id, once, process-wide. Because child entries of an interned multiset
//! are themselves interner ids, equal ids ⇔ isomorphic subtrees, so every
//! downstream equality (zero-pairing, duplicate collapsing, equivalence
//! classes, store deduplication) becomes a `u32` compare — and label
//! *values* never matter to TED\* (only equality does), so swapping dense
//! per-level ranks for global interner ids leaves every distance
//! bit-identical.
//!
//! The interner is sharded and behind mutexes so parallel batch workloads
//! (`ned-core::batch`) can share it; ids are assigned from one atomic
//! counter and are stable for the lifetime of the process (they are *not*
//! stable across processes — persist canonical codes, not ids).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};

const SHARDS: usize = 16;

/// A process-wide dictionary from canonical children-multisets to dense
/// `u32` ids. See the module docs for the contract.
pub struct SignatureInterner {
    shards: [Mutex<HashMap<Box<[u32]>, u32>>; SHARDS],
    next: AtomicU32,
    /// Id of the empty multiset (a leaf's children signature), interned at
    /// construction so the hottest lookup is branch-free.
    empty: u32,
}

impl Default for SignatureInterner {
    fn default() -> Self {
        Self::new()
    }
}

impl SignatureInterner {
    /// An empty interner with the empty multiset pre-interned as id 0.
    pub fn new() -> Self {
        let interner = SignatureInterner {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            next: AtomicU32::new(0),
            empty: 0,
        };
        let id = interner.intern(&[]);
        debug_assert_eq!(id, 0);
        interner
    }

    /// The shared process-wide interner. All [`crate::Tree`]-derived
    /// signatures produced through `ned-core`'s prepared paths use this,
    /// which is what makes their ids mutually comparable.
    pub fn global() -> &'static SignatureInterner {
        static GLOBAL: OnceLock<SignatureInterner> = OnceLock::new();
        GLOBAL.get_or_init(SignatureInterner::new)
    }

    #[inline]
    fn shard_of(key: &[u32]) -> usize {
        // FNV-1a over the label words; cheap and well-spread for the
        // short keys involved.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &w in key {
            h ^= u64::from(w);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h as usize) % SHARDS
    }

    /// The id of the sorted multiset `key`, allocating a fresh id on first
    /// sight. `key` **must already be sorted** — the interner does not
    /// re-sort (sorting is the caller's canonization step).
    pub fn intern(&self, key: &[u32]) -> u32 {
        debug_assert!(key.windows(2).all(|w| w[0] <= w[1]), "key must be sorted");
        if key.is_empty() && self.next.load(Ordering::Relaxed) > 0 {
            return self.empty;
        }
        let mut shard = self.shards[Self::shard_of(key)]
            .lock()
            .expect("interner shard poisoned");
        if let Some(&id) = shard.get(key) {
            return id;
        }
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        assert!(id != u32::MAX, "interner id space exhausted");
        shard.insert(key.to_vec().into_boxed_slice(), id);
        id
    }

    /// The id of the empty multiset (leaves).
    #[inline]
    pub fn empty_id(&self) -> u32 {
        self.empty
    }

    /// Number of distinct signatures interned so far.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("interner shard poisoned").len())
            .sum()
    }

    /// `true` when nothing beyond the pre-interned empty multiset has
    /// been interned.
    pub fn is_empty(&self) -> bool {
        self.len() <= 1
    }

    /// Per-node interned subtree ids, bottom-up: `out[v]` is the id of
    /// node `v`'s children-multiset where entries are the children's own
    /// interned ids. Two nodes — of this or any other tree interned
    /// through the same interner — share an id **iff** their subtrees are
    /// isomorphic.
    ///
    /// This is the interned replacement for per-level joint canonization
    /// ranking ([`crate::ahu::canonical_level_labels`]): one hash lookup
    /// per node instead of a comparison sort over collections.
    pub fn subtree_ids(&self, tree: &crate::Tree) -> Vec<u32> {
        let n = tree.len();
        let mut ids = vec![self.empty; n];
        let mut scratch: Vec<u32> = Vec::new();
        // Children have larger ids in BFS order, so a reverse sweep sees
        // children before parents.
        for v in (0..n as u32).rev() {
            let children = tree.children(v);
            if children.is_empty() {
                continue; // leaves keep the pre-set empty id
            }
            scratch.clear();
            scratch.extend(children.map(|c| ids[c as usize]));
            scratch.sort_unstable();
            ids[v as usize] = self.intern(&scratch);
        }
        ids
    }

    /// Per-level sorted class ids: `out[l]` holds the [`Self::subtree_ids`]
    /// of level `l`'s nodes, sorted ascending. This is the "signature" a
    /// prepared tree carries for histogram lower bounds and fast
    /// equality.
    pub fn level_classes(&self, tree: &crate::Tree) -> Vec<Vec<u32>> {
        let ids = self.subtree_ids(tree);
        (0..tree.num_levels())
            .map(|l| {
                let r = tree.level(l);
                let mut lvl: Vec<u32> = ids[r.start as usize..r.end as usize].to_vec();
                lvl.sort_unstable();
                lvl
            })
            .collect()
    }
}

impl std::fmt::Debug for SignatureInterner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SignatureInterner")
            .field("distinct", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ahu, generate, Tree};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn empty_multiset_is_id_zero() {
        let i = SignatureInterner::new();
        assert_eq!(i.intern(&[]), 0);
        assert_eq!(i.empty_id(), 0);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn equal_keys_share_ids() {
        let i = SignatureInterner::new();
        let a = i.intern(&[1, 2, 2]);
        let b = i.intern(&[1, 2, 2]);
        let c = i.intern(&[1, 2, 3]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(i.len(), 3);
    }

    #[test]
    fn subtree_ids_agree_with_isomorphism() {
        let i = SignatureInterner::new();
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..40 {
            let a = generate::random_bounded_depth_tree(18, 4, &mut rng);
            let b = generate::random_bounded_depth_tree(18, 4, &mut rng);
            let ia = i.subtree_ids(&a);
            let ib = i.subtree_ids(&b);
            assert_eq!(ia[0] == ib[0], ahu::isomorphic(&a, &b));
            // per-node: id equality within one tree matches fingerprints
            let fa = ahu::subtree_fingerprints(&a);
            for u in a.nodes() {
                for v in a.nodes() {
                    assert_eq!(
                        ia[u as usize] == ia[v as usize],
                        fa[u as usize] == fa[v as usize],
                        "nodes {u},{v}"
                    );
                }
            }
        }
    }

    #[test]
    fn ids_comparable_across_trees() {
        let i = SignatureInterner::new();
        // A leaf anywhere is class 0; a node with two leaf children has
        // the same id in any tree.
        let t1 = Tree::from_parents(&[0, 0, 0]).unwrap(); // root + 2 leaves
        let t2 = Tree::from_parents(&[0, 0, 1, 1]).unwrap(); // chain: node 1 has 2 leaves
        let i1 = i.subtree_ids(&t1);
        let i2 = i.subtree_ids(&t2);
        assert_eq!(i1[1], 0);
        assert_eq!(i1[0], i2[1], "root(2 leaves) appears in both trees");
    }

    #[test]
    fn level_classes_are_sorted_per_level() {
        let i = SignatureInterner::new();
        let mut rng = SmallRng::seed_from_u64(6);
        let t = generate::random_bounded_depth_tree(60, 4, &mut rng);
        let lc = i.level_classes(&t);
        assert_eq!(lc.len(), t.num_levels());
        for (l, classes) in lc.iter().enumerate() {
            assert_eq!(classes.len(), t.level_size(l));
            assert!(classes.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn global_interner_is_shared() {
        let a = SignatureInterner::global();
        let b = SignatureInterner::global();
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let interner = SignatureInterner::new();
        let keys: Vec<Vec<u32>> = (0..64u32).map(|x| vec![x % 8, 7 + x % 5]).collect();
        let ids: Vec<Vec<u32>> = std::thread::scope(|scope| {
            (0..4)
                .map(|_| {
                    scope.spawn(|| {
                        keys.iter()
                            .map(|k| interner.intern(k))
                            .collect::<Vec<u32>>()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for w in ids.windows(2) {
            assert_eq!(w[0], w[1], "threads must agree on every id");
        }
    }
}
