//! Exact (exponential-time) unordered tree edit distance.
//!
//! Computing TED on unordered trees is NP-complete (Zhang, Statman, Shasha
//! 1992) and even MaxSNP-hard, which is the paper's motivation for TED\*.
//! For the evaluation (Figures 5 and 6) the paper still computes *exact*
//! TED on small trees with an A\*-style search that "can only deal with
//! small graphs and trees with only up to 10-12 nodes". This module plays
//! that role.
//!
//! For unlabeled trees with unit insert/delete costs, Tai's mapping theorem
//! gives
//!
//! ```text
//! TED(T1, T2) = |T1| + |T2| - 2 · max |M|
//! ```
//!
//! where `M` ranges over *Tai mappings*: one-to-one node correspondences
//! that preserve the ancestor relation in both directions (sibling order is
//! irrelevant for unordered trees, and with no labels every pair may match
//! at zero cost). We search for the maximum mapping with branch-and-bound
//! over T1's nodes in BFS order, using bitmask ancestor tests.

use crate::Tree;

/// Default node-count cap for [`exact_ted`]. Matches the scale the paper
/// reports as feasible for the exact A\* baselines.
pub const DEFAULT_EXACT_LIMIT: usize = 14;

/// Hard cap imposed by the 64-bit ancestor bitmasks.
pub const HARD_EXACT_LIMIT: usize = 64;

/// Exact unordered tree edit distance with unit-cost leaf/internal insert
/// and delete operations (no rename — the trees are unlabeled).
///
/// Returns `None` when either tree exceeds [`DEFAULT_EXACT_LIMIT`] nodes;
/// use [`exact_ted_bounded`] to pick your own cap (the search is
/// exponential in the worst case, so raise it with care).
pub fn exact_ted(t1: &Tree, t2: &Tree) -> Option<u64> {
    exact_ted_bounded(t1, t2, DEFAULT_EXACT_LIMIT)
}

/// [`exact_ted`] with an explicit node-count cap (≤ 64).
pub fn exact_ted_bounded(t1: &Tree, t2: &Tree, limit: usize) -> Option<u64> {
    let limit = limit.min(HARD_EXACT_LIMIT);
    if t1.len() > limit || t2.len() > limit {
        return None;
    }
    let n1 = t1.len();
    let n2 = t2.len();
    let best = max_tai_mapping(t1, t2);
    Some((n1 + n2 - 2 * best) as u64)
}

/// Size of the maximum Tai mapping between two small trees.
pub fn max_tai_mapping(t1: &Tree, t2: &Tree) -> usize {
    let anc1 = ancestor_masks(t1);
    let anc2 = ancestor_masks(t2);
    let n1 = t1.len();
    let n2 = t2.len();

    // Candidate order: try matching equal-depth nodes first; good initial
    // incumbents make the bound bite earlier.
    let depths1: Vec<usize> = (0..n1 as u32).map(|v| t1.depth(v)).collect();
    let depths2: Vec<usize> = (0..n2 as u32).map(|v| t2.depth(v)).collect();
    let mut order2: Vec<Vec<u32>> = vec![Vec::with_capacity(n2); n1];
    for (i, row) in order2.iter_mut().enumerate() {
        let mut cands: Vec<u32> = (0..n2 as u32).collect();
        cands.sort_by_key(|&j| depths1[i].abs_diff(depths2[j as usize]));
        *row = cands;
    }

    let mut search = Search {
        t1_anc: &anc1,
        t2_anc: &anc2,
        order2: &order2,
        n1,
        n2,
        pairs: Vec::with_capacity(n1.min(n2)),
        best: greedy_level_mapping(t1, t2),
    };
    search.recurse(0, 0);
    search.best
}

/// Quick incumbent: match nodes level-by-level greedily (parent-consistent).
/// Always yields a valid Tai mapping because parents are matched before
/// children and matched pairs sit on identical depths.
fn greedy_level_mapping(t1: &Tree, t2: &Tree) -> usize {
    // Pair roots, then repeatedly pair children of already-paired nodes.
    let mut count = 1usize; // roots
    let mut frontier: Vec<(u32, u32)> = vec![(0, 0)];
    while let Some((a, b)) = frontier.pop() {
        let c1: Vec<u32> = t1.children(a).collect();
        let c2: Vec<u32> = t2.children(b).collect();
        for (x, y) in c1.into_iter().zip(c2) {
            count += 1;
            frontier.push((x, y));
        }
    }
    count
}

fn ancestor_masks(t: &Tree) -> Vec<u64> {
    let n = t.len();
    let mut masks = vec![0u64; n];
    for v in 1..n {
        let p = t.parent(v as u32).unwrap() as usize;
        masks[v] = masks[p] | (1u64 << p);
    }
    masks
}

struct Search<'a> {
    t1_anc: &'a [u64],
    t2_anc: &'a [u64],
    order2: &'a [Vec<u32>],
    n1: usize,
    n2: usize,
    /// Current partial mapping as (t1 node, t2 node) pairs.
    pairs: Vec<(u32, u32)>,
    best: usize,
}

impl Search<'_> {
    fn recurse(&mut self, i: usize, used2: u64) {
        if i == self.n1 {
            self.best = self.best.max(self.pairs.len());
            return;
        }
        // Upper bound: everything still unprocessed could match.
        let avail2 = self.n2 - (used2.count_ones() as usize);
        let ub = self.pairs.len() + (self.n1 - i).min(avail2);
        if ub <= self.best {
            return;
        }
        // Option A: map node i to each compatible candidate.
        for &j in &self.order2[i] {
            if used2 & (1u64 << j) != 0 {
                continue;
            }
            if self.compatible(i as u32, j) {
                self.pairs.push((i as u32, j));
                self.recurse(i + 1, used2 | (1u64 << j));
                self.pairs.pop();
            }
        }
        // Option B: leave node i unmapped (deleted).
        self.recurse(i + 1, used2);
    }

    /// Tai conditions against every pair already in the mapping. T1 nodes
    /// are processed in BFS order, so an earlier node `a` is never a
    /// descendant of `i`; the symmetric condition therefore reduces to
    /// "j must not be an ancestor of b".
    fn compatible(&self, i: u32, j: u32) -> bool {
        let anc_i = self.t1_anc[i as usize];
        let anc_j = self.t2_anc[j as usize];
        for &(a, b) in &self.pairs {
            let a_anc_i = anc_i >> a & 1;
            let b_anc_j = anc_j >> b & 1;
            if a_anc_i != b_anc_j {
                return false;
            }
            if a_anc_i == 0 && (self.t2_anc[b as usize] >> j & 1) == 1 {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{path_tree, perfect_tree, random_bounded_depth_tree, star_tree};
    use crate::{ahu, Tree};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn t(parents: &[u32]) -> Tree {
        Tree::from_parents(parents).unwrap()
    }

    #[test]
    fn identical_trees_distance_zero() {
        let a = t(&[0, 0, 1, 1, 0]);
        assert_eq!(exact_ted(&a, &a), Some(0));
    }

    #[test]
    fn isomorphic_trees_distance_zero() {
        let a = t(&[0, 0, 0, 1]);
        let b = t(&[0, 0, 0, 2]);
        assert!(ahu::isomorphic(&a, &b));
        assert_eq!(exact_ted(&a, &b), Some(0));
    }

    #[test]
    fn singleton_vs_star() {
        // Deleting n-1 leaves turns the star into a singleton.
        let s = star_tree(5);
        assert_eq!(exact_ted(&Tree::singleton(), &s), Some(4));
    }

    #[test]
    fn path_vs_star_same_size() {
        // path(4): 0-1-2-3 ; star(4): root + 3 leaves.
        // Mapping can keep root + one child + ... the path's node 2 is a
        // grandchild, the star has none, so max mapping = 2 (root + one
        // child) + nothing deeper → wait: star leaves are incomparable, and
        // path nodes 1,2,3 form a chain, only one of which can map to a
        // leaf... but incomparable path nodes do not exist. Max mapping = 2.
        let p = path_tree(4);
        let s = star_tree(4);
        assert_eq!(exact_ted(&p, &s), Some(4 + 4 - 2 * 2));
    }

    #[test]
    fn single_leaf_added() {
        let a = t(&[0, 0, 0]);
        let b = t(&[0, 0, 0, 0]);
        assert_eq!(exact_ted(&a, &b), Some(1));
    }

    #[test]
    fn internal_node_operations_are_cheap_for_classic_ted() {
        // Classic TED may delete/insert *internal* nodes, shifting whole
        // subtrees across levels — the capability TED* deliberately gives
        // up. Here: delete internal node B (D and E float up to A), then
        // insert internal node H between E and {F, G}: exactly 2 ops.
        //
        // T_alpha: A(B(D, E(F, G)), C)   ids: A=0,B=1,C=2,D=3,E=4,F=5,G=6
        let alpha = t(&[0, 0, 0, 1, 1, 4, 4]);
        // T_beta: A(D, E(H(F, G)), C)    ids: A=0,D=1,E=2,C=3,H=4,F=5,G=6
        let beta = t(&[0, 0, 0, 0, 2, 4, 4]);
        assert_eq!(exact_ted(&alpha, &beta), Some(2));
        // Equal sizes force an even op count; non-isomorphic rules out 0.
        assert!(!ahu::isomorphic(&alpha, &beta));
    }

    #[test]
    fn limit_respected() {
        let big = star_tree(40);
        assert_eq!(exact_ted(&big, &big), None);
        assert_eq!(exact_ted_bounded(&big, &big, 64), Some(0));
    }

    #[test]
    fn symmetric_on_random_trees() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..20 {
            let a = random_bounded_depth_tree(8, 3, &mut rng);
            let b = random_bounded_depth_tree(9, 3, &mut rng);
            assert_eq!(exact_ted(&a, &b), exact_ted(&b, &a));
        }
    }

    #[test]
    fn triangle_inequality_on_random_trees() {
        let mut rng = SmallRng::seed_from_u64(12);
        for _ in 0..15 {
            let a = random_bounded_depth_tree(7, 3, &mut rng);
            let b = random_bounded_depth_tree(8, 3, &mut rng);
            let c = random_bounded_depth_tree(7, 3, &mut rng);
            let ab = exact_ted(&a, &b).unwrap();
            let bc = exact_ted(&b, &c).unwrap();
            let ac = exact_ted(&a, &c).unwrap();
            assert!(ac <= ab + bc, "triangle violated: {ac} > {ab} + {bc}");
        }
    }

    #[test]
    fn size_difference_lower_bound() {
        let mut rng = SmallRng::seed_from_u64(13);
        for _ in 0..15 {
            let a = random_bounded_depth_tree(6, 2, &mut rng);
            let b = random_bounded_depth_tree(11, 3, &mut rng);
            let d = exact_ted(&a, &b).unwrap();
            assert!(d >= (a.len().abs_diff(b.len())) as u64);
            assert!(d <= (a.len() + b.len() - 2) as u64); // roots always map
        }
    }

    #[test]
    fn perfect_trees_subset_relation() {
        // perfect(2,3) has 7 nodes, perfect(2,2) has 3; the smaller embeds
        // into the larger so TED = size difference.
        let big = perfect_tree(2, 3);
        let small = perfect_tree(2, 2);
        assert_eq!(exact_ted(&big, &small), Some(4));
    }
}
