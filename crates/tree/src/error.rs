use std::fmt;

/// Errors raised while constructing or validating a [`crate::Tree`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// The parent array was empty; a tree has at least its root.
    Empty,
    /// A node referenced a parent id outside `0..n`.
    ParentOutOfRange {
        /// Offending node.
        node: u32,
        /// The out-of-range parent it referenced.
        parent: u32,
    },
    /// More than one node was its own parent (multiple roots).
    MultipleRoots {
        /// The first root encountered.
        first: u32,
        /// The conflicting second root.
        second: u32,
    },
    /// No node was its own parent, so the structure has no root.
    NoRoot,
    /// The parent pointers contain a cycle (some node is unreachable
    /// from the root).
    Unreachable {
        /// A node that could not be reached from the root.
        node: u32,
    },
    /// A requested node id does not exist in the tree.
    NodeOutOfRange {
        /// The invalid node id.
        node: u32,
        /// Number of nodes in the tree.
        len: usize,
    },
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::Empty => write!(f, "tree must contain at least the root node"),
            TreeError::ParentOutOfRange { node, parent } => {
                write!(f, "node {node} references out-of-range parent {parent}")
            }
            TreeError::MultipleRoots { first, second } => {
                write!(f, "multiple roots: {first} and {second}")
            }
            TreeError::NoRoot => write!(f, "no root node (no node is its own parent)"),
            TreeError::Unreachable { node } => {
                write!(f, "node {node} is unreachable from the root (cycle?)")
            }
            TreeError::NodeOutOfRange { node, len } => {
                write!(f, "node id {node} out of range for tree of {len} nodes")
            }
        }
    }
}

impl std::error::Error for TreeError {}
