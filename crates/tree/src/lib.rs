//! Unordered rooted tree substrate for the NED reproduction.
//!
//! This crate provides the tree machinery that the paper's TED\* algorithm
//! (crate `ned-core`) operates on:
//!
//! * [`Tree`] — a compact, level-structured representation of an unordered,
//!   unlabeled rooted tree. Nodes are stored in breadth-first order so that
//!   every BFS level is a contiguous id range, which is exactly the access
//!   pattern the level-by-level TED\* algorithm needs.
//! * [`TreeBuilder`] — incremental construction in any order; `build`
//!   re-canonicalizes the storage into BFS order.
//! * [`ahu`] — AHU canonical forms and unordered rooted-tree isomorphism
//!   (polynomial, used for the metric identity property).
//! * [`SignatureInterner`] — process-wide interning of canonical
//!   children-multisets into dense `u32` ids, the label currency of the
//!   TED\* hot path (`ned-core`) and its duplicate-collapsed matching.
//! * [`ShapeTable`] — hash-consed canonical shapes per interned class
//!   (code bytes + code-ordered children), letting bulk extraction
//!   reconstruct canonical trees by table expansion instead of per-node
//!   re-canonicalization.
//! * [`generate`] — seeded random and structured tree generators used by the
//!   test-suite, the property tests, and the benchmarks.
//! * [`exact`] — exponential-time *exact* unordered tree edit distance
//!   (the NP-complete baseline the paper compares TED\* against in
//!   Figures 5 and 6), implemented as branch-and-bound over
//!   ancestor-preserving (Tai) mappings.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ahu;
mod builder;
mod error;
pub mod exact;
pub mod generate;
mod intern;
pub mod serialize;
pub mod shapes;
mod tree;

pub use builder::TreeBuilder;
pub use error::TreeError;
pub use intern::SignatureInterner;
pub use shapes::{ShapeEntry, ShapeTable};
pub use tree::{NodeId, Tree};
