use crate::TreeError;
use std::fmt;
use std::ops::Range;

/// Node identifier inside a [`Tree`]. Node `0` is always the root.
pub type NodeId = u32;

/// An unordered, unlabeled rooted tree stored in breadth-first order.
///
/// The storage layout is the backbone of the whole reproduction:
///
/// * Nodes are numbered `0..n` in BFS order, so every level occupies a
///   contiguous id range ([`Tree::level`]).
/// * Within a level, nodes are grouped by parent, so the children of node
///   `v` are themselves a contiguous id range ([`Tree::children`]).
/// * `parent[v] < v` for every non-root node.
///
/// The paper numbers levels starting from 1 (the root level); this crate
/// uses 0-based levels, i.e. the root is on level 0 and a `k`-adjacent tree
/// in the paper's sense has levels `0..k`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Tree {
    /// `parent[v]` for `v > 0`; `parent\[0\] == 0` by convention.
    parent: Vec<NodeId>,
    /// Children of `v` are node ids `child_offsets[v]..child_offsets[v + 1]`.
    child_offsets: Vec<usize>,
    /// Level `l` is node ids `level_offsets[l]..level_offsets[l + 1]`.
    level_offsets: Vec<usize>,
}

impl Tree {
    /// The tree consisting of a single root node.
    pub fn singleton() -> Self {
        Tree {
            parent: vec![0],
            child_offsets: vec![1, 1],
            level_offsets: vec![0, 1],
        }
    }

    /// Builds a tree from an arbitrary parent array.
    ///
    /// `parents[v]` is the parent of node `v`; the root is the unique node
    /// with `parents[root] == root`. Node ids are re-assigned into BFS
    /// order; use [`Tree::from_parents_with_mapping`] if the original ids
    /// matter.
    pub fn from_parents(parents: &[NodeId]) -> Result<Self, TreeError> {
        Self::from_parents_with_mapping(parents).map(|(t, _)| t)
    }

    /// Like [`Tree::from_parents`] but also returns `mapping` where
    /// `mapping[new_id] = original_id`.
    pub fn from_parents_with_mapping(parents: &[NodeId]) -> Result<(Self, Vec<NodeId>), TreeError> {
        let n = parents.len();
        if n == 0 {
            return Err(TreeError::Empty);
        }
        let mut root: Option<u32> = None;
        for (v, &p) in parents.iter().enumerate() {
            if p as usize >= n {
                return Err(TreeError::ParentOutOfRange {
                    node: v as u32,
                    parent: p,
                });
            }
            if p as usize == v {
                match root {
                    None => root = Some(v as u32),
                    Some(first) => {
                        return Err(TreeError::MultipleRoots {
                            first,
                            second: v as u32,
                        })
                    }
                }
            }
        }
        let root = root.ok_or(TreeError::NoRoot)?;

        // Child adjacency in the original numbering (counting sort by parent).
        let mut counts = vec![0usize; n + 1];
        for (v, &p) in parents.iter().enumerate() {
            if v as u32 != root {
                counts[p as usize + 1] += 1;
            }
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let mut cursor = counts.clone();
        let mut child_list = vec![0u32; n - 1];
        for (v, &p) in parents.iter().enumerate() {
            if v as u32 != root {
                child_list[cursor[p as usize]] = v as u32;
                cursor[p as usize] += 1;
            }
        }

        // BFS from the root, grouping children by parent (they already are,
        // via the counting sort) and recording level boundaries.
        let mut order = Vec::with_capacity(n); // order[new_id] = old_id
        let mut new_id = vec![u32::MAX; n];
        let mut level_offsets = vec![0usize];
        order.push(root);
        new_id[root as usize] = 0;
        let mut level_start = 0usize;
        while level_start < order.len() {
            let level_end = order.len();
            level_offsets.push(level_end);
            for idx in level_start..level_end {
                let old_v = order[idx] as usize;
                for &c in &child_list[counts[old_v]..counts[old_v + 1]] {
                    new_id[c as usize] = order.len() as u32;
                    order.push(c);
                }
            }
            level_start = level_end;
        }
        // The loop pushes a boundary after every completed level, including
        // a trailing duplicate once no new nodes appear; drop it.
        if level_offsets.len() >= 2
            && level_offsets[level_offsets.len() - 1] == level_offsets[level_offsets.len() - 2]
        {
            level_offsets.pop();
        }

        if order.len() != n {
            let missing = new_id
                .iter()
                .position(|&x| x == u32::MAX)
                .expect("some node must be unvisited");
            return Err(TreeError::Unreachable {
                node: missing as u32,
            });
        }

        // Re-derive parent and child offsets in the new numbering. Children
        // were appended parent-by-parent in BFS order, so they are contiguous.
        let mut parent = vec![0u32; n];
        for (new_v, &old_v) in order.iter().enumerate() {
            if old_v != root {
                parent[new_v] = new_id[parents[old_v as usize] as usize];
            }
        }
        // In BFS order children are grouped by their parent's position, so
        // the first child of `v` sits at `1 + Σ_{w < v} child_count(w)`.
        let mut child_counts = vec![0usize; n];
        for &p in parent.iter().skip(1) {
            child_counts[p as usize] += 1;
        }
        let mut child_offsets = vec![0usize; n + 1];
        let mut acc = 1usize;
        for v in 0..n {
            child_offsets[v] = acc;
            acc += child_counts[v];
        }
        child_offsets[n] = acc;
        debug_assert_eq!(acc, n);
        let tree = Tree {
            parent,
            child_offsets,
            level_offsets,
        };
        debug_assert!(tree.check_invariants().is_ok());
        Ok((tree, order))
    }

    /// Zero-copy constructor from already-BFS-ordered parts, used by the
    /// hot k-adjacent-tree extraction path in `ned-graph`.
    ///
    /// The parts must satisfy every invariant listed on [`Tree`]
    /// (BFS-ordered nodes, contiguous per-parent children, consistent
    /// offsets). Violations are caught by `debug_assert!` in debug builds
    /// and cause unspecified (but memory-safe) behaviour in release
    /// builds; prefer [`Tree::from_parents`] unless profiling says
    /// otherwise.
    pub fn from_bfs_parts(
        parent: Vec<NodeId>,
        child_offsets: Vec<usize>,
        level_offsets: Vec<usize>,
    ) -> Self {
        let tree = Tree {
            parent,
            child_offsets,
            level_offsets,
        };
        debug_assert!(
            tree.check_invariants().is_ok(),
            "invalid BFS parts: {:?}",
            tree.check_invariants()
        );
        tree
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// A tree is never empty; provided for API completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of edges (`len() - 1`).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.len() - 1
    }

    /// Number of levels (depth of the deepest node + 1). A singleton has 1.
    #[inline]
    pub fn num_levels(&self) -> usize {
        self.level_offsets.len() - 1
    }

    /// The id range of nodes on `level` (0 = root level). Levels beyond the
    /// tree's depth are empty ranges.
    #[inline]
    pub fn level(&self, level: usize) -> Range<u32> {
        if level + 1 >= self.level_offsets.len() {
            let n = self.len() as u32;
            return n..n;
        }
        self.level_offsets[level] as u32..self.level_offsets[level + 1] as u32
    }

    /// Number of nodes on `level`.
    #[inline]
    pub fn level_size(&self, level: usize) -> usize {
        let r = self.level(level);
        (r.end - r.start) as usize
    }

    /// Maximum level width (the `n` in the paper's `O(k·n³)` bound).
    pub fn max_width(&self) -> usize {
        (0..self.num_levels())
            .map(|l| self.level_size(l))
            .max()
            .unwrap_or(0)
    }

    /// Parent of `v`, or `None` for the root.
    #[inline]
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        if v == 0 {
            None
        } else {
            Some(self.parent[v as usize])
        }
    }

    /// Children of `v` as a contiguous id range.
    #[inline]
    pub fn children(&self, v: NodeId) -> Range<u32> {
        self.child_offsets[v as usize] as u32..self.child_offsets[v as usize + 1] as u32
    }

    /// Number of children of `v`.
    #[inline]
    pub fn num_children(&self, v: NodeId) -> usize {
        self.child_offsets[v as usize + 1] - self.child_offsets[v as usize]
    }

    /// `true` if `v` has no children.
    #[inline]
    pub fn is_leaf(&self, v: NodeId) -> bool {
        self.num_children(v) == 0
    }

    /// Depth of node `v` (root has depth 0). `O(log levels)`.
    pub fn depth(&self, v: NodeId) -> usize {
        debug_assert!((v as usize) < self.len());
        match self.level_offsets.binary_search(&(v as usize)) {
            Ok(l) if l + 1 == self.level_offsets.len() => l - 1,
            Ok(l) => l,
            Err(l) => l - 1,
        }
    }

    /// Iterator over all node ids in BFS order.
    pub fn nodes(&self) -> Range<u32> {
        0..self.len() as u32
    }

    /// Ids of all leaves.
    pub fn leaves(&self) -> Vec<NodeId> {
        self.nodes().filter(|&v| self.is_leaf(v)).collect()
    }

    /// Size of the subtree rooted at every node (`out[v]` includes `v`).
    pub fn subtree_sizes(&self) -> Vec<u32> {
        let n = self.len();
        let mut sizes = vec![1u32; n];
        for v in (1..n).rev() {
            let p = self.parent[v] as usize;
            sizes[p] += sizes[v];
        }
        sizes
    }

    /// Per-node subtree *level profiles*: `out[v][d]` counts the nodes at
    /// relative depth `d` inside `v`'s subtree (`out[v]\[0\] == 1`).
    ///
    /// The L1 distance between two profiles lower-bounds the TED\* between
    /// the two subtrees (every level-size difference forces that many leaf
    /// inserts/deletes), which makes profiles a cheap pairing heuristic
    /// for edit-script generation and a filter for similarity search.
    pub fn subtree_profiles(&self) -> Vec<Vec<u32>> {
        let n = self.len();
        let mut profiles: Vec<Vec<u32>> = vec![Vec::new(); n];
        for v in (0..n as u32).rev() {
            let mut profile = vec![1u32];
            for c in self.children(v) {
                let child_len = profiles[c as usize].len();
                if profile.len() < child_len + 1 {
                    profile.resize(child_len + 1, 0);
                }
                for d in 0..child_len {
                    profile[d + 1] += profiles[c as usize][d];
                }
            }
            profiles[v as usize] = profile;
        }
        profiles
    }

    /// Strict-ancestor test: is `a` a proper ancestor of `b`? `O(depth)`.
    pub fn is_ancestor(&self, a: NodeId, b: NodeId) -> bool {
        if a >= b {
            return false; // BFS order: ancestors have strictly smaller ids
        }
        let mut cur = b;
        while cur != 0 {
            cur = self.parent[cur as usize];
            if cur == a {
                return true;
            }
            if cur < a {
                return false;
            }
        }
        a == 0 && b != 0
    }

    /// The top `levels` levels as a new tree (the paper's `T(v, k)` given
    /// `T(v)`); `levels == 0` is clamped to 1 so the root always survives.
    pub fn truncate(&self, levels: usize) -> Tree {
        let levels = levels.max(1);
        if levels >= self.num_levels() {
            return self.clone();
        }
        let keep = self.level_offsets[levels];
        let parent = self.parent[..keep].to_vec();
        let mut child_offsets: Vec<usize> = self.child_offsets[..keep].to_vec();
        child_offsets.push(keep); // new sentinel
        for off in child_offsets.iter_mut() {
            *off = (*off).min(keep);
        }
        let level_offsets = self.level_offsets[..=levels].to_vec();
        Tree::from_bfs_parts(parent, child_offsets, level_offsets)
    }

    /// Multiset of node degrees (root degree = #children, others +1).
    pub fn degree_histogram(&self) -> Vec<usize> {
        let mut hist = Vec::new();
        for v in self.nodes() {
            let d = self.num_children(v) + usize::from(v != 0);
            if d >= hist.len() {
                hist.resize(d + 1, 0);
            }
            hist[d] += 1;
        }
        hist
    }

    /// Validates all structural invariants; used by `debug_assert!`s and the
    /// property tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        let n = self.len();
        if n == 0 {
            return Err("empty tree".into());
        }
        if self.parent[0] != 0 {
            return Err("root must be its own parent".into());
        }
        if self.level_offsets.first() != Some(&0) || self.level_offsets.last() != Some(&n) {
            return Err("level offsets must span 0..n".into());
        }
        if self.level_offsets.len() < 2 || self.level_offsets[1] != 1 {
            return Err("level 0 must contain exactly the root".into());
        }
        if self.level_offsets.windows(2).any(|w| w[0] >= w[1]) {
            return Err("level offsets must be strictly increasing".into());
        }
        if self.child_offsets.len() != n + 1 {
            return Err("child offset length mismatch".into());
        }
        if self.child_offsets[n] != n {
            return Err("child offsets must end at n".into());
        }
        for v in 1..n {
            let p = self.parent[v] as usize;
            if p >= v {
                return Err(format!("parent {p} of node {v} not earlier in BFS order"));
            }
            let r = self.children(p as u32);
            if !(r.start as usize <= v && v < r.end as usize) {
                return Err(format!("node {v} outside its parent's child range"));
            }
            if self.depth(v as u32) != self.depth(p as u32) + 1 {
                return Err(format!("node {v} not exactly one level below its parent"));
            }
        }
        Ok(())
    }
}

impl fmt::Debug for Tree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tree(n={}, levels={}, widths=[",
            self.len(),
            self.num_levels()
        )?;
        for l in 0..self.num_levels() {
            if l > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", self.level_size(l))?;
        }
        write!(f, "])")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_shape() {
        let t = Tree::singleton();
        assert_eq!(t.len(), 1);
        assert_eq!(t.num_levels(), 1);
        assert_eq!(t.level(0), 0..1);
        assert!(t.level(5).is_empty());
        assert!(t.is_leaf(0));
        assert_eq!(t.parent(0), None);
        t.check_invariants().unwrap();
    }

    #[test]
    fn from_parents_reorders_to_bfs() {
        // Root = 2; children of 2: {0, 4}; children of 0: {1, 3}.
        let parents = vec![2, 0, 2, 0, 2];
        let (t, mapping) = Tree::from_parents_with_mapping(&parents).unwrap();
        assert_eq!(t.len(), 5);
        assert_eq!(t.num_levels(), 3);
        assert_eq!(mapping[0], 2);
        assert_eq!(t.level_size(0), 1);
        assert_eq!(t.level_size(1), 2);
        assert_eq!(t.level_size(2), 2);
        t.check_invariants().unwrap();
        // the level-2 nodes hang off old node 0, which is on level 1
        for v in t.level(2) {
            assert_eq!(t.depth(v), 2);
            assert_eq!(t.depth(t.parent(v).unwrap()), 1);
        }
    }

    #[test]
    fn from_parents_rejects_bad_inputs() {
        assert_eq!(Tree::from_parents(&[]), Err(TreeError::Empty));
        assert!(matches!(
            Tree::from_parents(&[0, 9]),
            Err(TreeError::ParentOutOfRange { .. })
        ));
        assert!(matches!(
            Tree::from_parents(&[0, 1]),
            Err(TreeError::MultipleRoots { .. })
        ));
        // 2-cycle between nodes 1 and 2 (no path to root 0)
        assert!(matches!(
            Tree::from_parents(&[0, 2, 1]),
            Err(TreeError::Unreachable { .. })
        ));
        // no root at all
        assert!(matches!(
            Tree::from_parents(&[1, 0]),
            Err(TreeError::NoRoot)
        ));
    }

    #[test]
    fn children_are_contiguous() {
        // star with 4 leaves
        let t = Tree::from_parents(&[0, 0, 0, 0, 0]).unwrap();
        assert_eq!(t.children(0), 1..5);
        for v in 1..5 {
            assert!(t.is_leaf(v));
        }
    }

    #[test]
    fn depth_and_ancestor() {
        // path 0-1-2-3
        let t = Tree::from_parents(&[0, 0, 1, 2]).unwrap();
        assert_eq!(t.depth(0), 0);
        assert_eq!(t.depth(3), 3);
        assert!(t.is_ancestor(0, 3));
        assert!(t.is_ancestor(1, 3));
        assert!(!t.is_ancestor(3, 1));
        assert!(!t.is_ancestor(2, 2));
    }

    #[test]
    fn truncate_keeps_top_levels() {
        let t = Tree::from_parents(&[0, 0, 1, 2, 2]).unwrap(); // depth 3
        assert_eq!(t.num_levels(), 4);
        let t2 = t.truncate(2);
        assert_eq!(t2.num_levels(), 2);
        assert_eq!(t2.len(), 2);
        t2.check_invariants().unwrap();
        let t3 = t.truncate(99);
        assert_eq!(t3, t);
        let t1 = t.truncate(0);
        assert_eq!(t1.len(), 1);
    }

    #[test]
    fn subtree_sizes_sum() {
        let t = Tree::from_parents(&[0, 0, 0, 1, 1, 2]).unwrap();
        let s = t.subtree_sizes();
        assert_eq!(s[0] as usize, t.len());
        let leaf_total: u32 = t.leaves().iter().map(|&v| s[v as usize]).sum();
        assert_eq!(leaf_total as usize, t.leaves().len());
    }

    #[test]
    fn degree_histogram_counts_everyone() {
        let t = Tree::from_parents(&[0, 0, 0, 1]).unwrap();
        let h = t.degree_histogram();
        assert_eq!(h.iter().sum::<usize>(), t.len());
    }

    #[test]
    fn subtree_profiles_shapes() {
        // root -> {a, b}; a -> {x}; so profiles:
        // root = [1, 2, 1], a = [1, 1], b = [1], x = [1]
        let t = Tree::from_parents(&[0, 0, 0, 1]).unwrap();
        let p = t.subtree_profiles();
        assert_eq!(p[0], vec![1, 2, 1]);
        assert_eq!(p[1], vec![1, 1]);
        assert_eq!(p[2], vec![1]);
        assert_eq!(p[3], vec![1]);
        // root profile matches the tree's level sizes
        for (l, &count) in p[0].iter().enumerate() {
            assert_eq!(count as usize, t.level_size(l));
        }
    }
}
