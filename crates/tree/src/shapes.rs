//! Hash-consed canonical shapes, keyed by [`SignatureInterner`] class ids.
//!
//! [`SignatureInterner`] answers *"are these two subtrees isomorphic?"*
//! with a `u32` compare. A [`ShapeTable`] extends each interned class
//! with the two facts a **bulk** signature pipeline needs to build
//! canonical trees without re-canonicalizing anything per node:
//!
//! * the class's **AHU canonical code** (the byte string
//!   [`crate::ahu::canonical_code`] would produce for any tree of that
//!   class), built **once per distinct class** process-wide instead of
//!   once per node per extraction, and
//! * the class's children classes **ordered by their codes** — exactly
//!   the sibling order [`crate::ahu::canonical_form`] lays children out
//!   in.
//!
//! Together these make the canonical layout of a class *reconstructible
//! by pure table expansion* ([`ShapeTable::expand`]): the canonical form
//! of an unordered tree is fully determined by its isomorphism class
//! (equal-code siblings expand to identical sub-layouts, so their mutual
//! order cannot matter), so a breadth-first walk that emits each node's
//! children in the cached code order reproduces, bit for bit, the tree
//! `canonical_form` would have built — with no byte-string sorting, no
//! per-node code allocation, and no parent-array relayout.
//!
//! Entries are inserted bottom-up by the extraction hot path
//! ([`ShapeTable::ensure`]): by the time a class is first seen, all of
//! its children classes are already tabled, so building its code is one
//! concatenation of cached child codes. The table is sharded behind
//! mutexes like the interner so parallel bulk workers share one set of
//! shapes; unlike the interner it is **not** process-global — callers
//! scope a table to one ingest pipeline (e.g. a `SignatureFactory` in
//! `ned-core`) so long-lived churn cannot grow an unbounded side table.

use crate::{SignatureInterner, Tree};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

const SHARDS: usize = 16;

/// Cached canonical facts about one interned class. Cheap to clone —
/// both fields are shared `Arc`s.
#[derive(Debug, Clone)]
pub struct ShapeEntry {
    /// The AHU canonical code of any tree in this class (equal iff
    /// isomorphic, byte-identical to [`crate::ahu::canonical_code`]).
    pub code: Arc<[u8]>,
    /// The children classes (with multiplicity) in ascending canonical
    /// code order — the sibling order of the canonical layout.
    pub kids_by_code: Arc<[u32]>,
}

/// Canonical shape dictionary over [`SignatureInterner`] class ids. See
/// the [module docs](self).
pub struct ShapeTable {
    shards: [Mutex<HashMap<u32, ShapeEntry>>; SHARDS],
}

impl Default for ShapeTable {
    fn default() -> Self {
        Self::new()
    }
}

impl ShapeTable {
    /// An empty table with the leaf class (`interner.empty_id()`, the
    /// empty children multiset) pre-tabled as `()`.
    pub fn new() -> Self {
        let table = ShapeTable {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
        };
        let leaf = ShapeEntry {
            code: Arc::from(*b"()"),
            kids_by_code: Arc::from([]),
        };
        table.shards[Self::shard_of(SignatureInterner::global().empty_id())]
            .lock()
            .expect("shape shard poisoned")
            .insert(SignatureInterner::global().empty_id(), leaf);
        table
    }

    #[inline]
    fn shard_of(class: u32) -> usize {
        (u64::from(class).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 60) as usize % SHARDS
    }

    /// The cached entry of `class`, if tabled.
    pub fn get(&self, class: u32) -> Option<ShapeEntry> {
        self.shards[Self::shard_of(class)]
            .lock()
            .expect("shape shard poisoned")
            .get(&class)
            .cloned()
    }

    /// Number of tabled classes.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shape shard poisoned").len())
            .sum()
    }

    /// `true` when only the pre-seeded leaf class is tabled.
    pub fn is_empty(&self) -> bool {
        self.len() <= 1
    }

    /// Tables `class` (whose sorted children multiset is `kids`, as
    /// passed to [`SignatureInterner::intern`]) unless already present,
    /// and returns its entry.
    ///
    /// **Bottom-up discipline:** every class in `kids` must already be
    /// tabled — which is automatic when callers intern subtrees bottom-up
    /// (children before parents), the only order the interner supports
    /// anyway.
    ///
    /// # Panics
    /// Panics if a child class is missing (a bottom-up discipline bug).
    pub fn ensure(&self, class: u32, kids: &[u32]) -> ShapeEntry {
        if let Some(entry) = self.get(class) {
            return entry;
        }
        // Gather child codes outside this class's shard lock (children
        // live in arbitrary shards; nested locking in class order could
        // deadlock against a sibling worker).
        let kid_codes: Vec<(Arc<[u8]>, u32)> = kids
            .iter()
            .map(|&kid| {
                let e = self
                    .get(kid)
                    .unwrap_or_else(|| panic!("child class {kid} not tabled before its parent"));
                (e.code, kid)
            })
            .collect();
        let mut ordered = kid_codes;
        // Ascending code order — `canonical_code` sorts child codes and
        // `canonical_form` sorts children by code; ties (equal codes =
        // isomorphic subtrees) expand identically, so any tie order
        // reproduces the same canonical layout.
        ordered.sort_by(|a, b| a.0.cmp(&b.0));
        let mut code = Vec::with_capacity(2 + ordered.iter().map(|(c, _)| c.len()).sum::<usize>());
        code.push(b'(');
        for (c, _) in &ordered {
            code.extend_from_slice(c);
        }
        code.push(b')');
        let entry = ShapeEntry {
            code: Arc::from(code),
            kids_by_code: ordered.iter().map(|&(_, k)| k).collect(),
        };
        let mut shard = self.shards[Self::shard_of(class)]
            .lock()
            .expect("shape shard poisoned");
        // A racing worker may have tabled the class meanwhile; both
        // computed identical entries, so first-in wins arbitrarily.
        shard.entry(class).or_insert(entry).clone()
    }

    /// Reconstructs the canonical tree of `class` by pure table
    /// expansion, plus each expanded node's class. The tree is
    /// bit-identical to
    /// `canonical_form(t)` for any tree `t` of this class; `classes[v]`
    /// is the interned class of node `v`'s subtree (so per-level class
    /// multisets come for free).
    ///
    /// # Panics
    /// Panics if `class` (or any transitive child) is not tabled.
    pub fn expand(&self, class: u32) -> (Tree, Vec<u32>) {
        // Local memo of kid orders so repeated classes inside one tree
        // (the norm: most nodes are leaves or small stars) cost one
        // shard lock total, not one per node.
        let mut local: HashMap<u32, Arc<[u32]>> = HashMap::new();
        let mut kids_of = |c: u32, table: &ShapeTable| -> Arc<[u32]> {
            local
                .entry(c)
                .or_insert_with(|| {
                    table
                        .get(c)
                        .unwrap_or_else(|| panic!("class {c} not tabled"))
                        .kids_by_code
                })
                .clone()
        };
        let mut classes: Vec<u32> = vec![class];
        let mut parent: Vec<u32> = vec![0];
        let mut level_offsets: Vec<usize> = vec![0, 1];
        let mut level_start = 0usize;
        loop {
            let level_end = classes.len();
            for v in level_start..level_end {
                let kids = kids_of(classes[v], self);
                for &kc in kids.iter() {
                    classes.push(kc);
                    parent.push(v as u32);
                }
            }
            if classes.len() == level_end {
                break;
            }
            level_offsets.push(classes.len());
            level_start = level_end;
        }
        let n = classes.len();
        let mut child_offsets = vec![0usize; n + 1];
        let mut acc = 1usize;
        for v in 0..n {
            child_offsets[v] = acc;
            acc += kids_of(classes[v], self).len();
        }
        child_offsets[n] = acc;
        let tree = Tree::from_bfs_parts(parent, child_offsets, level_offsets);
        (tree, classes)
    }
}

impl std::fmt::Debug for ShapeTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShapeTable")
            .field("classes", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ahu, generate};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Interns a whole tree bottom-up through the global interner while
    /// tabling every class — the discipline the bulk extractor follows.
    fn intern_and_table(t: &Tree, table: &ShapeTable) -> u32 {
        let interner = SignatureInterner::global();
        let ids = interner.subtree_ids(t);
        // Re-walk bottom-up to ensure every class (subtree_ids interned
        // them already; ensure just needs the sorted kid lists again).
        let mut scratch: Vec<u32> = Vec::new();
        for v in (0..t.len() as u32).rev() {
            scratch.clear();
            scratch.extend(t.children(v).map(|c| ids[c as usize]));
            scratch.sort_unstable();
            table.ensure(ids[v as usize], &scratch);
        }
        ids[0]
    }

    #[test]
    fn leaf_is_preseeded() {
        let table = ShapeTable::new();
        let leaf = table
            .get(SignatureInterner::global().empty_id())
            .expect("leaf tabled");
        assert_eq!(&leaf.code[..], b"()");
        assert!(leaf.kids_by_code.is_empty());
        assert!(table.is_empty());
    }

    #[test]
    fn codes_match_ahu_canonical_code() {
        let table = ShapeTable::new();
        let mut rng = SmallRng::seed_from_u64(31);
        for _ in 0..50 {
            let t = generate::random_bounded_depth_tree(24, 5, &mut rng);
            let root = intern_and_table(&t, &table);
            let entry = table.get(root).expect("root tabled");
            assert_eq!(&entry.code[..], &ahu::canonical_code(&t)[..]);
        }
    }

    #[test]
    fn expand_reproduces_canonical_form_bit_for_bit() {
        let table = ShapeTable::new();
        let mut rng = SmallRng::seed_from_u64(32);
        for _ in 0..60 {
            let t = generate::random_bounded_depth_tree(30, 4, &mut rng);
            let root = intern_and_table(&t, &table);
            let (expanded, classes) = table.expand(root);
            let canonical = ahu::canonical_form(&t);
            assert_eq!(expanded, canonical, "expansion must equal canonical_form");
            assert_eq!(classes.len(), expanded.len());
            // classes must agree with a fresh interner pass on the
            // canonical layout
            let fresh = SignatureInterner::global().subtree_ids(&canonical);
            assert_eq!(classes, fresh);
        }
    }

    #[test]
    fn expansion_is_shared_across_isomorphic_inputs() {
        let table = ShapeTable::new();
        // Same shape built with different sibling orders.
        let a = Tree::from_parents(&[0, 0, 0, 1, 1, 2]).unwrap();
        let b = Tree::from_parents(&[0, 0, 0, 2, 2, 1]).unwrap();
        let ra = intern_and_table(&a, &table);
        let rb = intern_and_table(&b, &table);
        assert_eq!(ra, rb);
        let before = table.len();
        let _ = table.expand(ra);
        assert_eq!(table.len(), before, "expansion inserts nothing");
    }

    #[test]
    fn concurrent_ensure_is_consistent() {
        let table = ShapeTable::new();
        let mut rng = SmallRng::seed_from_u64(33);
        let trees: Vec<Tree> = (0..16)
            .map(|_| generate::random_bounded_depth_tree(20, 4, &mut rng))
            .collect();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for t in &trees {
                        let root = intern_and_table(t, &table);
                        let (expanded, _) = table.expand(root);
                        assert!(ahu::isomorphic(&expanded, t));
                    }
                });
            }
        });
    }
}
