//! Textual tree serialization: nested-parentheses notation.
//!
//! `()` is a single leaf; `(()())` is a root with two leaf children. The
//! format is exactly the AHU code alphabet, so
//! `parse(&ahu::canonical_code(t))` reconstructs `t`'s canonical form and
//! `print(t)` of a canonical-layout tree *is* its canonical code. Used by
//! the CLI and handy for fixtures and debugging.

use crate::{Tree, TreeBuilder};
use std::fmt;

/// Errors from [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Input was empty (a tree has at least its root).
    Empty,
    /// A closing parenthesis had no matching opener, at this byte offset.
    UnbalancedClose(usize),
    /// Input ended with unclosed parentheses (this many).
    UnbalancedOpen(usize),
    /// A character other than `(`, `)` or ASCII whitespace appeared.
    UnexpectedChar {
        /// Byte offset of the offender.
        offset: usize,
        /// The offending character.
        ch: char,
    },
    /// Extra content followed the root's closing parenthesis.
    TrailingContent(usize),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Empty => write!(f, "empty input"),
            ParseError::UnbalancedClose(at) => write!(f, "unmatched ')' at byte {at}"),
            ParseError::UnbalancedOpen(n) => write!(f, "{n} unclosed '('"),
            ParseError::UnexpectedChar { offset, ch } => {
                write!(f, "unexpected character {ch:?} at byte {offset}")
            }
            ParseError::TrailingContent(at) => {
                write!(f, "trailing content after the root at byte {at}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Renders `tree` in nested-parentheses notation (children in stored
/// order — canonicalize first if a canonical string is wanted).
pub fn print(tree: &Tree) -> String {
    // Recursive structure without recursion: emit via an explicit stack of
    // (node, next-child-cursor).
    let mut out = String::with_capacity(2 * tree.len());
    let mut stack: Vec<(u32, u32)> = vec![(0, tree.children(0).start)];
    out.push('(');
    while let Some((node, cursor)) = stack.pop() {
        if cursor < tree.children(node).end {
            stack.push((node, cursor + 1));
            out.push('(');
            stack.push((cursor, tree.children(cursor).start));
        } else {
            out.push(')');
        }
    }
    out
}

/// Renders `tree` as indented ASCII art, one node per line:
///
/// ```text
/// *
/// |-- *
/// |   `-- *
/// `-- *
/// ```
///
/// Children print in stored order; pass a canonical form for a canonical
/// picture. Intended for CLI/debug output (`O(n · depth)` characters).
pub fn render_ascii(tree: &Tree) -> String {
    let mut out = String::new();
    out.push('*');
    out.push('\n');
    // prefix stack entry: "is this ancestor the last child of its parent?"
    fn walk(tree: &Tree, node: u32, prefix: &mut String, out: &mut String) {
        let children = tree.children(node);
        let last = children.end.saturating_sub(1);
        for c in children.clone() {
            out.push_str(prefix);
            let is_last = c == last;
            out.push_str(if is_last { "`-- " } else { "|-- " });
            out.push('*');
            out.push('\n');
            let old_len = prefix.len();
            prefix.push_str(if is_last { "    " } else { "|   " });
            walk(tree, c, prefix, out);
            prefix.truncate(old_len);
        }
    }
    let mut prefix = String::new();
    walk(tree, 0, &mut prefix, &mut out);
    out
}

/// Parses nested-parentheses notation into a [`Tree`]. Whitespace between
/// parentheses is allowed.
pub fn parse(input: &str) -> Result<Tree, ParseError> {
    let mut builder: Option<TreeBuilder> = None;
    let mut stack: Vec<u32> = Vec::new();
    let mut done = false;
    for (offset, ch) in input.char_indices() {
        match ch {
            '(' => {
                if done {
                    return Err(ParseError::TrailingContent(offset));
                }
                match (&mut builder, stack.last()) {
                    (None, _) => {
                        builder = Some(TreeBuilder::new());
                        stack.push(0);
                    }
                    (Some(b), Some(&parent)) => {
                        let id = b.add_child(parent);
                        stack.push(id);
                    }
                    (Some(_), None) => return Err(ParseError::TrailingContent(offset)),
                }
            }
            ')' => {
                if stack.pop().is_none() {
                    return Err(ParseError::UnbalancedClose(offset));
                }
                if stack.is_empty() {
                    done = true;
                }
            }
            c if c.is_ascii_whitespace() => {}
            c => return Err(ParseError::UnexpectedChar { offset, ch: c }),
        }
    }
    if !stack.is_empty() {
        return Err(ParseError::UnbalancedOpen(stack.len()));
    }
    match builder {
        Some(b) => Ok(b.build()),
        None => Err(ParseError::Empty),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ahu;
    use crate::generate::random_bounded_depth_tree;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn singleton_round_trip() {
        assert_eq!(print(&Tree::singleton()), "()");
        assert_eq!(parse("()").unwrap(), Tree::singleton());
    }

    #[test]
    fn nested_shapes() {
        let star3 = parse("(()()())").unwrap();
        assert_eq!(star3.len(), 4);
        assert_eq!(star3.num_children(0), 3);
        let path3 = parse("((()))").unwrap();
        assert_eq!(path3.num_levels(), 3);
        let mixed = parse("( (()) () )").unwrap(); // whitespace tolerated
        assert_eq!(mixed.len(), 4);
    }

    #[test]
    fn print_matches_canonical_code_on_canonical_layout() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..20 {
            let t = random_bounded_depth_tree(25, 4, &mut rng);
            let c = ahu::canonical_form(&t);
            assert_eq!(print(&c).as_bytes(), ahu::canonical_code(&c).as_slice());
        }
    }

    #[test]
    fn parse_print_round_trip_preserves_isomorphism() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..30 {
            let t = random_bounded_depth_tree(30, 5, &mut rng);
            let back = parse(&print(&t)).unwrap();
            assert!(ahu::isomorphic(&t, &back));
            assert_eq!(t.len(), back.len());
        }
    }

    #[test]
    fn ascii_rendering_shapes() {
        assert_eq!(render_ascii(&Tree::singleton()), "*\n");
        let t = parse("((())())").unwrap();
        let art = render_ascii(&t);
        // one line per node
        assert_eq!(art.lines().count(), t.len());
        assert!(art.contains("|-- *"));
        assert!(art.contains("`-- *"));
        // deepest node is indented below a last-child prefix
        assert!(
            art.contains("|   `-- *") || art.contains("    `-- *"),
            "{art}"
        );
    }

    #[test]
    fn ascii_line_count_matches_node_count() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10 {
            let t = random_bounded_depth_tree(20, 4, &mut rng);
            assert_eq!(render_ascii(&t).lines().count(), t.len());
        }
    }

    #[test]
    fn parse_errors() {
        assert_eq!(parse(""), Err(ParseError::Empty));
        assert_eq!(parse("   "), Err(ParseError::Empty));
        assert_eq!(parse(")"), Err(ParseError::UnbalancedClose(0)));
        assert_eq!(parse("(()"), Err(ParseError::UnbalancedOpen(1)));
        assert_eq!(parse("()()"), Err(ParseError::TrailingContent(2)));
        assert!(matches!(
            parse("(x)"),
            Err(ParseError::UnexpectedChar { offset: 1, ch: 'x' })
        ));
        assert_eq!(parse("() ("), Err(ParseError::TrailingContent(3)));
    }
}
