use crate::{NodeId, Tree};

/// Incremental construction of a [`Tree`].
///
/// The builder starts with a root (id 0); children can be attached to any
/// existing node in any order. [`TreeBuilder::build`] re-numbers nodes into
/// the BFS layout the [`Tree`] type requires.
///
/// ```
/// use ned_tree::TreeBuilder;
/// let mut b = TreeBuilder::new();
/// let a = b.add_child(b.root());
/// let _ = b.add_child(a);
/// let _ = b.add_child(b.root());
/// let tree = b.build();
/// assert_eq!(tree.len(), 4);
/// assert_eq!(tree.num_levels(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TreeBuilder {
    /// parent[v]; parent\[0\] == 0.
    parents: Vec<NodeId>,
}

impl TreeBuilder {
    /// A builder holding just the root.
    pub fn new() -> Self {
        TreeBuilder { parents: vec![0] }
    }

    /// A builder pre-sized for `capacity` nodes.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut parents = Vec::with_capacity(capacity.max(1));
        parents.push(0);
        TreeBuilder { parents }
    }

    /// The root id (always 0).
    #[inline]
    pub fn root(&self) -> NodeId {
        0
    }

    /// Current number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.parents.len()
    }

    /// Never empty (the root always exists).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Attaches a new child to `parent` and returns its builder-local id.
    ///
    /// # Panics
    /// Panics if `parent` is not an existing node id.
    pub fn add_child(&mut self, parent: NodeId) -> NodeId {
        assert!(
            (parent as usize) < self.parents.len(),
            "parent {parent} does not exist"
        );
        let id = self.parents.len() as NodeId;
        self.parents.push(parent);
        id
    }

    /// Attaches `count` children to `parent`, returning the id of the first.
    pub fn add_children(&mut self, parent: NodeId, count: usize) -> NodeId {
        let first = self.parents.len() as NodeId;
        for _ in 0..count {
            self.add_child(parent);
        }
        first
    }

    /// Finalizes into a BFS-ordered [`Tree`].
    pub fn build(self) -> Tree {
        Tree::from_parents(&self.parents).expect("builder maintains a valid tree")
    }

    /// Finalizes and also returns `mapping[new_id] = builder_id`.
    pub fn build_with_mapping(self) -> (Tree, Vec<NodeId>) {
        Tree::from_parents_with_mapping(&self.parents).expect("builder maintains a valid tree")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trip() {
        let mut b = TreeBuilder::new();
        let c1 = b.add_child(0);
        let c2 = b.add_child(0);
        let g = b.add_child(c1);
        let _ = b.add_child(c2);
        let _ = b.add_child(g);
        let (t, mapping) = b.build_with_mapping();
        assert_eq!(t.len(), 6);
        assert_eq!(t.num_levels(), 4);
        assert_eq!(mapping[0], 0);
        t.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn builder_rejects_unknown_parent() {
        let mut b = TreeBuilder::new();
        b.add_child(42);
    }

    #[test]
    fn add_children_bulk() {
        let mut b = TreeBuilder::with_capacity(8);
        let first = b.add_children(0, 5);
        assert_eq!(first, 1);
        assert_eq!(b.len(), 6);
        let t = b.build();
        assert_eq!(t.num_children(0), 5);
    }
}
