//! AHU canonical forms and unordered rooted-tree isomorphism.
//!
//! Two unordered rooted trees are isomorphic iff their AHU canonical codes
//! are equal. The paper relies on this being polynomial (Section 8): tree
//! isomorphism — unlike graph isomorphism — is decidable in `O(n log n)`,
//! which is why NED uses neighborhood *trees* rather than neighborhood
//! subgraphs as node signatures.

use crate::Tree;

/// The canonical parenthesis string of `tree`.
///
/// Every node is encoded as `(` + the *sorted* codes of its children + `)`;
/// two trees are isomorphic iff their root codes are byte-equal. Runs in
/// `O(n · depth)` time/space, which is fine for neighborhood trees (depth is
/// the paper's small `k`).
pub fn canonical_code(tree: &Tree) -> Vec<u8> {
    let n = tree.len();
    let mut codes: Vec<Vec<u8>> = vec![Vec::new(); n];
    // Bottom-up over levels: children always have larger ids, so a reverse
    // id sweep visits children before parents.
    for v in (0..n as u32).rev() {
        let mut child_codes: Vec<Vec<u8>> = tree
            .children(v)
            .map(|c| std::mem::take(&mut codes[c as usize]))
            .collect();
        child_codes.sort_unstable();
        let mut code = Vec::with_capacity(2 + child_codes.iter().map(Vec::len).sum::<usize>());
        code.push(b'(');
        for c in child_codes {
            code.extend_from_slice(&c);
        }
        code.push(b')');
        codes[v as usize] = code;
    }
    std::mem::take(&mut codes[0])
}

/// Canonical integer labels per node computed level-by-level, bottom-up.
///
/// Nodes on the *same level* receive equal labels iff their subtrees are
/// isomorphic (the paper's Definition 5 / Lemma 1 applied to a single
/// tree). Labels on different levels are unrelated. `O(n log n)`.
///
/// Prefer [`crate::SignatureInterner::subtree_ids`] when labels need to be
/// comparable across trees or reused across calls — it answers the same
/// equality question with one hash lookup per node instead of a
/// comparison sort per level, and its ids are process-wide.
pub fn canonical_level_labels(tree: &Tree) -> Vec<u32> {
    let n = tree.len();
    let mut labels = vec![0u32; n];
    for level in (0..tree.num_levels()).rev() {
        let range = tree.level(level);
        // Children-label multisets, sorted, then ranked lexicographically
        // (by length first, then contents — exactly the paper's order).
        let mut keyed: Vec<(Vec<u32>, u32)> = range
            .clone()
            .map(|v| {
                let mut s: Vec<u32> = tree.children(v).map(|c| labels[c as usize]).collect();
                s.sort_unstable();
                (s, v)
            })
            .collect();
        keyed.sort_unstable_by(|a, b| a.0.len().cmp(&b.0.len()).then_with(|| a.0.cmp(&b.0)));
        let mut next = 0u32;
        let mut prev: Option<&[u32]> = None;
        // Assign dense ranks; equal collections share a label.
        let mut assigned: Vec<(u32, u32)> = Vec::with_capacity(keyed.len());
        for (s, v) in &keyed {
            if let Some(p) = prev {
                if p != s.as_slice() {
                    next += 1;
                }
            }
            assigned.push((*v, next));
            prev = Some(s.as_slice());
        }
        for (v, l) in assigned {
            labels[v as usize] = l;
        }
    }
    labels
}

/// The canonical parenthesis code of an **already canonical** tree.
///
/// Children of a [`canonical_form`] output appear in code-sorted order as
/// contiguous ascending ids, so the canonical code is a plain depth-first
/// emission — `(` on entry, `)` on exit — with no per-node sorting and no
/// per-node byte buffers. Byte-identical to [`canonical_code`] on any
/// canonical-form tree (property-tested); on a non-canonical tree it
/// produces the code of the tree *as ordered*, which is generally not the
/// canonical code. `O(n)` time, one `2n`-byte allocation.
pub fn ordered_code(tree: &Tree) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 * tree.len());
    // Stack of half-open child-id ranges still to visit; depth ≤ levels.
    let mut stack: Vec<(u32, u32)> = Vec::with_capacity(tree.num_levels());
    out.push(b'(');
    let r = tree.children(0);
    stack.push((r.start, r.end));
    while let Some(top) = stack.last_mut() {
        if top.0 < top.1 {
            let c = top.0;
            top.0 += 1;
            out.push(b'(');
            let r = tree.children(c);
            stack.push((r.start, r.end));
        } else {
            out.push(b')');
            stack.pop();
        }
    }
    out
}

/// Unordered rooted-tree isomorphism test.
pub fn isomorphic(a: &Tree, b: &Tree) -> bool {
    if a.len() != b.len() || a.num_levels() != b.num_levels() {
        return false;
    }
    for l in 0..a.num_levels() {
        if a.level_size(l) != b.level_size(l) {
            return false;
        }
    }
    canonical_code(a) == canonical_code(b)
}

/// Rebuilds `tree` into its AHU-canonical layout: children of every node
/// are ordered by their subtrees' canonical codes, so two trees are
/// isomorphic **iff** their canonical forms have identical parent arrays.
///
/// TED\* computations canonicalize both inputs first; this is what makes
/// the distance a well-defined function of the isomorphism classes rather
/// than of incidental sibling orderings (the paper's Algorithm 1 is
/// deterministic only up to bipartite-matching tie-breaks, see the
/// `ned-core` crate documentation).
pub fn canonical_form(tree: &Tree) -> Tree {
    let n = tree.len();
    // Per-level integer ranking instead of materialized byte codes.
    //
    // `rank[v]` is the dense rank of v's canonical code among its level,
    // in byte-lexicographic code order. Ranks reproduce byte order exactly
    // because codes are balanced-parenthesis strings, so no code is a
    // proper prefix of another (depth stays ≥ 1 until the final `)`).
    // Comparing two same-level codes therefore reduces to comparing their
    // child-code sequences element-wise — and, by induction over levels,
    // to comparing child *ranks* element-wise. When one sequence is a
    // prefix of the other, the node with MORE children is byte-smaller:
    // its next child opens with `(` (0x28) where the short code closes
    // with `)` (0x29).
    let mut rank = vec![0u32; n];
    // `child_order[children(v)]` holds v's child ids sorted canonically.
    // Child ids tile 1..n contiguously, so one flat buffer indexed by the
    // same ranges serves every node.
    let mut child_order: Vec<u32> = (0..n as u32).collect();
    let cmp_nodes = |child_order: &[u32], rank: &[u32], a: u32, b: u32| {
        let (ra, rb) = (tree.children(a), tree.children(b));
        let sa = &child_order[ra.start as usize..ra.end as usize];
        let sb = &child_order[rb.start as usize..rb.end as usize];
        for (&x, &y) in sa.iter().zip(sb) {
            let (rx, ry) = (rank[x as usize], rank[y as usize]);
            if rx != ry {
                return rx.cmp(&ry);
            }
        }
        sb.len().cmp(&sa.len())
    };
    for level in (0..tree.num_levels()).rev() {
        let lv = tree.level(level);
        // Canonical child order: stable sort by child rank equals the
        // byte-code sort (equal ranks ⇔ byte-equal codes).
        for v in lv.clone() {
            let r = tree.children(v);
            child_order[r.start as usize..r.end as usize].sort_by_key(|&c| rank[c as usize]);
        }
        // Dense ranks for this level, assigned in code order.
        let mut idx: Vec<u32> = lv.clone().collect();
        idx.sort_unstable_by(|&a, &b| cmp_nodes(&child_order, &rank, a, b));
        let mut next = 0u32;
        for i in 0..idx.len() {
            if i > 0 && cmp_nodes(&child_order, &rank, idx[i - 1], idx[i]).is_lt() {
                next += 1;
            }
            rank[idx[i] as usize] = next;
        }
    }
    // BFS re-layout visiting children in canonical order.
    let mut order: Vec<u32> = Vec::with_capacity(n); // order[new] = old
    let mut new_id = vec![0u32; n];
    order.push(0);
    let mut head = 0usize;
    while head < order.len() {
        let old = order[head];
        head += 1;
        let r = tree.children(old);
        for &c in &child_order[r.start as usize..r.end as usize] {
            new_id[c as usize] = order.len() as u32;
            order.push(c);
        }
    }
    // Assemble directly: the relayout is BFS by construction (children
    // appended parent-by-parent, level by level), so parent array, child
    // offsets, and the input's level boundaries are already the canonical
    // tree's parts — no need for `from_parents` to re-derive them.
    let mut parents = vec![0u32; n];
    let mut child_offsets = vec![0usize; n + 1];
    let mut acc = 1usize;
    for (new_v, &old_v) in order.iter().enumerate() {
        if new_v > 0 {
            parents[new_v] = new_id[tree.parent(old_v).unwrap() as usize];
        }
        child_offsets[new_v] = acc;
        let r = tree.children(old_v);
        acc += (r.end - r.start) as usize;
    }
    child_offsets[n] = acc;
    let mut level_offsets = Vec::with_capacity(tree.num_levels() + 1);
    for l in 0..tree.num_levels() {
        level_offsets.push(tree.level(l).start as usize);
    }
    level_offsets.push(n);
    Tree::from_bfs_parts(parents, child_offsets, level_offsets)
}

/// The original byte-materializing implementation of [`canonical_form`],
/// kept verbatim as the frozen pre-rebuild baseline for `perf_snapshot`'s
/// in-run speedup gate and as the differential oracle for the rank-based
/// rewrite (they are asserted equal on random trees in this crate's
/// tests). **Do not optimize this function.**
pub fn canonical_form_reference(tree: &Tree) -> Tree {
    let n = tree.len();
    // Canonical code per node, bottom-up (children have larger ids).
    let mut codes: Vec<Vec<u8>> = vec![Vec::new(); n];
    let mut child_order: Vec<Vec<u32>> = vec![Vec::new(); n];
    for v in (0..n as u32).rev() {
        let mut kids: Vec<u32> = tree.children(v).collect();
        kids.sort_by(|&a, &b| codes[a as usize].cmp(&codes[b as usize]));
        let mut code =
            Vec::with_capacity(2 + kids.iter().map(|&c| codes[c as usize].len()).sum::<usize>());
        code.push(b'(');
        for &c in &kids {
            code.extend_from_slice(&codes[c as usize]);
        }
        code.push(b')');
        codes[v as usize] = code;
        child_order[v as usize] = kids;
    }
    // BFS re-layout visiting children in canonical order.
    let mut order: Vec<u32> = Vec::with_capacity(n); // order[new] = old
    let mut new_id = vec![0u32; n];
    order.push(0);
    let mut head = 0usize;
    while head < order.len() {
        let old = order[head];
        head += 1;
        for &c in &child_order[old as usize] {
            new_id[c as usize] = order.len() as u32;
            order.push(c);
        }
    }
    let mut parents = vec![0u32; n];
    for (new_v, &old_v) in order.iter().enumerate().skip(1) {
        parents[new_v] = new_id[tree.parent(old_v).unwrap() as usize];
    }
    Tree::from_parents(&parents).expect("canonical relayout preserves validity")
}

/// A hashable, order-independent fingerprint of a tree (the canonical code
/// run through FNV-1a). Collisions are possible in principle; use
/// [`isomorphic`] when exactness matters.
pub fn fingerprint(tree: &Tree) -> u64 {
    let code = canonical_code(tree);
    fnv1a(&code)
}

/// Per-node subtree fingerprints: `out[v]` hashes the canonical code of
/// the subtree rooted at `v`. Two nodes with equal fingerprints have
/// isomorphic subtrees (modulo hash collisions). Used by the edit-script
/// generator to prefer pairings that preserve subtree structure.
pub fn subtree_fingerprints(tree: &Tree) -> Vec<u64> {
    let n = tree.len();
    let mut codes: Vec<Vec<u8>> = vec![Vec::new(); n];
    let mut out = vec![0u64; n];
    for v in (0..n as u32).rev() {
        let mut child_codes: Vec<Vec<u8>> = tree
            .children(v)
            .map(|c| std::mem::take(&mut codes[c as usize]))
            .collect();
        child_codes.sort_unstable();
        let mut code = Vec::with_capacity(2 + child_codes.iter().map(Vec::len).sum::<usize>());
        code.push(b'(');
        for c in child_codes {
            code.extend_from_slice(&c);
        }
        code.push(b')');
        out[v as usize] = fnv1a(&code);
        codes[v as usize] = code;
    }
    out
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TreeBuilder;

    fn tree_from(parents: &[u32]) -> Tree {
        Tree::from_parents(parents).unwrap()
    }

    #[test]
    fn code_of_singleton() {
        assert_eq!(canonical_code(&Tree::singleton()), b"()");
    }

    #[test]
    fn isomorphic_regardless_of_child_order() {
        // root with children [path of 2, leaf] vs [leaf, path of 2]
        let a = tree_from(&[0, 0, 0, 1]); // children of 0: {1,2}; 3 under 1
        let b = tree_from(&[0, 0, 0, 2]); // 3 under 2 instead
        assert!(isomorphic(&a, &b));
        assert_eq!(canonical_code(&a), canonical_code(&b));
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn non_isomorphic_same_size() {
        let path = tree_from(&[0, 0, 1, 2]); // path of 4
        let star = tree_from(&[0, 0, 0, 0]); // star with 3 leaves
        assert!(!isomorphic(&path, &star));
    }

    #[test]
    fn non_isomorphic_same_level_sizes() {
        // Both have level sizes [1, 2, 2] but different child distribution.
        let a = tree_from(&[0, 0, 0, 1, 1]); // node 1 has two children
        let b = tree_from(&[0, 0, 0, 1, 2]); // nodes 1 and 2 have one each
        assert!(!isomorphic(&a, &b));
    }

    #[test]
    fn level_labels_match_isomorphic_subtrees() {
        // root -> a, b; a -> leaf, leaf ; b -> leaf, leaf  (a and b isomorphic)
        let mut builder = TreeBuilder::new();
        let a = builder.add_child(0);
        let b = builder.add_child(0);
        builder.add_child(a);
        builder.add_child(a);
        builder.add_child(b);
        builder.add_child(b);
        let t = builder.build();
        let labels = canonical_level_labels(&t);
        let l1 = t.level(1);
        assert_eq!(labels[l1.start as usize], labels[l1.start as usize + 1]);
    }

    #[test]
    fn level_labels_distinguish_different_subtrees() {
        // root -> a (leaf), b (one child)
        let t = tree_from(&[0, 0, 0, 2]);
        let labels = canonical_level_labels(&t);
        let l1 = t.level(1);
        assert_ne!(labels[l1.start as usize], labels[l1.start as usize + 1]);
    }

    #[test]
    fn subtree_fingerprints_identify_isomorphic_subtrees() {
        // root -> a, b; a -> {leaf, leaf}; b -> {leaf, leaf}
        let mut builder = TreeBuilder::new();
        let a = builder.add_child(0);
        let b = builder.add_child(0);
        builder.add_child(a);
        builder.add_child(a);
        builder.add_child(b);
        builder.add_child(b);
        let t = builder.build();
        let fp = subtree_fingerprints(&t);
        let l1 = t.level(1);
        assert_eq!(fp[l1.start as usize], fp[l1.start as usize + 1]);
        // leaves share a fingerprint, which differs from internal nodes
        let l2 = t.level(2);
        assert_eq!(fp[l2.start as usize], fp[l2.end as usize - 1]);
        assert_ne!(fp[l1.start as usize], fp[l2.start as usize]);
        // root fingerprint equals the whole-tree fingerprint
        assert_eq!(fp[0], fingerprint(&t));
    }

    #[test]
    fn canonical_form_is_isomorphic_to_input() {
        use crate::generate;
        use rand::{rngs::SmallRng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(21);
        for n in [1usize, 2, 3, 8, 30, 100] {
            let t = generate::random_attachment_tree(n, &mut rng);
            let c = canonical_form(&t);
            assert!(isomorphic(&t, &c));
            c.check_invariants().unwrap();
        }
    }

    #[test]
    fn canonical_form_identical_for_isomorphic_trees() {
        // Same shape, different child insertion orders.
        let a = tree_from(&[0, 0, 0, 1, 1, 2]); // root{A{x,y}, B{z}}
        let b = tree_from(&[0, 0, 0, 2, 2, 1]); // root{A'{z}, B'{x,y}}
        assert!(isomorphic(&a, &b));
        assert_eq!(canonical_form(&a), canonical_form(&b));
    }

    #[test]
    fn canonical_form_is_idempotent() {
        use crate::generate;
        use rand::{rngs::SmallRng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(22);
        for _ in 0..10 {
            let t = generate::random_bounded_depth_tree(40, 4, &mut rng);
            let c = canonical_form(&t);
            assert_eq!(c, canonical_form(&c));
        }
    }

    #[test]
    fn rank_based_canonical_form_matches_byte_reference() {
        use crate::generate;
        use rand::{rngs::SmallRng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(0xCAFE);
        for round in 0..200 {
            let t = match round % 3 {
                0 => generate::random_attachment_tree(1 + round, &mut rng),
                1 => generate::random_bounded_depth_tree(2 + round, 2 + round % 5, &mut rng),
                _ => generate::random_bounded_depth_tree(2 + round, 1 + round % 3, &mut rng),
            };
            assert_eq!(
                canonical_form(&t),
                canonical_form_reference(&t),
                "rank-based canonical form diverged from byte reference on {t:?}"
            );
        }
    }

    #[test]
    fn ordered_code_matches_canonical_code_on_canonical_trees() {
        use crate::generate;
        use rand::{rngs::SmallRng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(0xC0DE);
        for round in 0..150 {
            let t = generate::random_bounded_depth_tree(1 + round, 1 + round % 6, &mut rng);
            let c = canonical_form(&t);
            assert_eq!(
                ordered_code(&c),
                canonical_code(&c),
                "ordered_code diverged on canonical form of {t:?}"
            );
            // And both equal the canonical code of the *original* tree.
            assert_eq!(ordered_code(&c), canonical_code(&t));
        }
    }

    #[test]
    fn isomorphism_is_reflexive_on_random_shapes() {
        use crate::generate;
        use rand::{rngs::SmallRng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(7);
        for n in [1usize, 2, 5, 17, 64] {
            let t = generate::random_attachment_tree(n, &mut rng);
            assert!(isomorphic(&t, &t.clone()));
        }
    }
}
