//! Seeded tree generators for tests, property tests, and benchmarks.

use crate::{Tree, TreeBuilder};
use rand::Rng;

/// Random recursive tree: node `i` attaches to a uniformly random earlier
/// node. Produces shallow, wide trees (expected depth `O(log n)`).
pub fn random_attachment_tree<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Tree {
    assert!(n >= 1, "a tree has at least one node");
    let mut parents = Vec::with_capacity(n);
    parents.push(0u32);
    for i in 1..n {
        parents.push(rng.gen_range(0..i) as u32);
    }
    Tree::from_parents(&parents).expect("generated parents are valid")
}

/// Uniformly random labeled tree on `n` nodes (via Prüfer sequences),
/// rooted at node 0. Produces the classic "random tree" shape with
/// expected depth `O(√n)`.
pub fn random_prufer_tree<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Tree {
    assert!(n >= 1);
    if n == 1 {
        return Tree::singleton();
    }
    if n == 2 {
        return Tree::from_parents(&[0, 0]).unwrap();
    }
    let seq: Vec<usize> = (0..n - 2).map(|_| rng.gen_range(0..n)).collect();
    let mut deg = vec![1u32; n];
    for &s in &seq {
        deg[s] += 1;
    }
    // Classic linear-time decoding into an undirected edge list.
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n - 1);
    let mut ptr = 0usize; // smallest candidate leaf
    while deg[ptr] != 1 {
        ptr += 1;
    }
    let mut leaf = ptr;
    for &s in &seq {
        edges.push((leaf as u32, s as u32));
        deg[s] -= 1;
        if deg[s] == 1 && s < ptr {
            leaf = s;
        } else {
            ptr += 1;
            while deg[ptr] != 1 {
                ptr += 1;
            }
            leaf = ptr;
        }
    }
    edges.push((leaf as u32, (n - 1) as u32));
    // Root the tree at node 0 with a BFS over the adjacency.
    let mut adj = vec![Vec::new(); n];
    for &(a, b) in &edges {
        adj[a as usize].push(b);
        adj[b as usize].push(a);
    }
    let mut parents = vec![u32::MAX; n];
    parents[0] = 0;
    let mut queue = std::collections::VecDeque::from([0u32]);
    while let Some(v) = queue.pop_front() {
        for &w in &adj[v as usize] {
            if parents[w as usize] == u32::MAX {
                parents[w as usize] = v;
                queue.push_back(w);
            }
        }
    }
    Tree::from_parents(&parents).expect("Prüfer decoding yields a tree")
}

/// Random tree whose depth never exceeds `max_depth` levels below the root
/// (so the result has at most `max_depth + 1` levels). Mimics the shape of
/// k-adjacent trees, the paper's input distribution.
pub fn random_bounded_depth_tree<R: Rng + ?Sized>(n: usize, max_depth: usize, rng: &mut R) -> Tree {
    assert!(n >= 1);
    let mut parents = vec![0u32];
    let mut depths = vec![0usize];
    let mut eligible: Vec<u32> = vec![0]; // nodes with depth < max_depth
    for _ in 1..n {
        let p = if eligible.is_empty() {
            0
        } else {
            eligible[rng.gen_range(0..eligible.len())]
        };
        let id = parents.len() as u32;
        parents.push(p);
        let d = depths[p as usize] + 1;
        depths.push(d);
        if d < max_depth {
            eligible.push(id);
        }
    }
    Tree::from_parents(&parents).expect("generated parents are valid")
}

/// A path of `n` nodes (each level holds one node).
pub fn path_tree(n: usize) -> Tree {
    assert!(n >= 1);
    let parents: Vec<u32> = (0..n).map(|i| i.saturating_sub(1) as u32).collect();
    Tree::from_parents(&parents).unwrap()
}

/// A star: the root with `n - 1` leaf children.
pub fn star_tree(n: usize) -> Tree {
    assert!(n >= 1);
    let parents = vec![0u32; n];
    Tree::from_parents(&parents).unwrap()
}

/// Perfect `branching`-ary tree with `levels` levels (`levels >= 1`).
pub fn perfect_tree(branching: usize, levels: usize) -> Tree {
    assert!(levels >= 1);
    assert!(branching >= 1);
    let mut builder = TreeBuilder::new();
    let mut frontier = vec![0u32];
    for _ in 1..levels {
        let mut next = Vec::with_capacity(frontier.len() * branching);
        for &p in &frontier {
            for _ in 0..branching {
                next.push(builder.add_child(p));
            }
        }
        frontier = next;
    }
    builder.build()
}

/// One random TED\*-style mutation applied by [`mutate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// A leaf was inserted under the given (pre-mutation BFS id) parent.
    InsertLeaf,
    /// A leaf was deleted.
    DeleteLeaf,
    /// A node was re-attached to another same-level parent.
    Move,
}

/// Applies `ops` random TED\* edit operations (insert leaf / delete leaf /
/// same-level move) and returns the mutated tree plus the operations that
/// were actually applied.
///
/// By Definition 3, `TED*(t, mutate(t, j)) <= j` — the returned tree is
/// reachable in `applied.len()` operations — which makes this the natural
/// fuzzer for the distance implementation.
pub fn mutate<R: Rng + ?Sized>(tree: &Tree, ops: usize, rng: &mut R) -> (Tree, Vec<Mutation>) {
    // parent array with tombstones: parents[v] = Some(parent)
    let mut parents: Vec<Option<u32>> = (0..tree.len() as u32)
        .map(|v| Some(tree.parent(v).unwrap_or(0)))
        .collect();
    let mut applied = Vec::with_capacity(ops);

    let alive = |ps: &Vec<Option<u32>>| -> Vec<u32> {
        (0..ps.len() as u32)
            .filter(|&v| ps[v as usize].is_some())
            .collect()
    };
    let depth_of = |ps: &Vec<Option<u32>>, mut v: u32| -> usize {
        let mut d = 0;
        while v != 0 {
            v = ps[v as usize].expect("alive chain");
            d += 1;
        }
        d
    };

    for _ in 0..ops {
        let choice = rng.gen_range(0..3);
        match choice {
            0 => {
                // insert a leaf under a random alive node
                let nodes = alive(&parents);
                let p = nodes[rng.gen_range(0..nodes.len())];
                parents.push(Some(p));
                applied.push(Mutation::InsertLeaf);
            }
            1 => {
                // delete a random leaf (not the root)
                let nodes = alive(&parents);
                let leaves: Vec<u32> = nodes
                    .iter()
                    .copied()
                    .filter(|&v| {
                        v != 0
                            && !parents
                                .iter()
                                .enumerate()
                                .any(|(c, p)| *p == Some(v) && c as u32 != v)
                    })
                    .collect();
                if leaves.is_empty() {
                    continue;
                }
                let victim = leaves[rng.gen_range(0..leaves.len())];
                parents[victim as usize] = None;
                applied.push(Mutation::DeleteLeaf);
            }
            _ => {
                // move a node to a different same-level parent
                let nodes = alive(&parents);
                let movable: Vec<u32> = nodes.iter().copied().filter(|&v| v != 0).collect();
                if movable.is_empty() {
                    continue;
                }
                let v = movable[rng.gen_range(0..movable.len())];
                let old_parent = parents[v as usize].expect("alive");
                let target_depth = depth_of(&parents, old_parent);
                let candidates: Vec<u32> = nodes
                    .iter()
                    .copied()
                    .filter(|&p| p != old_parent && p != v && depth_of(&parents, p) == target_depth)
                    .collect();
                if candidates.is_empty() {
                    continue;
                }
                parents[v as usize] = Some(candidates[rng.gen_range(0..candidates.len())]);
                applied.push(Mutation::Move);
            }
        }
    }

    // Compact tombstones into a dense parent array.
    let mut remap = vec![u32::MAX; parents.len()];
    let mut dense: Vec<u32> = Vec::new();
    for (v, p) in parents.iter().enumerate() {
        if p.is_some() {
            remap[v] = dense.len() as u32;
            dense.push(0);
        }
    }
    for (v, p) in parents.iter().enumerate() {
        if let Some(parent) = p {
            dense[remap[v] as usize] = if v == 0 { 0 } else { remap[*parent as usize] };
        }
    }
    (
        Tree::from_parents(&dense).expect("mutations preserve validity"),
        applied,
    )
}

/// A caterpillar: a spine path of `spine` nodes with `legs` leaves hanging
/// off every spine node.
pub fn caterpillar_tree(spine: usize, legs: usize) -> Tree {
    assert!(spine >= 1);
    let mut builder = TreeBuilder::new();
    let mut prev = 0u32;
    for _ in 0..legs {
        builder.add_child(prev);
    }
    for _ in 1..spine {
        let next = builder.add_child(prev);
        for _ in 0..legs {
            builder.add_child(next);
        }
        prev = next;
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn attachment_tree_sizes() {
        let mut rng = SmallRng::seed_from_u64(1);
        for n in [1usize, 2, 3, 10, 100] {
            let t = random_attachment_tree(n, &mut rng);
            assert_eq!(t.len(), n);
            t.check_invariants().unwrap();
        }
    }

    #[test]
    fn prufer_tree_is_uniform_shape_sane() {
        let mut rng = SmallRng::seed_from_u64(2);
        for n in [1usize, 2, 3, 4, 50, 200] {
            let t = random_prufer_tree(n, &mut rng);
            assert_eq!(t.len(), n);
            assert_eq!(t.num_edges(), n - 1);
            t.check_invariants().unwrap();
        }
    }

    #[test]
    fn bounded_depth_respected() {
        let mut rng = SmallRng::seed_from_u64(3);
        for d in 1..6 {
            let t = random_bounded_depth_tree(200, d, &mut rng);
            assert!(t.num_levels() <= d + 1, "depth {} > {}", t.num_levels(), d);
            assert_eq!(t.len(), 200);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = random_attachment_tree(64, &mut SmallRng::seed_from_u64(9));
        let b = random_attachment_tree(64, &mut SmallRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn mutate_produces_valid_trees() {
        let mut rng = SmallRng::seed_from_u64(31);
        for _ in 0..30 {
            let t = random_attachment_tree(20, &mut rng);
            let (m, applied) = mutate(&t, 5, &mut rng);
            m.check_invariants().unwrap();
            assert!(applied.len() <= 5);
            // node count moves by at most the applied op count
            assert!(m.len().abs_diff(t.len()) <= applied.len());
        }
    }

    #[test]
    fn mutate_zero_ops_is_identity() {
        let mut rng = SmallRng::seed_from_u64(32);
        let t = random_attachment_tree(12, &mut rng);
        let (m, applied) = mutate(&t, 0, &mut rng);
        assert!(applied.is_empty());
        assert!(crate::ahu::isomorphic(&t, &m));
    }

    #[test]
    fn mutate_singleton_never_deletes_root() {
        let mut rng = SmallRng::seed_from_u64(33);
        for _ in 0..10 {
            let (m, _) = mutate(&Tree::singleton(), 3, &mut rng);
            assert!(!m.is_empty());
            m.check_invariants().unwrap();
        }
    }

    #[test]
    fn structured_shapes() {
        assert_eq!(path_tree(5).num_levels(), 5);
        assert_eq!(star_tree(5).num_levels(), 2);
        assert_eq!(perfect_tree(2, 4).len(), 15);
        assert_eq!(perfect_tree(3, 1).len(), 1);
        let cat = caterpillar_tree(4, 2);
        assert_eq!(cat.len(), 4 + 4 * 2);
        cat.check_invariants().unwrap();
    }
}
