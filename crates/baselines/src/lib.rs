//! Competitor inter-graph node similarity measures (Section 2 / Section 13.4).
//!
//! The paper compares NED against the two families of methods that can
//! compare nodes *across* graphs without labels:
//!
//! * [`hits`] — the HITS-based similarity of Blondel et al. \[4\]: iterate
//!   `S ← B·S·Aᵀ + Bᵀ·S·A` over a similarity matrix between the two
//!   (neighborhood) graphs. Not a metric, and slow — the matrix iteration
//!   must converge per pair.
//! * [`features`] — Feature-based similarity: ReFeX-style recursive
//!   structural features \[9\], with NetSimile \[3\] / OddBall \[1\] ego-net
//!   features as the recursion-depth-0 special case. Fast, but ad-hoc:
//!   two topologically different neighborhoods can map to identical
//!   feature vectors, and the distance is not a metric.
//!
//! Both implementations follow the cited constructions as described in the
//! NED paper; see DESIGN.md for the per-pair neighborhood scoping choice
//! for HITS.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod features;
pub mod graphlets;
pub mod hits;
pub mod setsim;
pub mod simrank;
