//! SimRank (Jeh & Widom \[10\]) — the canonical *link-based* node
//! similarity, implemented to demonstrate the paper's motivating claim
//! (Section 2): link-based measures are structurally unable to compare
//! inter-graph nodes, because two nodes with no connecting path always
//! score 0 no matter how alike their neighborhoods look.
//!
//! SimRank's recursion: `s(a, a) = 1` and for `a ≠ b`
//!
//! ```text
//! s(a, b) = C / (|N(a)|·|N(b)|) · Σ_{x∈N(a)} Σ_{y∈N(b)} s(x, y)
//! ```
//!
//! (0 if either node has no neighbors). We compute the fixed point by
//! naive iteration on a dense matrix — adequate for the graph sizes the
//! tests and demonstrations use.

use ned_graph::{Graph, GraphBuilder, NodeId};

/// Configuration for the SimRank iteration.
#[derive(Debug, Clone, Copy)]
pub struct SimRankConfig {
    /// Decay factor `C` (the paper's 0.8 default).
    pub decay: f64,
    /// Number of iterations (each adds one hop of propagation).
    pub iterations: usize,
}

impl Default for SimRankConfig {
    fn default() -> Self {
        SimRankConfig {
            decay: 0.8,
            iterations: 10,
        }
    }
}

/// Dense all-pairs SimRank scores for one graph. `O(iterations · n² · d̄²)`
/// — use on small graphs only.
pub fn simrank_matrix(g: &Graph, cfg: &SimRankConfig) -> Vec<f64> {
    let n = g.num_nodes();
    let mut s = vec![0.0f64; n * n];
    for v in 0..n {
        s[v * n + v] = 1.0;
    }
    let mut next = s.clone();
    for _ in 0..cfg.iterations {
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    next[a * n + b] = 1.0;
                    continue;
                }
                let na = g.neighbors(a as NodeId);
                let nb = g.neighbors(b as NodeId);
                if na.is_empty() || nb.is_empty() {
                    next[a * n + b] = 0.0;
                    continue;
                }
                let mut acc = 0.0;
                for &x in na {
                    for &y in nb {
                        acc += s[(x as usize) * n + y as usize];
                    }
                }
                next[a * n + b] = cfg.decay * acc / (na.len() * nb.len()) as f64;
            }
        }
        std::mem::swap(&mut s, &mut next);
    }
    s
}

/// SimRank between two specific nodes of one graph.
pub fn simrank(g: &Graph, a: NodeId, b: NodeId, cfg: &SimRankConfig) -> f64 {
    let s = simrank_matrix(g, cfg);
    s[(a as usize) * g.num_nodes() + b as usize]
}

/// The only way to point SimRank at *inter-graph* nodes: form the disjoint
/// union of the two graphs and ask about the corresponding pair. Returns
/// `(score, union graph, offset of g2's nodes)`. The score is provably 0 —
/// no path ever connects the components — which is exactly the paper's
/// argument for neighborhood-topology measures like NED.
pub fn simrank_across(
    g1: &Graph,
    u: NodeId,
    g2: &Graph,
    v: NodeId,
    cfg: &SimRankConfig,
) -> (f64, Graph, NodeId) {
    let offset = g1.num_nodes() as NodeId;
    let mut builder = GraphBuilder::undirected(g1.num_nodes() + g2.num_nodes());
    for (a, b) in g1.edges() {
        builder.add_edge(a, b);
    }
    for (a, b) in g2.edges() {
        builder.add_edge(a + offset, b + offset);
    }
    let union = builder.build();
    let score = simrank(&union, u, v + offset, cfg);
    (score, union, offset)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bipartite_example() -> Graph {
        // Jeh & Widom's classic intuition: two "parents" sharing children.
        // 0 and 1 both point at {2, 3} (undirected here).
        Graph::undirected_from_edges(4, &[(0, 2), (0, 3), (1, 2), (1, 3)])
    }

    #[test]
    fn self_similarity_is_one() {
        let g = bipartite_example();
        let cfg = SimRankConfig::default();
        for v in g.nodes() {
            assert_eq!(simrank(&g, v, v, &cfg), 1.0);
        }
    }

    #[test]
    fn shared_neighbors_score_high() {
        let g = bipartite_example();
        let cfg = SimRankConfig::default();
        let s01 = simrank(&g, 0, 1, &cfg);
        assert!(
            s01 > 0.3,
            "nodes sharing all neighbors must score high: {s01}"
        );
        // and scores live in [0, 1]
        let m = simrank_matrix(&g, &cfg);
        for &x in &m {
            assert!((0.0..=1.0 + 1e-9).contains(&x));
        }
    }

    #[test]
    fn symmetry() {
        let g = Graph::undirected_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let cfg = SimRankConfig::default();
        let m = simrank_matrix(&g, &cfg);
        let n = g.num_nodes();
        for a in 0..n {
            for b in 0..n {
                assert!((m[a * n + b] - m[b * n + a]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn isolated_nodes_score_zero() {
        let g = Graph::undirected_from_edges(3, &[(0, 1)]);
        let cfg = SimRankConfig::default();
        assert_eq!(simrank(&g, 0, 2, &cfg), 0.0);
    }

    /// The paper's Section 2 claim, demonstrated: across disconnected
    /// graphs SimRank is identically 0 — even for structurally identical
    /// nodes — while NED sees the isomorphism.
    #[test]
    fn inter_graph_simrank_is_blind_where_ned_is_not() {
        let cfg = SimRankConfig::default();
        let g1 = Graph::undirected_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let g2 = g1.clone();
        let (score, union, offset) = simrank_across(&g1, 1, &g2, 1, &cfg);
        assert_eq!(score, 0.0, "no connecting path => SimRank 0");
        assert_eq!(union.num_nodes(), 8);
        assert_eq!(offset, 4);
        // NED, by contrast, certifies the equivalence:
        assert_eq!(ned_core::ned(&g1, 1, &g2, 1, 4), 0);
        // ... and SimRank stays 0 even for *different* structures, so it
        // cannot rank inter-graph candidates at all:
        let star = Graph::undirected_from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let (score2, _, _) = simrank_across(&g1, 1, &star, 0, &cfg);
        assert_eq!(score2, 0.0);
        assert!(ned_core::ned(&g1, 1, &star, 0, 4) > 0);
    }
}
