//! Feature-based similarity: ReFeX-style recursive structural features.
//!
//! ReFeX \[9\] starts from *local* ego-net features and recursively appends
//! neighborhood aggregates (sums and means of the neighbors' feature
//! vectors). OddBall \[1\] and NetSimile \[3\] are "simplified versions of
//! ReFeX with parameter k = 1" (paper, Section 13): plain ego-net
//! features, no recursion.
//!
//! The base features per node `v` are:
//!
//! 1. `degree(v)`
//! 2. number of edges inside the ego-net of `v` (v, its neighbors, and
//!    all edges among them),
//! 3. number of boundary edges leaving the ego-net.
//!
//! Each recursion round maps `f(v) ↦ f(v) ++ sum_{w∈N(v)} f(w) ++
//! mean_{w∈N(v)} f(w)`, tripling the dimension; `r` rounds aggregate
//! information from `r` hops, analogous to NED's `k = r + 1`.
//!
//! The paper's criticism applies verbatim to this implementation (by
//! design — it is the baseline): values are ad-hoc statistics, distinct
//! neighborhoods can collide, and the L1 distance on these vectors is not
//! a metric on graph structure (identity fails).

use ned_graph::{stats, Graph, NodeId};

/// Number of base features.
pub const BASE_FEATURES: usize = 3;

/// Feature dimension after `r` recursion rounds: `3^(r+1)`.
pub fn dimension(recursions: usize) -> usize {
    BASE_FEATURES * 3usize.pow(recursions as u32)
}

/// All-node ReFeX features, computed in `O((n + m) · dim)`.
///
/// Use this when many nodes of the same graph will be queried (the
/// de-anonymization workload); use [`refex_node_features`] for one-off
/// per-pair comparisons (the Figure 9a timing workload).
#[derive(Debug, Clone)]
pub struct RefexFeatures {
    recursions: usize,
    dim: usize,
    data: Vec<f64>,
}

impl RefexFeatures {
    /// Computes features for every node of `g` with `recursions` rounds.
    pub fn compute(g: &Graph, recursions: usize) -> Self {
        let n = g.num_nodes();
        let mut current: Vec<Vec<f64>> = (0..n as NodeId).map(|v| base_features(g, v)).collect();
        for _ in 0..recursions {
            current = recurse_once(g, &current);
        }
        let dim = dimension(recursions);
        let mut data = Vec::with_capacity(n * dim);
        for f in current {
            debug_assert_eq!(f.len(), dim);
            data.extend_from_slice(&f);
        }
        RefexFeatures {
            recursions,
            dim,
            data,
        }
    }

    /// Number of recursion rounds used.
    pub fn recursions(&self) -> usize {
        self.recursions
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The feature vector of `v`.
    pub fn features(&self, v: NodeId) -> &[f64] {
        &self.data[(v as usize) * self.dim..(v as usize + 1) * self.dim]
    }
}

impl RefexFeatures {
    /// ReFeX as published: recursive features followed by **vertical
    /// logarithmic binning** — per feature column, the fraction `p` of
    /// nodes with the smallest values gets bin 0, the fraction `p` of the
    /// remainder bin 1, and so on (ties share a bin). Binning is what
    /// makes ReFeX robust to noise, and also what makes its values
    /// graph-dependent: two graphs bin differently, so cross-graph
    /// distances are only loosely comparable — the paper's critique,
    /// reproduced faithfully.
    pub fn compute_binned(g: &Graph, recursions: usize, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p) && p > 0.0, "bin fraction in (0, 1)");
        let mut raw = RefexFeatures::compute(g, recursions);
        let n = g.num_nodes();
        if n == 0 {
            return raw;
        }
        for col in 0..raw.dim {
            let mut order: Vec<(f64, usize)> =
                (0..n).map(|v| (raw.data[v * raw.dim + col], v)).collect();
            order.sort_by(|a, b| a.partial_cmp(b).expect("finite features"));
            let mut bin = 0.0f64;
            let mut idx = 0usize;
            while idx < n {
                let remaining = n - idx;
                let take = ((p * remaining as f64).ceil() as usize).clamp(1, remaining);
                let mut end = idx + take;
                // ties never straddle a bin boundary
                while end < n && order[end].0 == order[end - 1].0 {
                    end += 1;
                }
                for &(_, v) in &order[idx..end] {
                    raw.data[v * raw.dim + col] = bin;
                }
                bin += 1.0;
                idx = end;
            }
        }
        raw
    }
}

/// One recursion round over the whole graph.
fn recurse_once(g: &Graph, prev: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let d = prev.first().map(Vec::len).unwrap_or(0);
    (0..g.num_nodes() as NodeId)
        .map(|v| {
            let mut out = Vec::with_capacity(3 * d);
            out.extend_from_slice(&prev[v as usize]);
            let nbrs = g.neighbors(v);
            let mut sums = vec![0.0f64; d];
            for &w in nbrs {
                for (s, x) in sums.iter_mut().zip(&prev[w as usize]) {
                    *s += x;
                }
            }
            out.extend_from_slice(&sums);
            let inv = if nbrs.is_empty() {
                0.0
            } else {
                1.0 / nbrs.len() as f64
            };
            out.extend(sums.iter().map(|s| s * inv));
            out
        })
        .collect()
}

/// ReFeX features of a *single* node, touching only its `recursions`-hop
/// neighborhood. Matches [`RefexFeatures::compute`] exactly.
pub fn refex_node_features(g: &Graph, v: NodeId, recursions: usize) -> Vec<f64> {
    // Collect the nodes whose features are (transitively) needed.
    let levels = ned_graph::bfs::bfs_levels(g, v, recursions + 1, ned_graph::Direction::Outgoing);
    let nodes: Vec<NodeId> = levels.into_iter().flatten().collect();
    let mut index = std::collections::HashMap::with_capacity(nodes.len());
    for (i, &w) in nodes.iter().enumerate() {
        index.insert(w, i);
    }
    let mut current: Vec<Vec<f64>> = nodes.iter().map(|&w| base_features(g, w)).collect();
    for _ in 0..recursions {
        let d = current[0].len();
        let mut next = Vec::with_capacity(nodes.len());
        for (i, &w) in nodes.iter().enumerate() {
            let mut out = Vec::with_capacity(3 * d);
            out.extend_from_slice(&current[i]);
            let mut sums = vec![0.0f64; d];
            let mut cnt = 0usize;
            for &x in g.neighbors(w) {
                // Nodes outside the collected ball only matter for rounds
                // that can't influence the root anymore; treat missing
                // entries as zero only when they are genuinely outside
                // the needed radius.
                if let Some(&xi) = index.get(&x) {
                    for (s, val) in sums.iter_mut().zip(&current[xi]) {
                        *s += val;
                    }
                }
                cnt += 1;
            }
            out.extend_from_slice(&sums);
            let inv = if cnt == 0 { 0.0 } else { 1.0 / cnt as f64 };
            out.extend(sums.iter().map(|s| s * inv));
            next.push(out);
        }
        current = next;
    }
    current.swap_remove(0)
}

/// The three ego-net base features of `v`.
pub fn base_features(g: &Graph, v: NodeId) -> Vec<f64> {
    let (internal, boundary) = egonet_edges(g, v);
    vec![g.degree(v) as f64, internal as f64, boundary as f64]
}

/// `(edges inside the ego-net of v, edges leaving it)`.
pub fn egonet_edges(g: &Graph, v: NodeId) -> (usize, usize) {
    let nbrs = g.neighbors(v);
    let mut internal = nbrs.len(); // v's own spokes
    let mut boundary = 0usize;
    for &w in nbrs {
        for &x in g.neighbors(w) {
            if x == v {
                continue;
            }
            if nbrs.binary_search(&x).is_ok() {
                internal += 1; // counted twice below, fixed after loop
            } else {
                boundary += 1;
            }
        }
    }
    // neighbor-neighbor edges were seen from both endpoints
    let spokes = nbrs.len();
    ((internal - spokes) / 2 + spokes, boundary)
}

/// The seven NetSimile node features \[3\].
pub fn netsimile_features(g: &Graph, v: NodeId) -> Vec<f64> {
    let nbrs = g.neighbors(v);
    let deg = nbrs.len() as f64;
    let cc = stats::local_clustering(g, v);
    let (avg_nbr_deg, avg_nbr_cc) = if nbrs.is_empty() {
        (0.0, 0.0)
    } else {
        let dsum: f64 = nbrs.iter().map(|&w| g.degree(w) as f64).sum();
        let csum: f64 = nbrs.iter().map(|&w| stats::local_clustering(g, w)).sum();
        (dsum / deg, csum / deg)
    };
    let (internal, boundary) = egonet_edges(g, v);
    // distinct neighbors of the ego-net (outside it)
    let mut outside: Vec<NodeId> = Vec::new();
    for &w in nbrs.iter().chain(std::iter::once(&v)) {
        for &x in g.neighbors(w) {
            if x != v && nbrs.binary_search(&x).is_err() {
                outside.push(x);
            }
        }
    }
    outside.sort_unstable();
    outside.dedup();
    vec![
        deg,
        cc,
        avg_nbr_deg,
        avg_nbr_cc,
        internal as f64,
        boundary as f64,
        outside.len() as f64,
    ]
}

/// NetSimile's *graph-level* signature \[3\]: for each of the seven node
/// features, five aggregates over all nodes — mean, median, standard
/// deviation, skewness, kurtosis — giving a 35-dimensional vector. Two
/// graphs are compared with the Canberra distance of their signatures.
/// This is the whole-network analogue of the paper's Appendix A
/// (Hausdorff over NED), included as the baseline for that extension.
pub fn netsimile_graph_signature(g: &Graph) -> Vec<f64> {
    let n = g.num_nodes();
    let mut columns: Vec<Vec<f64>> = (0..7).map(|_| Vec::with_capacity(n)).collect();
    for v in g.nodes() {
        for (col, &x) in columns.iter_mut().zip(netsimile_features(g, v).iter()) {
            col.push(x);
        }
    }
    let mut signature = Vec::with_capacity(35);
    for col in &mut columns {
        signature.extend(moments(col));
    }
    signature
}

/// `[mean, median, std, skewness, kurtosis]` of a sample (zeros for
/// degenerate inputs).
fn moments(xs: &mut [f64]) -> [f64; 5] {
    let n = xs.len();
    if n == 0 {
        return [0.0; 5];
    }
    let mean = xs.iter().sum::<f64>() / n as f64;
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite features"));
    let median = if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    };
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
    let std = var.sqrt();
    if std <= 1e-12 {
        return [mean, median, 0.0, 0.0, 0.0];
    }
    let skew = xs.iter().map(|x| ((x - mean) / std).powi(3)).sum::<f64>() / n as f64;
    let kurt = xs.iter().map(|x| ((x - mean) / std).powi(4)).sum::<f64>() / n as f64 - 3.0;
    [mean, median, std, skew, kurt]
}

/// L1 (Manhattan) distance between feature vectors.
pub fn l1_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "feature dimensions must match");
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// L2 (Euclidean) distance between feature vectors.
pub fn l2_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "feature dimensions must match");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Canberra distance (NetSimile's choice \[3\]).
pub fn canberra_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "feature dimensions must match");
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let denom = x.abs() + y.abs();
            if denom == 0.0 {
                0.0
            } else {
                (x - y).abs() / denom
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ned_graph::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn triangle_plus_tail() -> Graph {
        Graph::undirected_from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)])
    }

    #[test]
    fn base_features_values() {
        let g = triangle_plus_tail();
        // node 0: degree 2; ego {0,1,2}: edges 0-1,1-2,2-0 = 3; boundary: 2-3.
        assert_eq!(base_features(&g, 0), vec![2.0, 3.0, 1.0]);
        // node 4: degree 1; ego {3,4}: edge 3-4; boundary: 2-3.
        assert_eq!(base_features(&g, 4), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn dimension_grows_by_powers_of_three() {
        assert_eq!(dimension(0), 3);
        assert_eq!(dimension(1), 9);
        assert_eq!(dimension(2), 27);
    }

    #[test]
    fn whole_graph_matches_per_node() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = generators::erdos_renyi_gnm(40, 100, &mut rng);
        for r in 0..3 {
            let all = RefexFeatures::compute(&g, r);
            for v in [0u32, 7, 19, 39] {
                let single = refex_node_features(&g, v, r);
                let batch = all.features(v);
                assert_eq!(single.len(), batch.len());
                for (a, b) in single.iter().zip(batch) {
                    assert!((a - b).abs() < 1e-9, "node {v} r={r}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn isomorphic_positions_get_equal_features() {
        // two disjoint triangles inside one graph
        let g = Graph::undirected_from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let f = RefexFeatures::compute(&g, 2);
        assert_eq!(l1_distance(f.features(0), f.features(4)), 0.0);
    }

    #[test]
    fn netsimile_has_seven_features() {
        let g = triangle_plus_tail();
        for v in g.nodes() {
            assert_eq!(netsimile_features(&g, v).len(), 7);
        }
        // clustering of node 0 (in the triangle) is 1.0
        assert_eq!(netsimile_features(&g, 0)[1], 1.0);
    }

    #[test]
    fn distances_basic_properties() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 2.0, 1.0];
        assert_eq!(l1_distance(&a, &b), 3.0);
        assert!((l2_distance(&a, &b) - (5.0f64).sqrt()).abs() < 1e-12);
        assert_eq!(l1_distance(&a, &a), 0.0);
        assert_eq!(canberra_distance(&a, &a), 0.0);
        assert!(canberra_distance(&a, &b) > 0.0);
        // symmetry
        assert_eq!(l1_distance(&a, &b), l1_distance(&b, &a));
        assert_eq!(canberra_distance(&a, &b), canberra_distance(&b, &a));
    }

    #[test]
    #[should_panic(expected = "dimensions must match")]
    fn mismatched_dimensions_panic() {
        l1_distance(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn graph_signature_has_35_dims_and_separates_families() {
        let mut rng = SmallRng::seed_from_u64(12);
        let road1 = generators::road_network(10, 10, 0.4, 0.0, &mut rng);
        let road2 = generators::road_network(11, 9, 0.4, 0.0, &mut rng);
        let social = generators::barabasi_albert(100, 3, &mut rng);
        let s1 = netsimile_graph_signature(&road1);
        let s2 = netsimile_graph_signature(&road2);
        let s3 = netsimile_graph_signature(&social);
        assert_eq!(s1.len(), 35);
        let rr = canberra_distance(&s1, &s2);
        let rs = canberra_distance(&s1, &s3);
        assert!(rr < rs, "same-family graphs should be closer: {rr} vs {rs}");
        // identity on identical graphs
        assert_eq!(
            canberra_distance(&s1, &netsimile_graph_signature(&road1)),
            0.0
        );
    }

    #[test]
    fn moments_sanity() {
        let mut xs = vec![1.0, 2.0, 3.0, 4.0];
        let m = moments(&mut xs);
        assert_eq!(m[0], 2.5); // mean
        assert_eq!(m[1], 2.5); // median
        assert!((m[2] - 1.118).abs() < 1e-3); // std
        assert!(m[3].abs() < 1e-9); // symmetric -> zero skew
        let mut constant = vec![7.0; 5];
        assert_eq!(moments(&mut constant), [7.0, 7.0, 0.0, 0.0, 0.0]);
        assert_eq!(moments(&mut []), [0.0; 5]);
    }

    #[test]
    fn binned_features_are_bin_indices() {
        let mut rng = SmallRng::seed_from_u64(9);
        let g = generators::barabasi_albert(100, 2, &mut rng);
        let binned = RefexFeatures::compute_binned(&g, 1, 0.5);
        for v in g.nodes() {
            for &x in binned.features(v) {
                assert!(x.fract() == 0.0 && x >= 0.0, "bin index expected, got {x}");
                assert!(x < 30.0, "log binning keeps bin counts small");
            }
        }
        // equal raw values always share a bin: two degree-2 leaves
        let star = Graph::undirected_from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let b = RefexFeatures::compute_binned(&star, 0, 0.5);
        assert_eq!(b.features(1), b.features(2));
        assert_eq!(b.features(2), b.features(3));
        // and the hub lands in a strictly higher degree bin
        assert!(b.features(0)[0] > b.features(1)[0]);
    }

    #[test]
    fn binning_coarsens_the_space() {
        let mut rng = SmallRng::seed_from_u64(10);
        let g = generators::barabasi_albert(200, 3, &mut rng);
        let raw = RefexFeatures::compute(&g, 2);
        let binned = RefexFeatures::compute_binned(&g, 2, 0.5);
        let distinct = |f: &RefexFeatures| {
            let mut set = std::collections::HashSet::new();
            for v in g.nodes() {
                let key: Vec<u64> = f.features(v).iter().map(|x| x.to_bits()).collect();
                set.insert(key);
            }
            set.len()
        };
        assert!(
            distinct(&binned) <= distinct(&raw),
            "binning must not increase the number of distinct fingerprints"
        );
    }

    #[test]
    fn feature_collision_demonstrates_non_identity() {
        // The paper's criticism: feature-based similarity can report 0 for
        // structurally different neighborhoods. Degree-0 features of any
        // two degree-d nodes with the same ego-net statistics collide even
        // when deeper topology differs. A 6-cycle node vs an infinite-path
        // imitation (path of 7, middle node): same degree, same ego edges,
        // same boundary.
        let cyc =
            Graph::undirected_from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let path =
            Graph::undirected_from_edges(7, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6)]);
        let f_cyc = refex_node_features(&cyc, 0, 0);
        let f_path = refex_node_features(&path, 3, 0);
        assert_eq!(l1_distance(&f_cyc, &f_path), 0.0);
    }
}
