//! Neighbor-set similarity coefficients (related work \[17, 22, 27\]).
//!
//! The oldest structural-equivalence measures compare two nodes by the
//! overlap of their neighbor *sets*: Jaccard, Sørensen–Dice, and Ochiai
//! coefficients. The paper's critique (Section 2) is precise: these only
//! make sense for **intra-graph** nodes — across graphs, or whenever two
//! nodes share no common neighbors, the similarity is 0 even for nodes
//! whose neighborhoods are perfectly isomorphic. This module implements
//! them anyway: they complete the baseline spectrum and the tests
//! demonstrate the critique.

use ned_graph::{Graph, NodeId};

/// `|N(u) ∩ N(v)|` for sorted adjacency slices.
fn intersection_size(a: &[NodeId], b: &[NodeId]) -> usize {
    let (mut i, mut j, mut common) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                common += 1;
                i += 1;
                j += 1;
            }
        }
    }
    common
}

/// Jaccard coefficient `|N(u) ∩ N(v)| / |N(u) ∪ N(v)|` (0 when both
/// neighborhoods are empty).
pub fn jaccard(g: &Graph, u: NodeId, v: NodeId) -> f64 {
    let (a, b) = (g.neighbors(u), g.neighbors(v));
    let common = intersection_size(a, b);
    let union = a.len() + b.len() - common;
    if union == 0 {
        0.0
    } else {
        common as f64 / union as f64
    }
}

/// Sørensen–Dice coefficient `2|N(u) ∩ N(v)| / (|N(u)| + |N(v)|)`.
pub fn dice(g: &Graph, u: NodeId, v: NodeId) -> f64 {
    let (a, b) = (g.neighbors(u), g.neighbors(v));
    let total = a.len() + b.len();
    if total == 0 {
        0.0
    } else {
        2.0 * intersection_size(a, b) as f64 / total as f64
    }
}

/// Ochiai (cosine) coefficient `|N(u) ∩ N(v)| / sqrt(|N(u)|·|N(v)|)`.
pub fn ochiai(g: &Graph, u: NodeId, v: NodeId) -> f64 {
    let (a, b) = (g.neighbors(u), g.neighbors(v));
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    intersection_size(a, b) as f64 / ((a.len() * b.len()) as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> Graph {
        // 0 and 1 share neighbors {2, 3}; 4 hangs off 3.
        Graph::undirected_from_edges(5, &[(0, 2), (0, 3), (1, 2), (1, 3), (3, 4)])
    }

    #[test]
    fn perfect_overlap() {
        let g = g();
        assert_eq!(jaccard(&g, 0, 1), 1.0);
        assert_eq!(dice(&g, 0, 1), 1.0);
        assert_eq!(ochiai(&g, 0, 1), 1.0);
    }

    #[test]
    fn partial_overlap() {
        let g = g();
        // N(0) = {2,3}, N(4) = {3}: intersection 1, union 2.
        assert_eq!(jaccard(&g, 0, 4), 0.5);
        assert!((dice(&g, 0, 4) - 2.0 / 3.0).abs() < 1e-12);
        assert!((ochiai(&g, 0, 4) - 1.0 / 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn isolated_nodes_are_zero() {
        let g = Graph::undirected_from_edges(3, &[(0, 1)]);
        assert_eq!(jaccard(&g, 2, 0), 0.0);
        assert_eq!(dice(&g, 2, 2), 0.0);
        assert_eq!(ochiai(&g, 2, 1), 0.0);
    }

    #[test]
    fn papers_critique_no_shared_neighbors_means_zero() {
        // Two disjoint, isomorphic stars inside one graph: the centers are
        // structurally identical, yet every set coefficient says 0 —
        // the paper's argument for topology-based inter-graph measures.
        let g = Graph::undirected_from_edges(8, &[(0, 1), (0, 2), (0, 3), (4, 5), (4, 6), (4, 7)]);
        assert_eq!(jaccard(&g, 0, 4), 0.0);
        assert_eq!(dice(&g, 0, 4), 0.0);
        assert_eq!(ochiai(&g, 0, 4), 0.0);
    }

    #[test]
    fn symmetry() {
        let g = g();
        for (u, v) in [(0u32, 1u32), (0, 4), (2, 3)] {
            assert_eq!(jaccard(&g, u, v), jaccard(&g, v, u));
            assert_eq!(dice(&g, u, v), dice(&g, v, u));
            assert_eq!(ochiai(&g, u, v), ochiai(&g, v, u));
        }
    }
}
