//! Graphlet-based node features (related work \[18, 6, 21\]).
//!
//! Graphlets are small connected induced subgraphs; a node's *graphlet
//! degree vector* (GDV) counts, per automorphism orbit, how many graphlet
//! instances touch the node in that position. The paper cites this as the
//! biological-network approach to inter-graph node comparison, with the
//! caveat that it only sees a bounded-radius neighborhood and degrades as
//! the neighborhood grows — which is NED's opening.
//!
//! This module counts all orbits of the connected graphlets on 2 and 3
//! nodes exactly, plus two cheap 4-node signals:
//!
//! | index | orbit |
//! |-------|-------|
//! | 0 | edge endpoint (= degree) |
//! | 1 | end of a 2-path (P3) |
//! | 2 | middle of a 2-path (P3) |
//! | 3 | triangle corner (K3) |
//! | 4 | 4-clique corner (K4) |
//! | 5 | center of a claw (K1,3) |

use ned_graph::{Graph, NodeId};

/// Number of orbit counts in a [`gdv`].
pub const ORBITS: usize = 6;

/// The graphlet degree vector of one node.
///
/// ```
/// use ned_baselines::graphlets::gdv;
/// use ned_graph::Graph;
///
/// let triangle = Graph::undirected_from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
/// let v = gdv(&triangle, 0);
/// assert_eq!(v[0], 2); // degree
/// assert_eq!(v[3], 1); // sits in one triangle
/// ```
pub fn gdv(g: &Graph, v: NodeId) -> [u64; ORBITS] {
    let nbrs = g.neighbors(v);
    let deg = nbrs.len() as u64;
    let mut out = [0u64; ORBITS];
    out[0] = deg;

    // Triangles at v and 2-path middles: every unordered neighbor pair is
    // either closed (triangle) or open (v is the P3 middle).
    let mut triangles = 0u64;
    for (i, &a) in nbrs.iter().enumerate() {
        for &b in &nbrs[i + 1..] {
            if g.has_edge(a, b) {
                triangles += 1;
            }
        }
    }
    let pairs = deg * deg.saturating_sub(1) / 2;
    out[2] = pairs - triangles;
    out[3] = triangles;

    // P3 ends: walks of length 2 from v that are not triangles closing
    // back and not returning to v.
    let mut two_walks = 0u64;
    for &a in nbrs {
        for &b in g.neighbors(a) {
            if b != v && !g.has_edge(v, b) {
                two_walks += 1;
            }
        }
    }
    out[1] = two_walks;

    // K4 corners: triangles {v, a, b} extended by a common neighbor c.
    let mut k4 = 0u64;
    for (i, &a) in nbrs.iter().enumerate() {
        for &b in &nbrs[i + 1..] {
            if !g.has_edge(a, b) {
                continue;
            }
            // count common neighbors of v, a, b beyond the triangle
            for &c in &nbrs[i + 1..] {
                if c != b && c > b && g.has_edge(a, c) && g.has_edge(b, c) {
                    k4 += 1;
                }
            }
        }
    }
    out[4] = k4;

    // Claw centers: unordered neighbor triples with no closing edge.
    let mut claw = 0u64;
    for (i, &a) in nbrs.iter().enumerate() {
        for (j, &b) in nbrs.iter().enumerate().skip(i + 1) {
            if g.has_edge(a, b) {
                continue;
            }
            for &c in &nbrs[j + 1..] {
                if !g.has_edge(a, c) && !g.has_edge(b, c) {
                    claw += 1;
                }
            }
        }
    }
    out[5] = claw;

    out
}

/// Graphlet distance: L1 over `ln(1 + count)` (Przulj-style damping, so
/// hub orbits do not drown the structural ones).
pub fn gdv_distance(a: &[u64; ORBITS], b: &[u64; ORBITS]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| ((1.0 + x as f64).ln() - (1.0 + y as f64).ln()).abs())
        .sum()
}

/// Convenience: GDV distance between two nodes of (possibly different)
/// graphs.
pub fn graphlet_node_distance(g1: &Graph, u: NodeId, g2: &Graph, v: NodeId) -> f64 {
    gdv_distance(&gdv(g1, u), &gdv(g2, v))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_with_tail() -> Graph {
        // 0-1-2 triangle, 2-3, 3-4
        Graph::undirected_from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)])
    }

    #[test]
    fn degree_orbit() {
        let g = triangle_with_tail();
        assert_eq!(gdv(&g, 2)[0], 3);
        assert_eq!(gdv(&g, 4)[0], 1);
    }

    #[test]
    fn triangle_orbit() {
        let g = triangle_with_tail();
        assert_eq!(gdv(&g, 0)[3], 1);
        assert_eq!(gdv(&g, 2)[3], 1);
        assert_eq!(gdv(&g, 3)[3], 0);
    }

    #[test]
    fn path_orbits() {
        // P3: 0-1-2
        let p = Graph::undirected_from_edges(3, &[(0, 1), (1, 2)]);
        assert_eq!(gdv(&p, 0), [1, 1, 0, 0, 0, 0]);
        assert_eq!(gdv(&p, 1), [2, 0, 1, 0, 0, 0]);
    }

    #[test]
    fn k4_orbit() {
        let mut edges = Vec::new();
        for a in 0..4u32 {
            for b in a + 1..4 {
                edges.push((a, b));
            }
        }
        let k4 = Graph::undirected_from_edges(4, &edges);
        for v in k4.nodes() {
            assert_eq!(gdv(&k4, v)[4], 1, "each K4 corner sits in one K4");
            assert_eq!(gdv(&k4, v)[3], 3, "and in three triangles");
            assert_eq!(gdv(&k4, v)[5], 0, "cliques contain no claws");
        }
    }

    #[test]
    fn claw_orbit() {
        let star = Graph::undirected_from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(gdv(&star, 0)[5], 1);
        assert_eq!(gdv(&star, 1)[5], 0);
    }

    #[test]
    fn distance_identity_and_symmetry() {
        let g = triangle_with_tail();
        let a = gdv(&g, 0);
        let b = gdv(&g, 4);
        assert_eq!(gdv_distance(&a, &a), 0.0);
        assert_eq!(gdv_distance(&a, &b), gdv_distance(&b, &a));
        assert!(gdv_distance(&a, &b) > 0.0);
    }

    #[test]
    fn cross_graph_equivalence() {
        // corresponding nodes of two disjoint copies have identical GDVs
        let g = triangle_with_tail();
        assert_eq!(graphlet_node_distance(&g, 1, &g, 1), 0.0);
        // structurally equivalent nodes 0 and 1 match as well
        assert_eq!(graphlet_node_distance(&g, 0, &g, 1), 0.0);
    }
}
