//! HITS-based similarity (Blondel et al. \[4\]).
//!
//! The similarity matrix between graphs `G_A` and `G_B` is the limit of
//!
//! ```text
//! S_{k+1} = B·S_k·Aᵀ + Bᵀ·S_k·A,      S_0 = 1
//! ```
//!
//! normalized (Frobenius) each step; the even subsequence converges. The
//! paper's experiments time this *per node pair*, which is only feasible if
//! the iteration runs on the two nodes' k-hop neighborhood subgraphs
//! rather than the full graphs (a 300k × 2M similarity matrix would be
//! ~2.4 TB); we therefore scope the iteration to the `hops`-hop
//! neighborhoods of the compared nodes, matching NED's information radius.
//!
//! The resulting score is a similarity in `\[0, 1\]` (1 = structurally
//! identical roles in the neighborhood graphs); [`hits_distance`] returns
//! `1 − similarity`. As the paper stresses, this is **not** a metric —
//! the triangle inequality and the identity axiom both fail in general.

use ned_graph::bfs::khop_subgraph;
use ned_graph::{Direction, Graph, NodeId};

/// Tuning for the HITS-based similarity.
#[derive(Debug, Clone, Copy)]
pub struct HitsConfig {
    /// Neighborhood radius (hops) around each compared node.
    pub hops: usize,
    /// Hard cap on iterations (each "iteration" is one update).
    pub max_iterations: usize,
    /// Convergence threshold on the Frobenius distance between
    /// consecutive even iterates.
    pub tolerance: f64,
}

impl Default for HitsConfig {
    fn default() -> Self {
        HitsConfig {
            hops: 2,
            max_iterations: 100,
            tolerance: 1e-9,
        }
    }
}

/// Similarity in `\[0, 1\]` between node `u` of `g1` and node `v` of `g2`.
pub fn hits_similarity(g1: &Graph, u: NodeId, g2: &Graph, v: NodeId, cfg: &HitsConfig) -> f64 {
    let (sub1, root1, _) = khop_subgraph(g1, u, cfg.hops, Direction::Outgoing);
    let (sub2, root2, _) = khop_subgraph(g2, v, cfg.hops, Direction::Outgoing);
    similarity_matrix_entry(&sub1, root1, &sub2, root2, cfg)
}

/// `1 − hits_similarity` (NOT a metric; provided for ranking experiments).
pub fn hits_distance(g1: &Graph, u: NodeId, g2: &Graph, v: NodeId, cfg: &HitsConfig) -> f64 {
    1.0 - hits_similarity(g1, u, g2, v, cfg)
}

/// Runs the Blondel iteration between two explicit graphs and reads off
/// the similarity of one node pair, normalized by the matrix maximum.
pub fn similarity_matrix_entry(
    ga: &Graph,
    a_node: NodeId,
    gb: &Graph,
    b_node: NodeId,
    cfg: &HitsConfig,
) -> f64 {
    let s = similarity_matrix(ga, gb, cfg);
    let max = s
        .data
        .iter()
        .copied()
        .fold(f64::MIN, f64::max)
        .max(f64::MIN_POSITIVE);
    (s.get(b_node as usize, a_node as usize) / max).clamp(0.0, 1.0)
}

/// Dense row-major matrix, `rows = |V(G_B)|`, `cols = |V(G_A)|`.
#[derive(Debug, Clone)]
pub struct SimilarityMatrix {
    /// Number of rows (nodes of `G_B`).
    pub rows: usize,
    /// Number of columns (nodes of `G_A`).
    pub cols: usize,
    /// Row-major scores.
    pub data: Vec<f64>,
}

impl SimilarityMatrix {
    /// Entry for `(node of G_B, node of G_A)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.data[row * self.cols + col]
    }
}

/// The full converged Blondel similarity matrix between two graphs.
pub fn similarity_matrix(ga: &Graph, gb: &Graph, cfg: &HitsConfig) -> SimilarityMatrix {
    let na = ga.num_nodes();
    let nb = gb.num_nodes();
    assert!(na > 0 && nb > 0, "graphs must be non-empty");
    let mut s = vec![1.0f64; na * nb];
    normalize(&mut s);
    let mut prev_even = s.clone();
    let mut scratch = vec![0.0f64; na * nb];

    for iter in 1..=cfg.max_iterations {
        step(ga, gb, &s, &mut scratch);
        normalize(&mut scratch);
        std::mem::swap(&mut s, &mut scratch);
        if iter % 2 == 0 {
            let diff = frobenius_diff(&s, &prev_even);
            if diff < cfg.tolerance {
                break;
            }
            prev_even.copy_from_slice(&s);
        }
    }
    SimilarityMatrix {
        rows: nb,
        cols: na,
        data: s,
    }
}

/// One update `S' = B·S·Aᵀ + Bᵀ·S·A`, exploiting adjacency sparsity.
/// `S` is `nb × na` (row = node of B, col = node of A).
fn step(ga: &Graph, gb: &Graph, s: &[f64], out: &mut [f64]) {
    let na = ga.num_nodes();
    let nb = gb.num_nodes();
    out.fill(0.0);
    // (B S Aᵀ)[i][j] = Σ_{i' ∈ out_B(i)} Σ_{j' ∈ out_A(j)} S[i'][j']
    // (Bᵀ S A)[i][j] = Σ_{i' ∈ in_B(i)}  Σ_{j' ∈ in_A(j)}  S[i'][j']
    // For undirected graphs both terms coincide (factor 2 normalizes away).
    for i in 0..nb {
        for &ip in gb.neighbors(i as NodeId) {
            let src = &s[(ip as usize) * na..(ip as usize + 1) * na];
            let dst = &mut out[i * na..(i + 1) * na];
            for (j, slot) in dst.iter_mut().enumerate() {
                let mut acc = 0.0;
                for &jp in ga.neighbors(j as NodeId) {
                    acc += src[jp as usize];
                }
                *slot += acc;
            }
        }
    }
    if ga.is_directed() || gb.is_directed() {
        for i in 0..nb {
            for &ip in gb.neighbors_in(i as NodeId, Direction::Incoming) {
                let src = &s[(ip as usize) * na..(ip as usize + 1) * na];
                let dst = &mut out[i * na..(i + 1) * na];
                for (j, slot) in dst.iter_mut().enumerate() {
                    let mut acc = 0.0;
                    for &jp in ga.neighbors_in(j as NodeId, Direction::Incoming) {
                        acc += src[jp as usize];
                    }
                    *slot += acc;
                }
            }
        }
    } else {
        for x in out.iter_mut() {
            *x *= 2.0;
        }
    }
}

fn normalize(s: &mut [f64]) {
    let norm = s.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in s.iter_mut() {
            *x /= norm;
        }
    }
}

fn frobenius_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ned_graph::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn cycle(n: usize) -> Graph {
        let edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
        Graph::undirected_from_edges(n, &edges)
    }

    #[test]
    fn identical_nodes_have_high_similarity() {
        let g = cycle(8);
        let cfg = HitsConfig::default();
        let s = hits_similarity(&g, 0, &g, 3, &cfg);
        assert!(s > 0.99, "cycle nodes are equivalent, got {s}");
    }

    #[test]
    fn similarity_is_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g1 = generators::barabasi_albert(40, 2, &mut rng);
        let g2 = generators::erdos_renyi_gnm(40, 80, &mut rng);
        let cfg = HitsConfig::default();
        for (u, v) in [(0u32, 0u32), (3, 17), (10, 39)] {
            let s = hits_similarity(&g1, u, &g2, v, &cfg);
            assert!((0.0..=1.0).contains(&s), "similarity {s} out of range");
        }
    }

    #[test]
    fn symmetric_for_undirected_inputs() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g1 = generators::barabasi_albert(30, 2, &mut rng);
        let g2 = generators::erdos_renyi_gnm(30, 60, &mut rng);
        let cfg = HitsConfig::default();
        let ab = hits_similarity(&g1, 4, &g2, 9, &cfg);
        let ba = hits_similarity(&g2, 9, &g1, 4, &cfg);
        assert!((ab - ba).abs() < 1e-6, "{ab} vs {ba}");
    }

    #[test]
    fn converged_matrix_peaks_at_central_pairs() {
        // For a connected non-bipartite pair the even Blondel iterates
        // converge towards the outer product of the two graphs' dominant
        // eigenvectors: entries order by centrality products. The most
        // central pair (hub, hub) must dominate and the most peripheral
        // (pendant, pendant) must be minimal. (This rank-1 degeneracy is
        // one concrete reason the paper calls HITS-based values hard to
        // interpret as a node distance.)
        let g = Graph::undirected_from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let s = similarity_matrix(&g, &g, &HitsConfig::default());
        let hub = s.get(2, 2);
        let pendant = s.get(3, 3);
        for r in 0..4 {
            for c in 0..4 {
                if (r, c) != (2, 2) {
                    assert!(hub > s.get(r, c), "hub-hub not dominant at ({r},{c})");
                }
                if (r, c) != (3, 3) {
                    assert!(pendant < s.get(r, c), "pendant-pendant not minimal");
                }
            }
        }
    }

    #[test]
    fn regular_graph_pairs_collapse_to_uniform() {
        // For two regular graphs the uniform matrix is a fixed point of
        // the normalized iteration: every node pair looks maximally
        // similar. This degeneracy is part of why the paper calls the
        // HITS scores hard to interpret.
        let c5 = cycle(5);
        let c7 = cycle(7);
        let s = similarity_matrix(&c5, &c7, &HitsConfig::default());
        let first = s.get(0, 0);
        for r in 0..s.rows {
            for c in 0..s.cols {
                assert!((s.get(r, c) - first).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn distance_complements_similarity() {
        let g = cycle(6);
        let cfg = HitsConfig::default();
        let s = hits_similarity(&g, 0, &g, 1, &cfg);
        let d = hits_distance(&g, 0, &g, 1, &cfg);
        assert!((s + d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn directed_graphs_supported() {
        let g1 = Graph::directed_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let g2 = Graph::directed_from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let cfg = HitsConfig {
            hops: 2,
            ..Default::default()
        };
        let s = hits_similarity(&g1, 0, &g2, 0, &cfg);
        assert!((0.0..=1.0).contains(&s));
    }
}
