//! Duplicate-collapsed assignment: solve the matching on *distinct*
//! rows/columns only.
//!
//! TED\* cost matrices are full of repeats — on a real BFS-tree level most
//! slots carry one of a handful of children signatures, so whole swaths of
//! rows (and columns) of the `n × n` matrix are identical. An assignment
//! problem with duplicated rows/columns is exactly a **transportation
//! problem** over the distinct row/column classes, with the class
//! multiplicities as supplies and demands: interchangeable rows can be
//! permuted within any solution without changing its cost, so the optimum
//! of the collapsed problem equals the optimum of the expanded one.
//!
//! [`collapsed_hungarian`] detects the classes by hashing rows/columns and
//! solves the reduced problem in `O((R + C) · R · C)` time via successive
//! shortest paths — versus `O(n³)` for the dense Hungarian — then expands
//! back to a full [`Assignment`]. [`transportation`] is the underlying
//! solver, exposed because the TED\* sweep builds class-level problems
//! directly without ever materializing the dense matrix.
//!
//! Both solvers also come in **budgeted** variants
//! ([`transportation_within`], [`collapsed_hungarian_within`]) that abort
//! mid-solve the moment the optimum is provably above a caller limit —
//! successive shortest paths accumulate cost monotonically per
//! augmentation, so a partial solve already lower-bounds the optimum.
//! [`transportation_into`] additionally takes a reusable
//! [`TransportScratch`], making a steady-state solve allocation-free;
//! it is the engine the budget-aware TED\* kernel in `ned-core` runs on.

use crate::{Assignment, CostMatrix};
use std::collections::HashMap;

/// Solution of a transportation problem: the optimal cost and the flow
/// shipped between every supply/demand class pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transport {
    /// Minimum total cost `Σ flow(i, j) · cost(i, j)`.
    pub cost: i64,
    /// Row-major `R × C` flow matrix: `flows[i * C + j]` units go from
    /// supply class `i` to demand class `j`.
    pub flows: Vec<u64>,
}

/// Reusable scratch for [`transportation_into`]: every vector the solver
/// needs, grown once and recycled across calls so a steady-state caller
/// (the TED\* level sweep) performs **zero heap allocations** per solve.
///
/// After a successful solve, [`TransportScratch::flows`] holds the
/// row-major `R × C` flow matrix of the optimum.
#[derive(Debug, Default)]
pub struct TransportScratch {
    /// Flow matrix of the most recent successful solve (`R × C`,
    /// row-major) — the same data [`Transport::flows`] would carry.
    pub flows: Vec<u64>,
    supply_left: Vec<u64>,
    demand_left: Vec<u64>,
    pot_row: Vec<i64>,
    pot_col: Vec<i64>,
    dist: Vec<i64>,
    done: Vec<bool>,
    parent: Vec<usize>,
}

impl TransportScratch {
    /// Fresh, empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Minimum-cost transportation: ship `supplies[i]` units from each supply
/// class to cover `demands[j]` units at each demand class, paying
/// `costs[i * demands.len() + j]` per unit.
///
/// Requirements: `Σ supplies == Σ demands` and `costs.len() == R·C`.
/// Costs may be negative (they are shifted internally). The solver is
/// **deterministic**: ties are always broken toward lower indices, so the
/// returned flow matrix is a pure function of the inputs.
///
/// # Panics
/// Panics if the supply/demand totals differ or `costs` has the wrong
/// length.
pub fn transportation(supplies: &[u64], demands: &[u64], costs: &[i64]) -> Transport {
    let mut scratch = TransportScratch::new();
    let cost = transportation_into(supplies, demands, costs, i64::MAX, &mut scratch)
        .expect("an unlimited transportation solve cannot abort");
    Transport {
        cost,
        flows: std::mem::take(&mut scratch.flows),
    }
}

/// Early-abandoning [`transportation`]: returns `None` as soon as the
/// optimal cost is provably above `limit`, otherwise the full solution.
/// `Some(t)` is returned **iff** the optimum is `<= limit`, and the
/// flows of a returned solution are bit-identical to the unlimited
/// solver's (the abort check never changes which augmenting paths are
/// taken, only whether the solve runs to completion).
pub fn transportation_within(
    supplies: &[u64],
    demands: &[u64],
    costs: &[i64],
    limit: i64,
) -> Option<Transport> {
    let mut scratch = TransportScratch::new();
    let cost = transportation_into(supplies, demands, costs, limit, &mut scratch)?;
    Some(Transport {
        cost,
        flows: std::mem::take(&mut scratch.flows),
    })
}

/// The transportation engine behind [`transportation`] and
/// [`transportation_within`]: solves into caller-provided
/// [`TransportScratch`] (zero allocations once the scratch has grown) and
/// abandons as soon as the optimum is provably above `limit`.
///
/// Returns the optimal cost (flows are left in `scratch.flows`), or
/// `None` **iff** the optimum exceeds `limit`. Successive shortest paths
/// ship flow at non-decreasing true cost, so the accumulated cost plus a
/// per-remaining-unit floor (the cheapest edge anywhere) is a valid lower
/// bound on the optimum at every augmentation — the moment it passes
/// `limit` the solve aborts mid-flight.
///
/// # Panics
/// Panics if the supply/demand totals differ or `costs` has the wrong
/// length.
pub fn transportation_into(
    supplies: &[u64],
    demands: &[u64],
    costs: &[i64],
    limit: i64,
    scratch: &mut TransportScratch,
) -> Option<i64> {
    let r = supplies.len();
    let c = demands.len();
    assert_eq!(costs.len(), r * c, "costs must be R×C row-major");
    let total: u64 = supplies.iter().sum();
    assert_eq!(
        total,
        demands.iter().sum::<u64>(),
        "supply and demand totals must match"
    );
    scratch.flows.clear();
    scratch.flows.resize(r * c, 0);
    if total == 0 || r == 0 || c == 0 {
        return if limit >= 0 { Some(0) } else { None };
    }

    // Shift costs non-negative so Dijkstra works from the start. Every
    // unit of flow crosses exactly one (i, j) edge, so the shift
    // contributes exactly `shift · total` to the objective.
    let min_cost = costs.iter().copied().min().unwrap_or(0);
    let shift = min_cost.min(0);
    // Every unit still to ship crosses some (i, j) edge, so it costs at
    // least `min_cost`: the floor that makes mid-solve abandoning sound
    // even before the cheap flow has been routed.
    let floor = |cost_so_far: i64, remaining: u64| -> i64 {
        cost_so_far.saturating_add(min_cost.saturating_mul(remaining as i64))
    };
    if floor(0, total) > limit {
        return None;
    }
    const INF: i64 = i64::MAX / 4;

    let flows = &mut scratch.flows;
    scratch.supply_left.clear();
    scratch.supply_left.extend_from_slice(supplies);
    scratch.demand_left.clear();
    scratch.demand_left.extend_from_slice(demands);
    let supply_left = &mut scratch.supply_left;
    let demand_left = &mut scratch.demand_left;
    // Node potentials for reduced costs (rows then columns).
    scratch.pot_row.clear();
    scratch.pot_row.resize(r, 0);
    scratch.pot_col.clear();
    scratch.pot_col.resize(c, 0);
    let pot_row = &mut scratch.pot_row;
    let pot_col = &mut scratch.pot_col;
    let mut shipped = 0u64;
    let mut cost_so_far = 0i64;

    while shipped < total {
        // Dijkstra over the residual graph from all rows with remaining
        // supply. Nodes: 0..r rows, r..r+c columns.
        let n = r + c;
        scratch.dist.clear();
        scratch.dist.resize(n, INF);
        scratch.done.clear();
        scratch.done.resize(n, false);
        scratch.parent.clear();
        scratch.parent.resize(n, usize::MAX);
        let dist = &mut scratch.dist;
        let done = &mut scratch.done;
        let parent = &mut scratch.parent;
        for (i, &s) in supply_left.iter().enumerate() {
            if s > 0 {
                dist[i] = 0;
            }
        }
        loop {
            let mut u = usize::MAX;
            let mut best = INF;
            for v in 0..n {
                if !done[v] && dist[v] < best {
                    best = dist[v];
                    u = v;
                }
            }
            if u == usize::MAX {
                break;
            }
            done[u] = true;
            if u < r {
                // Forward edges row u -> every column.
                for j in 0..c {
                    let w = costs[u * c + j] - shift;
                    let reduced = w + pot_row[u] - pot_col[j];
                    debug_assert!(reduced >= 0, "negative reduced cost");
                    let nd = dist[u] + reduced;
                    if nd < dist[r + j] {
                        dist[r + j] = nd;
                        parent[r + j] = u;
                    }
                }
            } else {
                // Backward edges column (u - r) -> rows with flow to undo.
                let j = u - r;
                for i in 0..r {
                    if flows[i * c + j] > 0 {
                        let w = costs[i * c + j] - shift;
                        let reduced = pot_col[j] - w - pot_row[i];
                        debug_assert!(reduced >= 0, "negative residual reduced cost");
                        let nd = dist[u] + reduced;
                        if nd < dist[i] {
                            dist[i] = nd;
                            parent[i] = u;
                        }
                    }
                }
            }
        }

        // Cheapest reachable column with unmet demand (ties -> lowest j).
        let mut target = usize::MAX;
        let mut best = INF;
        for (j, &d) in demand_left.iter().enumerate() {
            if d > 0 && dist[r + j] < best {
                best = dist[r + j];
                target = j;
            }
        }
        assert!(
            target != usize::MAX,
            "transportation: demand unreachable (supply/demand mismatch?)"
        );

        // Update potentials (Johnson-style) for the next round. The
        // standard clamped form `π += min(dist, dist_target)` keeps every
        // reduced cost non-negative, including edges out of nodes the
        // search never reached.
        for i in 0..r {
            pot_row[i] += dist[i].min(best);
        }
        for j in 0..c {
            pot_col[j] += dist[r + j].min(best);
        }

        // Walk the path back to a source row, finding the bottleneck.
        let mut bottleneck = demand_left[target];
        let mut v = r + target;
        loop {
            let p = parent[v];
            if v >= r {
                // edge p(row) -> v(col): forward, no capacity limit
                if parent[p] == usize::MAX {
                    bottleneck = bottleneck.min(supply_left[p]);
                    break;
                }
            } else {
                // edge p(col) -> v(row): backward over existing flow
                bottleneck = bottleneck.min(flows[v * c + (p - r)]);
            }
            v = p;
        }
        debug_assert!(bottleneck > 0);

        // Apply the augmentation, tracking the true (unshifted) cost of
        // the current flow as it changes.
        let mut v = r + target;
        loop {
            let p = parent[v];
            if v >= r {
                let idx = p * c + (v - r);
                flows[idx] += bottleneck;
                cost_so_far += costs[idx] * bottleneck as i64;
                if parent[p] == usize::MAX {
                    supply_left[p] -= bottleneck;
                    break;
                }
            } else {
                let idx = v * c + (p - r);
                flows[idx] -= bottleneck;
                cost_so_far -= costs[idx] * bottleneck as i64;
            }
            v = p;
        }
        demand_left[target] -= bottleneck;
        shipped += bottleneck;

        // Early abandon: successive shortest paths only get more
        // expensive, and every unshipped unit costs at least the global
        // minimum edge — once that floor clears `limit`, so does the
        // optimum.
        if floor(cost_so_far, total - shipped) > limit {
            return None;
        }
    }

    debug_assert_eq!(
        cost_so_far,
        flows
            .iter()
            .enumerate()
            .map(|(idx, &f)| costs[idx] * f as i64)
            .sum::<i64>(),
        "incremental cost tracking diverged"
    );
    if cost_so_far > limit {
        return None;
    }
    Some(cost_so_far)
}

/// Distinct-row/column structure of a square cost matrix.
#[derive(Debug)]
pub struct MatrixClasses {
    /// For each distinct row class, the member row indices (ascending).
    pub row_members: Vec<Vec<usize>>,
    /// For each distinct column class, the member column indices (ascending).
    pub col_members: Vec<Vec<usize>>,
    /// `R × C` class-level cost matrix, row-major.
    pub costs: Vec<i64>,
}

impl MatrixClasses {
    /// Groups identical rows and identical columns of `m`. Classes are
    /// ordered by their first member index, so the grouping is
    /// deterministic.
    pub fn group(m: &CostMatrix) -> Self {
        let n = m.size();
        let mut row_classes: HashMap<&[i64], usize> = HashMap::new();
        let mut row_members: Vec<Vec<usize>> = Vec::new();
        for r in 0..n {
            let key = m.row(r);
            match row_classes.get(key) {
                Some(&class) => row_members[class].push(r),
                None => {
                    row_classes.insert(key, row_members.len());
                    row_members.push(vec![r]);
                }
            }
        }
        // Columns: hash the column vectors.
        let mut col_classes: HashMap<Vec<i64>, usize> = HashMap::new();
        let mut col_members: Vec<Vec<usize>> = Vec::new();
        for col in 0..n {
            let key: Vec<i64> = (0..n).map(|row| m.get(row, col)).collect();
            match col_classes.get(&key) {
                Some(&class) => col_members[class].push(col),
                None => {
                    col_classes.insert(key, col_members.len());
                    col_members.push(vec![col]);
                }
            }
        }
        let costs = row_members
            .iter()
            .flat_map(|rows| {
                let rep = rows[0];
                col_members.iter().map(move |cols| (rep, cols[0]))
            })
            .map(|(r, c)| m.get(r, c))
            .collect();
        MatrixClasses {
            row_members,
            col_members,
            costs,
        }
    }
}

/// Expands a class-level flow matrix into a per-row assignment.
///
/// Flows are consumed in ascending `(row class, column class)` order and
/// members within each class in ascending index order, so the expansion is
/// deterministic. Rows and columns must balance (a perfect matching).
pub fn expand_flows(
    row_members: &[Vec<usize>],
    col_members: &[Vec<usize>],
    flows: &[u64],
    n: usize,
) -> Vec<usize> {
    let c = col_members.len();
    let mut row_to_col = vec![usize::MAX; n];
    let mut row_cursor = vec![0usize; row_members.len()];
    let mut col_cursor = vec![0usize; col_members.len()];
    for (i, members) in row_members.iter().enumerate() {
        for (j, cols) in col_members.iter().enumerate() {
            let f = flows[i * c + j] as usize;
            for _ in 0..f {
                let row = members[row_cursor[i]];
                let col = cols[col_cursor[j]];
                row_cursor[i] += 1;
                col_cursor[j] += 1;
                row_to_col[row] = col;
            }
        }
    }
    row_to_col
}

/// Exact minimum-cost perfect matching that first collapses duplicate
/// rows/columns into multiplicity classes, solves the reduced
/// transportation problem, and expands back.
///
/// The cost always equals [`crate::hungarian`]'s (duplicated rows are
/// interchangeable in any optimum); the returned permutation may be a
/// *different* optimal matching, chosen canonically (ties broken toward
/// lower indices). With `R` distinct rows and `C` distinct columns the
/// running time is `O(n² )` for class detection plus `O((R + C)·R·C)` for
/// the solve — far below `O(n³)` when duplication is heavy.
///
/// ```
/// use ned_matching::{collapsed_hungarian, hungarian, CostMatrix};
///
/// // Two identical rows: the 3×3 problem collapses to 2×3.
/// let m = CostMatrix::from_rows(&[&[4, 1, 3], &[4, 1, 3], &[3, 2, 2]]);
/// assert_eq!(collapsed_hungarian(&m).cost, hungarian(&m).cost);
/// ```
pub fn collapsed_hungarian(costs: &CostMatrix) -> Assignment {
    collapsed_hungarian_within(costs, i64::MAX).expect("an unlimited matching cannot abort")
}

/// Early-abandoning [`collapsed_hungarian`]: returns `None` as soon as
/// the optimal matching cost is provably above `limit`, otherwise the
/// full assignment. `Some(a)` is returned **iff** the optimum is
/// `<= limit`, and a returned assignment is bit-identical to
/// [`collapsed_hungarian`]'s.
pub fn collapsed_hungarian_within(costs: &CostMatrix, limit: i64) -> Option<Assignment> {
    let n = costs.size();
    if n == 0 {
        return (limit >= 0).then(|| Assignment {
            row_to_col: Vec::new(),
            cost: 0,
        });
    }
    let classes = MatrixClasses::group(costs);
    let supplies: Vec<u64> = classes.row_members.iter().map(|m| m.len() as u64).collect();
    let demands: Vec<u64> = classes.col_members.iter().map(|m| m.len() as u64).collect();
    let transport = transportation_within(&supplies, &demands, &classes.costs, limit)?;
    let row_to_col = expand_flows(
        &classes.row_members,
        &classes.col_members,
        &transport.flows,
        n,
    );
    debug_assert_eq!(
        transport.cost,
        row_to_col
            .iter()
            .enumerate()
            .map(|(r, &c)| costs.get(r, c))
            .sum::<i64>(),
        "expansion changed the cost"
    );
    Some(Assignment {
        row_to_col,
        cost: transport.cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hungarian;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(n: usize, rng: &mut SmallRng, max: i64) -> CostMatrix {
        let mut m = CostMatrix::zeros(n);
        for r in 0..n {
            for c in 0..n {
                m.set(r, c, rng.gen_range(0..max));
            }
        }
        m
    }

    /// Duplicates random rows/columns of `m` in place.
    fn inject_duplicates(m: &mut CostMatrix, rng: &mut SmallRng, copies: usize) {
        let n = m.size();
        for _ in 0..copies {
            let (src, dst) = (rng.gen_range(0..n), rng.gen_range(0..n));
            if rng.gen_bool(0.5) {
                for c in 0..n {
                    let v = m.get(src, c);
                    m.set(dst, c, v);
                }
            } else {
                for r in 0..n {
                    let v = m.get(r, src);
                    m.set(r, dst, v);
                }
            }
        }
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(collapsed_hungarian(&CostMatrix::zeros(0)).cost, 0);
        let m = CostMatrix::from_rows(&[&[7]]);
        let a = collapsed_hungarian(&m);
        assert_eq!(a.cost, 7);
        assert_eq!(a.row_to_col, vec![0]);
    }

    #[test]
    fn all_rows_identical_collapses_to_one_class() {
        let m = CostMatrix::from_rows(&[&[5, 1, 2], &[5, 1, 2], &[5, 1, 2]]);
        let classes = MatrixClasses::group(&m);
        assert_eq!(classes.row_members.len(), 1);
        assert_eq!(classes.col_members.len(), 3);
        let a = collapsed_hungarian(&m);
        assert_eq!(a.cost, hungarian(&m).cost);
        assert_eq!(a.cost, 8);
    }

    #[test]
    fn matches_hungarian_on_random_matrices() {
        let mut rng = SmallRng::seed_from_u64(11);
        for n in [1usize, 2, 3, 5, 8, 13, 21] {
            for _ in 0..20 {
                let mut m = random_matrix(n, &mut rng, 30);
                inject_duplicates(&mut m, &mut rng, n);
                let a = collapsed_hungarian(&m);
                let h = hungarian(&m);
                assert_eq!(a.cost, h.cost, "n={n} {m:?}");
                // and the expansion is a permutation
                let mut seen = vec![false; n];
                for &c in &a.row_to_col {
                    assert!(!seen[c]);
                    seen[c] = true;
                }
            }
        }
    }

    #[test]
    fn handles_negative_costs() {
        let mut rng = SmallRng::seed_from_u64(12);
        for _ in 0..30 {
            let mut m = random_matrix(6, &mut rng, 20);
            for r in 0..6 {
                for c in 0..6 {
                    m.set(r, c, m.get(r, c) - 10);
                }
            }
            inject_duplicates(&mut m, &mut rng, 4);
            assert_eq!(collapsed_hungarian(&m).cost, hungarian(&m).cost);
        }
    }

    #[test]
    fn deterministic_output() {
        let mut rng = SmallRng::seed_from_u64(13);
        let mut m = random_matrix(9, &mut rng, 10);
        inject_duplicates(&mut m, &mut rng, 12);
        let a = collapsed_hungarian(&m);
        let b = collapsed_hungarian(&m);
        assert_eq!(a, b);
    }

    #[test]
    fn transportation_simple() {
        // 2 supplies of 2 units, 2 demands of 2 units.
        let t = transportation(&[2, 2], &[2, 2], &[1, 3, 3, 1]);
        assert_eq!(t.cost, 4);
        assert_eq!(t.flows, vec![2, 0, 0, 2]);
    }

    #[test]
    fn transportation_prefers_cheap_splits() {
        // One supplier must split across both demands.
        let t = transportation(&[3, 1], &[2, 2], &[1, 2, 5, 0]);
        // supplier 0: 2 units to demand 0 (cost 2) + 1 unit to demand 1
        // (cost 2); supplier 1: 1 unit to demand 1 (cost 0). Total 4.
        assert_eq!(t.cost, 4);
        assert_eq!(t.flows, vec![2, 1, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "totals must match")]
    fn transportation_rejects_imbalance() {
        transportation(&[1], &[2], &[0]);
    }

    #[test]
    fn within_agrees_with_unlimited_at_and_above_the_optimum() {
        let mut rng = SmallRng::seed_from_u64(21);
        for _ in 0..40 {
            let r = rng.gen_range(1..6usize);
            let c = rng.gen_range(1..6usize);
            let supplies: Vec<u64> = (0..r).map(|_| rng.gen_range(1..5u64)).collect();
            let total: u64 = supplies.iter().sum();
            // random demands summing to the supply total
            let mut demands = vec![0u64; c];
            for _ in 0..total {
                demands[rng.gen_range(0..c)] += 1;
            }
            let costs: Vec<i64> = (0..r * c).map(|_| rng.gen_range(-5..20)).collect();
            let full = transportation(&supplies, &demands, &costs);
            for slack in [0i64, 1, 100] {
                let t = transportation_within(&supplies, &demands, &costs, full.cost + slack)
                    .expect("limit at/above the optimum must solve");
                assert_eq!(t, full, "slack {slack}");
            }
            assert_eq!(
                transportation_within(&supplies, &demands, &costs, full.cost - 1),
                None,
                "limit below the optimum must abandon"
            );
        }
    }

    #[test]
    fn within_scratch_reuse_is_consistent() {
        let mut scratch = TransportScratch::new();
        let a = transportation_into(&[2, 2], &[2, 2], &[1, 3, 3, 1], i64::MAX, &mut scratch);
        assert_eq!(a, Some(4));
        assert_eq!(scratch.flows, vec![2, 0, 0, 2]);
        // reuse for a differently-shaped problem
        let b = transportation_into(&[3, 1], &[2, 2], &[1, 2, 5, 0], i64::MAX, &mut scratch);
        assert_eq!(b, Some(4));
        assert_eq!(scratch.flows, vec![2, 1, 0, 1]);
        // and an aborted solve leaves the scratch reusable
        assert_eq!(
            transportation_into(&[3, 1], &[2, 2], &[1, 2, 5, 0], 3, &mut scratch),
            None
        );
        let c = transportation_into(&[2, 2], &[2, 2], &[1, 3, 3, 1], 4, &mut scratch);
        assert_eq!(c, Some(4));
        assert_eq!(scratch.flows, vec![2, 0, 0, 2]);
    }

    #[test]
    fn collapsed_hungarian_within_matches_unbounded() {
        let mut rng = SmallRng::seed_from_u64(22);
        for _ in 0..25 {
            let n = rng.gen_range(1..10usize);
            let mut m = random_matrix(n, &mut rng, 25);
            inject_duplicates(&mut m, &mut rng, n);
            let full = collapsed_hungarian(&m);
            let bounded = collapsed_hungarian_within(&m, full.cost).expect("at the optimum");
            assert_eq!(bounded, full);
            assert_eq!(collapsed_hungarian_within(&m, full.cost - 1), None);
        }
        // empty matrix edge case
        assert_eq!(
            collapsed_hungarian_within(&CostMatrix::zeros(0), 0)
                .expect("empty is free")
                .cost,
            0
        );
    }
}
