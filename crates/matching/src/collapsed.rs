//! Duplicate-collapsed assignment: solve the matching on *distinct*
//! rows/columns only.
//!
//! TED\* cost matrices are full of repeats — on a real BFS-tree level most
//! slots carry one of a handful of children signatures, so whole swaths of
//! rows (and columns) of the `n × n` matrix are identical. An assignment
//! problem with duplicated rows/columns is exactly a **transportation
//! problem** over the distinct row/column classes, with the class
//! multiplicities as supplies and demands: interchangeable rows can be
//! permuted within any solution without changing its cost, so the optimum
//! of the collapsed problem equals the optimum of the expanded one.
//!
//! [`collapsed_hungarian`] detects the classes by hashing rows/columns and
//! solves the reduced problem in `O((R + C) · R · C)` time via successive
//! shortest paths — versus `O(n³)` for the dense Hungarian — then expands
//! back to a full [`Assignment`]. [`transportation`] is the underlying
//! solver, exposed because the TED\* sweep builds class-level problems
//! directly without ever materializing the dense matrix.
//!
//! Both solvers also come in **budgeted** variants
//! ([`transportation_within`], [`collapsed_hungarian_within`]) that abort
//! mid-solve the moment the optimum is provably above a caller limit —
//! successive shortest paths accumulate cost monotonically per
//! augmentation, so a partial solve already lower-bounds the optimum.
//! [`transportation_into`] additionally takes a reusable
//! [`TransportScratch`], making a steady-state solve allocation-free;
//! it is the engine the budget-aware TED\* kernel in `ned-core` runs on.

use crate::{Assignment, CostMatrix};
use std::collections::HashMap;

/// Solution of a transportation problem: the optimal cost and the flow
/// shipped between every supply/demand class pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transport {
    /// Minimum total cost `Σ flow(i, j) · cost(i, j)`.
    pub cost: i64,
    /// Row-major `R × C` flow matrix: `flows[i * C + j]` units go from
    /// supply class `i` to demand class `j`.
    pub flows: Vec<u64>,
}

/// Reusable scratch for [`transportation_into`]: every vector the solver
/// needs, grown once and recycled across calls so a steady-state caller
/// (the TED\* level sweep) performs **zero heap allocations** per solve.
///
/// After a successful solve, [`TransportScratch::flows`] holds the
/// row-major `R × C` flow matrix of the optimum.
#[derive(Debug, Default)]
pub struct TransportScratch {
    /// Flow matrix of the most recent successful solve (`R × C`,
    /// row-major) — the same data [`Transport::flows`] would carry.
    pub flows: Vec<u64>,
    supply_left: Vec<u64>,
    demand_left: Vec<u64>,
    pot_row: Vec<i64>,
    pot_col: Vec<i64>,
    dist: Vec<i64>,
    done: Vec<bool>,
    parent: Vec<usize>,
    /// Lazy Dijkstra frontier, keyed `(distance, node)` so the heap
    /// minimum reproduces the scan rule "lowest index among minimum
    /// distance" exactly.
    heap: std::collections::BinaryHeap<std::cmp::Reverse<(i64, usize)>>,
}

impl TransportScratch {
    /// Fresh, empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Minimum-cost transportation: ship `supplies[i]` units from each supply
/// class to cover `demands[j]` units at each demand class, paying
/// `costs[i * demands.len() + j]` per unit.
///
/// Requirements: `Σ supplies == Σ demands` and `costs.len() == R·C`.
/// Costs may be negative (they are shifted internally). The solver is
/// **deterministic**: ties are always broken toward lower indices, so the
/// returned flow matrix is a pure function of the inputs.
///
/// # Panics
/// Panics if the supply/demand totals differ or `costs` has the wrong
/// length.
pub fn transportation(supplies: &[u64], demands: &[u64], costs: &[i64]) -> Transport {
    let mut scratch = TransportScratch::new();
    let cost = transportation_into(supplies, demands, costs, i64::MAX, &mut scratch)
        .expect("an unlimited transportation solve cannot abort");
    Transport {
        cost,
        flows: std::mem::take(&mut scratch.flows),
    }
}

/// Early-abandoning [`transportation`]: returns `None` as soon as the
/// optimal cost is provably above `limit`, otherwise the full solution.
/// `Some(t)` is returned **iff** the optimum is `<= limit`, and the
/// flows of a returned solution are bit-identical to the unlimited
/// solver's (the abort check never changes which augmenting paths are
/// taken, only whether the solve runs to completion).
pub fn transportation_within(
    supplies: &[u64],
    demands: &[u64],
    costs: &[i64],
    limit: i64,
) -> Option<Transport> {
    let mut scratch = TransportScratch::new();
    let cost = transportation_into(supplies, demands, costs, limit, &mut scratch)?;
    Some(Transport {
        cost,
        flows: std::mem::take(&mut scratch.flows),
    })
}

/// The transportation engine behind [`transportation`] and
/// [`transportation_within`]: solves into caller-provided
/// [`TransportScratch`] (zero allocations once the scratch has grown) and
/// abandons as soon as the optimum is provably above `limit`.
///
/// Returns the optimal cost (flows are left in `scratch.flows`), or
/// `None` **iff** the optimum exceeds `limit`. Successive shortest paths
/// ship flow at non-decreasing true cost, so the accumulated cost plus a
/// per-remaining-unit floor (the cheapest edge anywhere) is a valid lower
/// bound on the optimum at every augmentation — the moment it passes
/// `limit` the solve aborts mid-flight.
///
/// # Panics
/// Panics if the supply/demand totals differ or `costs` has the wrong
/// length.
pub fn transportation_into(
    supplies: &[u64],
    demands: &[u64],
    costs: &[i64],
    limit: i64,
    scratch: &mut TransportScratch,
) -> Option<i64> {
    let r = supplies.len();
    let c = demands.len();
    assert_eq!(costs.len(), r * c, "costs must be R×C row-major");
    let total: u64 = supplies.iter().sum();
    assert_eq!(
        total,
        demands.iter().sum::<u64>(),
        "supply and demand totals must match"
    );
    scratch.flows.clear();
    scratch.flows.resize(r * c, 0);
    if total == 0 || r == 0 || c == 0 {
        return if limit >= 0 { Some(0) } else { None };
    }

    // Small-shape fast paths: after duplicate collapse most TED* levels
    // reduce to one or two distinct classes per side, where the optimal
    // flow is either forced (a single row or column) or a closed form
    // (2×2). These branch-light solves skip the whole shortest-path
    // machinery while returning the exact flows the general solver's
    // deterministic tie-breaking would produce (property-tested below).
    if r == 1 {
        // One supplier: every demand is served in full — the only
        // feasible flow.
        let mut cost = 0i64;
        for (j, &d) in demands.iter().enumerate() {
            scratch.flows[j] = d;
            cost += costs[j] * d as i64;
        }
        return (cost <= limit).then_some(cost);
    }
    if c == 1 {
        // One consumer: every supply ships in full.
        let mut cost = 0i64;
        for (i, &s) in supplies.iter().enumerate() {
            scratch.flows[i] = s;
            cost += costs[i] * s as i64;
        }
        return (cost <= limit).then_some(cost);
    }
    if r == 2 && c == 2 {
        // One degree of freedom: x = flow(0,0) ∈ [lo, hi] determines the
        // other three cells, and cost(x) = x·Δ + const with
        // Δ = c00 + c11 − c01 − c10. Δ ≠ 0 makes the optimal extreme
        // point unique (Δ < 0 → x = hi, Δ > 0 → x = lo), and a
        // degenerate interval (lo == hi) is forced either way. A true
        // tie (Δ == 0 with lo < hi) falls through to the general solver
        // so the flows stay bit-identical to its tie-breaking.
        let (s0, d0, d1) = (supplies[0], demands[0], demands[1]);
        let lo = s0.saturating_sub(d1);
        let hi = s0.min(d0);
        let delta = costs[0] + costs[3] - costs[1] - costs[2];
        if delta != 0 || lo == hi {
            let x = if delta > 0 { lo } else { hi };
            let f01 = s0 - x;
            let f10 = d0 - x;
            let f11 = d1 - f01;
            let cost = costs[0] * x as i64
                + costs[1] * f01 as i64
                + costs[2] * f10 as i64
                + costs[3] * f11 as i64;
            scratch.flows[0] = x;
            scratch.flows[1] = f01;
            scratch.flows[2] = f10;
            scratch.flows[3] = f11;
            return (cost <= limit).then_some(cost);
        }
    }

    transportation_general_into(supplies, demands, costs, limit, scratch)
}

/// The general successive-shortest-paths engine — every shape the
/// specialized fast paths in [`transportation_into`] do not claim, plus
/// the ambiguous 2×2 ties they defer. Kept callable on its own so the
/// test suite can pin the fast paths' flows against it directly.
fn transportation_general_into(
    supplies: &[u64],
    demands: &[u64],
    costs: &[i64],
    limit: i64,
    scratch: &mut TransportScratch,
) -> Option<i64> {
    let r = supplies.len();
    let c = demands.len();
    let total: u64 = supplies.iter().sum();
    scratch.flows.clear();
    scratch.flows.resize(r * c, 0);
    if total == 0 || r == 0 || c == 0 {
        return if limit >= 0 { Some(0) } else { None };
    }

    // Shift costs non-negative so Dijkstra works from the start. Every
    // unit of flow crosses exactly one (i, j) edge, so the shift
    // contributes exactly `shift · total` to the objective.
    let min_cost = costs.iter().copied().min().unwrap_or(0);
    let shift = min_cost.min(0);
    // Every unit still to ship crosses some (i, j) edge, so it costs at
    // least `min_cost`: the floor that makes mid-solve abandoning sound
    // even before the cheap flow has been routed.
    let floor = |cost_so_far: i64, remaining: u64| -> i64 {
        cost_so_far.saturating_add(min_cost.saturating_mul(remaining as i64))
    };
    if floor(0, total) > limit {
        return None;
    }
    const INF: i64 = i64::MAX / 4;

    let flows = &mut scratch.flows;
    scratch.supply_left.clear();
    scratch.supply_left.extend_from_slice(supplies);
    scratch.demand_left.clear();
    scratch.demand_left.extend_from_slice(demands);
    let supply_left = &mut scratch.supply_left;
    let demand_left = &mut scratch.demand_left;
    // Node potentials for reduced costs (rows then columns).
    scratch.pot_row.clear();
    scratch.pot_row.resize(r, 0);
    scratch.pot_col.clear();
    scratch.pot_col.resize(c, 0);
    let pot_row = &mut scratch.pot_row;
    let pot_col = &mut scratch.pot_col;
    let mut shipped = 0u64;
    let mut cost_so_far = 0i64;

    // Zero-cost pre-matching: when zero-cost cells are unique per row AND
    // per column (the collapsed TED\* shape — a cell is free iff the two
    // classes are identical, and a class appears at most once per side),
    // the SSP loop's entire zero phase is a fixed greedy. Every zero-dist
    // augmenting path is then a single direct edge: a multi-hop path at
    // distance 0 would need a second free cell in some row or column. The
    // loop below ships exactly the augmentations SSP would perform — the
    // same pairs, in the same ascending-column order (SSP's lowest-j tie
    // break over an all-zero plateau), with the same `min(supply, demand)`
    // bottlenecks and untouched potentials (`π += min(dist, 0)` is a
    // no-op) — while skipping one full Dijkstra per shared class.
    if shift == 0 {
        let mut unique = true;
        'rows: for i in 0..r {
            let mut zeros = 0;
            for j in 0..c {
                if costs[i * c + j] == 0 {
                    zeros += 1;
                    if zeros > 1 {
                        unique = false;
                        break 'rows;
                    }
                }
            }
        }
        if unique {
            'cols: for j in 0..c {
                let mut free_row = usize::MAX;
                for i in 0..r {
                    if costs[i * c + j] == 0 {
                        if free_row != usize::MAX {
                            break 'cols;
                        }
                        free_row = i;
                    }
                }
                if free_row != usize::MAX && demand_left[j] > 0 && supply_left[free_row] > 0 {
                    let amt = demand_left[j].min(supply_left[free_row]);
                    flows[free_row * c + j] = amt;
                    supply_left[free_row] -= amt;
                    demand_left[j] -= amt;
                    shipped += amt;
                }
            }
        }
    }

    while shipped < total {
        // Dijkstra over the residual graph from all rows with remaining
        // supply. Nodes: 0..r rows, r..r+c columns.
        let n = r + c;
        scratch.dist.clear();
        scratch.dist.resize(n, INF);
        scratch.done.clear();
        scratch.done.resize(n, false);
        scratch.parent.clear();
        scratch.parent.resize(n, usize::MAX);
        let dist = &mut scratch.dist;
        let done = &mut scratch.done;
        let parent = &mut scratch.parent;
        let heap = &mut scratch.heap;
        heap.clear();
        for (i, &s) in supply_left.iter().enumerate() {
            if s > 0 {
                dist[i] = 0;
                heap.push(std::cmp::Reverse((0, i)));
            }
        }
        // The search stops as soon as the frontier passes the cheapest
        // unmet-demand column: `goal` is that column's (final) distance
        // once one is settled, and any node whose distance exceeds it can
        // neither lie on the augmenting path nor change the clamped
        // potential update below. The whole `dist == goal` plateau IS
        // settled before stopping — equal-distance zero-reduced-cost
        // chains can still reach a lower-index unmet column, and the
        // lowest-j tie-break must see every candidate, so this prunes
        // work without perturbing a single flow.
        //
        // Selection is a lazy heap keyed `(distance, node)`: stale
        // entries (distance no longer current, or node already settled)
        // are discarded on pop, so each pop yields the lowest-index node
        // of minimum tentative distance — exactly the linear scan's
        // strict-`<` rule — in `O(log n)` instead of `O(n)`.
        let mut goal = INF;
        while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
            if done[u] || d > dist[u] {
                continue;
            }
            if d > goal {
                break;
            }
            done[u] = true;
            if u >= r && demand_left[u - r] > 0 && d < goal {
                goal = d;
            }
            if u < r {
                // Forward edges row u -> every column.
                for j in 0..c {
                    let w = costs[u * c + j] - shift;
                    let reduced = w + pot_row[u] - pot_col[j];
                    debug_assert!(reduced >= 0, "negative reduced cost");
                    let nd = d + reduced;
                    if nd < dist[r + j] {
                        dist[r + j] = nd;
                        parent[r + j] = u;
                        heap.push(std::cmp::Reverse((nd, r + j)));
                    }
                }
            } else {
                // Backward edges column (u - r) -> rows with flow to undo.
                let j = u - r;
                for i in 0..r {
                    if flows[i * c + j] > 0 {
                        let w = costs[i * c + j] - shift;
                        let reduced = pot_col[j] - w - pot_row[i];
                        debug_assert!(reduced >= 0, "negative residual reduced cost");
                        let nd = d + reduced;
                        if nd < dist[i] {
                            dist[i] = nd;
                            parent[i] = u;
                            heap.push(std::cmp::Reverse((nd, i)));
                        }
                    }
                }
            }
        }

        // Cheapest reachable column with unmet demand (ties -> lowest j).
        let mut target = usize::MAX;
        let mut best = INF;
        for (j, &d) in demand_left.iter().enumerate() {
            if d > 0 && dist[r + j] < best {
                best = dist[r + j];
                target = j;
            }
        }
        assert!(
            target != usize::MAX,
            "transportation: demand unreachable (supply/demand mismatch?)"
        );

        // Update potentials (Johnson-style) for the next round. The
        // standard clamped form `π += min(dist, dist_target)` keeps every
        // reduced cost non-negative, including edges out of nodes the
        // search never reached — and makes the early stop above safe:
        // every unsettled node holds a tentative distance > the target's,
        // so its clamped update is `dist_target` either way.
        for i in 0..r {
            pot_row[i] += dist[i].min(best);
        }
        for j in 0..c {
            pot_col[j] += dist[r + j].min(best);
        }

        // Walk the path back to a source row, finding the bottleneck.
        let mut bottleneck = demand_left[target];
        let mut v = r + target;
        loop {
            let p = parent[v];
            if v >= r {
                // edge p(row) -> v(col): forward, no capacity limit
                if parent[p] == usize::MAX {
                    bottleneck = bottleneck.min(supply_left[p]);
                    break;
                }
            } else {
                // edge p(col) -> v(row): backward over existing flow
                bottleneck = bottleneck.min(flows[v * c + (p - r)]);
            }
            v = p;
        }
        debug_assert!(bottleneck > 0);

        // Apply the augmentation, tracking the true (unshifted) cost of
        // the current flow as it changes.
        let mut v = r + target;
        loop {
            let p = parent[v];
            if v >= r {
                let idx = p * c + (v - r);
                flows[idx] += bottleneck;
                cost_so_far += costs[idx] * bottleneck as i64;
                if parent[p] == usize::MAX {
                    supply_left[p] -= bottleneck;
                    break;
                }
            } else {
                let idx = v * c + (p - r);
                flows[idx] -= bottleneck;
                cost_so_far -= costs[idx] * bottleneck as i64;
            }
            v = p;
        }
        demand_left[target] -= bottleneck;
        shipped += bottleneck;

        // Early abandon: successive shortest paths only get more
        // expensive, and every unshipped unit costs at least the global
        // minimum edge — once that floor clears `limit`, so does the
        // optimum.
        if floor(cost_so_far, total - shipped) > limit {
            return None;
        }
    }

    debug_assert_eq!(
        cost_so_far,
        flows
            .iter()
            .enumerate()
            .map(|(idx, &f)| costs[idx] * f as i64)
            .sum::<i64>(),
        "incremental cost tracking diverged"
    );
    if cost_so_far > limit {
        return None;
    }
    Some(cost_so_far)
}

/// The transportation solver **frozen as it stood before the kernel
/// rebuild**: full-graph Dijkstra every augmentation (no early frontier
/// stop), no small-shape fast paths, freshly allocated state. Produces
/// flows bit-identical to [`transportation`] — the property tests below
/// pin the optimized solver against this one — and exists for exactly
/// two jobs: the bit-identity oracle, and the frozen performance
/// baseline the `perf_snapshot` bench compares the rebuilt kernel
/// against in-run. **Do not optimize this function.**
///
/// # Panics
/// Panics if the supply/demand totals differ or `costs` has the wrong
/// length.
pub fn transportation_reference(supplies: &[u64], demands: &[u64], costs: &[i64]) -> Transport {
    let r = supplies.len();
    let c = demands.len();
    assert_eq!(costs.len(), r * c, "costs must be R×C row-major");
    let total: u64 = supplies.iter().sum();
    assert_eq!(
        total,
        demands.iter().sum::<u64>(),
        "supply and demand totals must match"
    );
    let mut flows = vec![0u64; r * c];
    if total == 0 || r == 0 || c == 0 {
        return Transport { cost: 0, flows };
    }
    let min_cost = costs.iter().copied().min().unwrap_or(0);
    let shift = min_cost.min(0);
    const INF: i64 = i64::MAX / 4;

    let mut supply_left = supplies.to_vec();
    let mut demand_left = demands.to_vec();
    let mut pot_row = vec![0i64; r];
    let mut pot_col = vec![0i64; c];
    let mut shipped = 0u64;
    let mut cost_so_far = 0i64;

    while shipped < total {
        let n = r + c;
        let mut dist = vec![INF; n];
        let mut done = vec![false; n];
        let mut parent = vec![usize::MAX; n];
        for (i, &s) in supply_left.iter().enumerate() {
            if s > 0 {
                dist[i] = 0;
            }
        }
        loop {
            let mut u = usize::MAX;
            let mut best = INF;
            for v in 0..n {
                if !done[v] && dist[v] < best {
                    best = dist[v];
                    u = v;
                }
            }
            if u == usize::MAX {
                break;
            }
            done[u] = true;
            if u < r {
                for j in 0..c {
                    let w = costs[u * c + j] - shift;
                    let reduced = w + pot_row[u] - pot_col[j];
                    let nd = dist[u] + reduced;
                    if nd < dist[r + j] {
                        dist[r + j] = nd;
                        parent[r + j] = u;
                    }
                }
            } else {
                let j = u - r;
                for i in 0..r {
                    if flows[i * c + j] > 0 {
                        let w = costs[i * c + j] - shift;
                        let reduced = pot_col[j] - w - pot_row[i];
                        let nd = dist[u] + reduced;
                        if nd < dist[i] {
                            dist[i] = nd;
                            parent[i] = u;
                        }
                    }
                }
            }
        }

        let mut target = usize::MAX;
        let mut best = INF;
        for (j, &d) in demand_left.iter().enumerate() {
            if d > 0 && dist[r + j] < best {
                best = dist[r + j];
                target = j;
            }
        }
        assert!(
            target != usize::MAX,
            "transportation: demand unreachable (supply/demand mismatch?)"
        );
        for i in 0..r {
            pot_row[i] += dist[i].min(best);
        }
        for j in 0..c {
            pot_col[j] += dist[r + j].min(best);
        }

        let mut bottleneck = demand_left[target];
        let mut v = r + target;
        loop {
            let p = parent[v];
            if v >= r {
                if parent[p] == usize::MAX {
                    bottleneck = bottleneck.min(supply_left[p]);
                    break;
                }
            } else {
                bottleneck = bottleneck.min(flows[v * c + (p - r)]);
            }
            v = p;
        }

        let mut v = r + target;
        loop {
            let p = parent[v];
            if v >= r {
                let idx = p * c + (v - r);
                flows[idx] += bottleneck;
                cost_so_far += costs[idx] * bottleneck as i64;
                if parent[p] == usize::MAX {
                    supply_left[p] -= bottleneck;
                    break;
                }
            } else {
                let idx = v * c + (p - r);
                flows[idx] -= bottleneck;
                cost_so_far -= costs[idx] * bottleneck as i64;
            }
            v = p;
        }
        demand_left[target] -= bottleneck;
        shipped += bottleneck;
    }

    Transport {
        cost: cost_so_far,
        flows,
    }
}

/// Distinct-row/column structure of a square cost matrix.
#[derive(Debug)]
pub struct MatrixClasses {
    /// For each distinct row class, the member row indices (ascending).
    pub row_members: Vec<Vec<usize>>,
    /// For each distinct column class, the member column indices (ascending).
    pub col_members: Vec<Vec<usize>>,
    /// `R × C` class-level cost matrix, row-major.
    pub costs: Vec<i64>,
}

impl MatrixClasses {
    /// Groups identical rows and identical columns of `m`. Classes are
    /// ordered by their first member index, so the grouping is
    /// deterministic.
    pub fn group(m: &CostMatrix) -> Self {
        let n = m.size();
        let mut row_classes: HashMap<&[i64], usize> = HashMap::new();
        let mut row_members: Vec<Vec<usize>> = Vec::new();
        for r in 0..n {
            let key = m.row(r);
            match row_classes.get(key) {
                Some(&class) => row_members[class].push(r),
                None => {
                    row_classes.insert(key, row_members.len());
                    row_members.push(vec![r]);
                }
            }
        }
        // Columns: hash the column vectors.
        let mut col_classes: HashMap<Vec<i64>, usize> = HashMap::new();
        let mut col_members: Vec<Vec<usize>> = Vec::new();
        for col in 0..n {
            let key: Vec<i64> = (0..n).map(|row| m.get(row, col)).collect();
            match col_classes.get(&key) {
                Some(&class) => col_members[class].push(col),
                None => {
                    col_classes.insert(key, col_members.len());
                    col_members.push(vec![col]);
                }
            }
        }
        let costs = row_members
            .iter()
            .flat_map(|rows| {
                let rep = rows[0];
                col_members.iter().map(move |cols| (rep, cols[0]))
            })
            .map(|(r, c)| m.get(r, c))
            .collect();
        MatrixClasses {
            row_members,
            col_members,
            costs,
        }
    }
}

/// Expands a class-level flow matrix into a per-row assignment.
///
/// Flows are consumed in ascending `(row class, column class)` order and
/// members within each class in ascending index order, so the expansion is
/// deterministic. Rows and columns must balance (a perfect matching).
pub fn expand_flows(
    row_members: &[Vec<usize>],
    col_members: &[Vec<usize>],
    flows: &[u64],
    n: usize,
) -> Vec<usize> {
    let c = col_members.len();
    let mut row_to_col = vec![usize::MAX; n];
    let mut row_cursor = vec![0usize; row_members.len()];
    let mut col_cursor = vec![0usize; col_members.len()];
    for (i, members) in row_members.iter().enumerate() {
        for (j, cols) in col_members.iter().enumerate() {
            let f = flows[i * c + j] as usize;
            for _ in 0..f {
                let row = members[row_cursor[i]];
                let col = cols[col_cursor[j]];
                row_cursor[i] += 1;
                col_cursor[j] += 1;
                row_to_col[row] = col;
            }
        }
    }
    row_to_col
}

/// Exact minimum-cost perfect matching that first collapses duplicate
/// rows/columns into multiplicity classes, solves the reduced
/// transportation problem, and expands back.
///
/// The cost always equals [`crate::hungarian`]'s (duplicated rows are
/// interchangeable in any optimum); the returned permutation may be a
/// *different* optimal matching, chosen canonically (ties broken toward
/// lower indices). With `R` distinct rows and `C` distinct columns the
/// running time is `O(n² )` for class detection plus `O((R + C)·R·C)` for
/// the solve — far below `O(n³)` when duplication is heavy.
///
/// ```
/// use ned_matching::{collapsed_hungarian, hungarian, CostMatrix};
///
/// // Two identical rows: the 3×3 problem collapses to 2×3.
/// let m = CostMatrix::from_rows(&[&[4, 1, 3], &[4, 1, 3], &[3, 2, 2]]);
/// assert_eq!(collapsed_hungarian(&m).cost, hungarian(&m).cost);
/// ```
pub fn collapsed_hungarian(costs: &CostMatrix) -> Assignment {
    collapsed_hungarian_within(costs, i64::MAX).expect("an unlimited matching cannot abort")
}

/// Early-abandoning [`collapsed_hungarian`]: returns `None` as soon as
/// the optimal matching cost is provably above `limit`, otherwise the
/// full assignment. `Some(a)` is returned **iff** the optimum is
/// `<= limit`, and a returned assignment is bit-identical to
/// [`collapsed_hungarian`]'s.
pub fn collapsed_hungarian_within(costs: &CostMatrix, limit: i64) -> Option<Assignment> {
    let n = costs.size();
    if n == 0 {
        return (limit >= 0).then(|| Assignment {
            row_to_col: Vec::new(),
            cost: 0,
        });
    }
    let classes = MatrixClasses::group(costs);
    let supplies: Vec<u64> = classes.row_members.iter().map(|m| m.len() as u64).collect();
    let demands: Vec<u64> = classes.col_members.iter().map(|m| m.len() as u64).collect();
    let transport = transportation_within(&supplies, &demands, &classes.costs, limit)?;
    let row_to_col = expand_flows(
        &classes.row_members,
        &classes.col_members,
        &transport.flows,
        n,
    );
    debug_assert_eq!(
        transport.cost,
        row_to_col
            .iter()
            .enumerate()
            .map(|(r, &c)| costs.get(r, c))
            .sum::<i64>(),
        "expansion changed the cost"
    );
    Some(Assignment {
        row_to_col,
        cost: transport.cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hungarian;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(n: usize, rng: &mut SmallRng, max: i64) -> CostMatrix {
        let mut m = CostMatrix::zeros(n);
        for r in 0..n {
            for c in 0..n {
                m.set(r, c, rng.gen_range(0..max));
            }
        }
        m
    }

    /// Duplicates random rows/columns of `m` in place.
    fn inject_duplicates(m: &mut CostMatrix, rng: &mut SmallRng, copies: usize) {
        let n = m.size();
        for _ in 0..copies {
            let (src, dst) = (rng.gen_range(0..n), rng.gen_range(0..n));
            if rng.gen_bool(0.5) {
                for c in 0..n {
                    let v = m.get(src, c);
                    m.set(dst, c, v);
                }
            } else {
                for r in 0..n {
                    let v = m.get(r, src);
                    m.set(r, dst, v);
                }
            }
        }
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(collapsed_hungarian(&CostMatrix::zeros(0)).cost, 0);
        let m = CostMatrix::from_rows(&[&[7]]);
        let a = collapsed_hungarian(&m);
        assert_eq!(a.cost, 7);
        assert_eq!(a.row_to_col, vec![0]);
    }

    #[test]
    fn all_rows_identical_collapses_to_one_class() {
        let m = CostMatrix::from_rows(&[&[5, 1, 2], &[5, 1, 2], &[5, 1, 2]]);
        let classes = MatrixClasses::group(&m);
        assert_eq!(classes.row_members.len(), 1);
        assert_eq!(classes.col_members.len(), 3);
        let a = collapsed_hungarian(&m);
        assert_eq!(a.cost, hungarian(&m).cost);
        assert_eq!(a.cost, 8);
    }

    #[test]
    fn matches_hungarian_on_random_matrices() {
        let mut rng = SmallRng::seed_from_u64(11);
        for n in [1usize, 2, 3, 5, 8, 13, 21] {
            for _ in 0..20 {
                let mut m = random_matrix(n, &mut rng, 30);
                inject_duplicates(&mut m, &mut rng, n);
                let a = collapsed_hungarian(&m);
                let h = hungarian(&m);
                assert_eq!(a.cost, h.cost, "n={n} {m:?}");
                // and the expansion is a permutation
                let mut seen = vec![false; n];
                for &c in &a.row_to_col {
                    assert!(!seen[c]);
                    seen[c] = true;
                }
            }
        }
    }

    #[test]
    fn handles_negative_costs() {
        let mut rng = SmallRng::seed_from_u64(12);
        for _ in 0..30 {
            let mut m = random_matrix(6, &mut rng, 20);
            for r in 0..6 {
                for c in 0..6 {
                    m.set(r, c, m.get(r, c) - 10);
                }
            }
            inject_duplicates(&mut m, &mut rng, 4);
            assert_eq!(collapsed_hungarian(&m).cost, hungarian(&m).cost);
        }
    }

    #[test]
    fn deterministic_output() {
        let mut rng = SmallRng::seed_from_u64(13);
        let mut m = random_matrix(9, &mut rng, 10);
        inject_duplicates(&mut m, &mut rng, 12);
        let a = collapsed_hungarian(&m);
        let b = collapsed_hungarian(&m);
        assert_eq!(a, b);
    }

    #[test]
    fn transportation_simple() {
        // 2 supplies of 2 units, 2 demands of 2 units.
        let t = transportation(&[2, 2], &[2, 2], &[1, 3, 3, 1]);
        assert_eq!(t.cost, 4);
        assert_eq!(t.flows, vec![2, 0, 0, 2]);
    }

    #[test]
    fn transportation_prefers_cheap_splits() {
        // One supplier must split across both demands.
        let t = transportation(&[3, 1], &[2, 2], &[1, 2, 5, 0]);
        // supplier 0: 2 units to demand 0 (cost 2) + 1 unit to demand 1
        // (cost 2); supplier 1: 1 unit to demand 1 (cost 0). Total 4.
        assert_eq!(t.cost, 4);
        assert_eq!(t.flows, vec![2, 1, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "totals must match")]
    fn transportation_rejects_imbalance() {
        transportation(&[1], &[2], &[0]);
    }

    #[test]
    fn within_agrees_with_unlimited_at_and_above_the_optimum() {
        let mut rng = SmallRng::seed_from_u64(21);
        for _ in 0..40 {
            let r = rng.gen_range(1..6usize);
            let c = rng.gen_range(1..6usize);
            let supplies: Vec<u64> = (0..r).map(|_| rng.gen_range(1..5u64)).collect();
            let total: u64 = supplies.iter().sum();
            // random demands summing to the supply total
            let mut demands = vec![0u64; c];
            for _ in 0..total {
                demands[rng.gen_range(0..c)] += 1;
            }
            let costs: Vec<i64> = (0..r * c).map(|_| rng.gen_range(-5..20)).collect();
            let full = transportation(&supplies, &demands, &costs);
            for slack in [0i64, 1, 100] {
                let t = transportation_within(&supplies, &demands, &costs, full.cost + slack)
                    .expect("limit at/above the optimum must solve");
                assert_eq!(t, full, "slack {slack}");
            }
            assert_eq!(
                transportation_within(&supplies, &demands, &costs, full.cost - 1),
                None,
                "limit below the optimum must abandon"
            );
        }
    }

    #[test]
    fn within_scratch_reuse_is_consistent() {
        let mut scratch = TransportScratch::new();
        let a = transportation_into(&[2, 2], &[2, 2], &[1, 3, 3, 1], i64::MAX, &mut scratch);
        assert_eq!(a, Some(4));
        assert_eq!(scratch.flows, vec![2, 0, 0, 2]);
        // reuse for a differently-shaped problem
        let b = transportation_into(&[3, 1], &[2, 2], &[1, 2, 5, 0], i64::MAX, &mut scratch);
        assert_eq!(b, Some(4));
        assert_eq!(scratch.flows, vec![2, 1, 0, 1]);
        // and an aborted solve leaves the scratch reusable
        assert_eq!(
            transportation_into(&[3, 1], &[2, 2], &[1, 2, 5, 0], 3, &mut scratch),
            None
        );
        let c = transportation_into(&[2, 2], &[2, 2], &[1, 3, 3, 1], 4, &mut scratch);
        assert_eq!(c, Some(4));
        assert_eq!(scratch.flows, vec![2, 0, 0, 2]);
    }

    /// Random balanced instance of the given shape; supplies may include
    /// zero entries, costs may be negative.
    fn random_instance(
        r: usize,
        c: usize,
        rng: &mut SmallRng,
        cost_range: std::ops::Range<i64>,
    ) -> (Vec<u64>, Vec<u64>, Vec<i64>) {
        let supplies: Vec<u64> = (0..r).map(|_| rng.gen_range(0..6u64)).collect();
        let total: u64 = supplies.iter().sum();
        let mut demands = vec![0u64; c];
        for _ in 0..total {
            demands[rng.gen_range(0..c)] += 1;
        }
        let costs: Vec<i64> = (0..r * c)
            .map(|_| rng.gen_range(cost_range.clone()))
            .collect();
        (supplies, demands, costs)
    }

    #[test]
    fn small_solves_match_general_engine_bit_for_bit() {
        // The specialized 1×1/1×C/R×1/2×2 paths must return not just the
        // optimal cost but the exact flow matrix the general SSP engine's
        // deterministic tie-breaking produces — those flows feed TED*
        // re-canonization, where a different optimum can change upper
        // levels.
        let mut rng = SmallRng::seed_from_u64(31);
        let mut fast = TransportScratch::new();
        let mut slow = TransportScratch::new();
        for trial in 0..4000 {
            let (r, c) = match trial % 4 {
                0 => (1, rng.gen_range(1..5usize)),
                1 => (rng.gen_range(1..5usize), 1),
                2 => (1, 1),
                _ => (2, 2),
            };
            // A narrow cost range makes Δ == 0 ties common in the 2×2 case.
            let (supplies, demands, costs) = random_instance(r, c, &mut rng, -3..4);
            let a = transportation_into(&supplies, &demands, &costs, i64::MAX, &mut fast);
            let b = transportation_general_into(&supplies, &demands, &costs, i64::MAX, &mut slow);
            assert_eq!(a, b, "cost diverged: {supplies:?} {demands:?} {costs:?}");
            assert_eq!(
                fast.flows, slow.flows,
                "flows diverged: {supplies:?} {demands:?} {costs:?}"
            );
            // Budget semantics must agree too: Some iff optimum <= limit.
            if let Some(opt) = a {
                assert_eq!(
                    transportation_into(&supplies, &demands, &costs, opt - 1, &mut fast),
                    None,
                    "limit below the optimum must abandon"
                );
                assert_eq!(
                    transportation_into(&supplies, &demands, &costs, opt, &mut fast),
                    Some(opt)
                );
                assert_eq!(fast.flows, slow.flows);
            }
        }
    }

    #[test]
    fn ambiguous_two_by_two_tie_defers_to_general_tie_breaking() {
        // Δ == 0 with a non-degenerate interval: every x is optimal, and
        // the specialized path must not pick one itself.
        let supplies = [2u64, 2];
        let demands = [2u64, 2];
        let costs = [1i64, 1, 1, 1]; // Δ = 0, lo = 0, hi = 2
        let mut fast = TransportScratch::new();
        let mut slow = TransportScratch::new();
        let a = transportation_into(&supplies, &demands, &costs, i64::MAX, &mut fast);
        let b = transportation_general_into(&supplies, &demands, &costs, i64::MAX, &mut slow);
        assert_eq!(a, b);
        assert_eq!(a, Some(4));
        assert_eq!(fast.flows, slow.flows);
    }

    #[test]
    fn optimized_solver_matches_frozen_reference_bit_for_bit() {
        // `transportation_reference` is the solver as it stood before the
        // kernel rebuild: no small-shape fast paths, no early Dijkstra
        // frontier stop. The optimized solver must reproduce its flows
        // exactly — ties included — across shapes large enough to
        // exercise equal-distance plateaus and zero-reduced-cost chains.
        let mut rng = SmallRng::seed_from_u64(0xF02E);
        for trial in 0..1500 {
            let r = rng.gen_range(1..9usize);
            let c = rng.gen_range(1..9usize);
            // Narrow cost range → plenty of equal shortest paths, the
            // regime where a sloppy early stop would pick a different
            // (still optimal) flow and break bit-identity.
            let (supplies, demands, costs) = random_instance(r, c, &mut rng, -2..3);
            let reference = transportation_reference(&supplies, &demands, &costs);
            let mut scratch = TransportScratch::new();
            let cost = transportation_into(&supplies, &demands, &costs, i64::MAX, &mut scratch)
                .expect("unlimited solve completes");
            assert_eq!(cost, reference.cost, "trial {trial}: cost diverged");
            assert_eq!(
                scratch.flows, reference.flows,
                "trial {trial}: flows diverged from the frozen reference"
            );
        }
    }

    #[test]
    fn collapsed_hungarian_within_matches_unbounded() {
        let mut rng = SmallRng::seed_from_u64(22);
        for _ in 0..25 {
            let n = rng.gen_range(1..10usize);
            let mut m = random_matrix(n, &mut rng, 25);
            inject_duplicates(&mut m, &mut rng, n);
            let full = collapsed_hungarian(&m);
            let bounded = collapsed_hungarian_within(&m, full.cost).expect("at the optimum");
            assert_eq!(bounded, full);
            assert_eq!(collapsed_hungarian_within(&m, full.cost - 1), None);
        }
        // empty matrix edge case
        assert_eq!(
            collapsed_hungarian_within(&CostMatrix::zeros(0), 0)
                .expect("empty is free")
                .cost,
            0
        );
    }
}
