use std::fmt;

/// A dense square cost matrix with `i64` entries, row-major.
///
/// TED\* levels after padding always have equal sizes, so only square
/// matrices are needed; rectangular problems should be padded by the
/// caller (zero rows/columns preserve the optimum for the TED\* use-case
/// because padded nodes have empty child collections).
#[derive(Clone, PartialEq, Eq)]
pub struct CostMatrix {
    n: usize,
    data: Vec<i64>,
}

impl CostMatrix {
    /// An `n × n` matrix of zeros.
    pub fn zeros(n: usize) -> Self {
        CostMatrix {
            n,
            data: vec![0; n * n],
        }
    }

    /// An `n × n` matrix with every entry set to `value`.
    pub fn filled(n: usize, value: i64) -> Self {
        CostMatrix {
            n,
            data: vec![value; n * n],
        }
    }

    /// Builds from explicit rows.
    ///
    /// # Panics
    /// Panics if the rows are not square.
    pub fn from_rows(rows: &[&[i64]]) -> Self {
        let n = rows.len();
        let mut data = Vec::with_capacity(n * n);
        for row in rows {
            assert_eq!(row.len(), n, "cost matrix must be square");
            data.extend_from_slice(row);
        }
        CostMatrix { n, data }
    }

    /// Side length.
    #[inline]
    pub fn size(&self) -> usize {
        self.n
    }

    /// Entry at (`row`, `col`).
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> i64 {
        debug_assert!(row < self.n && col < self.n);
        self.data[row * self.n + col]
    }

    /// Sets the entry at (`row`, `col`).
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: i64) {
        debug_assert!(row < self.n && col < self.n);
        self.data[row * self.n + col] = value;
    }

    /// Raw row access.
    #[inline]
    pub fn row(&self, row: usize) -> &[i64] {
        &self.data[row * self.n..(row + 1) * self.n]
    }

    /// Largest entry (0 for the empty matrix).
    pub fn max_entry(&self) -> i64 {
        self.data.iter().copied().max().unwrap_or(0)
    }
}

impl fmt::Debug for CostMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CostMatrix({}x{})", self.n, self.n)?;
        for r in 0..self.n {
            writeln!(f, "  {:?}", self.row(r))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut m = CostMatrix::zeros(2);
        m.set(0, 1, 7);
        assert_eq!(m.get(0, 1), 7);
        assert_eq!(m.get(1, 0), 0);
        assert_eq!(m.size(), 2);
        assert_eq!(m.row(0), &[0, 7]);
        assert_eq!(m.max_entry(), 7);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn from_rows_rejects_ragged() {
        CostMatrix::from_rows(&[&[1, 2], &[3]]);
    }
}
