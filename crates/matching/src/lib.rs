//! Minimum-cost perfect bipartite matching.
//!
//! TED\* (Section 5.5 of the paper) solves one assignment problem per tree
//! level: given the complete weighted bipartite graph `G²ᵢ` between the two
//! (padded) levels, find the bijection minimizing the total edge weight.
//! The paper uses "the improved Hungarian algorithm ... with time
//! complexity O(n³)"; [`hungarian`] implements exactly that
//! (Kuhn–Munkres with potentials and shortest augmenting paths).
//!
//! [`greedy_matching`] is a fast `O(n² log n)` approximation used by the
//! ablation benchmarks, and [`brute_force_matching`] enumerates all
//! permutations for cross-checking on tiny inputs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod collapsed;
mod matrix;

pub use collapsed::{
    collapsed_hungarian, collapsed_hungarian_within, expand_flows, transportation,
    transportation_into, transportation_reference, transportation_within, MatrixClasses, Transport,
    TransportScratch,
};
pub use matrix::CostMatrix;

/// The result of a matching: a bijection and its total cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    /// `row_to_col[r]` is the column matched to row `r`.
    pub row_to_col: Vec<usize>,
    /// Sum of the matched entries.
    pub cost: i64,
}

impl Assignment {
    /// Inverse mapping: `col_to_row[c]` is the row matched to column `c`,
    /// or `None` for a column no row was assigned to (possible when the
    /// assignment is partial or rectangular — square perfect matchings
    /// fill every slot).
    pub fn col_to_row(&self) -> Vec<Option<usize>> {
        let mut inv = vec![None; self.row_to_col.len()];
        for (r, &c) in self.row_to_col.iter().enumerate() {
            if c == usize::MAX {
                continue; // unmatched row
            }
            debug_assert!(
                c < inv.len(),
                "column {c} out of range for {}-row assignment",
                inv.len()
            );
            debug_assert!(inv[c].is_none(), "column {c} matched twice");
            inv[c] = Some(r);
        }
        inv
    }
}

/// Exact minimum-cost perfect matching on a square cost matrix, `O(n³)`.
///
/// Implementation: the classic potentials formulation. For every row we
/// grow a shortest-augmenting-path tree over columns (Dijkstra-style with
/// reduced costs), then flip the path. Costs may be any `i64`s whose sums
/// do not overflow.
///
/// ```
/// use ned_matching::{hungarian, CostMatrix};
///
/// let costs = CostMatrix::from_rows(&[&[4, 1, 3], &[2, 0, 5], &[3, 2, 2]]);
/// let best = hungarian(&costs);
/// assert_eq!(best.cost, 5); // rows take columns 1, 0, 2
/// assert_eq!(best.row_to_col, vec![1, 0, 2]);
/// ```
pub fn hungarian(costs: &CostMatrix) -> Assignment {
    let n = costs.size();
    if n == 0 {
        return Assignment {
            row_to_col: Vec::new(),
            cost: 0,
        };
    }
    const INF: i64 = i64::MAX / 4;
    // 1-indexed helpers; index 0 is the virtual "unassigned" slot.
    let mut u = vec![0i64; n + 1]; // row potentials
    let mut v = vec![0i64; n + 1]; // column potentials
    let mut p = vec![0usize; n + 1]; // p[j] = row assigned to column j
    let mut way = vec![0usize; n + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![INF; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = INF;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = costs.get(i0 - 1, j - 1) - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Flip the augmenting path back to the virtual column.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut row_to_col = vec![usize::MAX; n];
    for j in 1..=n {
        row_to_col[p[j] - 1] = j - 1;
    }
    let cost = row_to_col
        .iter()
        .enumerate()
        .map(|(r, &c)| costs.get(r, c))
        .sum();
    Assignment { row_to_col, cost }
}

/// Greedy approximate matching: repeatedly take the globally cheapest
/// unmatched (row, col) pair. `O(n² log n)`; at most a factor away from
/// optimal but with no guarantee — used to quantify, in the ablation
/// benchmarks, how much TED\*'s metric properties rely on exact matching.
pub fn greedy_matching(costs: &CostMatrix) -> Assignment {
    let n = costs.size();
    let mut entries: Vec<(i64, u32, u32)> = Vec::with_capacity(n * n);
    for r in 0..n {
        for c in 0..n {
            entries.push((costs.get(r, c), r as u32, c as u32));
        }
    }
    entries.sort_unstable();
    let mut row_to_col = vec![usize::MAX; n];
    let mut col_used = vec![false; n];
    let mut cost = 0i64;
    let mut matched = 0usize;
    for (w, r, c) in entries {
        let (r, c) = (r as usize, c as usize);
        if row_to_col[r] == usize::MAX && !col_used[c] {
            row_to_col[r] = c;
            col_used[c] = true;
            cost += w;
            matched += 1;
            if matched == n {
                break;
            }
        }
    }
    Assignment { row_to_col, cost }
}

/// Optimal matching by exhaustive permutation search (`O(n!)`), for tests.
///
/// # Panics
/// Panics if `n > 10` — beyond that the factorial blows up.
pub fn brute_force_matching(costs: &CostMatrix) -> Assignment {
    let n = costs.size();
    assert!(n <= 10, "brute force matching limited to n <= 10");
    let mut perm: Vec<usize> = (0..n).collect();
    let mut best_cost = i64::MAX;
    let mut best_perm = perm.clone();
    permute(&mut perm, 0, &mut |p| {
        let c: i64 = p.iter().enumerate().map(|(r, &c)| costs.get(r, c)).sum();
        if c < best_cost {
            best_cost = c;
            best_perm = p.to_vec();
        }
    });
    if n == 0 {
        best_cost = 0;
    }
    Assignment {
        row_to_col: best_perm,
        cost: best_cost,
    }
}

fn permute(perm: &mut [usize], k: usize, visit: &mut impl FnMut(&[usize])) {
    if k == perm.len() {
        visit(perm);
        return;
    }
    for i in k..perm.len() {
        perm.swap(k, i);
        permute(perm, k + 1, visit);
        perm.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn empty_matrix() {
        let a = hungarian(&CostMatrix::zeros(0));
        assert_eq!(a.cost, 0);
        assert!(a.row_to_col.is_empty());
    }

    #[test]
    fn identity_is_optimal_on_diagonal_zeros() {
        let mut m = CostMatrix::filled(3, 5);
        for i in 0..3 {
            m.set(i, i, 0);
        }
        let a = hungarian(&m);
        assert_eq!(a.cost, 0);
        assert_eq!(a.row_to_col, vec![0, 1, 2]);
    }

    #[test]
    fn classic_example() {
        // Known optimum 5: (0,1)=1, (1,0)=2, (2,2)=2.
        let m = CostMatrix::from_rows(&[&[4, 1, 3], &[2, 0, 5], &[3, 2, 2]]);
        let a = hungarian(&m);
        assert_eq!(a.cost, 5);
    }

    #[test]
    fn handles_negative_costs() {
        let m = CostMatrix::from_rows(&[&[-5, 0], &[0, -5]]);
        let a = hungarian(&m);
        assert_eq!(a.cost, -10);
        assert_eq!(a.row_to_col, vec![0, 1]);
    }

    #[test]
    fn assignment_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut m = CostMatrix::zeros(7);
        for r in 0..7 {
            for c in 0..7 {
                m.set(r, c, rng.gen_range(0..100));
            }
        }
        let a = hungarian(&m);
        let mut seen = [false; 7];
        for &c in &a.row_to_col {
            assert!(!seen[c]);
            seen[c] = true;
        }
        let inv = a.col_to_row();
        for (c, &r) in inv.iter().enumerate() {
            assert_eq!(
                a.row_to_col[r.expect("square matching fills every column")],
                c
            );
        }
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        let mut rng = SmallRng::seed_from_u64(42);
        for n in 1..=6 {
            for _ in 0..30 {
                let mut m = CostMatrix::zeros(n);
                for r in 0..n {
                    for c in 0..n {
                        m.set(r, c, rng.gen_range(0..50));
                    }
                }
                let h = hungarian(&m);
                let b = brute_force_matching(&m);
                assert_eq!(h.cost, b.cost, "n={n} matrix={m:?}");
            }
        }
    }

    #[test]
    fn greedy_never_beats_hungarian() {
        let mut rng = SmallRng::seed_from_u64(43);
        for _ in 0..25 {
            let n = rng.gen_range(1..9);
            let mut m = CostMatrix::zeros(n);
            for r in 0..n {
                for c in 0..n {
                    m.set(r, c, rng.gen_range(0..30));
                }
            }
            let h = hungarian(&m);
            let g = greedy_matching(&m);
            assert!(g.cost >= h.cost);
        }
    }
}
