//! Property tests for the matching crate: the Hungarian algorithm against
//! brute force, the duplicate-collapsed solver against Hungarian, and
//! structural invariants that hold for any cost matrix.

use ned_matching::{
    brute_force_matching, collapsed_hungarian, greedy_matching, hungarian, CostMatrix,
};
use proptest::prelude::*;

fn matrix_strategy(max_n: usize, max_cost: i64) -> impl Strategy<Value = CostMatrix> {
    (1..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec(0..max_cost, n * n).prop_map(move |vals| {
            let mut m = CostMatrix::zeros(n);
            for r in 0..n {
                for c in 0..n {
                    m.set(r, c, vals[r * n + c]);
                }
            }
            m
        })
    })
}

/// A matrix plus a list of row/column duplications to apply: the natural
/// habitat of the collapsed solver.
fn duplicated_matrix_strategy(max_n: usize, max_cost: i64) -> impl Strategy<Value = CostMatrix> {
    (matrix_strategy(max_n, max_cost), any::<u64>()).prop_map(|(mut m, seed)| {
        use rand::{Rng, SeedableRng};
        let n = m.size();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        // Duplicate ~half the rows/columns on top of random content.
        for _ in 0..n {
            let (src, dst) = (rng.gen_range(0..n), rng.gen_range(0..n));
            if rng.gen_bool(0.5) {
                for c in 0..n {
                    let v = m.get(src, c);
                    m.set(dst, c, v);
                }
            } else {
                for r in 0..n {
                    let v = m.get(r, src);
                    m.set(r, dst, v);
                }
            }
        }
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn hungarian_matches_brute_force(m in matrix_strategy(7, 100)) {
        let h = hungarian(&m);
        let b = brute_force_matching(&m);
        prop_assert_eq!(h.cost, b.cost);
    }

    #[test]
    fn hungarian_output_is_a_permutation(m in matrix_strategy(12, 1000)) {
        let a = hungarian(&m);
        let mut seen = vec![false; m.size()];
        for &c in &a.row_to_col {
            prop_assert!(c < m.size());
            prop_assert!(!seen[c], "column used twice");
            seen[c] = true;
        }
        // reported cost equals the sum along the assignment
        let sum: i64 = a.row_to_col.iter().enumerate().map(|(r, &c)| m.get(r, c)).sum();
        prop_assert_eq!(sum, a.cost);
    }

    #[test]
    fn greedy_never_beats_hungarian(m in matrix_strategy(10, 50)) {
        prop_assert!(greedy_matching(&m).cost >= hungarian(&m).cost);
    }

    #[test]
    fn collapsed_matches_hungarian_cost(m in duplicated_matrix_strategy(12, 60)) {
        prop_assert_eq!(collapsed_hungarian(&m).cost, hungarian(&m).cost);
    }

    #[test]
    fn collapsed_matches_hungarian_without_duplicates(m in matrix_strategy(10, 200)) {
        // No injected duplication: every class is a singleton and the
        // transportation solve degenerates to plain assignment.
        prop_assert_eq!(collapsed_hungarian(&m).cost, hungarian(&m).cost);
    }

    #[test]
    fn collapsed_output_is_a_permutation(m in duplicated_matrix_strategy(14, 30)) {
        let a = collapsed_hungarian(&m);
        let mut seen = vec![false; m.size()];
        for &c in &a.row_to_col {
            prop_assert!(c < m.size());
            prop_assert!(!seen[c], "column used twice");
            seen[c] = true;
        }
        let sum: i64 = a.row_to_col.iter().enumerate().map(|(r, &c)| m.get(r, c)).sum();
        prop_assert_eq!(sum, a.cost);
    }

    #[test]
    fn collapsed_handles_negative_costs(m in duplicated_matrix_strategy(8, 50)) {
        let n = m.size();
        let mut neg = CostMatrix::zeros(n);
        for r in 0..n {
            for c in 0..n {
                neg.set(r, c, m.get(r, c) - 25);
            }
        }
        prop_assert_eq!(collapsed_hungarian(&neg).cost, hungarian(&neg).cost);
    }

    #[test]
    fn constant_shift_shifts_cost_linearly(m in matrix_strategy(8, 50), shift in 1i64..100) {
        // adding a constant to every entry adds n*shift to the optimum
        let n = m.size();
        let mut shifted = CostMatrix::zeros(n);
        for r in 0..n {
            for c in 0..n {
                shifted.set(r, c, m.get(r, c) + shift);
            }
        }
        prop_assert_eq!(hungarian(&shifted).cost, hungarian(&m).cost + shift * n as i64);
    }

    #[test]
    fn transpose_preserves_optimal_cost(m in matrix_strategy(9, 80)) {
        let n = m.size();
        let mut t = CostMatrix::zeros(n);
        for r in 0..n {
            for c in 0..n {
                t.set(c, r, m.get(r, c));
            }
        }
        prop_assert_eq!(hungarian(&t).cost, hungarian(&m).cost);
    }

    #[test]
    fn negative_costs_handled(m in matrix_strategy(6, 40)) {
        let n = m.size();
        let mut neg = CostMatrix::zeros(n);
        for r in 0..n {
            for c in 0..n {
                neg.set(r, c, m.get(r, c) - 20);
            }
        }
        let h = hungarian(&neg);
        let b = brute_force_matching(&neg);
        prop_assert_eq!(h.cost, b.cost);
    }
}
