//! Fault-injecting TCP proxy for chaos-testing the serving layer.
//!
//! [`ChaosProxy`] listens on a loopback port and forwards every accepted
//! connection to an upstream server, injecting faults into the forwarded
//! byte stream in both directions:
//!
//! * **delay** — hold a chunk for [`ChaosConfig::delay`] before
//!   forwarding it (slow links, GC pauses, overloaded switches);
//! * **drop** — sever the proxied connection without forwarding the
//!   chunk (a dying peer, a mid-frame RST);
//! * **truncate** — forward only a prefix of the chunk and then sever
//!   the connection (a torn frame: the receiver sees a length prefix
//!   whose payload never finishes arriving);
//! * **bit-flip** — flip one bit of the chunk and forward it intact
//!   otherwise (line corruption; with the wire protocol's length-prefix
//!   validation this lands as a garbage command, a garbled reply, or a
//!   bad frame length the server must reject cleanly).
//!
//! Fault decisions are driven by a deterministic xorshift stream seeded
//! from [`ChaosConfig::seed`] and the per-connection sequence number, so
//! a chaos run is reproducible given the same connection order. The
//! proxy never touches the upstream server's correctness: the contract
//! under test is that the *server* survives every injected fault with at
//! worst a clean per-connection error, while clients connected directly
//! (not through the proxy) keep getting exact answers.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Fault rates and intensities for a [`ChaosProxy`]. Each `*_one_in`
/// field is a per-chunk probability of `1/n` (`0` disables that fault).
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Seed for the deterministic fault stream.
    pub seed: u64,
    /// Delay one forwarded chunk in this many (0 = never).
    pub delay_one_in: u32,
    /// How long a delayed chunk is held.
    pub delay: Duration,
    /// Sever one connection in this many chunks without forwarding.
    pub drop_one_in: u32,
    /// Truncate one chunk in this many (forward a prefix, then sever).
    pub truncate_one_in: u32,
    /// Flip one bit in one chunk in this many.
    pub bitflip_one_in: u32,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0xC4A0_5EED,
            delay_one_in: 6,
            delay: Duration::from_millis(15),
            drop_one_in: 24,
            truncate_one_in: 16,
            bitflip_one_in: 10,
        }
    }
}

#[derive(Default)]
struct Shared {
    conns: AtomicU64,
    chunks: AtomicU64,
    delayed: AtomicU64,
    dropped: AtomicU64,
    truncated: AtomicU64,
    bitflipped: AtomicU64,
}

/// A snapshot of the faults a [`ChaosProxy`] has injected so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Connections proxied.
    pub conns: u64,
    /// Chunks forwarded (fault rolls happen per chunk).
    pub chunks: u64,
    /// Chunks held for the configured delay.
    pub delayed: u64,
    /// Connections severed without forwarding the pending chunk.
    pub dropped: u64,
    /// Chunks forwarded as a prefix before severing the connection.
    pub truncated: u64,
    /// Chunks forwarded with one bit flipped.
    pub bitflipped: u64,
}

impl ChaosStats {
    /// Total faults injected across every category.
    pub fn faults(&self) -> u64 {
        self.delayed + self.dropped + self.truncated + self.bitflipped
    }
}

impl std::fmt::Display for ChaosStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} conns, {} chunks; faults: {} delayed, {} dropped, {} truncated, {} bit-flipped",
            self.conns, self.chunks, self.delayed, self.dropped, self.truncated, self.bitflipped
        )
    }
}

/// The running proxy: a loopback listener whose accepted connections are
/// pumped to the upstream address through the fault injector. Stop it
/// with [`ChaosProxy::stop`]; dropping it stops it too.
pub struct ChaosProxy {
    addr: SocketAddr,
    shared: Arc<Shared>,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds a fresh loopback port and starts proxying to `upstream`.
    pub fn spawn(upstream: SocketAddr, config: ChaosConfig) -> io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared::default());
        let stop = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || accept_loop(listener, upstream, config, shared, stop))
        };
        Ok(ChaosProxy {
            addr,
            shared,
            stop,
            acceptor: Some(acceptor),
        })
    }

    /// The loopback address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current fault counters.
    pub fn stats(&self) -> ChaosStats {
        let s = &self.shared;
        ChaosStats {
            conns: s.conns.load(Ordering::Relaxed),
            chunks: s.chunks.load(Ordering::Relaxed),
            delayed: s.delayed.load(Ordering::Relaxed),
            dropped: s.dropped.load(Ordering::Relaxed),
            truncated: s.truncated.load(Ordering::Relaxed),
            bitflipped: s.bitflipped.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting, lets the pump threads wind down, and returns the
    /// final fault counters.
    pub fn stop(mut self) -> ChaosStats {
        self.halt();
        self.stats()
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.halt();
    }
}

fn accept_loop(
    listener: TcpListener,
    upstream: SocketAddr,
    config: ChaosConfig,
    shared: Arc<Shared>,
    stop: Arc<AtomicBool>,
) {
    let mut conn_id = 0u64;
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((client, _)) => {
                conn_id += 1;
                shared.conns.fetch_add(1, Ordering::Relaxed);
                let Ok(server) = TcpStream::connect(upstream) else {
                    let _ = client.shutdown(Shutdown::Both);
                    continue;
                };
                let (Ok(client2), Ok(server2)) = (client.try_clone(), server.try_clone()) else {
                    continue;
                };
                for (dir, src, dst) in [(0u64, client, server), (1u64, server2, client2)] {
                    let config = config.clone();
                    let shared = Arc::clone(&shared);
                    let stop = Arc::clone(&stop);
                    // Seed each pump from (run seed, connection, direction)
                    // so fault placement is reproducible per stream.
                    let seed = config.seed ^ conn_id.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ dir;
                    std::thread::spawn(move || pump(src, dst, &config, &shared, &stop, seed));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Forwards `src` to `dst`, rolling each fault once per chunk. Severs
/// both directions on exit so a drop/truncate tears the whole proxied
/// connection, exactly like a failing link would.
fn pump(
    mut src: TcpStream,
    mut dst: TcpStream,
    config: &ChaosConfig,
    shared: &Shared,
    stop: &AtomicBool,
    seed: u64,
) {
    let _ = src.set_read_timeout(Some(Duration::from_millis(50)));
    let mut rng = seed | 1;
    let mut buf = [0u8; 2048];
    loop {
        if stop.load(Ordering::Acquire) {
            break;
        }
        let n = match src.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(_) => break,
        };
        shared.chunks.fetch_add(1, Ordering::Relaxed);
        fn roll(rng: &mut u64, one_in: u32) -> bool {
            one_in != 0 && xorshift(rng).is_multiple_of(one_in as u64)
        }
        if roll(&mut rng, config.bitflip_one_in) {
            let byte = xorshift(&mut rng) as usize % n;
            let bit = (xorshift(&mut rng) % 8) as u32;
            buf[byte] ^= 1u8 << bit;
            shared.bitflipped.fetch_add(1, Ordering::Relaxed);
        }
        if roll(&mut rng, config.delay_one_in) {
            shared.delayed.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(config.delay);
        }
        if roll(&mut rng, config.truncate_one_in) {
            shared.truncated.fetch_add(1, Ordering::Relaxed);
            let _ = dst.write_all(&buf[..(n / 2).max(1)]);
            break;
        }
        if roll(&mut rng, config.drop_one_in) {
            shared.dropped.fetch_add(1, Ordering::Relaxed);
            break;
        }
        if dst.write_all(&buf[..n]).is_err() {
            break;
        }
    }
    let _ = src.shutdown(Shutdown::Both);
    let _ = dst.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    /// A trivial line-echo upstream for exercising the proxy alone.
    fn echo_server() -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind echo");
        let addr = listener.local_addr().expect("echo addr");
        std::thread::spawn(move || {
            for stream in listener.incoming().flatten() {
                std::thread::spawn(move || {
                    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                    let mut out = stream;
                    let mut line = String::new();
                    while let Ok(n) = reader.read_line(&mut line) {
                        if n == 0 || out.write_all(line.as_bytes()).is_err() {
                            break;
                        }
                        line.clear();
                    }
                });
            }
        });
        addr
    }

    #[test]
    fn clean_config_forwards_transparently() {
        let upstream = echo_server();
        let off = ChaosConfig {
            delay_one_in: 0,
            drop_one_in: 0,
            truncate_one_in: 0,
            bitflip_one_in: 0,
            ..ChaosConfig::default()
        };
        let proxy = ChaosProxy::spawn(upstream, off).expect("spawn proxy");
        let mut conn = TcpStream::connect(proxy.addr()).expect("connect via proxy");
        conn.write_all(b"hello through the proxy\n").expect("write");
        let mut reader = BufReader::new(conn.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        assert_eq!(line, "hello through the proxy\n");
        let stats = proxy.stop();
        assert_eq!(stats.conns, 1);
        assert_eq!(stats.faults(), 0, "every fault was disabled: {stats}");
    }

    #[test]
    fn faults_fire_and_the_upstream_survives() {
        let upstream = echo_server();
        let aggressive = ChaosConfig {
            seed: 7,
            delay_one_in: 3,
            delay: Duration::from_millis(1),
            drop_one_in: 8,
            truncate_one_in: 8,
            bitflip_one_in: 3,
        };
        let proxy = ChaosProxy::spawn(upstream, aggressive).expect("spawn proxy");
        for i in 0..24 {
            let Ok(mut conn) = TcpStream::connect(proxy.addr()) else {
                continue;
            };
            let _ = conn.set_read_timeout(Some(Duration::from_millis(200)));
            for j in 0..8 {
                if conn
                    .write_all(format!("ping {i} {j}\n").as_bytes())
                    .is_err()
                {
                    break;
                }
                let mut scratch = [0u8; 64];
                if matches!(conn.read(&mut scratch), Err(_) | Ok(0)) {
                    break;
                }
            }
        }
        let stats = proxy.stop();
        assert!(
            stats.faults() > 0,
            "no faults after 24 chaos conns: {stats}"
        );
        // The upstream must still answer a clean, direct connection.
        let mut direct = TcpStream::connect(upstream).expect("upstream died");
        direct.write_all(b"still alive\n").expect("write direct");
        let mut reader = BufReader::new(direct);
        let mut line = String::new();
        reader.read_line(&mut line).expect("read direct");
        assert_eq!(line, "still alive\n");
    }
}
