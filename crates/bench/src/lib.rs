//! Experiment harness for the NED reproduction.
//!
//! Every table and figure of the paper's evaluation (Section 13) has a
//! corresponding experiment module here and a thin binary under
//! `src/bin/`; `run_all` regenerates the whole evaluation. The
//! `benches/` directory adds criterion micro-benchmarks for each
//! component plus a `figures` harness that re-runs the experiments at
//! reduced scale under `cargo bench`.
//!
//! | Paper artifact | Module | Binary |
//! |---|---|---|
//! | Table 2 (datasets) | [`experiments::table2`] | `table2` |
//! | Fig 5a/5b (TED\*/TED/GED times & values) | [`experiments::fig5_6`] | `fig5` |
//! | Fig 6a/6b (relative error, equivalency) | [`experiments::fig5_6`] | `fig6` |
//! | Fig 7a/7b (TED\*/NED computation time) | [`experiments::fig7`] | `fig7` |
//! | Fig 8a/8b (parameter k effects) | [`experiments::fig8`] | `fig8` |
//! | Fig 9a/9b (method comparison, query time) | [`experiments::fig9`] | `fig9` |
//! | Fig 10a/10b (de-anonymization precision) | [`experiments::deanon`] | `fig10` |
//! | Fig 11a/11b (ratio / top-l sweeps) | [`experiments::deanon`] | `fig11` |
//! | Ablations (DESIGN.md §6) | [`experiments::ablation`] | `ablation` |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chaos;
pub mod experiments;
pub mod loadgen;
pub mod util;
