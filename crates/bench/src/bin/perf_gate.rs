//! CI performance gate: compares a freshly measured benchmark snapshot
//! against the committed `BENCH_*.json` trajectory and fails on
//! regressions.
//!
//! ```text
//! cargo run --release -p ned-bench --bin perf_gate [fresh.json] [baseline.json ...]
//! ```
//!
//! With no explicit baselines, every `BENCH_<n>.json` in the current
//! directory (the committed trajectory, ordered by `<n>`) is used. For
//! each benchmark name present in the fresh snapshot, the most recent
//! baseline that also measured it provides the reference `ns_per_op`; a
//! fresh value more than [`MAX_REGRESSION`] above the reference fails the
//! gate. Names only one side knows are reported but never fail — new
//! benchmarks enter the trajectory the first time their snapshot is
//! committed.
//!
//! The full comparison is written to `perf_gate_diff.json` (uploaded as a
//! CI artifact) so a red gate is diagnosable without re-running anything.
//!
//! **Baselines must come from the machine class that measures.** Absolute
//! ns/op only compares meaningfully against snapshots taken on comparable
//! hardware; refresh the committed trajectory from the CI `bench-snapshot`
//! artifact (`BENCH_ci.json`) rather than from a developer laptop, or the
//! hardware gap will read as a regression. Hardware-independent floors
//! (the ≥5× speedup comparisons) are enforced separately by
//! `perf_snapshot` itself and never depend on the trajectory.

use std::process::ExitCode;

/// A fresh value above `baseline * (1 + MAX_REGRESSION)` fails the gate.
const MAX_REGRESSION: f64 = 0.30;

/// Where the comparison report is written.
const DIFF_PATH: &str = "perf_gate_diff.json";

#[derive(Debug, Clone, PartialEq)]
struct Bench {
    name: String,
    ns_per_op: f64,
}

/// Extracts `{"name": ..., "ns_per_op": ...}` pairs from a
/// `ned-bench/1` snapshot. A deliberately small scanner — the format is
/// produced by `perf_snapshot` in this same crate, not by arbitrary
/// tools.
fn parse_snapshot(text: &str) -> Result<Vec<Bench>, String> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find("\"name\"") {
        rest = &rest[pos + "\"name\"".len()..];
        let open = rest
            .find('"')
            .ok_or_else(|| "unterminated name field".to_string())?;
        rest = &rest[open + 1..];
        let close = rest
            .find('"')
            .ok_or_else(|| "unterminated name string".to_string())?;
        let name = rest[..close].to_string();
        rest = &rest[close + 1..];
        let key = "\"ns_per_op\":";
        let kpos = rest
            .find(key)
            .ok_or_else(|| format!("benchmark {name:?} has no ns_per_op"))?;
        let tail = rest[kpos + key.len()..].trim_start();
        let end = tail
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
            .unwrap_or(tail.len());
        let ns_per_op: f64 = tail[..end]
            .trim()
            .parse()
            .map_err(|_| format!("benchmark {name:?}: bad ns_per_op {:?}", &tail[..end]))?;
        out.push(Bench { name, ns_per_op });
        rest = &tail[end..];
    }
    if out.is_empty() {
        return Err("no benchmarks found".to_string());
    }
    Ok(out)
}

fn read_snapshot(path: &str) -> Result<Vec<Bench>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_snapshot(&text).map_err(|e| format!("{path}: {e}"))
}

/// The committed trajectory: `BENCH_<n>.json` files beside the working
/// directory, ordered by `<n>` ascending (oldest first).
fn discover_trajectory(exclude: &str) -> Vec<String> {
    let mut found: Vec<(u64, String)> = Vec::new();
    let Ok(dir) = std::fs::read_dir(".") else {
        return Vec::new();
    };
    for entry in dir.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if name == exclude {
            continue;
        }
        if let Some(num) = name
            .strip_prefix("BENCH_")
            .and_then(|s| s.strip_suffix(".json"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            found.push((num, name));
        }
    }
    found.sort_unstable();
    found.into_iter().map(|(_, name)| name).collect()
}

struct Row {
    name: String,
    fresh: f64,
    baseline: Option<(f64, String)>,
    ratio: Option<f64>,
    status: &'static str,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fresh_path = args
        .first()
        .cloned()
        .unwrap_or_else(|| "BENCH_ci.json".to_string());
    let baselines: Vec<String> = if args.len() > 1 {
        args[1..].to_vec()
    } else {
        let fresh_file = std::path::Path::new(&fresh_path)
            .file_name()
            .map(|f| f.to_string_lossy().into_owned())
            .unwrap_or_default();
        discover_trajectory(&fresh_file)
    };
    if baselines.is_empty() {
        eprintln!("perf_gate: no committed BENCH_*.json trajectory found");
        return ExitCode::FAILURE;
    }

    let fresh = match read_snapshot(&fresh_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("perf_gate: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Most recent baseline first when resolving a name.
    let mut history: Vec<(String, Vec<Bench>)> = Vec::new();
    for path in &baselines {
        match read_snapshot(path) {
            Ok(b) => history.push((path.clone(), b)),
            Err(e) => {
                eprintln!("perf_gate: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut rows: Vec<Row> = Vec::new();
    let mut regressions = 0usize;
    for bench in &fresh {
        let reference = history.iter().rev().find_map(|(path, benches)| {
            benches
                .iter()
                .find(|b| b.name == bench.name)
                .map(|b| (b.ns_per_op, path.clone()))
        });
        let (ratio, status) = match &reference {
            None => (None, "new"),
            Some((base, _)) => {
                let ratio = bench.ns_per_op / base;
                if ratio > 1.0 + MAX_REGRESSION {
                    regressions += 1;
                    (Some(ratio), "regression")
                } else {
                    (Some(ratio), "ok")
                }
            }
        };
        rows.push(Row {
            name: bench.name.clone(),
            fresh: bench.ns_per_op,
            baseline: reference,
            ratio,
            status,
        });
    }

    let mut report = String::from("{\n  \"schema\": \"ned-perf-gate/1\",\n");
    report.push_str(&format!(
        "  \"fresh\": {fresh_path:?},\n  \"max_regression\": {MAX_REGRESSION},\n  \"rows\": [\n"
    ));
    for (i, row) in rows.iter().enumerate() {
        let (base_val, base_file) = match &row.baseline {
            Some((v, f)) => (format!("{v:.1}"), format!("{f:?}")),
            None => ("null".to_string(), "null".to_string()),
        };
        let ratio = row
            .ratio
            .map(|r| format!("{r:.3}"))
            .unwrap_or_else(|| "null".to_string());
        report.push_str(&format!(
            "    {{\"name\": {:?}, \"fresh_ns\": {:.1}, \"baseline_ns\": {}, \"baseline_file\": {}, \"ratio\": {}, \"status\": {:?}}}{}\n",
            row.name,
            row.fresh,
            base_val,
            base_file,
            ratio,
            row.status,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    report.push_str(&format!("  ],\n  \"regressions\": {regressions}\n}}\n"));
    if let Err(e) = std::fs::write(DIFF_PATH, &report) {
        eprintln!("perf_gate: cannot write {DIFF_PATH}: {e}");
        return ExitCode::FAILURE;
    }

    println!(
        "perf_gate: {fresh_path} vs {} baseline snapshot(s)",
        history.len()
    );
    for row in &rows {
        match (&row.baseline, row.ratio) {
            (Some((base, file)), Some(ratio)) => println!(
                "  [{:^10}] {:<40} {:>12.1} ns vs {:>12.1} ns ({file}) ratio {ratio:.3}",
                row.status, row.name, row.fresh, base
            ),
            _ => println!(
                "  [{:^10}] {:<40} {:>12.1} ns (no baseline yet)",
                row.status, row.name, row.fresh
            ),
        }
    }
    println!("wrote {DIFF_PATH}");
    if regressions > 0 {
        eprintln!(
            "perf_gate: {regressions} benchmark(s) regressed more than {:.0}%",
            MAX_REGRESSION * 100.0
        );
        return ExitCode::FAILURE;
    }
    println!("perf_gate: ok");
    ExitCode::SUCCESS
}
