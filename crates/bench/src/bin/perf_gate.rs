//! CI performance gate: compares a freshly measured benchmark snapshot
//! against the committed `BENCH_*.json` trajectory and fails on
//! regressions.
//!
//! ```text
//! cargo run --release -p ned-bench --bin perf_gate [fresh.json] [baseline.json ...]
//! ```
//!
//! With no explicit baselines, every `BENCH_<n>.json` in the current
//! directory (the committed trajectory, ordered by `<n>`) is used. For
//! each benchmark name present in the fresh snapshot, the most recent
//! baseline that also measured it provides the reference `ns_per_op`; a
//! fresh value more than [`MAX_REGRESSION`] above the reference — and at
//! least [`NOISE_FLOOR_NS`] above it, which keeps nanosecond-scale
//! entries from failing on timer noise — fails the gate. Fresh-only
//! names are reported but never fail — new benchmarks
//! enter the trajectory the first time their snapshot is committed.
//! Names the trajectory knows but the fresh snapshot **lacks fail the
//! gate**: a deleted benchmark silently drops perf coverage, which is a
//! regression of the pipeline itself.
//!
//! **Latency percentiles are first-class series.** A benchmark object
//! may carry `p50_ns` / `p99_ns` next to its mean (the serving-layer
//! `loadgen/...` entries do); each percentile becomes its own trajectory
//! series named `<benchmark>@p50` / `<benchmark>@p99` and goes through
//! the identical per-series regression check — same 30% threshold, same
//! 1µs noise floor. A tail-latency regression therefore fails CI even
//! when the mean hides it, and dropping a percentile from a benchmark
//! that used to report it counts as a missing series.
//!
//! The full comparison is written to `perf_gate_diff.json` (uploaded as a
//! CI artifact) so a red gate is diagnosable without re-running anything.
//! The same table is rendered as markdown to `perf_gate_diff.md` — and
//! appended to `$GITHUB_STEP_SUMMARY` when that variable is set — on
//! **passing runs as well as failures**, so every CI run shows its
//! committed-vs-fresh drift, not just the red ones.
//!
//! **Baselines must come from the machine class that measures.** Absolute
//! ns/op only compares meaningfully against snapshots taken on comparable
//! hardware; refresh the committed trajectory from the CI `bench-snapshot`
//! artifact (`BENCH_ci.json`) rather than from a developer laptop, or the
//! hardware gap will read as a regression. Hardware-independent floors
//! (the ≥5× speedup comparisons) are enforced separately by
//! `perf_snapshot` itself and never depend on the trajectory.

use std::process::ExitCode;

/// A fresh value above `max(baseline * (1 + MAX_REGRESSION),
/// baseline + NOISE_FLOOR_NS)` fails the gate.
const MAX_REGRESSION: f64 = 0.30;

/// Minimum absolute drift that can count as a regression. Sub-microsecond
/// entries (a memoized lookup measures ~25 ns/op) move far beyond 30%
/// between runs from timer resolution and frequency scaling alone; the
/// floor keeps them in the report without letting timer noise fail CI.
/// Taken as a `max` with the relative threshold — never added to it —
/// so the 30% rule is untouched for any benchmark whose 30% exceeds a
/// microsecond.
const NOISE_FLOOR_NS: f64 = 1000.0;

/// Where the comparison report is written.
const DIFF_PATH: &str = "perf_gate_diff.json";

/// Where the human-readable markdown rendering of the same comparison is
/// written (and mirrored into `$GITHUB_STEP_SUMMARY` when set).
const DIFF_MD_PATH: &str = "perf_gate_diff.md";

#[derive(Debug, Clone, PartialEq)]
struct Bench {
    name: String,
    ns_per_op: f64,
}

/// Parses the number following `key` inside `window`, if present.
fn parse_number_after(window: &str, key: &str) -> Result<Option<f64>, String> {
    let Some(kpos) = window.find(key) else {
        return Ok(None);
    };
    let tail = window[kpos + key.len()..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(tail.len());
    tail[..end]
        .trim()
        .parse()
        .map(Some)
        .map_err(|_| format!("bad {key} value {:?}", &tail[..end]))
}

/// Extracts `{"name": ..., "ns_per_op": ...}` pairs from a
/// `ned-bench/1` snapshot, expanding optional `p50_ns` / `p99_ns`
/// fields into their own `<name>@p50` / `<name>@p99` series. A
/// deliberately small scanner — the format is produced by
/// `perf_snapshot` in this same crate, not by arbitrary tools.
fn parse_snapshot(text: &str) -> Result<Vec<Bench>, String> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find("\"name\"") {
        rest = &rest[pos + "\"name\"".len()..];
        let open = rest
            .find('"')
            .ok_or_else(|| "unterminated name field".to_string())?;
        rest = &rest[open + 1..];
        let close = rest
            .find('"')
            .ok_or_else(|| "unterminated name string".to_string())?;
        let name = rest[..close].to_string();
        rest = &rest[close + 1..];
        // Everything up to the next benchmark object is this one's
        // window; the optional percentile fields must sit inside it.
        let window = match rest.find("\"name\"") {
            Some(next) => &rest[..next],
            None => rest,
        };
        let ns_per_op = parse_number_after(window, "\"ns_per_op\":")
            .map_err(|e| format!("benchmark {name:?}: {e}"))?
            .ok_or_else(|| format!("benchmark {name:?} has no ns_per_op"))?;
        out.push(Bench {
            name: name.clone(),
            ns_per_op,
        });
        for (key, suffix) in [("\"p50_ns\":", "@p50"), ("\"p99_ns\":", "@p99")] {
            if let Some(v) =
                parse_number_after(window, key).map_err(|e| format!("benchmark {name:?}: {e}"))?
            {
                out.push(Bench {
                    name: format!("{name}{suffix}"),
                    ns_per_op: v,
                });
            }
        }
        rest = &rest[window.len()..];
    }
    if out.is_empty() {
        return Err("no benchmarks found".to_string());
    }
    Ok(out)
}

fn read_snapshot(path: &str) -> Result<Vec<Bench>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_snapshot(&text).map_err(|e| format!("{path}: {e}"))
}

/// The committed trajectory: `BENCH_<n>.json` files beside the working
/// directory, ordered by `<n>` ascending (oldest first).
fn discover_trajectory(exclude: &str) -> Vec<String> {
    let mut found: Vec<(u64, String)> = Vec::new();
    let Ok(dir) = std::fs::read_dir(".") else {
        return Vec::new();
    };
    for entry in dir.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if name == exclude {
            continue;
        }
        if let Some(num) = name
            .strip_prefix("BENCH_")
            .and_then(|s| s.strip_suffix(".json"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            found.push((num, name));
        }
    }
    found.sort_unstable();
    found.into_iter().map(|(_, name)| name).collect()
}

struct Row {
    name: String,
    /// `None` for a trajectory benchmark missing from the fresh snapshot.
    fresh: Option<f64>,
    baseline: Option<(f64, String)>,
    ratio: Option<f64>,
    status: &'static str,
}

/// Compares a fresh snapshot against the baseline history (oldest
/// first). Returns the report rows plus the failure counts:
/// `(rows, regressions, missing)` — `missing` counts trajectory
/// benchmarks absent from the fresh snapshot, each of which fails the
/// gate (a silently deleted bench is lost perf coverage).
fn compare(fresh: &[Bench], history: &[(String, Vec<Bench>)]) -> (Vec<Row>, usize, usize) {
    let mut rows: Vec<Row> = Vec::new();
    let mut regressions = 0usize;
    for bench in fresh {
        let reference = history.iter().rev().find_map(|(path, benches)| {
            benches
                .iter()
                .find(|b| b.name == bench.name)
                .map(|b| (b.ns_per_op, path.clone()))
        });
        let (ratio, status) = match &reference {
            None => (None, "new"),
            Some((base, _)) => {
                let ratio = bench.ns_per_op / base;
                let threshold = (base * (1.0 + MAX_REGRESSION)).max(base + NOISE_FLOOR_NS);
                if bench.ns_per_op > threshold {
                    regressions += 1;
                    (Some(ratio), "regression")
                } else {
                    (Some(ratio), "ok")
                }
            }
        };
        rows.push(Row {
            name: bench.name.clone(),
            fresh: Some(bench.ns_per_op),
            baseline: reference,
            ratio,
            status,
        });
    }

    // Trajectory names the fresh snapshot no longer measures. Most
    // recent baseline wins; each name is reported once.
    let mut missing = 0usize;
    for (path, benches) in history.iter().rev() {
        for b in benches {
            let seen = fresh.iter().any(|f| f.name == b.name)
                || rows.iter().any(|r| r.fresh.is_none() && r.name == b.name);
            if seen {
                continue;
            }
            missing += 1;
            rows.push(Row {
                name: b.name.clone(),
                fresh: None,
                baseline: Some((b.ns_per_op, path.clone())),
                ratio: None,
                status: "missing",
            });
        }
    }
    (rows, regressions, missing)
}

/// Renders the comparison as a markdown table, emitted on pass *and*
/// fail so every CI run documents its drift against the trajectory.
fn markdown_report(rows: &[Row], fresh_path: &str, regressions: usize, missing: usize) -> String {
    let verdict = if regressions == 0 && missing == 0 {
        "✅ pass"
    } else {
        "❌ fail"
    };
    let mut md = format!(
        "### perf_gate: {verdict}\n\n`{fresh_path}` vs committed trajectory \
         ({regressions} regression(s), {missing} missing)\n\n\
         | benchmark | fresh ns/op | baseline ns/op | baseline file | ratio | status |\n\
         |---|---:|---:|---|---:|---|\n"
    );
    for row in rows {
        let fresh = row
            .fresh
            .map(|v| format!("{v:.1}"))
            .unwrap_or_else(|| "absent".to_string());
        let (base, file) = match &row.baseline {
            Some((v, f)) => (format!("{v:.1}"), f.clone()),
            None => ("—".to_string(), "—".to_string()),
        };
        let ratio = row
            .ratio
            .map(|r| format!("{r:.3}"))
            .unwrap_or_else(|| "—".to_string());
        md.push_str(&format!(
            "| `{}` | {fresh} | {base} | {file} | {ratio} | {} |\n",
            row.name, row.status
        ));
    }
    md.push('\n');
    md
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fresh_path = args
        .first()
        .cloned()
        .unwrap_or_else(|| "BENCH_ci.json".to_string());
    let baselines: Vec<String> = if args.len() > 1 {
        args[1..].to_vec()
    } else {
        let fresh_file = std::path::Path::new(&fresh_path)
            .file_name()
            .map(|f| f.to_string_lossy().into_owned())
            .unwrap_or_default();
        discover_trajectory(&fresh_file)
    };
    if baselines.is_empty() {
        eprintln!("perf_gate: no committed BENCH_*.json trajectory found");
        return ExitCode::FAILURE;
    }

    let fresh = match read_snapshot(&fresh_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("perf_gate: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Most recent baseline first when resolving a name.
    let mut history: Vec<(String, Vec<Bench>)> = Vec::new();
    for path in &baselines {
        match read_snapshot(path) {
            Ok(b) => history.push((path.clone(), b)),
            Err(e) => {
                eprintln!("perf_gate: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let (rows, regressions, missing) = compare(&fresh, &history);

    let mut report = String::from("{\n  \"schema\": \"ned-perf-gate/1\",\n");
    report.push_str(&format!(
        "  \"fresh\": {fresh_path:?},\n  \"max_regression\": {MAX_REGRESSION},\n  \"rows\": [\n"
    ));
    for (i, row) in rows.iter().enumerate() {
        let (base_val, base_file) = match &row.baseline {
            Some((v, f)) => (format!("{v:.1}"), format!("{f:?}")),
            None => ("null".to_string(), "null".to_string()),
        };
        let fresh_val = row
            .fresh
            .map(|v| format!("{v:.1}"))
            .unwrap_or_else(|| "null".to_string());
        let ratio = row
            .ratio
            .map(|r| format!("{r:.3}"))
            .unwrap_or_else(|| "null".to_string());
        report.push_str(&format!(
            "    {{\"name\": {:?}, \"fresh_ns\": {}, \"baseline_ns\": {}, \"baseline_file\": {}, \"ratio\": {}, \"status\": {:?}}}{}\n",
            row.name,
            fresh_val,
            base_val,
            base_file,
            ratio,
            row.status,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    report.push_str(&format!(
        "  ],\n  \"regressions\": {regressions},\n  \"missing\": {missing}\n}}\n"
    ));
    if let Err(e) = std::fs::write(DIFF_PATH, &report) {
        eprintln!("perf_gate: cannot write {DIFF_PATH}: {e}");
        return ExitCode::FAILURE;
    }
    let md = markdown_report(&rows, &fresh_path, regressions, missing);
    if let Err(e) = std::fs::write(DIFF_MD_PATH, &md) {
        eprintln!("perf_gate: cannot write {DIFF_MD_PATH}: {e}");
        return ExitCode::FAILURE;
    }
    if let Ok(summary_path) = std::env::var("GITHUB_STEP_SUMMARY") {
        use std::io::Write;
        match std::fs::OpenOptions::new().append(true).open(&summary_path) {
            Ok(mut f) => {
                if let Err(e) = f.write_all(md.as_bytes()) {
                    eprintln!("perf_gate: cannot append to {summary_path}: {e}");
                }
            }
            Err(e) => eprintln!("perf_gate: cannot open {summary_path}: {e}"),
        }
    }

    println!(
        "perf_gate: {fresh_path} vs {} baseline snapshot(s)",
        history.len()
    );
    for row in &rows {
        match (row.fresh, &row.baseline, row.ratio) {
            (Some(fresh), Some((base, file)), Some(ratio)) => println!(
                "  [{:^10}] {:<40} {fresh:>12.1} ns vs {base:>12.1} ns ({file}) ratio {ratio:.3}",
                row.status, row.name
            ),
            (Some(fresh), _, _) => println!(
                "  [{:^10}] {:<40} {fresh:>12.1} ns (no baseline yet)",
                row.status, row.name
            ),
            (None, Some((base, file)), _) => println!(
                "  [{:^10}] {:<40} {:>12} vs {base:>12.1} ns ({file})",
                row.status, row.name, "absent"
            ),
            (None, None, _) => unreachable!("missing rows always carry a baseline"),
        }
    }
    println!("wrote {DIFF_PATH} and {DIFF_MD_PATH}");
    let mut failed = false;
    if regressions > 0 {
        eprintln!(
            "perf_gate: {regressions} benchmark(s) regressed more than {:.0}%",
            MAX_REGRESSION * 100.0
        );
        failed = true;
    }
    if missing > 0 {
        eprintln!(
            "perf_gate: {missing} trajectory benchmark(s) missing from {fresh_path} — \
             deleting a bench drops perf coverage; re-add it or retire it from the \
             committed trajectory explicitly"
        );
        failed = true;
    }
    if failed {
        return ExitCode::FAILURE;
    }
    println!("perf_gate: ok");
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench(name: &str, ns: f64) -> Bench {
        Bench {
            name: name.to_string(),
            ns_per_op: ns,
        }
    }

    #[test]
    fn parse_extracts_names_and_values() {
        let text = r#"{"schema": "ned-bench/1", "benchmarks": [
            {"name": "a/b", "ns_per_op": 12.5},
            {"name": "c", "ns_per_op": 3e4}
        ]}"#;
        let parsed = parse_snapshot(text).expect("parses");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0], bench("a/b", 12.5));
        assert_eq!(parsed[1], bench("c", 3e4));
        assert!(parse_snapshot("{}").is_err());
    }

    #[test]
    fn parse_expands_percentiles_into_their_own_series() {
        let text = r#"{"schema": "ned-bench/1", "benchmarks": [
            {"name": "loadgen/knn-r4", "ns_per_op": 120000.0, "p50_ns": 110000.0, "p99_ns": 950000.0},
            {"name": "plain", "ns_per_op": 7.5}
        ]}"#;
        let parsed = parse_snapshot(text).expect("parses");
        assert_eq!(
            parsed,
            vec![
                bench("loadgen/knn-r4", 120000.0),
                bench("loadgen/knn-r4@p50", 110000.0),
                bench("loadgen/knn-r4@p99", 950000.0),
                bench("plain", 7.5),
            ],
            "each percentile becomes its own series; neighbors are untouched"
        );
    }

    #[test]
    fn percentile_series_regress_independently() {
        // The mean holds steady while p99 blows past 30% + 1µs: the gate
        // must fail on the tail alone.
        let fresh = vec![
            bench("serve", 100_000.0),
            bench("serve@p50", 101_000.0),
            bench("serve@p99", 400_000.0),
        ];
        let history = vec![(
            "BENCH_4.json".to_string(),
            vec![
                bench("serve", 100_000.0),
                bench("serve@p50", 100_000.0),
                bench("serve@p99", 200_000.0),
            ],
        )];
        let (rows, regressions, missing) = compare(&fresh, &history);
        assert_eq!(missing, 0);
        assert_eq!(regressions, 1, "only the p99 series regressed");
        assert_eq!(rows[0].status, "ok");
        assert_eq!(
            rows[1].status, "ok",
            "1µs noise floor covers p50's 1% drift"
        );
        assert_eq!(rows[2].status, "regression");
    }

    #[test]
    fn dropping_a_percentile_is_a_missing_series() {
        // The benchmark still reports its mean but stopped reporting the
        // p99 the trajectory knows: lost tail-latency coverage fails.
        let fresh = vec![bench("serve", 90_000.0)];
        let history = vec![(
            "BENCH_4.json".to_string(),
            vec![bench("serve", 100_000.0), bench("serve@p99", 150_000.0)],
        )];
        let (rows, regressions, missing) = compare(&fresh, &history);
        assert_eq!(regressions, 0);
        assert_eq!(missing, 1);
        let row = rows.iter().find(|r| r.name == "serve@p99").expect("row");
        assert_eq!(row.status, "missing");
    }

    #[test]
    fn missing_trajectory_bench_fails_the_gate() {
        let fresh = vec![bench("kept", 100.0), bench("brand_new", 5.0)];
        let history = vec![
            (
                "BENCH_1.json".to_string(),
                vec![bench("kept", 90.0), bench("deleted", 70.0)],
            ),
            ("BENCH_2.json".to_string(), vec![bench("deleted", 50.0)]),
        ];
        let (rows, regressions, missing) = compare(&fresh, &history);
        assert_eq!(regressions, 0);
        assert_eq!(missing, 1, "one deleted bench, one failure");
        let row = rows
            .iter()
            .find(|r| r.name == "deleted")
            .expect("deleted bench reported");
        assert_eq!(row.status, "missing");
        assert_eq!(row.fresh, None);
        // most recent baseline wins
        assert_eq!(row.baseline, Some((50.0, "BENCH_2.json".to_string())));
        let new_row = rows.iter().find(|r| r.name == "brand_new").expect("new");
        assert_eq!(new_row.status, "new", "fresh-only benches never fail");
    }

    #[test]
    fn regression_detection_uses_most_recent_baseline() {
        let fresh = vec![bench("x", 135_000.0), bench("y", 100_000.0)];
        let history = vec![
            ("BENCH_1.json".to_string(), vec![bench("x", 50_000.0)]),
            (
                "BENCH_2.json".to_string(),
                vec![bench("x", 100_000.0), bench("y", 99_000.0)],
            ),
        ];
        let (rows, regressions, missing) = compare(&fresh, &history);
        assert_eq!(missing, 0);
        assert_eq!(regressions, 1, "135µs vs 100µs is a >30% regression");
        assert_eq!(rows[0].status, "regression");
        assert_eq!(rows[1].status, "ok");
    }

    #[test]
    fn markdown_report_renders_pass_and_fail_verdicts() {
        let fresh = vec![bench("kept", 100.0), bench("brand_new", 5.0)];
        let history = vec![("BENCH_1.json".to_string(), vec![bench("kept", 90.0)])];
        let (rows, regressions, missing) = compare(&fresh, &history);
        let md = markdown_report(&rows, "BENCH_ci.json", regressions, missing);
        assert!(md.contains("✅ pass"), "{md}");
        assert!(
            md.contains("| `kept` | 100.0 | 90.0 | BENCH_1.json |"),
            "{md}"
        );
        assert!(
            md.contains("| `brand_new` | 5.0 | — | — | — | new |"),
            "{md}"
        );

        let gone_history = vec![(
            "BENCH_2.json".to_string(),
            vec![bench("kept", 90.0), bench("deleted", 70.0)],
        )];
        let (rows, regressions, missing) = compare(&fresh, &gone_history);
        let md = markdown_report(&rows, "BENCH_ci.json", regressions, missing);
        assert!(md.contains("❌ fail"), "{md}");
        assert!(md.contains("| `deleted` | absent | 70.0 |"), "{md}");
    }

    #[test]
    fn timer_noise_on_nanosecond_benches_never_fails() {
        // 25 ns -> 80 ns is a 3.2x ratio but only 55 ns of drift: pure
        // timer noise at this scale, absorbed by the additive floor. The
        // same ratio at microsecond scale still fails.
        let fresh = vec![bench("memo_hit", 80.0), bench("sweep", 80_000.0)];
        let history = vec![(
            "BENCH_3.json".to_string(),
            vec![bench("memo_hit", 25.0), bench("sweep", 25_000.0)],
        )];
        let (rows, regressions, _) = compare(&fresh, &history);
        assert_eq!(regressions, 1);
        assert_eq!(rows[0].status, "ok", "nanosecond drift is not a regression");
        assert_eq!(rows[1].status, "regression");
    }
}
