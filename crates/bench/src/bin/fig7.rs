//! Regenerates the paper's fig7 artifact; see `ned-bench` docs.
fn main() {
    let cfg = ned_bench::util::ExpConfig::from_args();
    ned_bench::experiments::fig7::run(&cfg);
}
