//! Regenerates Figures 5a/5b (TED*, TED, GED: times and values).
fn main() {
    let cfg = ned_bench::util::ExpConfig::from_args();
    ned_bench::experiments::fig5_6::run(&cfg);
}
