//! Regenerates every table and figure; writes the combined report to
//! `experiments_report.txt` in the working directory.
fn main() {
    let cfg = ned_bench::util::ExpConfig::from_args();
    let report = ned_bench::experiments::run_all(&cfg);
    std::fs::write("experiments_report.txt", &report).expect("write report");
    eprintln!("\nreport written to experiments_report.txt");
}
