//! Regenerates Figures 6a/6b (relative error and equivalency ratio).
//! Shares its protocol (and output) with fig5.
fn main() {
    let cfg = ned_bench::util::ExpConfig::from_args();
    ned_bench::experiments::fig5_6::run(&cfg);
}
