//! Per-phase microbench for the SoA TED\* kernel: where does a pair
//! comparison actually spend its time?
//!
//! Runs the instrumented sweep ([`ned_core::ted_star_prepared_profiled`])
//! over BA-4000 signature pairs for every radius `k ∈ 1..=5` and prints,
//! per `k`, the ns/pair split across the six phases of Algorithm 1 —
//! floor-bound checks, children-label collection, pair-local
//! canonization, zero-pair grouping, the transportation solve, and flow
//! expansion + re-canonization — plus the level count and each phase's
//! share of the total. This is the map the `perf_snapshot`
//! `kernel_phase/*` series are a fixed slice of: run it after kernel
//! changes to see which phase moved.
//!
//! Run with `cargo run --release -p ned-bench --bin kernel_profile`.

use ned_bench::util::Table;
use ned_core::{ted_star_prepared_profiled, KernelProfile, PreparedTree};
use ned_graph::bfs::TreeExtractor;
use ned_graph::generators;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let mut rng = SmallRng::seed_from_u64(0xBE7C);
    let g1 = generators::barabasi_albert(4000, 3, &mut rng);
    let g2 = generators::barabasi_albert(4000, 3, &mut rng);
    let mut e1 = TreeExtractor::new(&g1);
    let mut e2 = TreeExtractor::new(&g2);

    let mut table = Table::new(&[
        "k",
        "pairs",
        "levels",
        "total",
        "bound",
        "collect",
        "canonize",
        "group",
        "transport",
        "expand",
    ]);
    let pct = |part: u64, total: u64| -> String {
        if total == 0 {
            return "0 (0%)".to_string();
        }
        format!("{} ({}%)", part, part * 100 / total)
    };
    for k in 1..=5usize {
        let pairs: Vec<(PreparedTree, PreparedTree)> = (0..8u32)
            .map(|i| {
                (
                    PreparedTree::new(&e1.extract(i * 97 % 4000, k)),
                    PreparedTree::new(&e2.extract(i * 131 % 4000, k)),
                )
            })
            .collect();
        // Median-of-samples aggregate, matching perf_snapshot's drift
        // discipline; each sample profiles every pair once.
        let samples: Vec<KernelProfile> = (0..7)
            .map(|_| {
                let mut acc = KernelProfile::default();
                for (pa, pb) in &pairs {
                    let (d, p) = ted_star_prepared_profiled(pa, pb);
                    std::hint::black_box(d);
                    acc.bound_ns += p.bound_ns;
                    acc.collect_ns += p.collect_ns;
                    acc.canonize_ns += p.canonize_ns;
                    acc.group_ns += p.group_ns;
                    acc.transport_ns += p.transport_ns;
                    acc.expand_ns += p.expand_ns;
                    acc.levels += p.levels;
                }
                acc
            })
            .collect();
        let per_pair = |f: fn(&KernelProfile) -> u64| -> u64 {
            let mut xs: Vec<u64> = samples.iter().map(f).collect();
            xs.sort_unstable();
            xs[xs.len() / 2] / pairs.len() as u64
        };
        let total = per_pair(|p| p.total_ns());
        table.row(vec![
            k.to_string(),
            pairs.len().to_string(),
            per_pair(|p| p.levels as u64).to_string(),
            format!("{total} ns"),
            pct(per_pair(|p| p.bound_ns), total),
            pct(per_pair(|p| p.collect_ns), total),
            pct(per_pair(|p| p.canonize_ns), total),
            pct(per_pair(|p| p.group_ns), total),
            pct(per_pair(|p| p.transport_ns), total),
            pct(per_pair(|p| p.expand_ns), total),
        ]);
    }
    println!("SoA kernel phase split, BA-4000 pairs (ns/pair, median of 7 samples)");
    table.print();
}
