//! Regenerates the paper's table2 artifact; see `ned-bench` docs.
fn main() {
    let cfg = ned_bench::util::ExpConfig::from_args();
    ned_bench::experiments::table2::run(&cfg);
}
