//! Regenerates Figures 11a/11b (perturbation-ratio and top-l sweeps).
fn main() {
    let cfg = ned_bench::util::ExpConfig::from_args();
    let out = ned_bench::experiments::deanon::fig11(&cfg);
    print!("{out}");
}
