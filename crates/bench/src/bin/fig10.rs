//! Regenerates Figures 10a/10b (de-anonymization precision).
fn main() {
    let cfg = ned_bench::util::ExpConfig::from_args();
    let out = ned_bench::experiments::deanon::fig10(&cfg);
    print!("{out}");
}
