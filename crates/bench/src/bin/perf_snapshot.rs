//! Machine-readable performance snapshot: writes `BENCH_10.json` with
//! ns/op for the pipeline's hot paths — the duplicate-collapsed
//! TED\*/NED engine against the dense Hungarian baseline, the sharded
//! forest against the linear scan, the budget-aware bounded kernel
//! against the frozen PR 2 unbounded forest path, a memo-cold/memo-warm
//! pair for the cross-pair distance memo, the PR 4 concurrent serving
//! layer's reader-fleet throughput (1 vs 4 reader threads over one
//! published snapshot, with p50/p99 latency percentiles as their own
//! `perf_gate` series), and (since PR 5) whole-graph **ingest** —
//! shared-frontier bulk extraction vs the independent per-node baseline,
//! gated at ≥ 3× — plus **delta churn**: ns per maintained edge flip on
//! a live index (dirty-set recompute only, one publication per flip),
//! measured both in-memory and (since PR 6) with every batch journaled
//! through the write-ahead log (`FsyncPolicy::EveryN(16)`), where the
//! durability overhead is gated at ≤ 30% of the in-memory trajectory.
//! Since PR 7 the snapshot also prices the **distributed serving layer**:
//! the same knn workload scatter-gathered by a [`ned_index::ShardRouter`] over a
//! 3-shard loopback-TCP fleet vs one TCP server holding the unsplit
//! index, bit-identical answers asserted before timing and the
//! coordination overhead gated against the single-server wire path.
//! Since PR 8 the pair path is the **SoA kernel**: `ted_star` routes
//! through the flat `PreparedTree` layout and the thread-local bounded
//! sweep, gated in-run at ≥ 2x over the frozen pre-SoA engine
//! (`ted_star_with(standard)`, which still runs the PR 2-7 directional
//! path verbatim), with a per-phase `kernel_phase/*` time split recorded
//! from the instrumented sweep. Since PR 9 the candidate-generation tier
//! is priced too: `sketch/ba4000-knn` runs the identical knn workload
//! through the flat sketch bank (linear lower-bound scan + shared-radius
//! exact refine), asserted bit-identical to the forest first and gated
//! in-run at ≥ 1.5x over the PR 3 bounded forest path, and
//! `sketch/ba4000-knn-approx` prices the estimate-filtered mode with its
//! measured recall gated at ≥ 0.95. Since PR 10 the sketch bank clones
//! **copy-on-write** (chunk-shared `Arc` rows), clawing back the per-
//! publication bank copy the PR 9 trajectory recorded on
//! `delta/ba4000-edge-churn`.
//!
//! Run with `cargo run --release -p ned-bench --bin perf_snapshot
//! [output.json]`. Every workload is seeded, so successive runs measure
//! identical work.

use ned_bench::loadgen::{knn_read_workload, scaling_floor, LatencySummary};
use ned_bench::util::ClassicSignatureMetric;
use ned_core::{
    ned_with_extractors, ted_star_with, KernelProfile, PreparedTree, TedMemo, TedStarConfig,
};
use ned_graph::bfs::TreeExtractor;
use ned_graph::generators;
use ned_index::{
    ConcurrentNedIndex, FnMetric, ShardedVpForest, SignatureIndex, SignatureMetric, VpTree,
};
use ned_matching::{collapsed_hungarian, hungarian, CostMatrix};
use ned_tree::Tree;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Median ns/op over `samples` timed batches of `iters` iterations.
fn measure<F: FnMut()>(samples: usize, iters: usize, mut f: F) -> f64 {
    // warm-up
    f();
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("NaN time"));
    times[times.len() / 2]
}

/// Per-metric median over repeated fleet runs — the drift discipline
/// [`measure`] applies to scalar entries, extended to latency summaries.
/// A single run's p99 is one noisy tail sample (the ~2nd-largest of ~120
/// ops); gating that at 30% would make CI flaky, so each recorded metric
/// is the median of `runs` independent runs instead.
fn median_summary(runs: usize, mut run: impl FnMut() -> LatencySummary) -> LatencySummary {
    let mut all: Vec<LatencySummary> = (0..runs.max(1)).map(|_| run()).collect();
    let mid = all.len() / 2;
    let median_by = |all: &mut [LatencySummary], f: fn(&LatencySummary) -> f64| -> f64 {
        all.sort_by(|a, b| f(a).partial_cmp(&f(b)).expect("NaN metric"));
        f(&all[mid])
    };
    LatencySummary {
        ns_per_op: median_by(&mut all, |s| s.ns_per_op),
        p50_ns: median_by(&mut all, |s| s.p50_ns),
        p99_ns: median_by(&mut all, |s| s.p99_ns),
        wall_ns: all[mid].wall_ns,
        ops: all[mid].ops,
    }
}

/// A tree with the level widths given, children spread over the previous
/// level by `spread` (1.0 = round-robin over every parent, 0.33 = clumped
/// onto the first third). Wide levels whose slots repeat a handful of
/// children signatures — but with *different* degree distributions per
/// side, so nothing zero-pairs and the matcher sees the full width. This
/// is the regime the collapsed engine targets: the expensive far-apart
/// pairs that dominate the tail of batch workloads.
fn wide_tree(widths: &[usize], spread: f64, jitter: u64) -> Tree {
    let mut rng = SmallRng::seed_from_u64(jitter);
    let mut parents = vec![0u32];
    let mut prev_start = 0usize;
    let mut prev_len = 1usize;
    for &w in &widths[1..] {
        let start = parents.len();
        let targets = ((prev_len as f64 * spread).ceil() as usize).clamp(1, prev_len);
        for i in 0..w {
            // mostly regular assignment with a sprinkle of randomness so
            // several distinct degree classes appear per level
            let slot = if rng.gen_bool(0.9) {
                i % targets
            } else {
                rng.gen_range(0..targets)
            };
            parents.push((prev_start + slot) as u32);
        }
        prev_start = start;
        prev_len = w;
    }
    Tree::from_parents(&parents).expect("valid wide tree")
}

fn random_matrix(n: usize, duplicate_rows: bool, rng: &mut SmallRng) -> CostMatrix {
    let mut m = CostMatrix::zeros(n);
    for r in 0..n {
        for c in 0..n {
            m.set(r, c, rng.gen_range(0..40));
        }
    }
    if duplicate_rows {
        // Collapse the content down to ~8 distinct rows and columns.
        for r in 0..n {
            let src = r % 8;
            for c in 0..n {
                let v = m.get(src, c);
                m.set(r, c, v);
            }
        }
        for c in 0..n {
            let src = c % 8;
            for r in 0..n {
                let v = m.get(r, src);
                m.set(r, c, v);
            }
        }
    }
    m
}

struct Entry {
    name: &'static str,
    ns_per_op: f64,
    /// Optional latency percentiles (serving-layer entries only);
    /// `perf_gate` tracks each as its own `name@p50` / `name@p99` series.
    p50_ns: Option<f64>,
    p99_ns: Option<f64>,
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_10.json".to_string());
    let mut entries: Vec<Entry> = Vec::new();

    // --- ned_pair: wide-level synthetic trees, collapsed vs dense -------
    let mut rng = SmallRng::seed_from_u64(0xBE7C);
    let widths = [1usize, 8, 64, 128, 192];
    let pairs: Vec<(Tree, Tree)> = (0..4u64)
        .map(|i| {
            (
                wide_tree(&widths, 1.0, i),
                wide_tree(&widths, 0.33, 100 + i),
            )
        })
        .collect();
    let standard = TedStarConfig::standard();
    // sanity: identical distances across the exact engines before timing
    // anything (the checked dense engine cross-asserts the transportation
    // optimum against the dense Hungarian optimum on every level)
    for (a, b) in &pairs {
        assert_eq!(
            ted_star_with(a, b, &standard),
            ted_star_with(a, b, &TedStarConfig::dense()),
            "collapsed and dense engines disagree"
        );
    }
    // The timing baseline is the *original* uncollapsed path (dense
    // Hungarian, bijection straight from the assignment) — it pays no
    // transportation or cross-check overhead, so the comparison is
    // engine-vs-engine, not engine-vs-validation-harness.
    let legacy = TedStarConfig {
        matcher: ned_core::Matcher::LegacyHungarian,
        ..TedStarConfig::standard()
    };
    let collapsed_ns = measure(7, 3, || {
        for (a, b) in &pairs {
            std::hint::black_box(ted_star_with(a, b, &standard));
        }
    }) / pairs.len() as f64;
    entries.push(Entry {
        name: "ned_pair/width192/collapsed",
        ns_per_op: collapsed_ns,
        p50_ns: None,
        p99_ns: None,
    });
    let dense_ns = measure(3, 1, || {
        for (a, b) in &pairs {
            std::hint::black_box(ted_star_with(a, b, &legacy));
        }
    }) / pairs.len() as f64;
    entries.push(Entry {
        name: "ned_pair/width192/dense-legacy",
        ns_per_op: dense_ns,
        p50_ns: None,
        p99_ns: None,
    });
    let ned_pair_speedup = dense_ns / collapsed_ns;

    // --- ned_pair on real generator graphs (end-to-end NED) -------------
    let g1 = generators::barabasi_albert(4000, 3, &mut rng);
    let g2 = generators::barabasi_albert(4000, 3, &mut rng);
    let mut e1 = TreeExtractor::new(&g1);
    let mut e2 = TreeExtractor::new(&g2);
    let ned_ns = measure(7, 2, || {
        for i in 0..8u32 {
            std::hint::black_box(ned_with_extractors(
                &mut e1,
                i * 97 % 4000,
                &mut e2,
                i * 131 % 4000,
                4,
            ));
        }
    }) / 8.0;
    entries.push(Entry {
        name: "ned_pair/ba4000-k4",
        ns_per_op: ned_ns,
        p50_ns: None,
        p99_ns: None,
    });

    // --- ned_pair frozen pre-SoA comparator -----------------------------
    // `ned_with_extractors` now rides the SoA kernel: flat CSR class
    // arrays on PreparedTree, rank-based canonicalization, the
    // thread-local scratch sweep, the specialized small-level transport
    // solves, and the heap-driven early-stopping SSP Dijkstra. The
    // comparator runs the *identical* workload (same nodes, extraction
    // included) through the path it replaced: `frozen_baseline` pins
    // preparation to the byte-materializing reference canonicalization
    // and the matching to the pre-rebuild transportation solver — so the
    // ratio is measured in-run on this hardware against a baseline that
    // does not inherit this PR's speedups.
    let presoa_config = TedStarConfig {
        frozen_baseline: true,
        ..TedStarConfig::standard()
    };
    let ned_trees: Vec<(Tree, Tree)> = (0..8u32)
        .map(|i| (e1.extract(i * 97 % 4000, 4), e2.extract(i * 131 % 4000, 4)))
        .collect();
    // bit-identity before timing: the rebuilt kernel is exact first
    for (a, b) in &ned_trees {
        assert_eq!(
            ned_core::ted_star(a, b),
            ted_star_with(a, b, &presoa_config),
            "SoA kernel diverged from the frozen pre-SoA engine"
        );
    }
    let presoa_ns = measure(5, 1, || {
        for i in 0..8u32 {
            let a = e1.extract(i * 97 % 4000, 4);
            let b = e2.extract(i * 131 % 4000, 4);
            std::hint::black_box(ted_star_with(&a, &b, &presoa_config));
        }
    }) / 8.0;
    entries.push(Entry {
        name: "ned_pair/ba4000-k4-presoa",
        ns_per_op: presoa_ns,
        p50_ns: None,
        p99_ns: None,
    });
    let soa_speedup = presoa_ns / ned_ns;

    // --- kernel_phase: per-phase time split of the SoA sweep ------------
    // The instrumented sweep on the same BA-4000 pairs, per-op ns for
    // each phase of Algorithm 1 — where the next point of attack is.
    // Medians over samples, like every scalar entry.
    let prepared_pairs: Vec<(PreparedTree, PreparedTree)> = ned_trees
        .iter()
        .map(|(a, b)| (PreparedTree::new(a), PreparedTree::new(b)))
        .collect();
    let profile_samples: Vec<KernelProfile> = (0..7)
        .map(|_| {
            let mut acc = KernelProfile::default();
            for (pa, pb) in &prepared_pairs {
                let (d, p) = ned_core::ted_star_prepared_profiled(pa, pb);
                std::hint::black_box(d);
                acc.bound_ns += p.bound_ns;
                acc.collect_ns += p.collect_ns;
                acc.canonize_ns += p.canonize_ns;
                acc.group_ns += p.group_ns;
                acc.transport_ns += p.transport_ns;
                acc.expand_ns += p.expand_ns;
            }
            acc
        })
        .collect();
    type PhaseGetter = fn(&KernelProfile) -> u64;
    let phase_median = |f: PhaseGetter| -> f64 {
        let mut xs: Vec<u64> = profile_samples.iter().map(f).collect();
        xs.sort_unstable();
        xs[xs.len() / 2] as f64 / prepared_pairs.len() as f64
    };
    let phases: [(&'static str, PhaseGetter); 6] = [
        ("kernel_phase/ba4000-k4-bound", |p| p.bound_ns),
        ("kernel_phase/ba4000-k4-collect", |p| p.collect_ns),
        ("kernel_phase/ba4000-k4-canonize", |p| p.canonize_ns),
        ("kernel_phase/ba4000-k4-group", |p| p.group_ns),
        ("kernel_phase/ba4000-k4-transport", |p| p.transport_ns),
        ("kernel_phase/ba4000-k4-expand", |p| p.expand_ns),
    ];
    for (name, f) in phases {
        entries.push(Entry {
            name,
            ns_per_op: phase_median(f),
            p50_ns: None,
            p99_ns: None,
        });
    }

    // --- hungarian: dense kernel and collapsed on duplicate-heavy input -
    let m_rand = random_matrix(128, false, &mut rng);
    entries.push(Entry {
        name: "hungarian/128-random",
        ns_per_op: measure(7, 2, || {
            std::hint::black_box(hungarian(&m_rand));
        }),
        p50_ns: None,
        p99_ns: None,
    });
    let m_dup = random_matrix(128, true, &mut rng);
    entries.push(Entry {
        name: "hungarian/128-duplicated-dense",
        ns_per_op: measure(7, 2, || {
            std::hint::black_box(hungarian(&m_dup));
        }),
        p50_ns: None,
        p99_ns: None,
    });
    entries.push(Entry {
        name: "hungarian/128-duplicated-collapsed",
        ns_per_op: measure(7, 8, || {
            std::hint::black_box(collapsed_hungarian(&m_dup));
        }),
        p50_ns: None,
        p99_ns: None,
    });

    // --- vptree: exact k-NN over NED signatures ------------------------
    let g = generators::road_network(40, 40, 0.4, 0.02, &mut rng);
    let nodes: Vec<u32> = (0..400u32).map(|i| i * 4 % 1600).collect();
    let sigs = ned_core::signatures(&g, &nodes, 4);
    let metric =
        FnMetric(|a: &ned_core::NodeSignature, b: &ned_core::NodeSignature| a.distance(b) as f64);
    let tree = VpTree::build(sigs.clone(), &metric, &mut rng);
    let queries: Vec<&ned_core::NodeSignature> = sigs.iter().take(16).collect();
    let knn_ns = measure(7, 2, || {
        for q in &queries {
            std::hint::black_box(tree.knn(&metric, q, 5));
        }
    }) / queries.len() as f64;
    entries.push(Entry {
        name: "vptree/knn5-road1600",
        ns_per_op: knn_ns,
        p50_ns: None,
        p99_ns: None,
    });

    // --- sharded_knn: dynamic forest vs full scan on BA-4000 ------------
    // The serving-layer workload: 4000 interned BA signatures in a
    // sharded VP forest (incremental inserts, so the logarithmic merge
    // machinery is what gets measured), queried from a *different* BA
    // graph. The linear baseline pays one exact TED* per live signature;
    // the forest prunes with the interned-class lower bound and the
    // duplicate buckets before any exact call.
    let gdb = generators::barabasi_albert(4000, 3, &mut rng);
    let gq = generators::barabasi_albert(4000, 3, &mut rng);
    let db_nodes: Vec<u32> = gdb.nodes().collect();
    let db_sigs = ned_core::signatures(&gdb, &db_nodes, 3);
    let mut forest = ShardedVpForest::new(1024, 0xF0);
    for (i, sig) in db_sigs.iter().enumerate() {
        forest.insert(&SignatureMetric, i as u64, sig.clone());
    }
    let probe_nodes: Vec<u32> = (0..6u32).map(|i| i * 577 % 4000).collect();
    let probes = ned_core::signatures(&gq, &probe_nodes, 3);
    // sanity: the forest is exact before it is fast — through the frozen
    // PR 2 metric *and* the bounded kernel, which must agree bit-for-bit
    for q in &probes {
        let reference = forest.scan_knn(&ClassicSignatureMetric, q, 5);
        assert_eq!(
            forest.knn(&ClassicSignatureMetric, q, 5, 0),
            reference,
            "classic forest kNN diverged from the linear scan"
        );
        assert_eq!(
            forest.knn(&SignatureMetric, q, 5, 0),
            reference,
            "bounded forest kNN diverged from the linear scan"
        );
    }
    let forest_ns = measure(7, 2, || {
        for q in &probes {
            std::hint::black_box(forest.knn(&ClassicSignatureMetric, q, 5, 0));
        }
    }) / probes.len() as f64;
    entries.push(Entry {
        name: "sharded_knn/ba4000-k3-forest",
        ns_per_op: forest_ns,
        p50_ns: None,
        p99_ns: None,
    });
    let linear_ns = measure(3, 1, || {
        for q in &probes {
            std::hint::black_box(forest.scan_knn(&ClassicSignatureMetric, q, 5));
        }
    }) / probes.len() as f64;
    entries.push(Entry {
        name: "sharded_knn/ba4000-k3-linear",
        ns_per_op: linear_ns,
        p50_ns: None,
        p99_ns: None,
    });
    let sharded_speedup = linear_ns / forest_ns;

    // --- sharded_knn bounded: budget-aware kernel + scratch arena + memo -
    // The serving configuration this PR ships: every exact TED* call in
    // the fan-out takes the current pruning radius as its abandonment
    // budget, runs allocation-free on the thread-local scratch, and
    // repeated (query class, candidate class) pairs hit the cross-pair
    // memo. Steady state (memo warm across repeat queries — the serving
    // regime) must beat the frozen PR 2 path by ≥ 1.5×.
    TedMemo::global().clear();
    let bounded_ns = measure(7, 2, || {
        for q in &probes {
            std::hint::black_box(forest.knn(&SignatureMetric, q, 5, 0));
        }
    }) / probes.len() as f64;
    entries.push(Entry {
        name: "sharded_knn/ba4000-k3-bounded",
        ns_per_op: bounded_ns,
        p50_ns: None,
        p99_ns: None,
    });
    let bounded_speedup = forest_ns / bounded_ns;

    // --- sketch: flat-bank filter tier in front of the exact kernel ------
    // The PR 9 candidate-generation tier on the identical workload: the
    // same 4000 signatures behind a SignatureIndex whose default
    // SketchMode::Exact routes knn through the SoA sketch bank — a linear
    // autovectorized lower-bound scan ordered by (bound, id), refined by
    // the budgeted kernel under the shared pruning radius. Bit-identical
    // to the forest by construction (and asserted here before timing);
    // measured with the same memo discipline as the bounded entry, and
    // gated in-run at ≥ 1.5x over it.
    let sketch_index = SignatureIndex::from_signatures(3, 1024, 0xF0, db_sigs.clone());
    for q in &probes {
        assert_eq!(
            sketch_index.query(q, 5, 0),
            forest.knn(&SignatureMetric, q, 5, 0),
            "sketch-filtered kNN diverged from the bounded forest"
        );
    }
    TedMemo::global().clear();
    let sketch_ns = measure(7, 2, || {
        for q in &probes {
            std::hint::black_box(sketch_index.query(q, 5, 0));
        }
    }) / probes.len() as f64;
    entries.push(Entry {
        name: "sketch/ba4000-knn",
        ns_per_op: sketch_ns,
        p50_ns: None,
        p99_ns: None,
    });
    let sketch_speedup = bounded_ns / sketch_ns;

    // Approximate mode: the estimate over-counts (levels summed, not
    // maxed), so it prunes harder and may drop true neighbors — its
    // recall is a *measured* figure, not a guarantee, recorded into the
    // trajectory and gated at ≥ 0.95 on this workload.
    let mut approx_index = sketch_index.clone();
    approx_index.set_sketch_mode(ned_index::SketchMode::Approx);
    let mut recall_hits = 0usize;
    let mut recall_total = 0usize;
    for q in &probes {
        let exact: std::collections::HashSet<u64> =
            sketch_index.query(q, 5, 0).iter().map(|h| h.id).collect();
        let approx = approx_index.query(q, 5, 0);
        recall_total += exact.len();
        recall_hits += approx.iter().filter(|h| exact.contains(&h.id)).count();
    }
    let sketch_recall = recall_hits as f64 / recall_total as f64;
    TedMemo::global().clear();
    let sketch_approx_ns = measure(7, 2, || {
        for q in &probes {
            std::hint::black_box(approx_index.query(q, 5, 0));
        }
    }) / probes.len() as f64;
    entries.push(Entry {
        name: "sketch/ba4000-knn-approx",
        ns_per_op: sketch_approx_ns,
        p50_ns: None,
        p99_ns: None,
    });

    // --- ted_within: cross-pair memo, cold vs warm ----------------------
    // One query signature against a candidate batch, budget high enough
    // that every pair runs (or serves) a full sweep. Cold clears the memo
    // inside the timed loop; warm reuses it — the delta is what the memo
    // buys on structurally repetitive (scale-free) candidate sets, where
    // repeat queries keep meeting the same class pairs.
    let memo_probe = &probes[0];
    let cand_nodes: Vec<u32> = (0..64u32).map(|i| i * 131 % 4000).collect();
    let cands = ned_core::signatures(&gdb, &cand_nodes, 3);
    let memo_budget = u64::MAX;
    let cold_ns = measure(5, 2, || {
        TedMemo::global().clear();
        for c in &cands {
            std::hint::black_box(memo_probe.distance_within(c, memo_budget));
        }
    }) / cands.len() as f64;
    entries.push(Entry {
        name: "ted_within/ba4000-memo-cold",
        ns_per_op: cold_ns,
        p50_ns: None,
        p99_ns: None,
    });
    TedMemo::global().clear();
    for c in &cands {
        std::hint::black_box(memo_probe.distance_within(c, memo_budget));
    }
    let warm_ns = measure(7, 8, || {
        for c in &cands {
            std::hint::black_box(memo_probe.distance_within(c, memo_budget));
        }
    }) / cands.len() as f64;
    entries.push(Entry {
        name: "ted_within/ba4000-memo-warm",
        ns_per_op: warm_ns,
        p50_ns: None,
        p99_ns: None,
    });

    // --- ingest: bulk shared-frontier extraction vs per-node baseline ---
    // Whole-graph signature extraction on BA-4000 at k = 4 (~880-node
    // trees). The baseline is the pre-bulk ingest path: one independent
    // extract-and-canonicalize per node over a shared BFS scratch
    // (`ned_core::signatures`). The bulk pipeline interns bottom-up on
    // flat scratch and hash-conses canonical shapes — measured
    // single-threaded and with a **fresh factory per run** (cold caches),
    // so the figure is the algorithmic sharing, not parallelism or reuse.
    let ging = generators::barabasi_albert(4000, 3, &mut rng);
    let ingest_nodes: Vec<u32> = ging.nodes().collect();
    let ingest_k = 4usize;
    // exactness first: bulk output must be bit-identical to per-node
    assert_eq!(
        ned_core::bulk_signatures(&ging, &ingest_nodes, ingest_k, 1),
        ned_core::signatures(&ging, &ingest_nodes, ingest_k),
        "bulk ingest diverged from per-node extraction"
    );
    let per_node_ns = measure(3, 1, || {
        std::hint::black_box(ned_core::signatures(&ging, &ingest_nodes, ingest_k));
    }) / ingest_nodes.len() as f64;
    entries.push(Entry {
        name: "ingest/ba4000-per-node",
        ns_per_op: per_node_ns,
        p50_ns: None,
        p99_ns: None,
    });
    let bulk_ns = measure(3, 1, || {
        std::hint::black_box(ned_core::bulk_signatures(&ging, &ingest_nodes, ingest_k, 1));
    }) / ingest_nodes.len() as f64;
    entries.push(Entry {
        name: "ingest/ba4000-bulk",
        ns_per_op: bulk_ns,
        p50_ns: None,
        p99_ns: None,
    });
    let ingest_speedup = per_node_ns / bulk_ns;

    // --- delta: incremental maintenance under edge churn ----------------
    // A live index tracking BA-4000 at k = 3: each edge flip (add a
    // non-edge as one delta batch, remove it as another) recomputes only
    // the (k-1)-hop dirty set through a kept-alive factory and publishes
    // once per batch. Recorded as ns per maintained edge flip (two
    // batches). The full-rebuild alternative is `n` extractions *per
    // flip* — the ingest entries above price exactly that.
    let delta_graph = generators::barabasi_albert(4000, 3, &mut rng);
    let delta_index = SignatureIndex::from_graph(&delta_graph, 3, 1024, 0xDE, 1);
    let mut maintainer = ned_index::GraphMaintainer::attach(&delta_graph, 3, 0, 1);
    let (mut delta_writer, delta_reader) = ConcurrentNedIndex::split(delta_index);
    let flips = ned_bench::loadgen::non_edges(&delta_graph, 8, 0xF11B);
    // warm + sanity: every flip applies, publishes twice, and nets zero
    {
        let epoch0 = delta_reader.epoch();
        let (a, b) = flips[0];
        let add = maintainer.apply(&[ned_graph::GraphDelta::AddEdge(a, b)], &mut delta_writer);
        let del = maintainer.apply(
            &[ned_graph::GraphDelta::RemoveEdge(a, b)],
            &mut delta_writer,
        );
        assert_eq!((add.applied, del.applied), (1, 1));
        assert_eq!(add.replaced, del.replaced, "net-zero flip must undo itself");
        assert!(
            add.candidates < delta_graph.num_nodes(),
            "dirty set degenerated into a rebuild"
        );
        assert_eq!(
            delta_reader.epoch(),
            epoch0 + 2,
            "one publication per batch"
        );
    }
    let flips_per_round = flips.len() as f64;
    let edge_churn_ns = measure(15, 1, || {
        for &(a, b) in &flips {
            let add = maintainer.apply(&[ned_graph::GraphDelta::AddEdge(a, b)], &mut delta_writer);
            let del = maintainer.apply(
                &[ned_graph::GraphDelta::RemoveEdge(a, b)],
                &mut delta_writer,
            );
            std::hint::black_box((add, del));
        }
    }) / flips_per_round;
    entries.push(Entry {
        name: "delta/ba4000-edge-churn",
        ns_per_op: edge_churn_ns,
        p50_ns: None,
        p99_ns: None,
    });
    // --- delta churn with a write-ahead log attached --------------------
    // The identical flip workload, but every maintained batch is
    // journaled (and periodically fsynced) through the PR 6 WAL before
    // it publishes — the durable serving configuration. EveryN(16)
    // group-commits: flushes are scheduled on the WAL's background
    // syncer thread, so the append path pays encode + checksum + write
    // but never an inline fdatasync.
    // Durability must ride along at ≤ 1.3x the in-memory churn cost,
    // asserted against *this same run* so the gate is hardware-free.
    let wal_dir = std::env::temp_dir().join(format!("ned-perf-wal-{}", std::process::id()));
    std::fs::create_dir_all(&wal_dir).expect("create WAL scratch dir");
    let wal_log_path = wal_dir.join("churn.wal");
    let wal_index = SignatureIndex::from_graph(&delta_graph, 3, 1024, 0xDE, 1);
    let mut wal_maintainer = ned_index::GraphMaintainer::attach(&delta_graph, 3, 0, 1);
    let (mut wal_writer, _wal_reader) = ConcurrentNedIndex::split(wal_index);
    wal_writer.attach_wal(
        ned_core::wal::WalWriter::create(&wal_log_path, 0, ned_core::wal::FsyncPolicy::EveryN(16))
            .expect("create bench WAL"),
    );
    let wal_churn_ns = measure(15, 1, || {
        for &(a, b) in &flips {
            let add =
                wal_maintainer.apply(&[ned_graph::GraphDelta::AddEdge(a, b)], &mut wal_writer);
            let del =
                wal_maintainer.apply(&[ned_graph::GraphDelta::RemoveEdge(a, b)], &mut wal_writer);
            std::hint::black_box((add, del));
        }
    }) / flips_per_round;
    entries.push(Entry {
        name: "delta/ba4000-edge-churn-wal",
        ns_per_op: wal_churn_ns,
        p50_ns: None,
        p99_ns: None,
    });
    let wal_overhead = wal_churn_ns / edge_churn_ns;
    let _ = std::fs::remove_dir_all(&wal_dir);

    // What a flip would cost without incremental maintenance: one full
    // re-extraction of every signature at the same k.
    let delta_nodes: Vec<u32> = delta_graph.nodes().collect();
    let rebuild_ns = measure(3, 1, || {
        std::hint::black_box(ned_core::signatures(&delta_graph, &delta_nodes, 3));
    });
    let delta_speedup_vs_rebuild = rebuild_ns / edge_churn_ns;

    // --- loadgen: concurrent reader-fleet throughput, 1 vs 4 readers ----
    // The PR 4 serving layer: the same BA-4000 signature set behind a
    // ConcurrentNedIndex, queried by a fleet of reader threads (each with
    // intra-query fan-out 1 — concurrency comes from requests). The
    // figure recorded is aggregate ns per knn op (wall / total ops) plus
    // per-op p50/p99, and the gate is reader *scaling*: 4 readers must
    // beat 1 reader by the hardware-scaled floor (the full 2x wherever 4
    // cores exist — CI runners — and proportionally less on smaller
    // machines, where the check still pins "concurrency must not cost
    // throughput").
    let serving = SignatureIndex::from_signatures(3, 1024, 0xF0, db_sigs.clone());
    let (_writer, reader) = ConcurrentNedIndex::split(serving);
    // Warm-up: thread scratch arenas + the TED* memo, as in serving.
    knn_read_workload(&reader, &probes, 1, 8, 5);
    let single = median_summary(3, || knn_read_workload(&reader, &probes, 1, 120, 5));
    let fleet = median_summary(3, || knn_read_workload(&reader, &probes, 4, 30, 5));
    entries.push(Entry {
        name: "loadgen/ba4000-knn-r1",
        ns_per_op: single.ns_per_op,
        p50_ns: Some(single.p50_ns),
        p99_ns: Some(single.p99_ns),
    });
    entries.push(Entry {
        name: "loadgen/ba4000-knn-r4",
        ns_per_op: fleet.ns_per_op,
        p50_ns: Some(fleet.p50_ns),
        p99_ns: Some(fleet.p99_ns),
    });
    let reader_scaling = single.ns_per_op / fleet.ns_per_op;

    // --- fleet: scatter-gather router over a 3-shard TCP fleet -----------
    // The PR 7 distributed serving layer: the identical BA-4000 signature
    // set split into 3 id-range shards, each behind its own loopback TCP
    // server, queried through the ShardRouter (shared-radius scatter, one
    // bounded merge heap). The baseline is the same knn through ONE TCP
    // server holding the unsplit index — same wire protocol, no scatter —
    // so the ratio prices exactly the coordination: per-shard framing,
    // the scatter threads, and the merge.
    let fleet_index = SignatureIndex::from_signatures(3, 1024, 0xF0, db_sigs);
    let probe_shapes: Vec<String> = probes
        .iter()
        .map(|s| ned_tree::serialize::print(s.tree()))
        .collect();
    let spawn_tcp = |server: ned_index::NedServer| {
        let server = std::sync::Arc::new(server);
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("local addr").to_string();
        let thread = {
            let server = std::sync::Arc::clone(&server);
            std::thread::spawn(move || {
                let _ = server.serve_tcp(listener);
            })
        };
        (server, addr, thread)
    };
    let (single_srv, single_addr, single_thread) =
        spawn_tcp(ned_index::NedServer::new(fleet_index.clone(), 1, 1));
    let mut wire = ned_index::WireClient::connect(&single_addr).expect("dial single server");
    let (shard_map, shard_parts) = ned_index::split_index(&fleet_index, 3);
    let mut shard_srvs = Vec::new();
    let mut shard_groups = Vec::new();
    for part in shard_parts {
        let (srv, addr, thread) = spawn_tcp(ned_index::NedServer::new(part, 1, 1));
        shard_groups.push(vec![addr]);
        shard_srvs.push((srv, thread));
    }
    let router = ned_index::ShardRouter::connect(
        shard_map,
        shard_groups,
        ned_index::RouterOptions {
            k: 3,
            next_id: fleet_index.next_id(),
            ..Default::default()
        },
    )
    .expect("router connects to the shard fleet");
    // exactness first: the scatter-gather must be bit-identical to the
    // single server over the same wire before its latency means anything
    for shape in &probe_shapes {
        let scattered = router.knn(shape, 5, None).expect("fleet knn");
        let direct = match wire
            .request(&ned_core::Request::Sig {
                shape: shape.clone(),
                top: 5,
                within: None,
            })
            .expect("single-server knn")
        {
            ned_core::Response::Hits { hits, .. } => hits,
            other => panic!("single server answered {other:?}"),
        };
        assert_eq!(
            scattered
                .hits
                .iter()
                .map(|h| (h.id, h.distance.to_bits()))
                .collect::<Vec<_>>(),
            direct
                .iter()
                .map(|h| (h.id, h.distance.to_bits()))
                .collect::<Vec<_>>(),
            "scatter-gather diverged from the single server"
        );
    }
    let fleet_knn_ns = measure(7, 2, || {
        for shape in &probe_shapes {
            std::hint::black_box(router.knn(shape, 5, None).expect("fleet knn"));
        }
    }) / probe_shapes.len() as f64;
    entries.push(Entry {
        name: "fleet/ba4000-knn-s3",
        ns_per_op: fleet_knn_ns,
        p50_ns: None,
        p99_ns: None,
    });
    let wire_knn_ns = measure(7, 2, || {
        for shape in &probe_shapes {
            std::hint::black_box(
                wire.request(&ned_core::Request::Sig {
                    shape: shape.clone(),
                    top: 5,
                    within: None,
                })
                .expect("single-server knn"),
            );
        }
    }) / probe_shapes.len() as f64;
    entries.push(Entry {
        name: "fleet/ba4000-knn-wire1",
        ns_per_op: wire_knn_ns,
        p50_ns: None,
        p99_ns: None,
    });
    let fleet_overhead = fleet_knn_ns / wire_knn_ns;
    drop(wire);
    drop(router);
    single_srv.initiate_shutdown();
    let _ = single_thread.join();
    for (srv, thread) in shard_srvs {
        srv.initiate_shutdown();
        let _ = thread.join();
    }

    // --- report ---------------------------------------------------------
    let mut json = String::from("{\n  \"schema\": \"ned-bench/1\",\n  \"benchmarks\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let mut obj = format!(
            "{{\"name\": \"{}\", \"ns_per_op\": {:.1}",
            e.name, e.ns_per_op
        );
        if let Some(p50) = e.p50_ns {
            obj.push_str(&format!(", \"p50_ns\": {p50:.1}"));
        }
        if let Some(p99) = e.p99_ns {
            obj.push_str(&format!(", \"p99_ns\": {p99:.1}"));
        }
        obj.push('}');
        json.push_str(&format!(
            "    {obj}{}\n",
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"comparisons\": {{\n    \"ned_pair_collapsed_speedup_vs_dense\": {ned_pair_speedup:.2},\n    \"soa_kernel_speedup_vs_presoa\": {soa_speedup:.2},\n    \"sharded_knn_speedup_vs_linear\": {sharded_speedup:.2},\n    \"bounded_knn_speedup_vs_unbounded_forest\": {bounded_speedup:.2},\n    \"sketch_knn_speedup_vs_bounded\": {sketch_speedup:.2},\n    \"sketch_approx_recall\": {sketch_recall:.3},\n    \"memo_warm_speedup_vs_cold\": {:.2},\n    \"loadgen_reader_scaling_4r_vs_1r\": {reader_scaling:.2},\n    \"ingest_bulk_speedup_vs_per_node\": {ingest_speedup:.2},\n    \"delta_flip_speedup_vs_rebuild\": {delta_speedup_vs_rebuild:.2},\n    \"delta_wal_overhead_vs_in_memory\": {wal_overhead:.2},\n    \"fleet_overhead_vs_single\": {fleet_overhead:.2}\n  }}\n}}\n",
        cold_ns / warm_ns
    ));
    std::fs::write(&out_path, &json).expect("write benchmark snapshot");
    println!("{json}");
    println!("wrote {out_path}");
    assert!(
        ned_pair_speedup >= 5.0,
        "collapsed ned_pair speedup {ned_pair_speedup:.2}x below the 5x target"
    );
    assert!(
        soa_speedup >= 2.0,
        "SoA kernel ({ned_ns:.0} ns/pair) is only {soa_speedup:.2}x the frozen \
         pre-SoA engine ({presoa_ns:.0} ns/pair) — below the 2x rebuild floor"
    );
    assert!(
        sharded_speedup >= 5.0,
        "sharded kNN speedup {sharded_speedup:.2}x below the 5x target"
    );
    assert!(
        bounded_speedup >= 1.5,
        "bounded forest kNN speedup {bounded_speedup:.2}x below the 1.5x floor \
         over the PR 2 unbounded path"
    );
    assert!(
        sketch_speedup >= 1.5,
        "sketch-filtered kNN ({sketch_ns:.0} ns/op) is only {sketch_speedup:.2}x the \
         PR 3 bounded forest path ({bounded_ns:.0} ns/op) — below the 1.5x floor"
    );
    assert!(
        sketch_recall >= 0.95,
        "approximate sketch mode recalled {sketch_recall:.3} of the exact top-5 — \
         below the 0.95 floor"
    );
    let reader_floor = scaling_floor(4);
    assert!(
        reader_scaling >= reader_floor,
        "reader-fleet scaling {reader_scaling:.2}x (4 vs 1 readers) below the \
         hardware-scaled floor {reader_floor:.2}x — ≥ 2x wherever 4 cores exist"
    );
    // Was a 3x floor until the SoA kernel rebuild: rank-based
    // canonicalization cut the *per-node baseline* from ~259µs to ~69µs
    // per node (bulk's ShapeTable expansion never paid canonicalization,
    // so its absolute time is unchanged) — the bulk path's relative edge
    // legitimately narrowed. It must still win outright.
    assert!(
        ingest_speedup >= 1.2,
        "bulk ingest speedup {ingest_speedup:.2}x below the 1.2x floor over the \
         per-node extraction baseline"
    );
    assert!(
        delta_speedup_vs_rebuild >= 3.0,
        "an incremental edge flip ({edge_churn_ns:.0} ns) is not even 3x cheaper \
         than a full rebuild ({rebuild_ns:.0} ns)"
    );
    assert!(
        wal_overhead <= 1.3,
        "WAL-journaled churn ({wal_churn_ns:.0} ns/flip) is {wal_overhead:.2}x the \
         in-memory churn ({edge_churn_ns:.0} ns/flip) — over the 30% durability budget"
    );
    // A deliberately loose bound: the scatter pays 3 parallel frames, 3
    // scatter threads, and a merge per query, but each shard scans a
    // third of the index — coordination must never cost more than 4x the
    // single-server wire path on this workload.
    assert!(
        fleet_overhead <= 4.0,
        "scatter-gather knn ({fleet_knn_ns:.0} ns/op) is {fleet_overhead:.2}x the \
         single-server wire path ({wire_knn_ns:.0} ns/op) — over the 4x \
         coordination budget"
    );
}
