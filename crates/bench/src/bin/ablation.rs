//! Regenerates the paper's ablation artifact; see `ned-bench` docs.
fn main() {
    let cfg = ned_bench::util::ExpConfig::from_args();
    ned_bench::experiments::ablation::run(&cfg);
}
