//! Regenerates the paper's fig8 artifact; see `ned-bench` docs.
fn main() {
    let cfg = ned_bench::util::ExpConfig::from_args();
    ned_bench::experiments::fig8::run(&cfg);
}
